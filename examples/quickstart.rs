//! Quickstart: the whole paper pipeline in ~60 lines.
//!
//! 1. Generate a synthetic Internet (stands in for RouteViews/RIPE feeds).
//! 2. Split the observed routes into training and validation sets by
//!    observation point (paper §4.2).
//! 3. Build the initial one-quasi-router-per-AS model and refine it until
//!    it reproduces every training path (§4.6).
//! 4. Predict the held-out routes and print the §4.2 match metrics.
//!
//! Run: `cargo run --release --example quickstart`

use quasar::model::prelude::*;
use quasar::netgen::prelude::*;

fn main() {
    // A small Internet: 3 tier-1s, transit tiers, ~25 stubs.
    let internet = SyntheticInternet::generate(NetGenConfig::tiny(42));
    println!(
        "synthetic internet: {} ASes, {} routers, {} eBGP+iBGP sessions",
        internet.as_topology.len(),
        internet.network.num_routers(),
        internet.network.num_sessions(),
    );

    let dataset = quasar::dataset_from(&internet);
    println!(
        "feeds: {} observation points, {} observed routes, {} prefixes",
        internet.observation_points.len(),
        dataset.len(),
        dataset.prefixes().len(),
    );

    // Training/validation split by observation point.
    let (training, validation) = dataset.split_by_point(0.5, 7);
    println!(
        "split: {} training routes, {} validation routes",
        training.len(),
        validation.len()
    );

    // The initial model uses the AS graph of ALL feeds (§4.5) but is
    // refined only against the training set.
    let mut model = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
    let before = model.stats();
    let report = refine(&mut model, &training, &RefineConfig::default())
        .expect("refinement simulations converge");
    let after = model.stats();
    println!(
        "refinement: converged={}, iterations={}, quasi-routers {} -> {}, rules {}",
        report.converged(),
        report.total_iterations(),
        before.quasi_routers,
        after.quasi_routers,
        after.policy_rules,
    );

    // Training reproduction must be exact.
    let train_ev = evaluate(&model, &training);
    println!(
        "training reproduction: {:.1}% RIB-Out ({} of {})",
        100.0 * train_ev.counts.rib_out_rate(),
        train_ev.counts.rib_out,
        train_ev.counts.total,
    );

    // Prediction on never-seen observation points.
    let ev = evaluate(&model, &validation);
    println!("validation prediction:");
    println!(
        "  RIB-Out (exact)        : {:>6.1}%",
        100.0 * ev.counts.rib_out_rate()
    );
    println!(
        "  + potential RIB-Out    : {:>6.1}%  (matched down to the tie-break)",
        100.0 * ev.counts.tie_break_rate()
    );
    println!(
        "  + RIB-In (upper bound) : {:>6.1}%",
        100.0 * ev.counts.rib_in_rate()
    );
}
