//! The paper's Figure 3, reconstructed: prefix 80.91.32.0/20 originated by
//! AS 24249, multihomed to AS 4694 and AS 16150, propagating to five
//! level-1 providers (AS 2914, 3356, 3549, 3561, 7018) and observed at
//! AS 5511.
//!
//! "Since AS 16150 propagates multiple AS-paths to AS 3356 it needs to be
//! modeled by at least two different routers... Still AS 3356 needs eight
//! routers to propagate all paths further downstream." We rebuild the
//! figure's topology, enumerate the genuine path diversity arriving at the
//! core, and show the refinement heuristic allocating exactly as many
//! quasi-routers as the observed diversity demands.
//!
//! Run: `cargo run --release --example paper_figure3`

use quasar::bgpsim::prelude::*;
use quasar::model::prelude::*;
use std::collections::BTreeMap;

fn main() {
    // Figure 3's AS-level structure (tier-1 clique as in §3.1's list).
    let tier1 = [2914u32, 3356, 3549, 3561, 7018, 5511];
    let mut net = Network::new(DecisionConfig {
        med_mode: MedMode::AlwaysCompare,
    });
    let r = |a: u32| RouterId::new(Asn(a), 0);
    for a in tier1 {
        net.add_router(r(a));
    }
    for a in [24249u32, 4694, 16150] {
        net.add_router(r(a));
    }
    // Tier-1 full mesh.
    for (i, &a) in tier1.iter().enumerate() {
        for &b in &tier1[i + 1..] {
            net.add_session(r(a), r(b), SessionKind::Ebgp).unwrap();
        }
    }
    // The figure's multihoming: 24249 -> {4694, 16150}.
    net.add_session(r(24249), r(4694), SessionKind::Ebgp)
        .unwrap();
    net.add_session(r(24249), r(16150), SessionKind::Ebgp)
        .unwrap();
    // Upstreams: 4694 -> {2914, 3549}; 16150 -> {3356, 3561, 7018}.
    for up in [2914, 3549] {
        net.add_session(r(4694), r(up), SessionKind::Ebgp).unwrap();
    }
    for up in [3356, 3561, 7018] {
        net.add_session(r(16150), r(up), SessionKind::Ebgp).unwrap();
    }

    // The prefix of the example: 80.91.32.0/20.
    let prefix = Prefix::new(0x505B_2000, 20);
    let truth = net.simulate(prefix, &[r(24249)]).unwrap();

    println!("ground truth for {prefix} (one router per AS):\n");
    println!("RIB-In at AS 3356 — the diversity a single node cannot hold:");
    print!("{}", truth.rib(r(3356)).unwrap().explain());

    // What each tier-1 + the observation AS would observe/propagate.
    let mut observed: Vec<ObservedRoute> = Vec::new();
    let mut point = 0u32;
    for &a in &tier1 {
        for c in &truth.rib(r(a)).unwrap().candidates {
            // Observe every learnable path (as 1,300 feeds effectively do
            // for the core): candidates at tier-1 border routers.
            observed.push(ObservedRoute {
                point,
                observer_as: Asn(a),
                prefix,
                as_path: c.as_path.prepend(Asn(a)),
            });
            point += 1;
        }
    }
    let dataset = Dataset::new(observed);
    println!(
        "\nobserved dataset: {} routes, {} distinct paths",
        dataset.len(),
        dataset.paths().len()
    );

    // Refine a model against all of it.
    let mut model = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
    let report =
        refine(&mut model, &dataset, &RefineConfig::default()).expect("refinement converges");
    println!("refinement converged: {}", report.converged());

    let counts: BTreeMap<u32, usize> = model
        .quasi_router_counts()
        .into_iter()
        .map(|(a, c)| (a.0, c))
        .collect();
    println!("\nquasi-routers allocated per AS (diversity made structural):");
    for (a, c) in &counts {
        let marker = if *c > 1 {
            "  <-- needs multiple quasi-routers"
        } else {
            ""
        };
        println!("  AS{a:<6} {c}{marker}");
    }

    let ev = evaluate(&model, &dataset);
    println!(
        "\nall {} observed paths reproduced as RIB-Out matches: {}",
        ev.counts.total,
        ev.counts.rib_out == ev.counts.total
    );
}
