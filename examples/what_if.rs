//! What-if analysis — the paper's motivating application (§1): "what if a
//! certain peering link was removed, or what-if we change policies thus?"
//!
//! We refine a model against observed feeds, then *edit the model* — remove
//! an AS adjacency (de-peering) — and re-simulate to predict how routing
//! shifts: which observer/prefix pairs change paths and which lose
//! reachability entirely.
//!
//! Run: `cargo run --release --example what_if`

use quasar::bgpsim::prelude::*;
use quasar::model::prelude::*;
use quasar::netgen::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let internet = SyntheticInternet::generate(NetGenConfig::tiny(7));
    let dataset = quasar::dataset_from(&internet);

    // Train on everything: the what-if question is about the future, not
    // about held-out data.
    let mut model = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
    refine(&mut model, &dataset, &RefineConfig::default()).expect("refinement converges");
    println!(
        "model: {} quasi-routers over {} ASes (refined against {} routes)",
        model.stats().quasi_routers,
        model.stats().ases,
        dataset.len()
    );

    // Pick the busiest AS adjacency touched by observed paths.
    let mut edge_use: BTreeMap<(Asn, Asn), usize> = BTreeMap::new();
    for r in dataset.routes() {
        for (a, b) in r.as_path.edges() {
            let key = if a < b { (a, b) } else { (b, a) };
            *edge_use.entry(key).or_default() += 1;
        }
    }
    let (&(a, b), &uses) = edge_use
        .iter()
        .max_by_key(|(_, &n)| n)
        .expect("non-empty dataset");
    println!("what-if: de-peer {a} -- {b} (carries {uses} observed routes)");

    // The structured what-if API: copy, edit, diff.
    let diff = Scenario::new(&model)
        .apply(Change::Depeer(a, b))
        .diff()
        .expect("scenario simulations converge");

    println!(
        "predicted impact over every (router, prefix) pair: {} unchanged, {} re-routed, {} lost reachability",
        diff.unchanged(),
        diff.rerouted(),
        diff.lost()
    );
    println!("sample changes:");
    for (router, prefix, impact) in diff.impacts.iter().take(5) {
        match impact {
            Impact::Rerouted(x, y) => println!("  {router} -> {prefix}: {x}  ==>  {y}"),
            Impact::Lost(x) => println!("  {router} -> {prefix}: {x}  ==>  UNREACHABLE"),
            Impact::Gained(y) => println!("  {router} -> {prefix}: (none)  ==>  {y}"),
        }
    }
    println!("most affected ASes:");
    for (asn, n) in diff.most_affected_ases().into_iter().take(5) {
        println!("  {asn}: {n} (router, prefix) pairs");
    }
}
