//! Provider-choice scenario — the second motivating task from §1: an AS
//! weighing its upstream options ("making decisions about peering
//! relationships, choice of upstream providers, inter-domain traffic
//! engineering").
//!
//! A multihomed stub asks: if I dropped one of my providers, how many of
//! the Internet's vantage points would still reach me, and how would their
//! paths shift? The refined model answers without touching the real
//! network — this is exactly the "tweak and pray" (§1) loop the paper
//! wants to replace.
//!
//! Run: `cargo run --release --example provider_choice`

use quasar::bgpsim::prelude::*;
use quasar::model::prelude::*;
use quasar::netgen::prelude::*;

fn main() {
    let internet = SyntheticInternet::generate(NetGenConfig::tiny(99));
    let dataset = quasar::dataset_from(&internet);

    // Find a multihomed stub with at least two providers.
    let stub = internet
        .as_topology
        .ases
        .values()
        .find(|g| g.tier == Tier::Stub && g.providers.len() >= 2)
        .expect("generator produces multihomed stubs");
    let providers: Vec<Asn> = stub.providers.iter().copied().collect();
    println!(
        "subject: {} (multihomed stub, providers {:?})",
        stub.asn, providers
    );

    // Refine the model on all observed data.
    let mut model = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
    refine(&mut model, &dataset, &RefineConfig::default()).expect("refinement converges");

    // The stub's prefixes.
    let prefixes: Vec<Prefix> = model
        .prefixes()
        .iter()
        .filter(|(_, &o)| o == stub.asn)
        .map(|(&p, _)| p)
        .collect();
    println!("prefixes announced: {}", prefixes.len());

    // Reachability from every observer AS, per scenario.
    let observers: Vec<Asn> = internet
        .observation_points
        .iter()
        .map(|p| p.observer_as())
        .collect();
    // Per scenario: best path at each observer's first quasi-router, for
    // each of the stub's prefixes.
    let snapshot = |m: &AsRoutingModel| -> Vec<Option<String>> {
        let mut out = Vec::new();
        for &p in &prefixes {
            let res = m.simulate(p).expect("converges");
            for &obs in &observers {
                let best = m
                    .quasi_routers_of(obs)
                    .first()
                    .and_then(|&r| res.best_route(r))
                    .map(|r| r.as_path.to_string());
                out.push(best);
            }
        }
        out
    };

    let base = snapshot(&model);
    let reachable = base.iter().filter(|b| b.is_some()).count();
    println!(
        "\nbaseline: {reachable}/{} (observer, prefix) pairs reachable",
        base.len()
    );

    for &dropped in &providers {
        let mut scenario = model.clone();
        scenario.depeer(stub.asn, dropped);
        let now = snapshot(&scenario);
        let lost = base
            .iter()
            .zip(&now)
            .filter(|(b, n)| b.is_some() && n.is_none())
            .count();
        let moved = base
            .iter()
            .zip(&now)
            .filter(|(b, n)| b.is_some() && n.is_some() && b != n)
            .count();
        println!(
            "drop provider {dropped:>9}: {lost} pairs lose reachability, {moved} pairs re-route"
        );
    }

    println!(
        "\ninterpretation: dropping a provider rarely costs reachability (the\n\
         other providers absorb the announcements) but forces the inbound\n\
         paths of many vantage points to shift — exactly the traffic-\n\
         engineering consequence an operator wants to preview before\n\
         touching the real network."
    );
}
