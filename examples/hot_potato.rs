//! Hot-potato sensitivity — §1's opening argument made concrete: "ASes are
//! not simple nodes in a graph... The internal structure of an AS does
//! matter. It influences inter-domain routing, for instance via hot-potato
//! routing."
//!
//! We take the synthetic Internet's ground truth, re-weight the IGP links
//! *inside one transit AS only*, re-simulate, and count how many
//! inter-domain routes (as seen by the feeds) change — no BGP policy was
//! touched, yet AS-level paths move. A single-node AS model cannot
//! represent any of this.
//!
//! Run: `cargo run --release --example hot_potato`

use quasar::bgpsim::prelude::*;
use quasar::netgen::prelude::*;

fn main() {
    let internet = SyntheticInternet::generate(NetGenConfig::tiny(13));

    // Pick the transit AS with the most border routers.
    let (&victim, routers) = internet
        .routers
        .iter()
        .max_by_key(|(_, rs)| rs.len())
        .expect("non-empty internet");
    println!(
        "perturbing IGP weights inside {victim} ({} border routers); everything else untouched",
        routers.len()
    );

    // Baseline: the feeds as generated.
    let before = &internet.observations;

    // Perturbed network: same sessions and policies, inverted IGP costs in
    // the victim (cheap links become expensive and vice versa).
    let mut perturbed = internet.network.clone();
    let mut igp = IgpTopology::new();
    for (i, &r) in routers.iter().enumerate() {
        let next = routers[(i + 1) % routers.len()];
        if routers.len() == 2 && i == 1 {
            break;
        }
        // Alternate extreme weights to flip every hot-potato comparison.
        let w = if i % 2 == 0 { 1 } else { 1_000 };
        igp.add_link(r, next, w);
    }
    perturbed.set_igp(victim, &igp);

    let after = collect_observations(
        &perturbed,
        &internet.routers,
        &internet.prefixes,
        &internet.observation_points,
    );

    // Compare (point, prefix) -> path.
    use std::collections::BTreeMap;
    let key = |o: &RouteObservation| (o.point, o.prefix);
    let before_map: BTreeMap<_, _> = before.iter().map(|o| (key(o), o.as_path.clone())).collect();
    let mut changed = 0usize;
    let mut samples = Vec::new();
    for o in &after {
        if let Some(old) = before_map.get(&key(o)) {
            if *old != o.as_path {
                changed += 1;
                if samples.len() < 5 {
                    samples.push(format!(
                        "  feed {} -> {}: {}  ==>  {}",
                        o.point, o.prefix, old, o.as_path
                    ));
                }
            }
        }
    }
    println!(
        "observed routes changed by the IGP re-weighting alone: {changed} of {}",
        after.len()
    );
    for s in samples {
        println!("{s}");
    }
    println!(
        "\n(the AS-path itself shifts because border routers now exit\n\
         elsewhere — the diversity a quasi-router model captures and a\n\
         single-node model cannot)"
    );
}
