//! Serving round trip — run the query server in-process and talk to it
//! over real TCP, exactly like `quasar serve` + `quasar query` do.
//!
//! We refine a model against observed feeds, hand it to a
//! [`quasar::serve::server::ServerState`], start the listener on an
//! ephemeral port, then send newline-delimited JSON requests: a `predict`
//! twice (the second answered from the per-prefix steady-state cache), a
//! what-if `diff`, the cache `metrics`, and finally a graceful `shutdown`.
//!
//! Run: `cargo run --release --example serve_roundtrip`

use quasar::model::prelude::*;
use quasar::netgen::prelude::*;
use quasar::serve::server::{serve, ServeConfig, ServerState};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

fn main() {
    // Train on everything — the server answers questions about the
    // present topology, not about held-out data.
    let internet = SyntheticInternet::generate(NetGenConfig::tiny(7));
    let dataset = quasar::dataset_from(&internet);
    let mut model = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
    refine(&mut model, &dataset, &RefineConfig::default()).expect("refinement converges");

    // Pick a (prefix, observer) pair straight from the feeds so the
    // queries below are answerable.
    let probe = &dataset.routes()[0];
    let prefix = probe.prefix.to_string();
    let observer = probe.observer_as.0;

    // The server: shared state behind an Arc, listener on an ephemeral
    // port, accept loop + worker pool on a background thread.
    let state = Arc::new(ServerState::new(model, ServeConfig::default()));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    println!("serving on {addr}");
    let server = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || serve(state, listener))
    };

    // One lockstep connection, like `quasar query`.
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let requests = [
        format!(r#"{{"type":"predict","prefix":"{prefix}","observer":{observer}}}"#),
        // Same question again: this one is a cache hit.
        format!(r#"{{"type":"predict","prefix":"{prefix}","observer":{observer}}}"#),
        r#"{"type":"diff","changes":[{"action":"depeer","a":1,"b":2}]}"#.to_string(),
        r#"{"type":"metrics"}"#.to_string(),
        r#"{"type":"shutdown"}"#.to_string(),
    ];
    for req in &requests {
        writer
            .write_all(format!("{req}\n").as_bytes())
            .expect("send");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("receive");
        println!("> {req}");
        println!("< {}", reply.trim_end());
    }

    // The shutdown request drained the workers and released the port.
    server
        .join()
        .expect("server thread")
        .expect("server exits cleanly");
    println!("server drained, done");
}
