//! MRT archive pipeline: export the synthetic feeds as a RouteViews-style
//! TABLE_DUMP_V2 file, read it back exactly as one would read a real
//! archive, and run the paper's §3 diversity analyses on the result.
//!
//! Swapping the in-memory buffer for a real RouteViews file is the only
//! change needed to run the analysis on actual Internet data.
//!
//! Run: `cargo run --release --example mrt_pipeline`

use quasar::diversity::prelude::*;
use quasar::netgen::prelude::*;

fn main() {
    let internet = SyntheticInternet::generate(NetGenConfig::tiny(2006));

    // Export to the archive format.
    let mrt_bytes = export_table_dump_v2(&internet.observation_points, &internet.observations);
    println!(
        "exported {} observations from {} feeds -> {} MRT bytes",
        internet.observations.len(),
        internet.observation_points.len(),
        mrt_bytes.len()
    );

    // Re-import exactly like a real dump.
    let (points, observations) =
        import_table_dump_v2(&mrt_bytes).expect("well-formed TABLE_DUMP_V2");
    println!(
        "imported {} feeds, {} routes",
        points.len(),
        observations.len()
    );
    let dataset = quasar::dataset_from_observations(&observations);

    // §3.1 dataset summary (Table 0).
    let summary = summarize(&dataset, &[]);
    println!("\ndataset summary (paper §3.1):");
    println!("  routes            : {}", summary.routes);
    println!("  distinct AS-paths : {}", summary.distinct_paths);
    println!("  AS pairs          : {}", summary.as_pairs);
    println!("  ASes / edges      : {} / {}", summary.ases, summary.edges);
    println!("  level-1 clique    : {:?}", summary.level1);
    println!(
        "  level-2 / other   : {} / {}",
        summary.level2, summary.other
    );
    println!(
        "  transit / 1-homed stubs / m-homed stubs: {} / {} / {}",
        summary.transit, summary.single_homed_stubs, summary.multi_homed_stubs
    );
    println!(
        "  pruned graph      : {} nodes, {} edges",
        summary.pruned_nodes, summary.pruned_edges
    );

    // Figure 2: distinct AS-paths per AS pair.
    let hist = PathDiversityHistogram::from_dataset(&dataset);
    println!("\nFigure 2 — distinct AS-paths per (origin, observer) pair:");
    for (k, n) in hist.rows() {
        println!(
            "  {k:>3} paths: {n:>6} pairs {}",
            "#".repeat((n as f64).ln().max(0.0) as usize + 1)
        );
    }
    println!(
        "  pairs with >1 path: {:.1}%  (paper: >30%)",
        100.0 * hist.fraction_with_more_than(1)
    );

    // Table 1: per-AS maximum received diversity.
    let quant = DiversityQuantiles::from_dataset(&dataset);
    println!("\nTable 1 — max #unique AS-paths received, percentiles:");
    print!(" ");
    for (pct, v) in quant.table1_row() {
        print!("  p{pct}={v}");
    }
    println!();
    println!(
        "  ASes receiving >=2 paths for some prefix: {:.1}%  (paper: >50%)",
        100.0 * quant.fraction_at_least(2)
    );

    // Prefix spread.
    let spread = PrefixSpread::from_dataset(&dataset);
    println!("\nprefixes per AS-path:");
    println!(
        "  single-prefix paths: {:.1}%  (paper: <50%) | busiest path carries {} prefixes | log-log slope {:?}",
        100.0 * spread.single_prefix_fraction(),
        spread.max_prefixes(),
        spread.log_log_slope().map(|s| (s * 100.0).round() / 100.0),
    );
}
