//! Live update streaming — replay a BGP update archive through the
//! incremental pipeline while a server keeps answering queries.
//!
//! The setup mirrors a real deployment in miniature:
//!
//! 1. a synthetic internet is perturbed (graph-preserving path shifts)
//!    and the before→after transition is rendered as an MRT archive:
//!    PEER_INDEX_TABLE + before-RIB dump + timestamped BGP4MP updates;
//! 2. a `quasar serve` instance starts on the *before* model;
//! 3. `Pipeline::run_file` replays the archive: each window's updates
//!    are applied to the live path state, the exact dirty-prefix set is
//!    extracted, only those refinement domains are retrained, and the
//!    fresh epoch is swapped into the server atomically — queries never
//!    stall and never see a half-loaded model;
//! 4. the final streamed epoch is byte-identical to what `quasar train`
//!    would produce from scratch on the final path set.
//!
//! Run: `cargo run --release --example stream_replay`

use quasar::model::persist::{self, load_model};
use quasar::model::prelude::*;
use quasar::mrt::prelude::*;
use quasar::netgen::prelude::*;
use quasar::serve::server::{serve, ServeConfig, ServerState};
use quasar::stream::prelude::*;
use std::sync::Arc;

fn main() {
    let dir = std::env::temp_dir().join(format!("quasar-stream-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // A before→after transition: six feeds switch to an alternative
    // path; the AS graph and every prefix's origin stay fixed.
    let net = SyntheticInternet::generate(NetGenConfig::tiny(11));
    let perturbation = perturb_observations(
        &net.observation_points,
        &net.observations,
        &PerturbationConfig::graph_preserving(6),
        0xD1CE,
    );
    println!(
        "perturbed {} prefixes out of {}",
        perturbation.dirty_prefixes.len(),
        quasar::dataset_from(&net).prefixes().len()
    );

    // Render it as an MRT archive, exactly what a route collector emits.
    let records = transition_stream(
        &net.observation_points,
        &net.observations,
        &perturbation.after,
        &UpdateStreamConfig::default(),
        0x5EED,
    );
    let updates = dir.join("updates.mrt");
    let mut w = MrtWriter::new(Vec::new());
    for r in &records {
        w.write_record(r).expect("encode record");
    }
    std::fs::write(&updates, w.finish().expect("finish archive")).expect("write archive");

    // A server on the before model (what `quasar train` on the dump
    // would have produced).
    let before = quasar::dataset_from(&net);
    let mut model = AsRoutingModel::initial(&before.as_graph(), &before.prefixes());
    refine(&mut model, &before, &RefineConfig::default()).expect("refinement converges");
    model.generalize_med_preferences();
    let state = Arc::new(ServerState::new(model, ServeConfig::default()));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let server = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || serve(state, listener))
    };
    println!("serving on {addr}");

    // Replay the archive: window by window, deltas → incremental retrain
    // → atomic swap into the live server.
    let model_out = dir.join("model.quasar");
    let mut pipeline = Pipeline::new(StreamConfig {
        updates,
        model_out: model_out.clone(),
        serve_addr: Some(addr.to_string()),
        window_secs: 1_800,
        ..StreamConfig::default()
    })
    .expect("pipeline");
    let report = pipeline.run_file().expect("replay");

    for w in &report.windows {
        println!(
            "window {}: {} updates, {} dirty prefixes, mode {}, refine {}ms, swap {}ms",
            w.seq, w.updates, w.dirty_prefixes, w.mode, w.refine_ms, w.swap_ms
        );
    }
    println!(
        "{} windows, {} swaps, {} incremental",
        report.status.windows, report.status.swaps, report.status.incremental_windows
    );
    assert!(report.source_error.is_none());
    assert!(report.status.swaps >= 1);

    // The streamed epoch is interchangeable with an offline retrain of
    // the final path set — byte for byte.
    let after = quasar::dataset_from_observations(&perturbation.after);
    let mut offline = AsRoutingModel::initial(&after.as_graph(), &after.prefixes());
    refine(&mut offline, &after, &RefineConfig::default()).expect("offline retrain");
    offline.generalize_med_preferences();
    let json = offline.to_json().expect("serialize");
    let offline_path = dir.join("offline.quasar");
    persist::save_artifact(&offline_path, persist::KIND_MODEL, json.as_bytes()).expect("persist");
    assert_eq!(
        std::fs::read(&model_out).expect("streamed"),
        std::fs::read(&offline_path).expect("offline"),
        "streamed epoch must equal the from-scratch retrain"
    );
    println!("streamed epoch == offline retrain (byte-identical)");

    // The artifact the server is now serving loads standalone too.
    load_model(&model_out).expect("final epoch loads");
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    use std::io::Write as _;
    stream
        .write_all(b"{\"type\":\"shutdown\"}\n")
        .expect("shutdown");
    drop(stream);
    server
        .join()
        .expect("server thread")
        .expect("serve exits cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}
