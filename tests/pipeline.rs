//! Cross-crate integration tests: the full pipeline through every crate —
//! netgen (ground truth) → mrt (archive round-trip) → core (training +
//! prediction) → diversity (analyses) — exercised through the `quasar`
//! façade exactly as a downstream user would.

use quasar::diversity::prelude::*;
use quasar::model::prelude::*;
use quasar::netgen::prelude::*;
use quasar::topology::prelude::*;

fn internet() -> SyntheticInternet {
    SyntheticInternet::generate(NetGenConfig::tiny(777))
}

#[test]
fn feeds_survive_the_mrt_archive() {
    let net = internet();
    // Through the archive format and back.
    let bytes = export_table_dump_v2(&net.observation_points, &net.observations);
    let (_, observations) = import_table_dump_v2(&bytes).expect("well-formed dump");
    let direct = quasar::dataset_from(&net);
    let via_mrt = quasar::dataset_from_observations(&observations);
    assert_eq!(direct, via_mrt, "archive round-trip altered the dataset");
}

#[test]
fn full_train_predict_cycle_through_facade() {
    let net = internet();
    let dataset = quasar::dataset_from(&net);
    let (training, validation) = dataset.split_by_point(0.5, 3);

    let mut model = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
    let report = refine(&mut model, &training, &RefineConfig::default()).unwrap();
    assert!(report.converged());

    let train_ev = evaluate(&model, &training);
    assert_eq!(train_ev.counts.rib_out, train_ev.counts.total);

    let valid_ev = evaluate(&model, &validation);
    assert!(valid_ev.counts.tie_break_rate() > 0.5);
}

#[test]
fn diversity_analyses_agree_with_ground_truth_shape() {
    let net = internet();
    let dataset = quasar::dataset_from(&net);

    let hist = PathDiversityHistogram::from_dataset(&dataset);
    assert!(hist.total_pairs() > 0);
    assert!(
        hist.fraction_with_more_than(1) > 0.05,
        "generator must produce visible route diversity, got {:.3}",
        hist.fraction_with_more_than(1)
    );

    let quant = DiversityQuantiles::from_dataset(&dataset);
    assert!(quant.fraction_at_least(2) > 0.0);

    let summary = summarize(&dataset, &net.as_topology.tier1());
    assert_eq!(summary.routes, dataset.len());
    assert!(summary.pruned_nodes <= summary.ases);
}

#[test]
fn relationship_inference_recovers_most_ground_truth() {
    let net = internet();
    let dataset = quasar::dataset_from(&net);
    let graph = dataset.as_graph();
    let paths = dataset.paths();
    let level1 = tier1_clique(&graph, &net.as_topology.tier1());
    let inferred = infer_relationships(&graph, &paths, &level1, &InferenceConfig::default());
    let truth = net.as_topology.ground_truth_relationships();

    let mut correct = 0;
    let mut total = 0;
    for (&(a, b), rel) in inferred.iter() {
        if let Some(t) = truth.get(a, b) {
            total += 1;
            let ok = match (rel, t) {
                (
                    Relationship::CustomerProvider { provider: p1, .. },
                    Relationship::CustomerProvider { provider: p2, .. },
                ) => *p1 == p2,
                (Relationship::PeerPeer | Relationship::Sibling, Relationship::PeerPeer) => true,
                _ => false,
            };
            correct += usize::from(ok);
        }
    }
    assert!(total > 0);
    let acc = correct as f64 / total as f64;
    assert!(acc > 0.6, "inference accuracy {acc:.2} too low");
}

#[test]
fn what_if_depeering_changes_routing_but_stays_convergent() {
    let net = internet();
    let dataset = quasar::dataset_from(&net);
    let mut model = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
    refine(&mut model, &dataset, &RefineConfig::default()).unwrap();

    // De-peer the busiest observed adjacency.
    let mut edge_use = std::collections::BTreeMap::new();
    for r in dataset.routes() {
        for (a, b) in r.as_path.edges() {
            *edge_use
                .entry(if a < b { (a, b) } else { (b, a) })
                .or_insert(0usize) += 1;
        }
    }
    let (&(a, b), _) = edge_use.iter().max_by_key(|(_, &n)| n).unwrap();
    let mut edited = model.clone();
    assert!(edited.depeer(a, b) > 0);

    let mut changed = 0;
    for &prefix in model.prefixes().keys() {
        let before = model.simulate(prefix).unwrap();
        let after = edited.simulate(prefix).unwrap();
        for rib in before.ribs() {
            let x = rib.best().map(|r| r.as_path.clone());
            let y = after
                .rib(rib.router)
                .and_then(|r| r.best())
                .map(|r| r.as_path.clone());
            if x != y {
                changed += 1;
            }
        }
    }
    assert!(changed > 0, "de-peering the busiest edge changed nothing");
}

#[test]
fn stub_pruning_then_training_still_exact() {
    let net = internet();
    let dataset = quasar::dataset_from(&net);
    let pruned = prune_stub_ases(&dataset, &net.as_topology.tier1());
    let (training, _) = pruned.dataset.split_by_point(0.5, 11);

    let mut model = AsRoutingModel::initial(&pruned.graph, &pruned.dataset.prefixes());
    let report = refine(&mut model, &training, &RefineConfig::default()).unwrap();
    assert!(report.converged());
    let ev = evaluate(&model, &training);
    assert_eq!(ev.counts.rib_out, ev.counts.total);
}
