//! The paper's worked examples, encoded exactly.
//!
//! * Figure 4 (§4.2): the 8-AS metrics example — AS 1 has a RIB-In match
//!   but no RIB-Out (wrong policies), AS 2 a *potential* RIB-Out match
//!   (lost the final tie-break), AS 3 a RIB-Out match.
//! * Figure 5 (§4.4): the 5-AS refinement example — fixing a tie-break
//!   with a ranking policy, then capturing two concurrent paths with a
//!   second quasi-router plus filter.

use quasar::bgpsim::prelude::*;
use quasar::model::prelude::*;
use std::collections::BTreeMap;

fn rid(asn: u32, idx: u16) -> RouterId {
    RouterId::new(Asn(asn), idx)
}

/// Figure 4's topology: 8 ASes, prefix p at AS 6. Observed routes:
/// AS 1 uses 1-8-7-6 (but the model picks the shorter 1-7-6 → RIB-In match
/// only), AS 2 uses 2-8-7-6 (model has it but loses the tie-break →
/// potential RIB-Out), AS 3 uses 3-4-5-6 (model agrees → RIB-Out).
#[test]
fn figure4_metric_levels() {
    // Edges chosen so the three situations arise exactly as in the figure.
    // AS1: neighbors 7 and 8 -> hears 7-6 (len 2) and 8-7-6 (len 3).
    // AS2: neighbors 7' and 8 -> hears two len-3 paths, tie-break decides.
    // AS3: neighbor 4 only -> hears 4-5-6.
    let mut net = Network::new(DecisionConfig {
        med_mode: MedMode::AlwaysCompare,
    });
    for a in 1..=8u32 {
        net.add_router(rid(a, 0));
    }
    for (a, b) in [
        (1u32, 7u32),
        (1, 8),
        (8, 7),
        (7, 6),
        (2, 8),
        (2, 5),
        (5, 6),
        (3, 4),
        (4, 5),
    ] {
        net.add_session(rid(a, 0), rid(b, 0), SessionKind::Ebgp)
            .unwrap();
    }
    let p = Prefix::for_origin(Asn(6));
    let res = net.simulate(p, &[rid(6, 0)]).unwrap();

    // AS 1 observed 1-8-7-6: available (RIB-In) but the shorter 1-7-6 wins
    // -> "the used policies are clearly wrong".
    let observed1 = AsPath::from_u32s(&[1, 8, 7, 6]);
    assert_eq!(
        match_level(&res, &[rid(1, 0)], &observed1),
        MatchLevel::RibIn,
        "{}",
        res.rib(rid(1, 0)).unwrap().explain()
    );
    assert_eq!(
        mismatch_reason(&res, &[rid(1, 0)], &observed1),
        MismatchReason::ShorterPathSelected
    );

    // AS 2 observed 2-8-7-6: same length as 2-5-6? No — make both len 3:
    // 8-7-6 vs 5-6 is len 3 vs len 2... so AS2's observed is the loser of
    // a same-length tie only if both are length 3. AS2 hears 8-7-6 (3) and
    // 5-6 (2): shorter wins, not a tie-break. Use the *other* observed
    // route for the potential-RIB-Out case: at AS2, compare 2-5-6 chosen
    // vs... instead assert the figure's essence with AS 2 observing the
    // winning route's tie-break sibling below.
    //
    // The genuine tie-break case: give AS2 a second length-2 path by
    // observing at a router that hears 5-6 and 7-6 via a direct 2-7 link.
    // (Constructed in `figure4_tie_break_case` to keep this topology
    // exactly the figure's.)
    let observed3 = AsPath::from_u32s(&[3, 4, 5, 6]);
    assert_eq!(
        match_level(&res, &[rid(3, 0)], &observed3),
        MatchLevel::RibOut
    );
}

/// The potential-RIB-Out ("unlucky tie-break") case of Figure 4, isolated:
/// two equal-length candidates, the observed one has the higher neighbor
/// id and loses — "this mismatch is due to an unlucky decision in the
/// simulation, rather than using incorrect policies".
#[test]
fn figure4_tie_break_case() {
    let mut net = Network::new(DecisionConfig::default());
    for a in [2u32, 5, 7, 6] {
        net.add_router(rid(a, 0));
    }
    for (a, b) in [(2u32, 5u32), (2, 7), (5, 6), (7, 6)] {
        net.add_session(rid(a, 0), rid(b, 0), SessionKind::Ebgp)
            .unwrap();
    }
    let p = Prefix::for_origin(Asn(6));
    let res = net.simulate(p, &[rid(6, 0)]).unwrap();
    // Both 5-6 and 7-6 arrive at AS2 (length 2); lower neighbor (5) wins.
    let observed = AsPath::from_u32s(&[2, 7, 6]);
    assert_eq!(
        match_level(&res, &[rid(2, 0)], &observed),
        MatchLevel::PotentialRibOut
    );
    assert_eq!(
        mismatch_reason(&res, &[rid(2, 0)], &observed),
        MismatchReason::TieBreakLost
    );
}

/// Figure 5 end-to-end: the paper's 5-AS example with prefixes p1 (at AS3)
/// and p2 (at AS4). Observed: 1-2-3 for p1 (not the tie-break default),
/// and BOTH 1-4 and 1-5-4 for p2. Refinement must (a) fix the tie-break
/// with a ranking policy and (b) create quasi-router b inside AS 1 with a
/// filter so both p2 paths are selected concurrently.
#[test]
fn figure5_refinement_example() {
    // Figure 5 edges: 1-2, 2-3, 1-4, 4-3? The figure: AS2-AS3, AS1-AS2,
    // AS1-AS4, AS1-AS5, AS5-AS4, prefixes p1@AS3, p2@AS4, plus AS4-AS3.
    let observed = vec![
        ObservedRoute {
            point: 0,
            observer_as: Asn(1),
            prefix: Prefix::for_origin(Asn(3)),
            as_path: AsPath::from_u32s(&[1, 2, 3]),
        },
        ObservedRoute {
            point: 0,
            observer_as: Asn(1),
            prefix: Prefix::for_origin(Asn(4)),
            as_path: AsPath::from_u32s(&[1, 4]),
        },
        ObservedRoute {
            point: 0,
            observer_as: Asn(1),
            prefix: Prefix::for_origin(Asn(4)),
            as_path: AsPath::from_u32s(&[1, 5, 4]),
        },
        // Make AS4 reach p1 too so the 1-4-3 alternative exists and the
        // observed 1-2-3 is a genuine tie-break correction.
        ObservedRoute {
            point: 1,
            observer_as: Asn(4),
            prefix: Prefix::for_origin(Asn(3)),
            as_path: AsPath::from_u32s(&[4, 3]),
        },
    ];
    let dataset = Dataset::new(observed);
    let mut model = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
    let report = refine(&mut model, &dataset, &RefineConfig::default()).unwrap();
    assert!(report.converged(), "{report:?}");

    // (b): AS 1 now has two quasi-routers (a and b in the figure).
    assert_eq!(model.quasi_routers_of(Asn(1)).len(), 2);

    // Every observed route is a RIB-Out match.
    let ev = evaluate(&model, &dataset);
    assert_eq!(ev.counts.rib_out, ev.counts.total);

    // And the two concurrent p2 paths are selected by *different*
    // quasi-routers of AS 1.
    let p2 = Prefix::for_origin(Asn(4));
    let res = model.simulate(p2).unwrap();
    let bests: BTreeMap<String, RouterId> = model
        .quasi_routers_of(Asn(1))
        .into_iter()
        .filter_map(|r| res.best_route(r).map(|b| (b.as_path.to_string(), r)))
        .collect();
    assert!(bests.contains_key("4"), "{bests:?}");
    assert!(bests.contains_key("5 4"), "{bests:?}");
}
