//! End-to-end CLI test: generate → analyze → train → whatif → stable, all
//! through the real binary, exchanging real files.

use std::path::PathBuf;
use std::process::Command;

fn quasar() -> Command {
    Command::new(env!("CARGO_BIN_EXE_quasar"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("quasar-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn full_cli_workflow() {
    let feeds = tmp("feeds.mrt");
    let model = tmp("model.json");
    let updates = PathBuf::from(format!("{}.updates.mrt", feeds.display()));

    // generate
    let out = quasar()
        .args([
            "generate",
            "--out",
            feeds.to_str().unwrap(),
            "--scale",
            "tiny",
            "--seed",
            "5",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(feeds.exists());
    assert!(updates.exists());

    // analyze
    let out = quasar()
        .args(["analyze", feeds.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("feeds"), "{text}");
    assert!(text.contains("diversity"), "{text}");

    // train -> model.json
    let out = quasar()
        .args([
            "train",
            feeds.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("converged=true"), "{text}");
    assert!(model.exists());

    // whatif using the persisted model
    let out = quasar()
        .args([
            "whatif",
            feeds.to_str().unwrap(),
            "--depeer",
            "10:101",
            "--model",
            model.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("de-peering"));

    // stable snapshot reconstruction from the update archive
    let out = quasar()
        .args(["stable", updates.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("stable routes"));

    // predict on the generated feeds
    let out = quasar()
        .args(["predict", feeds.to_str().unwrap(), "--seed", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("prediction:"));

    // bad usage exits non-zero
    let out = quasar().args(["bogus"]).output().unwrap();
    assert!(!out.status.success());

    for f in [feeds, model, updates] {
        let _ = std::fs::remove_file(f);
    }
}
