//! End-to-end CLI test: generate → analyze → train → whatif → stable, all
//! through the real binary, exchanging real files.

use std::path::PathBuf;
use std::process::Command;

fn quasar() -> Command {
    Command::new(env!("CARGO_BIN_EXE_quasar"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("quasar-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn full_cli_workflow() {
    let feeds = tmp("feeds.mrt");
    let model = tmp("model.json");
    let updates = PathBuf::from(format!("{}.updates.mrt", feeds.display()));

    // generate
    let out = quasar()
        .args([
            "generate",
            "--out",
            feeds.to_str().unwrap(),
            "--scale",
            "tiny",
            "--seed",
            "5",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(feeds.exists());
    assert!(updates.exists());

    // analyze
    let out = quasar()
        .args(["analyze", feeds.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("feeds"), "{text}");
    assert!(text.contains("diversity"), "{text}");

    // train -> model.json
    let out = quasar()
        .args([
            "train",
            feeds.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("converged=true"), "{text}");
    assert!(model.exists());

    // whatif using the persisted model
    let out = quasar()
        .args([
            "whatif",
            feeds.to_str().unwrap(),
            "--depeer",
            "10:101",
            "--model",
            model.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("de-peering"));

    // stable snapshot reconstruction from the update archive
    let out = quasar()
        .args(["stable", updates.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("stable routes"));

    // predict on the generated feeds
    let out = quasar()
        .args(["predict", feeds.to_str().unwrap(), "--seed", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("prediction:"));

    // bad usage exits non-zero
    let out = quasar().args(["bogus"]).output().unwrap();
    assert!(!out.status.success());

    for f in [feeds, model, updates] {
        let _ = std::fs::remove_file(f);
    }
}

/// Kill-and-resume through the real binary: a `train --checkpoint-dir`
/// run killed with SIGKILL mid-refinement and resumed with `--resume`
/// must write a final model byte-identical to an uninterrupted run, and
/// must clean its checkpoints up afterwards.
#[test]
fn train_killed_and_resumed_is_byte_identical() {
    let feeds = tmp("resume-feeds.mrt");
    let model_a = tmp("resume-a.model");
    let model_b = tmp("resume-b.model");
    let ckpt_a = tmp("resume-ckpt-a");
    let ckpt_b = tmp("resume-ckpt-b");
    for d in [&ckpt_a, &ckpt_b] {
        let _ = std::fs::remove_dir_all(d);
    }

    let out = quasar()
        .args([
            "generate",
            "--out",
            feeds.to_str().unwrap(),
            "--scale",
            "tiny",
            "--seed",
            "9",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Reference: an uninterrupted checkpointed run.
    let out = quasar()
        .args([
            "train",
            feeds.to_str().unwrap(),
            "--out",
            model_a.to_str().unwrap(),
            "--checkpoint-dir",
            ckpt_a.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let reference = std::fs::read(&model_a).expect("reference model written");

    // Victim: same training run, SIGKILLed as soon as a checkpoint lands.
    let mut child = quasar()
        .args([
            "train",
            feeds.to_str().unwrap(),
            "--out",
            model_b.to_str().unwrap(),
            "--checkpoint-dir",
            ckpt_b.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn victim train");
    let has_checkpoint = |dir: &PathBuf| {
        std::fs::read_dir(dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .any(|e| e.file_name().to_string_lossy().ends_with(".qck"))
            })
            .unwrap_or(false)
    };
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let finished_first = loop {
        if let Some(status) = child.try_wait().expect("poll victim") {
            // The run outpaced the poll loop — it must at least have
            // succeeded, and the equivalence claim still holds below.
            assert!(status.success(), "victim train failed on its own");
            break true;
        }
        if has_checkpoint(&ckpt_b) {
            child.kill().expect("SIGKILL victim");
            let _ = child.wait();
            break false;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no checkpoint appeared within 60s"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    };

    if !finished_first {
        // Resume from whatever the kill left behind.
        let out = quasar()
            .args([
                "train",
                feeds.to_str().unwrap(),
                "--out",
                model_b.to_str().unwrap(),
                "--checkpoint-dir",
                ckpt_b.to_str().unwrap(),
                "--resume",
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stderr);
        assert!(
            text.contains("resumed refinement") || text.contains("starting fresh"),
            "resume must say what it did: {text}"
        );
    }

    let resumed = std::fs::read(&model_b).expect("resumed model written");
    assert_eq!(
        reference, resumed,
        "killed-and-resumed training must be byte-identical to the uninterrupted run"
    );
    assert!(
        !has_checkpoint(&ckpt_b),
        "checkpoints must be cleaned up after a successful run"
    );

    for f in [feeds.clone(), model_a, model_b] {
        let _ = std::fs::remove_file(f);
    }
    let _ = std::fs::remove_file(PathBuf::from(format!("{}.updates.mrt", feeds.display())));
    for d in [ckpt_a, ckpt_b] {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// `serve` on a corrupt model must exit with the typed persist error and
/// the checkpoint-recovery hint, not a raw parse error.
#[test]
fn serve_on_corrupt_model_names_offset_and_hint() {
    let feeds = tmp("corrupt-feeds.mrt");
    let model = tmp("corrupt.model");
    let out = quasar()
        .args([
            "generate",
            "--out",
            feeds.to_str().unwrap(),
            "--scale",
            "tiny",
            "--seed",
            "11",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let out = quasar()
        .args([
            "train",
            feeds.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Truncate the framed artifact mid-payload.
    let bytes = std::fs::read(&model).unwrap();
    std::fs::write(&model, &bytes[..bytes.len() / 3]).unwrap();

    let out = quasar()
        .args(["serve", model.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success(), "serve must refuse a corrupt model");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("byte"), "must name the byte offset: {err}");
    assert!(
        err.contains("--checkpoint-dir") && err.contains("--resume"),
        "must hint at checkpoint recovery: {err}"
    );

    let _ = std::fs::remove_file(&feeds);
    let _ = std::fs::remove_file(PathBuf::from(format!("{}.updates.mrt", feeds.display())));
    let _ = std::fs::remove_file(&model);
}
