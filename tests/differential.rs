//! Workspace-level differential: the served TCP path and the one-shot
//! dispatch path are two implementations of the same contract, and the
//! harness holds them byte-identical over the canonical request mix.

use quasar_testkit::diff::{roundtrip_differential, served_vs_oneshot};
use quasar_testkit::workload::{toy_model, toy_requests};

#[test]
fn served_and_oneshot_answers_are_byte_identical() {
    if let Err(d) = served_vs_oneshot(&toy_model(), &toy_requests()) {
        panic!("{d}");
    }
}

#[test]
fn persisted_model_answers_like_the_original() {
    if let Err(d) = roundtrip_differential(&toy_model(), &toy_requests()) {
        panic!("{d}");
    }
}
