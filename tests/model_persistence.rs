//! A trained model must survive JSON persistence with identical routing
//! and identical prediction metrics — "train once, what-if forever".

use quasar::model::prelude::*;
use quasar::netgen::prelude::*;

#[test]
fn trained_model_roundtrips_through_json() {
    let net = SyntheticInternet::generate(NetGenConfig::tiny(606));
    let dataset = quasar::dataset_from(&net);
    let (training, validation) = dataset.split_by_point(0.5, 3);

    let mut model = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
    refine(&mut model, &training, &RefineConfig::default()).unwrap();

    let json = model.to_json().expect("serializes");
    let restored = AsRoutingModel::from_json(&json).expect("deserializes");

    assert_eq!(restored.stats(), model.stats());
    assert_eq!(
        evaluate(&restored, &validation),
        evaluate(&model, &validation)
    );
    assert_eq!(evaluate(&restored, &training), evaluate(&model, &training));

    // The restored model is still refinable and editable.
    let mut editable = restored.clone();
    let (a, b) = {
        let mut edges = dataset
            .routes()
            .iter()
            .flat_map(|r| r.as_path.edges())
            .collect::<Vec<_>>();
        edges.sort();
        edges[0]
    };
    editable.depeer(a, b);
    for &p in editable.prefixes().keys().take(3) {
        editable.simulate(p).expect("edited model still converges");
    }
}
