//! End-to-end serving test: train a tiny model through the real binary,
//! run `quasar serve` on an ephemeral port, talk to it concurrently over
//! TCP, verify served answers are byte-identical to the one-shot CLI,
//! check the steady-state cache registers warm hits, and shut the server
//! down gracefully.

use quasar::bgpsim::types::{Asn, Prefix};
use quasar::serve::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn quasar_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_quasar"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("quasar-serve-test-{}-{name}", std::process::id()));
    p
}

/// One lockstep request/response exchange on a fresh connection.
fn ask(addr: &str, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.ends_with('\n'), "incomplete reply: {reply:?}");
    reply
}

#[test]
fn serve_end_to_end() {
    let feeds = tmp("feeds.mrt");
    let model = tmp("model.json");

    // Fixture: tiny synthetic internet, trained through the CLI.
    let out = quasar_bin()
        .args([
            "generate",
            "--out",
            feeds.to_str().unwrap(),
            "--scale",
            "tiny",
            "--seed",
            "5",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = quasar_bin()
        .args([
            "train",
            feeds.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The tiny seed-5 internet has AS10 originating this prefix and a
    // feed from AS100 (same constants as the whatif step in cli.rs).
    let prefix = Prefix::for_origin(Asn(10)).to_string();
    let observer = 100u32;
    let predict_req = format!(r#"{{"type":"predict","prefix":"{prefix}","observer":{observer}}}"#);
    let explain_req = format!(r#"{{"type":"explain","prefix":"{prefix}","observer":{observer}}}"#);
    let diff_req = r#"{"type":"diff","changes":[{"action":"depeer","a":10,"b":101}]}"#;

    // Start the server on an ephemeral port; the address is the first
    // stdout line.
    let mut child = quasar_bin()
        .args(["serve", model.to_str().unwrap(), "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut addr_line = String::new();
    BufReader::new(child.stdout.take().unwrap())
        .read_line(&mut addr_line)
        .unwrap();
    let addr = addr_line
        .trim()
        .strip_prefix("quasar-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected address line: {addr_line:?}"))
        .to_string();

    // Concurrent clients mixing predict / diff / explain.
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let addr = addr.clone();
            let req = match i % 3 {
                0 => predict_req.clone(),
                1 => diff_req.to_string(),
                _ => explain_req.clone(),
            };
            std::thread::spawn(move || ask(&addr, &req))
        })
        .collect();
    for h in handles {
        let reply = h.join().unwrap();
        let parsed: Response = serde_json::from_str(&reply).expect("parsable reply");
        assert!(!matches!(parsed, Response::Error(_)), "{reply}");
    }

    // Served answers are byte-identical to the one-shot CLI.
    let served_predict = ask(&addr, &predict_req);
    let out = quasar_bin()
        .args([
            "predict",
            "--model",
            model.to_str().unwrap(),
            "--prefix",
            &prefix,
            "--observer",
            &observer.to_string(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        served_predict,
        String::from_utf8_lossy(&out.stdout),
        "served predict differs from one-shot CLI"
    );

    let served_diff = ask(&addr, diff_req);
    let out = quasar_bin()
        .args([
            "whatif",
            "--json",
            "--model",
            model.to_str().unwrap(),
            "--depeer",
            "10:101",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        served_diff,
        String::from_utf8_lossy(&out.stdout),
        "served diff differs from one-shot CLI"
    );

    // The repeats above hit the warm per-prefix cache; metrics must show
    // it (first predict simulated, later ones reused the steady state).
    let Response::Metrics(m) = serde_json::from_str(&ask(&addr, r#"{"type":"metrics"}"#)).unwrap()
    else {
        panic!("expected metrics reply")
    };
    assert!(
        m.base_cache.hits >= 1,
        "no warm cache hits: {:?}",
        m.base_cache
    );
    assert!(m.base_cache.misses >= 1);
    assert_eq!(m.active_sessions, 1, "one what-if scenario resident");
    assert!(m.for_kind("predict").unwrap().count >= 3);

    // `quasar query` speaks the same protocol.
    let out = quasar_bin()
        .args(["query", &addr, r#"{"type":"stats"}"#])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(r#""type":"stats""#), "{text}");

    // Graceful shutdown: the request is acknowledged and the process
    // exits cleanly (drained workers, released port).
    let Response::Shutdown(sd) =
        serde_json::from_str(&ask(&addr, r#"{"type":"shutdown"}"#)).unwrap()
    else {
        panic!("expected shutdown reply")
    };
    assert!(sd.draining);
    let status = child.wait().unwrap();
    assert!(status.success(), "server exited with {status:?}");

    for f in [
        feeds.clone(),
        model,
        PathBuf::from(format!("{}.updates.mrt", feeds.display())),
    ] {
        let _ = std::fs::remove_file(f);
    }
}
