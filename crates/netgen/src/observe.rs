//! Ground-truth simulation and observation-point sampling.
//!
//! A [`SyntheticInternet`] plays the role of the real Internet in the
//! paper's pipeline: it routes at router level with iBGP/IGP/policies, and
//! we only ever show the model what a route collector would see — the best
//! route each *feed router* would export to a collector session, i.e.
//! `(observation point, prefix, AS-path)` triples (§3.1). Observation ASes
//! are sampled with a bias towards the core ("There are relatively more
//! observation points in the level-1 and level-2 ASes").

use crate::config::NetGenConfig;
use crate::hierarchy::{AsLevelTopology, Tier};
use crate::policies::{
    apply_gao_policies, inject_origin_te, inject_weird_policies, WeirdPolicyRecord,
};
use crate::routers::RouterLevel;
use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::network::Network;
use quasar_bgpsim::types::{Asn, Prefix, RouterId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One BGP feed: a collector session to a specific router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservationPoint {
    /// Stable feed identifier (index into the feed list).
    pub id: u32,
    /// The router the collector peers with.
    pub router: RouterId,
}

impl ObservationPoint {
    /// The AS hosting this feed.
    pub fn observer_as(&self) -> Asn {
        self.router.asn()
    }
}

/// One observed route: what the collector learned from one feed for one
/// prefix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteObservation {
    /// The feed that saw this route.
    pub point: u32,
    /// The AS hosting the feed.
    pub observer_as: Asn,
    /// The destination prefix.
    pub prefix: Prefix,
    /// The full AS-path, observer's AS first (as a collector records it).
    pub as_path: AsPath,
}

/// The complete synthetic Internet: ground truth plus the feeds derived
/// from it.
#[derive(Debug)]
pub struct SyntheticInternet {
    /// Generator configuration used.
    pub cfg: NetGenConfig,
    /// AS-level ground truth (true relationships included).
    pub as_topology: AsLevelTopology,
    /// Router-level ground-truth network with all policies installed.
    pub network: Network,
    /// Border routers per AS.
    pub routers: BTreeMap<Asn, Vec<RouterId>>,
    /// One prefix per AS, `(prefix, origin)`.
    pub prefixes: Vec<(Prefix, Asn)>,
    /// The sampled feeds.
    pub observation_points: Vec<ObservationPoint>,
    /// Everything the collector saw, sorted by (prefix, point).
    pub observations: Vec<RouteObservation>,
    /// Non-standard policies that were injected (ground-truth bookkeeping).
    pub weird_policies: Vec<WeirdPolicyRecord>,
}

impl SyntheticInternet {
    /// Generates topology, policies, feeds, and runs the ground-truth
    /// simulation for every prefix. Deterministic in `cfg.seed`.
    pub fn generate(cfg: NetGenConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let as_topology = AsLevelTopology::generate(&cfg, &mut rng);
        let rl = RouterLevel::expand(&as_topology, &cfg, &mut rng);
        let RouterLevel {
            mut network,
            routers,
            ebgp_links,
        } = rl;
        let rl_view = RouterLevel {
            network: network.clone(),
            routers: routers.clone(),
            ebgp_links,
        };
        // Prefix plan: one per single-homed origin, several per multihomed
        // origin (real origins announce many prefixes; per-prefix policies
        // need prefixes to differentiate).
        let mut prefixes: Vec<(Prefix, Asn)> = Vec::new();
        for (&asn, g) in &as_topology.ases {
            let (lo, hi) = cfg.prefixes_per_multihomed;
            let k = if g.providers.len() >= 2 {
                rng.gen_range(lo..=hi.max(lo)).min(8)
            } else {
                1
            };
            for n in 0..k {
                prefixes.push((Prefix::for_origin_nth(asn, n), asn));
            }
        }

        apply_gao_policies(&mut network, &as_topology, &rl_view);
        let mut weird_policies = inject_weird_policies(
            &mut network,
            &as_topology,
            &rl_view,
            &cfg,
            &mut rng,
            &prefixes,
        );
        weird_policies.extend(inject_origin_te(
            &mut network,
            &as_topology,
            &rl_view,
            &cfg,
            &mut rng,
            &prefixes,
        ));

        let observation_points = sample_observation_points(&as_topology, &routers, &cfg, &mut rng);

        let observations = collect_observations(&network, &routers, &prefixes, &observation_points);

        SyntheticInternet {
            cfg,
            as_topology,
            network,
            routers,
            prefixes,
            observation_points,
            observations,
            weird_policies,
        }
    }

    /// Distinct observer ASes.
    pub fn observer_ases(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self
            .observation_points
            .iter()
            .map(|p| p.observer_as())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// All observed AS-paths (no prefix/point context).
    pub fn observed_paths(&self) -> Vec<AsPath> {
        self.observations
            .iter()
            .map(|o| o.as_path.clone())
            .collect()
    }
}

/// Samples observation ASes with a core bias, then 1..3 feed routers in
/// each.
fn sample_observation_points(
    topo: &AsLevelTopology,
    routers: &BTreeMap<Asn, Vec<RouterId>>,
    cfg: &NetGenConfig,
    rng: &mut StdRng,
) -> Vec<ObservationPoint> {
    // Weighted pool: core ASes appear more often, mirroring the RouteViews/
    // RIPE peer distribution.
    let mut pool: Vec<Asn> = Vec::new();
    for g in topo.ases.values() {
        let w = match g.tier {
            Tier::Tier1 => 8,
            Tier::Tier2 => 4,
            Tier::Tier3 => 2,
            Tier::Stub => 1,
        };
        pool.extend(std::iter::repeat_n(g.asn, w));
    }
    pool.shuffle(rng);
    let mut chosen: Vec<Asn> = Vec::new();
    for a in pool {
        if !chosen.contains(&a) {
            chosen.push(a);
            if chosen.len() >= cfg.num_observation_ases.min(topo.len()) {
                break;
            }
        }
    }
    chosen.sort();

    let mut points = Vec::new();
    for asn in chosen {
        let rs = &routers[&asn];
        let feeds = if rs.len() > 1 && rng.gen_bool(cfg.multi_feed_prob) {
            rng.gen_range(2..=rs.len())
        } else {
            1
        };
        let mut picked: Vec<RouterId> = rs.clone();
        picked.shuffle(rng);
        picked.truncate(feeds);
        picked.sort();
        for r in picked {
            points.push(ObservationPoint {
                id: points.len() as u32,
                router: r,
            });
        }
    }
    points
}

/// Runs the per-prefix ground-truth simulations (in parallel) and extracts
/// what each feed would export to the collector. Output order is
/// deterministic: by (prefix index, point id).
pub fn collect_observations(
    network: &Network,
    routers: &BTreeMap<Asn, Vec<RouterId>>,
    prefixes: &[(Prefix, Asn)],
    points: &[ObservationPoint],
) -> Vec<RouteObservation> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(prefixes.len().max(1));
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Vec<RouteObservation>> = vec![Vec::new(); prefixes.len()];
    let slot_refs: Vec<parking_lot::Mutex<&mut Vec<RouteObservation>>> =
        slots.iter_mut().map(parking_lot::Mutex::new).collect();

    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                // sast: relaxed-ok work-claim ticket; results are published through the channel/join, only claim uniqueness matters
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= prefixes.len() {
                    break;
                }
                let (prefix, origin) = prefixes[i];
                let origins = &routers[&origin];
                let res = network
                    .simulate(prefix, origins)
                    .expect("ground-truth simulation converges");
                let mut out = Vec::new();
                for p in points {
                    if let Some(best) = res.best_route(p.router) {
                        // What the feed exports to the collector: its best
                        // route with its own ASN prepended.
                        let as_path = best.as_path.prepend(p.router.asn());
                        out.push(RouteObservation {
                            point: p.id,
                            observer_as: p.observer_as(),
                            prefix,
                            as_path,
                        });
                    }
                }
                **slot_refs[i].lock() = out;
            });
        }
    })
    .expect("worker threads join");

    drop(slot_refs);
    slots.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn internet(seed: u64) -> SyntheticInternet {
        SyntheticInternet::generate(NetGenConfig::tiny(seed))
    }

    #[test]
    fn generation_produces_observations() {
        let net = internet(1);
        assert!(!net.observations.is_empty());
        assert!(!net.observation_points.is_empty());
        // Multihomed origins announce several prefixes.
        assert!(net.prefixes.len() >= net.as_topology.len());
        let origins: std::collections::BTreeSet<Asn> =
            net.prefixes.iter().map(|&(_, o)| o).collect();
        assert_eq!(origins.len(), net.as_topology.len());
    }

    #[test]
    fn observations_start_with_observer_as() {
        let net = internet(2);
        for o in &net.observations {
            assert_eq!(o.as_path.head(), Some(o.observer_as));
            assert!(!o.as_path.has_loop(), "loop in {}", o.as_path);
        }
    }

    #[test]
    fn observations_end_at_prefix_origin() {
        let net = internet(3);
        let by_prefix: BTreeMap<Prefix, Asn> = net.prefixes.iter().copied().collect();
        for o in &net.observations {
            assert_eq!(o.as_path.origin(), Some(by_prefix[&o.prefix]));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = internet(4);
        let b = internet(4);
        assert_eq!(a.observations, b.observations);
        assert_eq!(a.observation_points, b.observation_points);
    }

    #[test]
    fn observer_sampling_respects_count() {
        let net = internet(5);
        assert!(net.observer_ases().len() <= net.cfg.num_observation_ases);
        assert!(!net.observer_ases().is_empty());
    }

    #[test]
    fn some_route_diversity_exists() {
        // The defining phenomenon: at least one (origin, observer AS) pair
        // must see more than one distinct AS-path.
        let net = internet(6);
        let mut by_pair: BTreeMap<(Asn, Asn), Vec<&AsPath>> = BTreeMap::new();
        for o in &net.observations {
            by_pair
                .entry((o.observer_as, o.as_path.origin().unwrap()))
                .or_default()
                .push(&o.as_path);
        }
        let diverse = by_pair
            .values()
            .filter(|paths| {
                let mut v: Vec<_> = paths.iter().collect();
                v.sort();
                v.dedup();
                v.len() > 1
            })
            .count();
        assert!(diverse > 0, "no route diversity generated");
    }
}
