//! BGP UPDATE streams and snapshot reconstruction (paper §3.1).
//!
//! The paper selects "those routes that were valid table entries on Sun,
//! Nov. 13, 2005, at 7:30am UTC, and that were stable in the sense that
//! they have not changed for at least one hour", and notes "In the future
//! we are planning to also incorporate the AS-path information from BGP
//! updates". This module provides both directions:
//!
//! * [`generate_update_stream`] renders a synthetic Internet's feeds as an
//!   MRT archive — a RIB dump taken *before* the snapshot instant plus a
//!   BGP4MP UPDATE stream with configurable route flapping;
//! * [`reconstruct_stable`] replays such an archive (real or synthetic)
//!   and recovers exactly the stable snapshot routes the paper's pipeline
//!   uses.

use crate::mrt_io::SNAPSHOT_TIME;
use crate::observe::{ObservationPoint, RouteObservation};
use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::types::{Asn, Prefix, RouterId};
use quasar_mrt::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Update-stream generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct UpdateStreamConfig {
    /// The snapshot instant (paper: Nov 13 2005, 07:30 UTC).
    pub snapshot_time: u32,
    /// Dump instant of the base RIB (must precede the snapshot).
    pub dump_time: u32,
    /// Stability window: routes changed within this many seconds before
    /// the snapshot are unstable (paper: one hour).
    pub stability_window: u32,
    /// Fraction of (feed, prefix) routes that flap after the dump.
    pub flap_fraction: f64,
    /// Fraction of flapping routes that end withdrawn at snapshot time.
    pub withdraw_fraction: f64,
}

impl Default for UpdateStreamConfig {
    fn default() -> Self {
        UpdateStreamConfig {
            snapshot_time: SNAPSHOT_TIME,
            dump_time: SNAPSHOT_TIME - 6 * 3_600,
            stability_window: 3_600,
            flap_fraction: 0.2,
            withdraw_fraction: 0.25,
        }
    }
}

fn path_attrs(path: &AsPath, next_hop: u32) -> Vec<PathAttribute> {
    vec![
        PathAttribute::Origin(0),
        PathAttribute::AsPath(vec![AsPathSegment::sequence(
            path.iter().map(|a| a.0).collect(),
        )]),
        PathAttribute::NextHop(next_hop),
    ]
}

/// Renders feeds as a base RIB dump plus a BGP4MP UPDATE stream.
///
/// Every observation becomes a RIB entry at `cfg.dump_time`. A
/// `flap_fraction` subset then re-announces (or finally withdraws) at
/// random times up to the snapshot; flaps landing inside the stability
/// window make the route *unstable*. Records are ordered by timestamp, the
/// PEER_INDEX_TABLE first.
pub fn generate_update_stream(
    points: &[ObservationPoint],
    observations: &[RouteObservation],
    cfg: &UpdateStreamConfig,
    seed: u64,
) -> Vec<MrtRecord> {
    assert!(
        cfg.dump_time < cfg.snapshot_time,
        "dump must precede snapshot"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::new();

    // Peer table.
    records.push(MrtRecord {
        timestamp: cfg.dump_time,
        body: MrtBody::PeerIndexTable(PeerIndexTable {
            collector_id: 0x7F000001,
            view_name: "quasar-updates".into(),
            peers: points
                .iter()
                .map(|p| PeerEntry {
                    bgp_id: p.router.0,
                    address: PeerAddress::V4(p.router.0),
                    asn: p.observer_as().0,
                    as4: true,
                })
                .collect(),
        }),
    });

    // Base RIB, grouped by prefix.
    let index: BTreeMap<u32, u16> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.id, i as u16))
        .collect();
    let mut by_prefix: BTreeMap<Prefix, Vec<&RouteObservation>> = BTreeMap::new();
    for o in observations {
        by_prefix.entry(o.prefix).or_default().push(o);
    }
    for (seq, (prefix, group)) in by_prefix.iter().enumerate() {
        records.push(MrtRecord {
            timestamp: cfg.dump_time,
            body: MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                sequence: seq as u32,
                prefix: NlriPrefix::new(prefix.base, prefix.len).expect("valid prefix"),
                entries: group
                    .iter()
                    .map(|o| RibEntry {
                        peer_index: index[&o.point],
                        originated_time: cfg.dump_time,
                        attributes: path_attrs(&o.as_path, o.point),
                    })
                    .collect(),
            }),
        });
    }

    // Flaps.
    let point_by_id: BTreeMap<u32, &ObservationPoint> = points.iter().map(|p| (p.id, p)).collect();
    let mut updates = Vec::new();
    for o in observations {
        if !rng.gen_bool(cfg.flap_fraction) {
            continue;
        }
        let p = point_by_id[&o.point];
        let t = rng.gen_range(cfg.dump_time + 1..cfg.snapshot_time);
        let nlri = NlriPrefix::new(o.prefix.base, o.prefix.len).expect("valid prefix");
        let withdraw_finally = rng.gen_bool(cfg.withdraw_fraction);
        let update = if withdraw_finally {
            BgpUpdate {
                withdrawn: vec![nlri],
                attributes: Vec::new(),
                announced: Vec::new(),
            }
        } else {
            BgpUpdate {
                withdrawn: Vec::new(),
                attributes: path_attrs(&o.as_path, o.point),
                announced: vec![nlri],
            }
        };
        updates.push(MrtRecord {
            timestamp: t,
            body: MrtBody::Bgp4mp(Bgp4mpMessage {
                peer_asn: p.observer_as().0,
                local_asn: 65_000,
                interface: 0,
                peer_ip: p.router.0,
                local_ip: 0x7F000001,
                as4: true,
                message: BgpMessage::Update(update),
            }),
        });
    }
    updates.sort_by_key(|r| r.timestamp);
    records.extend(updates);
    records
}

/// Replays an archive (RIB dump + BGP4MP updates) and returns the routes
/// that are present at `snapshot_time` and unchanged for at least
/// `stability_window` seconds — the paper's §3.1 selection.
pub fn reconstruct_stable(
    records: &[MrtRecord],
    snapshot_time: u32,
    stability_window: u32,
) -> (Vec<ObservationPoint>, Vec<RouteObservation>) {
    let mut points: Vec<ObservationPoint> = Vec::new();
    let mut peer_by_ip: BTreeMap<u32, u32> = BTreeMap::new(); // ip -> point id
                                                              // (point, prefix) -> (path, last-changed)
    let mut state: BTreeMap<(u32, Prefix), (AsPath, u32)> = BTreeMap::new();

    let flatten = |attrs: &[PathAttribute]| -> Option<AsPath> {
        let segments = attrs.iter().find_map(|a| match a {
            PathAttribute::AsPath(s) => Some(s),
            _ => None,
        })?;
        if segments.iter().any(|s| s.seg_type != 2) {
            return None;
        }
        Some(
            AsPath::new(
                PathAttribute::flatten_as_path(segments)
                    .into_iter()
                    .map(Asn)
                    .collect(),
            )
            .strip_prepending(),
        )
    };

    for rec in records {
        if rec.timestamp > snapshot_time {
            continue; // after the snapshot instant
        }
        match &rec.body {
            MrtBody::PeerIndexTable(t) => {
                points = t
                    .peers
                    .iter()
                    .enumerate()
                    .map(|(i, p)| ObservationPoint {
                        id: i as u32,
                        router: RouterId(p.bgp_id),
                    })
                    .collect();
                peer_by_ip = t
                    .peers
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        let ip = match p.address {
                            PeerAddress::V4(ip) => ip,
                            PeerAddress::V6(_) => p.bgp_id,
                        };
                        (ip, i as u32)
                    })
                    .collect();
            }
            MrtBody::RibIpv4Unicast(rib) => {
                let prefix = Prefix::new(rib.prefix.base, rib.prefix.len);
                for e in &rib.entries {
                    if let Some(path) = flatten(&e.attributes) {
                        state.insert((e.peer_index as u32, prefix), (path, e.originated_time));
                    }
                }
            }
            MrtBody::Bgp4mp(m) => {
                let Some(&point) = peer_by_ip.get(&m.peer_ip) else {
                    continue;
                };
                if let BgpMessage::Update(u) = &m.message {
                    for w in &u.withdrawn {
                        state.remove(&(point, Prefix::new(w.base, w.len)));
                    }
                    if let Some(path) = flatten(&u.attributes) {
                        for a in &u.announced {
                            state.insert(
                                (point, Prefix::new(a.base, a.len)),
                                (path.clone(), rec.timestamp),
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }

    let cutoff = snapshot_time.saturating_sub(stability_window);
    let observations = state
        .into_iter()
        .filter(|(_, (_, changed))| *changed <= cutoff)
        .map(|((point, prefix), (as_path, _))| RouteObservation {
            point,
            observer_as: points
                .get(point as usize)
                .map(|p| p.observer_as())
                .unwrap_or(Asn::RESERVED),
            prefix,
            as_path,
        })
        .collect();
    (points, observations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetGenConfig;
    use crate::observe::SyntheticInternet;

    fn sorted_keys(obs: &[RouteObservation]) -> Vec<(u32, Prefix, String)> {
        let mut v: Vec<_> = obs
            .iter()
            .map(|o| (o.point, o.prefix, o.as_path.to_string()))
            .collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn no_flaps_reconstructs_everything() {
        let net = SyntheticInternet::generate(NetGenConfig::tiny(31));
        let cfg = UpdateStreamConfig {
            flap_fraction: 0.0,
            ..UpdateStreamConfig::default()
        };
        let recs = generate_update_stream(&net.observation_points, &net.observations, &cfg, 9);
        let (points, obs) = reconstruct_stable(&recs, cfg.snapshot_time, cfg.stability_window);
        assert_eq!(points.len(), net.observation_points.len());
        assert_eq!(sorted_keys(&obs), sorted_keys(&net.observations));
    }

    #[test]
    fn unstable_and_withdrawn_routes_excluded() {
        let net = SyntheticInternet::generate(NetGenConfig::tiny(32));
        let cfg = UpdateStreamConfig {
            flap_fraction: 0.5,
            withdraw_fraction: 0.5,
            ..UpdateStreamConfig::default()
        };
        let recs = generate_update_stream(&net.observation_points, &net.observations, &cfg, 10);
        let (_, obs) = reconstruct_stable(&recs, cfg.snapshot_time, cfg.stability_window);
        // Something must have been filtered.
        assert!(obs.len() < net.observations.len());
        // Re-announced routes older than the window survive; verify by
        // widening the window to the whole stream: fewer must remain.
        let (_, strict) =
            reconstruct_stable(&recs, cfg.snapshot_time, cfg.snapshot_time - cfg.dump_time);
        assert!(strict.len() <= obs.len());
    }

    #[test]
    fn updates_after_snapshot_ignored() {
        let net = SyntheticInternet::generate(NetGenConfig::tiny(33));
        let cfg = UpdateStreamConfig {
            flap_fraction: 0.0,
            ..UpdateStreamConfig::default()
        };
        let mut recs = generate_update_stream(&net.observation_points, &net.observations, &cfg, 11);
        // Forge a post-snapshot withdraw of everything; it must not count.
        let o = &net.observations[0];
        recs.push(MrtRecord {
            timestamp: cfg.snapshot_time + 10,
            body: MrtBody::Bgp4mp(Bgp4mpMessage {
                peer_asn: o.observer_as.0,
                local_asn: 65_000,
                interface: 0,
                peer_ip: net.observation_points[o.point as usize].router.0,
                local_ip: 1,
                as4: true,
                message: BgpMessage::Update(BgpUpdate {
                    withdrawn: vec![NlriPrefix::new(o.prefix.base, o.prefix.len).unwrap()],
                    attributes: Vec::new(),
                    announced: Vec::new(),
                }),
            }),
        });
        let (_, obs) = reconstruct_stable(&recs, cfg.snapshot_time, cfg.stability_window);
        assert_eq!(sorted_keys(&obs), sorted_keys(&net.observations));
    }

    #[test]
    fn stream_round_trips_through_bytes() {
        let net = SyntheticInternet::generate(NetGenConfig::tiny(34));
        let cfg = UpdateStreamConfig::default();
        let recs = generate_update_stream(&net.observation_points, &net.observations, &cfg, 12);
        let mut w = MrtWriter::new(Vec::new());
        for r in &recs {
            w.write_record(r).unwrap();
        }
        let bytes = w.finish().unwrap();
        let back = MrtReader::new(&bytes[..]).read_all().unwrap();
        assert_eq!(back, recs);
        let (_, a) = reconstruct_stable(&recs, cfg.snapshot_time, cfg.stability_window);
        let (_, b) = reconstruct_stable(&back, cfg.snapshot_time, cfg.stability_window);
        assert_eq!(sorted_keys(&a), sorted_keys(&b));
    }
}
