//! Generator configuration.
//!
//! Defaults produce a hierarchy that mirrors the statistical *shape* of the
//! paper's November 2005 dataset (§3.1) at a laptop-friendly scale: a
//! tier-1 clique, a transit middle, a large stub population of which
//! roughly a third is single-homed, multiple border routers (hence genuine
//! intra-AS route diversity) in the transit core, and a minority of ASes
//! with non-standard ("weird") per-prefix policies.

use serde::{Deserialize, Serialize};

/// All knobs of the synthetic-Internet generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetGenConfig {
    /// PRNG seed; every derived artifact is a pure function of this.
    pub seed: u64,
    /// Size of the tier-1 clique (paper found 10).
    pub num_tier1: usize,
    /// Number of tier-2 (large transit) ASes.
    pub num_tier2: usize,
    /// Number of tier-3 (small transit) ASes.
    pub num_tier3: usize,
    /// Number of stub ASes.
    pub num_stubs: usize,
    /// Probability that a stub is single-homed (the paper observed
    /// 6,611 / (6,611 + 11,077) ≈ 0.37).
    pub single_homed_fraction: f64,
    /// Maximum number of providers a multi-homed AS attaches to.
    pub max_providers: usize,
    /// Probability of a peering edge between two tier-2 ASes.
    pub tier2_peering_prob: f64,
    /// Probability of a peering edge between two tier-3 ASes.
    pub tier3_peering_prob: f64,
    /// Border routers per tier-1 AS (min, max).
    pub tier1_routers: (u16, u16),
    /// Border routers per tier-2 AS (min, max).
    pub tier2_routers: (u16, u16),
    /// Border routers per tier-3 AS (min, max).
    pub tier3_routers: (u16, u16),
    /// Probability that an inter-AS adjacency is realized by *two* eBGP
    /// sessions between distinct router pairs ("multiple connections
    /// between ASes, typically from different routers", §1).
    pub parallel_link_prob: f64,
    /// Maximum IGP link weight (weights drawn uniformly from 1..=max).
    pub max_igp_weight: u32,
    /// Fraction of transit ASes carrying non-standard per-prefix policies.
    pub weird_policy_fraction: f64,
    /// Per weird AS: how many prefixes receive a deviating policy.
    pub weird_prefixes_per_as: usize,
    /// Prefixes originated by a multihomed AS (min, max; max 8). Single-
    /// homed stubs always originate exactly one.
    pub prefixes_per_multihomed: (u8, u8),
    /// Fraction of multihomed origins performing per-prefix selective
    /// announcement across their providers (classic inbound traffic
    /// engineering) — a major source of observed route diversity.
    pub origin_te_fraction: f64,
    /// Number of ASes hosting observation points.
    pub num_observation_ases: usize,
    /// Probability that an observation AS has feeds from multiple routers
    /// (the paper had multiple feeds in 30% of observation ASes).
    pub multi_feed_prob: f64,
    /// Use RFC 4456 route reflection instead of an iBGP full mesh inside
    /// ASes with four or more border routers (router 0 becomes the
    /// reflector). Off by default: the canonical experiments use the full
    /// mesh, as the paper's C-BGP setup does.
    pub use_route_reflection: bool,
}

impl Default for NetGenConfig {
    fn default() -> Self {
        NetGenConfig {
            seed: 20051113, // the paper's snapshot date
            num_tier1: 8,
            num_tier2: 40,
            num_tier3: 120,
            num_stubs: 400,
            single_homed_fraction: 0.37,
            max_providers: 4,
            // Edge densities tuned so the AS graph's mean degree (~7)
            // matches the paper's dataset (52,288 edges / 14,563 nodes).
            tier2_peering_prob: 0.15,
            tier3_peering_prob: 0.04,
            tier1_routers: (3, 5),
            tier2_routers: (2, 3),
            tier3_routers: (1, 3),
            parallel_link_prob: 0.3,
            max_igp_weight: 100,
            weird_policy_fraction: 0.15,
            weird_prefixes_per_as: 3,
            prefixes_per_multihomed: (2, 4),
            origin_te_fraction: 0.5,
            num_observation_ases: 60,
            multi_feed_prob: 0.3,
            use_route_reflection: false,
        }
    }
}

impl NetGenConfig {
    /// A small configuration for fast unit/integration tests.
    pub fn tiny(seed: u64) -> Self {
        NetGenConfig {
            seed,
            num_tier1: 3,
            num_tier2: 6,
            num_tier3: 10,
            num_stubs: 25,
            num_observation_ases: 16,
            ..Self::default()
        }
    }

    /// The `small` preset: the canonical experiment scale. Identical to
    /// [`Default`](NetGenConfig::default) (hundreds of ASes), named so the
    /// scale×threads benchmark matrix can address it.
    pub fn small(seed: u64) -> Self {
        NetGenConfig {
            seed,
            ..Self::default()
        }
    }

    /// The paper-scale (`medium`) configuration (thousands of ASes);
    /// heavy — intended for the benchmark harness, not for unit tests.
    pub fn paper_scale(seed: u64) -> Self {
        NetGenConfig {
            seed,
            num_tier1: 10,
            num_tier2: 150,
            num_tier3: 500,
            num_stubs: 1500,
            num_observation_ases: 150,
            ..Self::default()
        }
    }

    /// The `medium` preset — an alias for [`paper_scale`](Self::paper_scale).
    pub fn medium(seed: u64) -> Self {
        Self::paper_scale(seed)
    }

    /// The `large` preset: tens of thousands of ASes with an observation
    /// coverage comparable to the paper's >1300 RouteViews+RIPE points
    /// (1000 observation ASes, ~30% of which have multiple feeds). Meant
    /// for overnight benchmark runs only.
    pub fn large(seed: u64) -> Self {
        NetGenConfig {
            seed,
            num_tier1: 12,
            num_tier2: 400,
            num_tier3: 1_600,
            num_stubs: 18_000,
            num_observation_ases: 1_000,
            ..Self::default()
        }
    }

    /// Total number of ASes generated.
    pub fn total_ases(&self) -> usize {
        self.num_tier1 + self.num_tier2 + self.num_tier3 + self.num_stubs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_counts_are_consistent() {
        let c = NetGenConfig::default();
        assert_eq!(
            c.total_ases(),
            c.num_tier1 + c.num_tier2 + c.num_tier3 + c.num_stubs
        );
        assert!(c.single_homed_fraction > 0.0 && c.single_homed_fraction < 1.0);
    }

    #[test]
    fn tiny_is_smaller_than_default() {
        assert!(NetGenConfig::tiny(1).total_ases() < NetGenConfig::default().total_ases());
    }

    #[test]
    fn presets_grow_strictly() {
        let tiny = NetGenConfig::tiny(1).total_ases();
        let small = NetGenConfig::small(1).total_ases();
        let medium = NetGenConfig::medium(1).total_ases();
        let large = NetGenConfig::large(1).total_ases();
        assert!(tiny < small && small < medium && medium < large);
        assert!(
            large >= 20_000,
            "large must reach tens of thousands of ASes"
        );
        assert_eq!(NetGenConfig::small(7).seed, 7);
    }
}
