//! # quasar-netgen — a synthetic Internet with ground-truth routing
//!
//! The paper derives its model from >1,300 real BGP feeds (RouteViews,
//! RIPE, GEANT, Abilene — §3.1). Those archives are unavailable offline, so
//! this crate substitutes the closest synthetic equivalent that exercises
//! the same code paths:
//!
//! 1. [`hierarchy`] generates an AS-level Internet (tier-1 clique, transit
//!    tiers, single-/multi-homed stubs) with **known ground-truth
//!    relationships**;
//! 2. [`routers`] expands it to router level — multiple border routers per
//!    transit AS, iBGP full mesh, weighted IGP, parallel inter-AS sessions —
//!    the exact mechanisms the paper identifies as the source of route
//!    diversity;
//! 3. [`policies`] installs Gao-Rexford policies plus a configurable dose
//!    of non-standard per-prefix policies ("not all policies fit these
//!    simple rules", §1);
//! 4. [`observe`] simulates every prefix to convergence with
//!    `quasar-bgpsim` and records only what a route collector would see at
//!    sampled observation points;
//! 5. [`mrt_io`] writes/reads those feeds in RouteViews' MRT TABLE_DUMP_V2
//!    format, keeping the pipeline drop-in compatible with real data.
//!
//! The model under test (`quasar-core`) consumes the feeds only — never the
//! ground truth — so its predictions are evaluated exactly as in the paper.
//!
//! ```
//! use quasar_netgen::prelude::*;
//!
//! let net = SyntheticInternet::generate(NetGenConfig::tiny(42));
//! assert!(!net.observations.is_empty());
//! // Feeds can be exported to the real archive format:
//! let mrt = export_table_dump_v2(&net.observation_points, &net.observations);
//! let (points, obs) = import_table_dump_v2(&mrt).unwrap();
//! assert_eq!(points.len(), net.observation_points.len());
//! assert_eq!(obs.len(), net.observations.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod hierarchy;
pub mod mrt_io;
pub mod observe;
pub mod perturb;
pub mod policies;
pub mod routers;
pub mod updates;

/// Commonly used names.
pub mod prelude {
    pub use crate::config::NetGenConfig;
    pub use crate::hierarchy::{AsLevelTopology, GenAs, Tier};
    pub use crate::mrt_io::{
        export_table_dump_v2, import_table_dump, import_table_dump_v2, SNAPSHOT_TIME,
    };
    pub use crate::observe::{
        collect_observations, ObservationPoint, RouteObservation, SyntheticInternet,
    };
    pub use crate::perturb::{
        perturb_observations, perturb_observations_in_block, transition_stream, Perturbation,
        PerturbationConfig,
    };
    pub use crate::policies::{
        apply_gao_policies, inject_weird_policies, WeirdKind, WeirdPolicyRecord, LP_CUSTOMER,
        LP_EXPORTABLE, LP_PEER, LP_PROVIDER,
    };
    pub use crate::routers::{EbgpLink, RouterLevel};
    pub use crate::updates::{generate_update_stream, reconstruct_stable, UpdateStreamConfig};
}
