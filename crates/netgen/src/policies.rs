//! Ground-truth policy assignment.
//!
//! The generated Internet routes with Gao-Rexford-style policies — customer
//! routes preferred over peer routes over provider routes, valley-free
//! exports — plus a configurable minority of "weird" per-prefix policies,
//! because "not all policies fit these simple rules" (§1) and it is exactly
//! those deviations the paper's agnostic model must capture and a
//! relationship-based model cannot.
//!
//! Local-pref classes: customer 130, self/unclassified 100 (the engine's
//! default), peer 80, provider 60. The valley-free export rule becomes
//! "deny routes with local-pref below 100 towards peers and providers":
//! locally originated (100) and customer (130) routes pass, peer/provider
//! routes do not.

use crate::config::NetGenConfig;
use crate::hierarchy::{AsLevelTopology, Tier};
use crate::routers::RouterLevel;
use quasar_bgpsim::network::Network;
use quasar_bgpsim::policy::{Action, Policy, PolicyRule, RouteMatch};
use quasar_bgpsim::types::{Asn, Prefix, RouterId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Local-pref assigned to customer-learned routes.
pub const LP_CUSTOMER: u32 = 130;
/// Local-pref assigned to peer-learned routes.
pub const LP_PEER: u32 = 80;
/// Local-pref assigned to provider-learned routes.
pub const LP_PROVIDER: u32 = 60;
/// Valley-free export threshold: routes below this never reach
/// peers/providers.
pub const LP_EXPORTABLE: u32 = 100;

/// Kinds of non-standard policy the generator injects.
///
/// All three keep the ground truth convergent: local-pref is only ever
/// *raised for customer routes* (Gao-Rexford-safe), tie-level steering uses
/// MED — the same safety argument the paper makes when it rejects
/// local-pref-based ranking because it "can lead to divergence" (§4.6) —
/// and filters only remove routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeirdKind {
    /// For one prefix, routes via a specific neighbor win every tie:
    /// announcements from every *other* neighbor get a worse (higher) MED.
    PreferNeighbor,
    /// For one prefix, announcements towards a specific neighbor are
    /// suppressed (selective announcement).
    SelectiveExport,
    /// For one prefix from a specific *customer*, local-pref is raised
    /// above the normal customer class (traffic-engineering override).
    CustomerBoost,
    /// Origin-side inbound traffic engineering: the origin announces the
    /// prefix to only one of its providers (`neighbor` is the provider the
    /// announcement is withheld from).
    OriginTe,
    /// The origin tags the prefix with RFC 1997 NO_EXPORT towards one
    /// provider: the provider's own routers use the route but never
    /// propagate it — a scoped announcement only visible one AS deep.
    ScopedAnnouncement,
}

/// Record of one injected weird policy (kept so experiments can report how
/// much "weirdness" the model had to absorb).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeirdPolicyRecord {
    /// The AS whose policy deviates.
    pub asn: Asn,
    /// The neighbor AS involved.
    pub neighbor: Asn,
    /// The affected prefix.
    pub prefix: Prefix,
    /// What kind of deviation.
    pub kind: WeirdKind,
}

/// From `us`'s viewpoint, the relationship class of neighbor `them`.
fn import_pref(topo: &AsLevelTopology, us: Asn, them: Asn) -> u32 {
    let g = &topo.ases[&us];
    if g.customers.contains(&them) {
        LP_CUSTOMER
    } else if g.peers.contains(&them) {
        LP_PEER
    } else {
        LP_PROVIDER
    }
}

fn is_customer(topo: &AsLevelTopology, us: Asn, them: Asn) -> bool {
    topo.ases[&us].customers.contains(&them)
}

/// Installs Gao-Rexford import/export policies on every eBGP session of
/// `net`.
pub fn apply_gao_policies(net: &mut Network, topo: &AsLevelTopology, rl: &RouterLevel) {
    for link in &rl.ebgp_links {
        install_direction(net, topo, link.a, link.b);
        install_direction(net, topo, link.b, link.a);
    }
}

/// Installs the import policy at `at` and the export policy at `from`
/// for the `from -> at` direction.
fn install_direction(net: &mut Network, topo: &AsLevelTopology, from: RouterId, at: RouterId) {
    let (us, them) = (at.asn(), from.asn());
    // Import: classify by relationship.
    let mut import = Policy::permit_all();
    import.push(PolicyRule::new(
        RouteMatch::any(),
        Action::SetLocalPref(import_pref(topo, us, them)),
    ));
    net.set_import_policy(at, from, import)
        .expect("session exists");

    // Export from `from`'s AS towards `at`'s AS: valley-free unless the
    // recipient is a customer.
    if !is_customer(topo, them, us) {
        let mut export = Policy::permit_all();
        export.push(PolicyRule::new(
            RouteMatch {
                local_pref_below: Some(LP_EXPORTABLE),
                ..RouteMatch::any()
            },
            Action::Deny,
        ));
        net.set_export_policy(from, at, export)
            .expect("session exists");
    }
}

/// Injects weird per-prefix policies into transit ASes; returns the records
/// of what was injected. `prefixes` is the full `(prefix, origin)` list of
/// the synthetic Internet.
pub fn inject_weird_policies(
    net: &mut Network,
    topo: &AsLevelTopology,
    rl: &RouterLevel,
    cfg: &NetGenConfig,
    rng: &mut StdRng,
    prefixes: &[(Prefix, Asn)],
) -> Vec<WeirdPolicyRecord> {
    let mut records = Vec::new();
    if prefixes.is_empty() {
        return records;
    }
    let mut transit_ases: Vec<Asn> = topo
        .ases
        .values()
        .filter(|g| g.tier != Tier::Stub && g.degree() >= 2)
        .map(|g| g.asn)
        .collect();
    transit_ases.shuffle(rng);
    let weird_count = ((transit_ases.len() as f64) * cfg.weird_policy_fraction) as usize;

    for &asn in transit_ases.iter().take(weird_count) {
        let neighbors: Vec<Asn> = topo.ases[&asn].neighbors().collect();
        let customers: Vec<Asn> = topo.ases[&asn].customers.iter().copied().collect();
        for _ in 0..cfg.weird_prefixes_per_as {
            let (prefix, _origin) = prefixes[rng.gen_range(0..prefixes.len())];
            let kind = match rng.gen_range(0..3u8) {
                0 => WeirdKind::PreferNeighbor,
                1 => WeirdKind::SelectiveExport,
                _ if !customers.is_empty() => WeirdKind::CustomerBoost,
                _ => WeirdKind::PreferNeighbor,
            };
            let neighbor = match kind {
                WeirdKind::CustomerBoost => customers[rng.gen_range(0..customers.len())],
                _ => neighbors[rng.gen_range(0..neighbors.len())],
            };
            match kind {
                WeirdKind::PreferNeighbor => {
                    // Demote this prefix on every *other* neighbor's
                    // sessions via MED (missing MED ranks best, so the
                    // preferred neighbor needs no rule).
                    for &other in &neighbors {
                        if other == neighbor {
                            continue;
                        }
                        for (at, from) in sessions_between(rl, asn, other) {
                            let policy = net.import_policy_mut(at, from).expect("session exists");
                            // Appended: runs after the relationship class
                            // rule.
                            policy.push(PolicyRule::new(
                                RouteMatch::prefix(prefix),
                                Action::SetMed(40),
                            ));
                        }
                    }
                }
                WeirdKind::SelectiveExport => {
                    for (to, from) in sessions_between(rl, neighbor, asn) {
                        let policy = net.export_policy_mut(from, to).expect("session exists");
                        policy
                            .push_front(PolicyRule::new(RouteMatch::prefix(prefix), Action::Deny));
                    }
                }
                WeirdKind::CustomerBoost => {
                    for (at, from) in sessions_between(rl, asn, neighbor) {
                        let policy = net.import_policy_mut(at, from).expect("session exists");
                        // Safe: still a customer route, still the top class.
                        policy.push(PolicyRule::new(
                            RouteMatch::prefix(prefix),
                            Action::SetLocalPref(LP_CUSTOMER + 20),
                        ));
                    }
                }
                WeirdKind::OriginTe | WeirdKind::ScopedAnnouncement => {
                    unreachable!("injected by inject_origin_te")
                }
            }
            records.push(WeirdPolicyRecord {
                asn,
                neighbor,
                prefix,
                kind,
            });
        }
    }
    records
}

/// Installs origin-side selective announcement for multihomed origins:
/// with probability `cfg.origin_te_fraction`, an origin with `k >= 2`
/// prefixes and `>= 2` providers announces each prefix to exactly one
/// provider (round-robin), withholding it from the rest. This reproduces
/// the inbound traffic engineering responsible for much of the per-prefix
/// path diversity in real feeds.
pub fn inject_origin_te(
    net: &mut Network,
    topo: &AsLevelTopology,
    rl: &RouterLevel,
    cfg: &NetGenConfig,
    rng: &mut StdRng,
    prefixes: &[(Prefix, Asn)],
) -> Vec<WeirdPolicyRecord> {
    use std::collections::BTreeMap;
    let mut by_origin: BTreeMap<Asn, Vec<Prefix>> = BTreeMap::new();
    for &(p, o) in prefixes {
        by_origin.entry(o).or_default().push(p);
    }

    let mut records = Vec::new();
    for (&origin, plist) in &by_origin {
        let providers: Vec<Asn> = topo.ases[&origin].providers.iter().copied().collect();
        if plist.len() < 2 || providers.len() < 2 || !rng.gen_bool(cfg.origin_te_fraction) {
            continue;
        }
        for (i, &prefix) in plist.iter().enumerate() {
            let keep = providers[i % providers.len()];
            for &prov in &providers {
                if prov == keep {
                    continue;
                }
                // Mostly withhold the announcement entirely; sometimes
                // scope it with NO_EXPORT instead (the provider may use
                // the route itself but not propagate it).
                let scoped = rng.gen_bool(0.25);
                for (to, from) in sessions_between(rl, prov, origin) {
                    let policy = net.export_policy_mut(from, to).expect("session exists");
                    let action = if scoped {
                        Action::AddCommunity(quasar_bgpsim::route::NO_EXPORT)
                    } else {
                        Action::Deny
                    };
                    policy.push_front(PolicyRule::new(RouteMatch::prefix(prefix), action));
                }
                records.push(WeirdPolicyRecord {
                    asn: origin,
                    neighbor: prov,
                    prefix,
                    kind: if scoped {
                        WeirdKind::ScopedAnnouncement
                    } else {
                        WeirdKind::OriginTe
                    },
                });
            }
        }
    }
    records
}

/// All `(router_of_a, router_of_b)` eBGP pairs between the two ASes.
fn sessions_between(rl: &RouterLevel, a: Asn, b: Asn) -> Vec<(RouterId, RouterId)> {
    rl.ebgp_links
        .iter()
        .filter_map(|l| {
            if l.a.asn() == a && l.b.asn() == b {
                Some((l.a, l.b))
            } else if l.b.asn() == a && l.a.asn() == b {
                Some((l.b, l.a))
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::AsLevelTopology;
    use rand::SeedableRng;

    fn build(
        seed: u64,
    ) -> (
        AsLevelTopology,
        RouterLevel,
        Network,
        Vec<WeirdPolicyRecord>,
    ) {
        let cfg = NetGenConfig::tiny(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = AsLevelTopology::generate(&cfg, &mut rng);
        let rl = RouterLevel::expand(&topo, &cfg, &mut rng);
        let mut net = rl.network.clone();
        apply_gao_policies(&mut net, &topo, &rl);
        let prefixes: Vec<(Prefix, Asn)> = topo
            .ases
            .keys()
            .map(|&a| (Prefix::for_origin(a), a))
            .collect();
        let weird = inject_weird_policies(&mut net, &topo, &rl, &cfg, &mut rng, &prefixes);
        (topo, rl, net, weird)
    }

    #[test]
    fn import_classes_follow_relationships() {
        let (topo, rl, net, _) = build(1);
        let link = rl.ebgp_links[0];
        let d = net.direction_policies(link.a, link.b).unwrap();
        // Import at b for routes from a.
        let expect = import_pref(&topo, link.b.asn(), link.a.asn());
        let has = d
            .import
            .rules()
            .iter()
            .any(|r| r.action == Action::SetLocalPref(expect));
        assert!(has, "import policy missing class {expect}");
    }

    #[test]
    fn provider_link_filters_nonexportable() {
        let (topo, rl, net, _) = build(2);
        // Find a link where b is a provider of a: exports a->b must be
        // valley-free filtered. Check both orientations of the stored link.
        for link in &rl.ebgp_links {
            for (a, b) in [(link.a, link.b), (link.b, link.a)] {
                if topo.ases[&a.asn()].providers.contains(&b.asn()) {
                    let d = net.direction_policies(a, b).unwrap();
                    assert!(
                        d.export.rules().iter().any(|r| r.action == Action::Deny),
                        "missing valley-free filter"
                    );
                    return;
                }
            }
        }
        panic!("no provider link found");
    }

    #[test]
    fn customer_link_exports_everything() {
        // Weirdness off so no selective-export filters muddy the check.
        let cfg = NetGenConfig {
            weird_policy_fraction: 0.0,
            ..NetGenConfig::tiny(3)
        };
        let mut rng = StdRng::seed_from_u64(3);
        let topo = AsLevelTopology::generate(&cfg, &mut rng);
        let rl = RouterLevel::expand(&topo, &cfg, &mut rng);
        let mut net = rl.network.clone();
        apply_gao_policies(&mut net, &topo, &rl);
        for link in &rl.ebgp_links {
            for (a, b) in [(link.a, link.b), (link.b, link.a)] {
                if topo.ases[&a.asn()].customers.contains(&b.asn()) {
                    let d = net.direction_policies(a, b).unwrap();
                    assert!(
                        d.export.rules().iter().all(|r| r.action != Action::Deny),
                        "customer-facing export must be open"
                    );
                    return;
                }
            }
        }
        panic!("no customer link found");
    }

    #[test]
    fn scoped_announcement_stops_at_provider() {
        use quasar_bgpsim::route::NO_EXPORT;
        // Find a generated internet containing a ScopedAnnouncement and
        // verify RFC 1997 semantics end to end: the withheld provider's
        // routers may use the route; nothing beyond them hears it via that
        // provider.
        for seed in 0..40u64 {
            let cfg = NetGenConfig {
                origin_te_fraction: 1.0,
                ..NetGenConfig::tiny(seed)
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = AsLevelTopology::generate(&cfg, &mut rng);
            let rl = RouterLevel::expand(&topo, &cfg, &mut rng);
            let mut net = rl.network.clone();
            apply_gao_policies(&mut net, &topo, &rl);
            // Build the prefix plan the same way observe::generate does.
            let mut prefixes: Vec<(Prefix, Asn)> = Vec::new();
            for (&asn, g) in &topo.ases {
                let k = if g.providers.len() >= 2 { 2 } else { 1 };
                for n in 0..k {
                    prefixes.push((Prefix::for_origin_nth(asn, n), asn));
                }
            }
            let records = inject_origin_te(&mut net, &topo, &rl, &cfg, &mut rng, &prefixes);
            let Some(rec) = records
                .iter()
                .find(|r| r.kind == WeirdKind::ScopedAnnouncement)
            else {
                continue;
            };
            let origins = &rl.routers[&rec.asn];
            let res = net.simulate(rec.prefix, origins).unwrap();
            // The withheld provider's routers hold the scoped route (or a
            // route via another provider); any directly-held scoped copy
            // carries NO_EXPORT and must not appear beyond the provider
            // with the provider as first hop.
            for rib in res.ribs() {
                let asn = rib.router.asn();
                if asn == rec.neighbor || asn == rec.asn {
                    continue;
                }
                for c in &rib.candidates {
                    // A path whose first two hops are [provider, origin]
                    // could only exist if the provider re-exported the
                    // scoped announcement.
                    let s = c.as_path.as_slice();
                    let leaked = s.len() >= 2
                        && s[s.len() - 1] == rec.asn
                        && s[s.len() - 2] == rec.neighbor
                        && c.has_community(NO_EXPORT);
                    assert!(!leaked, "NO_EXPORT leaked beyond {}", rec.neighbor);
                }
            }
            return; // one verified instance suffices
        }
        panic!("no ScopedAnnouncement generated across seeds");
    }

    #[test]
    fn weird_policies_recorded_and_installed() {
        let (_, _, _, weird) = build(4);
        assert!(!weird.is_empty(), "tiny config should still inject some");
    }

    #[test]
    fn valley_free_routing_holds_without_weirdness() {
        use quasar_bgpsim::types::Prefix;
        // With weird policies disabled, any converged best path must be
        // valley-free wrt the ground-truth relationships.
        let cfg = NetGenConfig {
            weird_policy_fraction: 0.0,
            ..NetGenConfig::tiny(5)
        };
        let mut rng = StdRng::seed_from_u64(5);
        let topo = AsLevelTopology::generate(&cfg, &mut rng);
        let rl = RouterLevel::expand(&topo, &cfg, &mut rng);
        let mut net = rl.network.clone();
        apply_gao_policies(&mut net, &topo, &rl);

        let origin = *topo.ases.keys().next().unwrap();
        let prefix = Prefix::for_origin(origin);
        let res = net.simulate(prefix, &rl.routers[&origin]).unwrap();
        for rib in res.ribs() {
            let Some(best) = rib.best() else { continue };
            // Path origin-first; classify each step as up (customer ->
            // provider), peer, or down. Once we go peer or down, we may
            // never go up or peer again.
            let seq: Vec<Asn> = best
                .as_path
                .iter()
                .rev()
                .chain(std::iter::once(rib.router.asn()))
                .collect();
            let mut descended = false;
            for w in seq.windows(2) {
                let (x, y) = (w[0], w[1]);
                let up = topo.ases[&x].providers.contains(&y);
                if up {
                    assert!(!descended, "valley in path {:?}", seq);
                } else {
                    descended = true;
                }
            }
        }
    }
}
