//! AS-level hierarchy generation with ground-truth relationships.
//!
//! The generator substitutes for the real Internet of the paper's dataset:
//! a clique of tier-1 providers, tier-2 transits homed to them, tier-3
//! transits homed to tier-2, and a large stub population with the paper's
//! observed single-/multi-homed split. Because we generate it, the *true*
//! relationships are known — which the paper never has — so relationship-
//! inference accuracy becomes measurable (see `quasar-topology`).

use crate::config::NetGenConfig;
use quasar_bgpsim::types::Asn;
use quasar_topology::relationships::{Relationship, Relationships};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Tier of a generated AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tier {
    /// Member of the top clique.
    Tier1,
    /// Large transit provider.
    Tier2,
    /// Small transit provider.
    Tier3,
    /// Stub (no customers).
    Stub,
}

/// A generated AS and its true relationships.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenAs {
    /// AS number.
    pub asn: Asn,
    /// Tier.
    pub tier: Tier,
    /// ASes this AS buys transit from.
    pub providers: BTreeSet<Asn>,
    /// Settlement-free peers.
    pub peers: BTreeSet<Asn>,
    /// ASes buying transit from this AS.
    pub customers: BTreeSet<Asn>,
}

impl GenAs {
    fn new(asn: Asn, tier: Tier) -> Self {
        GenAs {
            asn,
            tier,
            providers: BTreeSet::new(),
            peers: BTreeSet::new(),
            customers: BTreeSet::new(),
        }
    }

    /// All neighbors (providers ∪ peers ∪ customers).
    pub fn neighbors(&self) -> impl Iterator<Item = Asn> + '_ {
        self.providers
            .iter()
            .chain(self.peers.iter())
            .chain(self.customers.iter())
            .copied()
    }

    /// Number of neighbors.
    pub fn degree(&self) -> usize {
        self.providers.len() + self.peers.len() + self.customers.len()
    }
}

/// The generated AS-level topology.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AsLevelTopology {
    /// All ASes by number.
    pub ases: BTreeMap<Asn, GenAs>,
}

impl AsLevelTopology {
    /// Generates the hierarchy from `cfg` using `rng`.
    pub fn generate(cfg: &NetGenConfig, rng: &mut StdRng) -> Self {
        let mut topo = AsLevelTopology::default();

        // ASN ranges per tier, disjoint by construction.
        let tier1: Vec<Asn> = (0..cfg.num_tier1).map(|i| Asn(10 + i as u32)).collect();
        let tier2: Vec<Asn> = (0..cfg.num_tier2).map(|i| Asn(100 + i as u32)).collect();
        let tier3: Vec<Asn> = (0..cfg.num_tier3).map(|i| Asn(1000 + i as u32)).collect();
        let stubs: Vec<Asn> = (0..cfg.num_stubs).map(|i| Asn(10_000 + i as u32)).collect();

        for &a in &tier1 {
            topo.ases.insert(a, GenAs::new(a, Tier::Tier1));
        }
        for &a in &tier2 {
            topo.ases.insert(a, GenAs::new(a, Tier::Tier2));
        }
        for &a in &tier3 {
            topo.ases.insert(a, GenAs::new(a, Tier::Tier3));
        }
        for &a in &stubs {
            topo.ases.insert(a, GenAs::new(a, Tier::Stub));
        }

        // Tier-1 clique of peerings.
        for (i, &a) in tier1.iter().enumerate() {
            for &b in &tier1[i + 1..] {
                topo.add_peering(a, b);
            }
        }

        // Tier-2: 1..=max_providers tier-1 providers plus optional tier-2
        // peerings.
        for &a in &tier2 {
            let n = rng.gen_range(1..=cfg.max_providers.min(tier1.len()));
            for &p in pick(rng, &tier1, n).iter() {
                topo.add_customer_provider(a, p);
            }
        }
        for (i, &a) in tier2.iter().enumerate() {
            for &b in &tier2[i + 1..] {
                if rng.gen_bool(cfg.tier2_peering_prob) {
                    topo.add_peering(a, b);
                }
            }
        }

        // Tier-3: providers drawn mostly from tier-2, occasionally tier-1.
        for &a in &tier3 {
            let n = rng.gen_range(1..=cfg.max_providers);
            for _ in 0..n {
                let p = if rng.gen_bool(0.85) {
                    tier2[rng.gen_range(0..tier2.len())]
                } else {
                    tier1[rng.gen_range(0..tier1.len())]
                };
                topo.add_customer_provider(a, p);
            }
        }
        for (i, &a) in tier3.iter().enumerate() {
            for &b in &tier3[i + 1..] {
                if rng.gen_bool(cfg.tier3_peering_prob) {
                    topo.add_peering(a, b);
                }
            }
        }

        // Stubs: single- or multi-homed to tier-2/tier-3 providers.
        let transits: Vec<Asn> = tier2.iter().chain(tier3.iter()).copied().collect();
        for &a in &stubs {
            let n = if rng.gen_bool(cfg.single_homed_fraction) {
                1
            } else {
                rng.gen_range(2..=cfg.max_providers.max(2))
            };
            for &p in pick(rng, &transits, n).iter() {
                topo.add_customer_provider(a, p);
            }
        }

        topo
    }

    fn add_peering(&mut self, a: Asn, b: Asn) {
        if a == b || self.related(a, b) {
            return;
        }
        self.ases.get_mut(&a).expect("known AS").peers.insert(b);
        self.ases.get_mut(&b).expect("known AS").peers.insert(a);
    }

    fn add_customer_provider(&mut self, customer: Asn, provider: Asn) {
        if customer == provider || self.related(customer, provider) {
            return;
        }
        self.ases
            .get_mut(&customer)
            .expect("known AS")
            .providers
            .insert(provider);
        self.ases
            .get_mut(&provider)
            .expect("known AS")
            .customers
            .insert(customer);
    }

    fn related(&self, a: Asn, b: Asn) -> bool {
        self.ases
            .get(&a)
            .is_some_and(|g| g.neighbors().any(|n| n == b))
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.ases.len()
    }

    /// True if no ASes.
    pub fn is_empty(&self) -> bool {
        self.ases.is_empty()
    }

    /// All undirected AS edges, each once (low ASN first).
    pub fn edges(&self) -> Vec<(Asn, Asn)> {
        let mut out = Vec::new();
        for (&a, g) in &self.ases {
            for b in g.neighbors() {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// The tier-1 members, ascending.
    pub fn tier1(&self) -> Vec<Asn> {
        self.ases
            .values()
            .filter(|g| g.tier == Tier::Tier1)
            .map(|g| g.asn)
            .collect()
    }

    /// Exports the true relationships in the `quasar-topology`
    /// representation, to score inference against.
    pub fn ground_truth_relationships(&self) -> Relationships {
        let mut rels = Relationships::default();
        for (&a, g) in &self.ases {
            for &p in &g.providers {
                rels.set(
                    a,
                    p,
                    Relationship::CustomerProvider {
                        customer: a,
                        provider: p,
                    },
                );
            }
            for &q in &g.peers {
                rels.set(a, q, Relationship::PeerPeer);
            }
        }
        rels
    }
}

/// Chooses `n` distinct elements from `pool` (deterministic given `rng`).
fn pick(rng: &mut StdRng, pool: &[Asn], n: usize) -> Vec<Asn> {
    let mut v: Vec<Asn> = pool.to_vec();
    v.shuffle(rng);
    v.truncate(n.min(pool.len()));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gen(seed: u64) -> AsLevelTopology {
        let cfg = NetGenConfig::tiny(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        AsLevelTopology::generate(&cfg, &mut rng)
    }

    #[test]
    fn all_tiers_populated() {
        let t = gen(1);
        let cfg = NetGenConfig::tiny(1);
        assert_eq!(t.len(), cfg.total_ases());
        assert_eq!(t.tier1().len(), cfg.num_tier1);
    }

    #[test]
    fn tier1_forms_a_clique_of_peers() {
        let t = gen(2);
        let t1 = t.tier1();
        for (i, &a) in t1.iter().enumerate() {
            for &b in &t1[i + 1..] {
                assert!(t.ases[&a].peers.contains(&b), "{a} !~ {b}");
            }
        }
    }

    #[test]
    fn every_non_tier1_has_a_provider() {
        let t = gen(3);
        for g in t.ases.values() {
            if g.tier != Tier::Tier1 {
                assert!(!g.providers.is_empty(), "{} lacks a provider", g.asn);
            }
        }
    }

    #[test]
    fn stubs_have_no_customers() {
        let t = gen(4);
        for g in t.ases.values() {
            if g.tier == Tier::Stub {
                assert!(g.customers.is_empty());
            }
        }
    }

    #[test]
    fn relationships_are_mutual() {
        let t = gen(5);
        for (&a, g) in &t.ases {
            for &p in &g.providers {
                assert!(t.ases[&p].customers.contains(&a));
            }
            for &q in &g.peers {
                assert!(t.ases[&q].peers.contains(&a));
            }
            for &c in &g.customers {
                assert!(t.ases[&c].providers.contains(&a));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen(7);
        let b = gen(7);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(gen(1).edges(), gen(2).edges());
    }

    #[test]
    fn ground_truth_export_consistent() {
        let t = gen(8);
        let rels = t.ground_truth_relationships();
        assert_eq!(rels.len(), t.edges().len());
        for (&a, g) in &t.ases {
            for &p in &g.providers {
                assert!(rels.is_provider(p, a));
            }
        }
    }

    #[test]
    fn single_homed_fraction_roughly_respected() {
        let cfg = NetGenConfig::default();
        let mut rng = StdRng::seed_from_u64(42);
        let t = AsLevelTopology::generate(&cfg, &mut rng);
        let stubs: Vec<&GenAs> = t.ases.values().filter(|g| g.tier == Tier::Stub).collect();
        let single = stubs.iter().filter(|g| g.providers.len() == 1).count();
        let frac = single as f64 / stubs.len() as f64;
        assert!((0.25..0.5).contains(&frac), "fraction {frac}");
    }
}
