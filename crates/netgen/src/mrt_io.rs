//! Export/import of observation feeds in RouteViews' MRT TABLE_DUMP_V2
//! format.
//!
//! Writing the synthetic feeds in the real archive format keeps the whole
//! downstream pipeline format-compatible with actual RouteViews/RIPE data:
//! swap the file, keep the code.

use crate::observe::{ObservationPoint, RouteObservation};
use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::types::{Asn, Prefix, RouterId};
use quasar_mrt::prelude::*;
use std::collections::BTreeMap;

/// The snapshot timestamp used for exports: Sun Nov 13 2005, 07:30 UTC —
/// the paper's snapshot instant (§3.1).
pub const SNAPSHOT_TIME: u32 = 1_131_867_000;

/// Serializes feeds as one PEER_INDEX_TABLE followed by one
/// RIB_IPV4_UNICAST record per prefix.
pub fn export_table_dump_v2(
    points: &[ObservationPoint],
    observations: &[RouteObservation],
) -> Vec<u8> {
    let peers: Vec<PeerEntry> = points
        .iter()
        .map(|p| PeerEntry {
            bgp_id: p.router.0,
            address: PeerAddress::V4(p.router.0),
            asn: p.observer_as().0,
            as4: true,
        })
        .collect();
    let index: BTreeMap<u32, u16> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.id, i as u16))
        .collect();

    let mut w = MrtWriter::new(Vec::new());
    w.write_record(&MrtRecord {
        timestamp: SNAPSHOT_TIME,
        body: MrtBody::PeerIndexTable(PeerIndexTable {
            collector_id: 0x7F000001,
            view_name: "quasar".into(),
            peers,
        }),
    })
    .expect("in-memory write");

    // Group observations by prefix, preserving first-seen order.
    let mut by_prefix: BTreeMap<Prefix, Vec<&RouteObservation>> = BTreeMap::new();
    for o in observations {
        by_prefix.entry(o.prefix).or_default().push(o);
    }
    for (seq, (prefix, group)) in by_prefix.into_iter().enumerate() {
        let entries: Vec<RibEntry> = group
            .iter()
            .map(|o| RibEntry {
                peer_index: index[&o.point],
                // One hour of stability before the snapshot (§3.1).
                originated_time: SNAPSHOT_TIME - 3_600,
                attributes: vec![
                    PathAttribute::Origin(0),
                    PathAttribute::AsPath(vec![AsPathSegment::sequence(
                        o.as_path.iter().map(|a| a.0).collect(),
                    )]),
                    PathAttribute::NextHop(o.point),
                ],
            })
            .collect();
        w.write_record(&MrtRecord {
            timestamp: SNAPSHOT_TIME,
            body: MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                sequence: seq as u32,
                prefix: NlriPrefix::new(prefix.base, prefix.len).expect("valid prefix"),
                entries,
            }),
        })
        .expect("in-memory write");
    }
    w.finish().expect("in-memory flush")
}

/// Parses a TABLE_DUMP_V2 dump back into feeds. Routes whose attributes
/// lack an AS_PATH, or whose paths contain AS_SETs, are skipped — matching
/// the paper's data cleaning. Prepending is stripped (§3.1 fn. 1).
pub fn import_table_dump_v2(data: &[u8]) -> Result<(Vec<ObservationPoint>, Vec<RouteObservation>)> {
    let mut reader = MrtReader::new(data);
    let mut points: Vec<ObservationPoint> = Vec::new();
    let mut observations = Vec::new();

    while let Some(rec) = reader.next_record()? {
        match rec.body {
            MrtBody::PeerIndexTable(t) => {
                points = t
                    .peers
                    .iter()
                    .enumerate()
                    .map(|(i, p)| ObservationPoint {
                        id: i as u32,
                        router: RouterId(p.bgp_id),
                    })
                    .collect();
            }
            MrtBody::RibIpv4Unicast(rib) => {
                let prefix = Prefix::new(rib.prefix.base, rib.prefix.len);
                for e in rib.entries {
                    let Some(segments) = e.attributes.iter().find_map(|a| match a {
                        PathAttribute::AsPath(s) => Some(s),
                        _ => None,
                    }) else {
                        continue;
                    };
                    if segments.iter().any(|s| s.seg_type != 2) {
                        continue; // AS_SET-bearing path: dropped
                    }
                    let flat = PathAttribute::flatten_as_path(segments);
                    let as_path =
                        AsPath::new(flat.into_iter().map(Asn).collect()).strip_prepending();
                    let point = e.peer_index as u32;
                    let observer_as = points
                        .get(e.peer_index as usize)
                        .map(|p| p.observer_as())
                        .unwrap_or(Asn::RESERVED);
                    observations.push(RouteObservation {
                        point,
                        observer_as,
                        prefix,
                        as_path,
                    });
                }
            }
            _ => {}
        }
    }
    Ok((points, observations))
}

/// Parses a *legacy* TABLE_DUMP archive (the format RouteViews used in
/// November 2005, when the paper's snapshot was taken). Each record is one
/// (prefix, peer) route; peers are identified by their IP and assigned
/// feed ids in order of first appearance. AS-paths are cleaned like the
/// V2 importer (sets dropped, prepending stripped).
pub fn import_table_dump(data: &[u8]) -> Result<(Vec<ObservationPoint>, Vec<RouteObservation>)> {
    let mut reader = MrtReader::new(data);
    let mut peer_ids: BTreeMap<u32, (u32, Asn)> = BTreeMap::new(); // ip -> (id, asn)
    let mut observations = Vec::new();

    while let Some(rec) = reader.next_record()? {
        let MrtBody::TableDump(entry) = rec.body else {
            continue;
        };
        let next_id = peer_ids.len() as u32;
        let (point, observer_as) = *peer_ids
            .entry(entry.peer_ip)
            .or_insert((next_id, Asn(entry.peer_asn as u32)));
        let Some(segments) = entry.attributes.iter().find_map(|a| match a {
            PathAttribute::AsPath(s) => Some(s),
            _ => None,
        }) else {
            continue;
        };
        if segments.iter().any(|s| s.seg_type != 2) {
            continue; // AS_SET-bearing path: dropped
        }
        let flat = PathAttribute::flatten_as_path(segments);
        let as_path = AsPath::new(flat.into_iter().map(Asn).collect()).strip_prepending();
        observations.push(RouteObservation {
            point,
            observer_as,
            prefix: Prefix::new(entry.prefix.base, entry.prefix.len),
            as_path,
        });
    }
    let points = peer_ids
        .into_iter()
        .map(|(ip, (id, _asn))| ObservationPoint {
            id,
            router: RouterId(ip),
        })
        .collect();
    Ok((points, observations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetGenConfig;
    use crate::observe::SyntheticInternet;

    #[test]
    fn export_import_roundtrip() {
        let net = SyntheticInternet::generate(NetGenConfig::tiny(11));
        let bytes = export_table_dump_v2(&net.observation_points, &net.observations);
        let (points, obs) = import_table_dump_v2(&bytes).unwrap();
        assert_eq!(points.len(), net.observation_points.len());
        // Observations survive modulo ordering (export groups by prefix).
        assert_eq!(obs.len(), net.observations.len());
        let mut a: Vec<_> = obs
            .iter()
            .map(|o| (o.prefix, o.point, o.as_path.clone()))
            .collect();
        let mut b: Vec<_> = net
            .observations
            .iter()
            .map(|o| (o.prefix, o.point, o.as_path.clone()))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn import_strips_prepending() {
        let points = vec![ObservationPoint {
            id: 0,
            router: RouterId::new(Asn(10), 0),
        }];
        let obs = vec![RouteObservation {
            point: 0,
            observer_as: Asn(10),
            prefix: Prefix::for_origin(Asn(20)),
            as_path: AsPath::from_u32s(&[10, 20]),
        }];
        let mut bytes = export_table_dump_v2(&points, &obs);
        // Re-export with artificial prepending by round-tripping through a
        // hand-built record is overkill; instead check idempotence here.
        let (_, back) = import_table_dump_v2(&bytes).unwrap();
        assert_eq!(back[0].as_path, obs[0].as_path);
        bytes.clear();
    }

    #[test]
    fn legacy_table_dump_import() {
        // Hand-build a legacy archive: two peers, three routes.
        let mk = |seq: u16, peer_ip: u32, peer_asn: u16, path: &[u32], base: u32| MrtRecord {
            timestamp: SNAPSHOT_TIME,
            body: MrtBody::TableDump(TableDumpEntry {
                view: 0,
                sequence: seq,
                prefix: NlriPrefix::new(base, 24).unwrap(),
                status: 1,
                originated_time: SNAPSHOT_TIME - 7_200,
                peer_ip,
                peer_asn,
                attributes: vec![
                    PathAttribute::Origin(0),
                    PathAttribute::AsPath(vec![AsPathSegment::sequence(path.to_vec())]),
                ],
            }),
        };
        let mut w = MrtWriter::new(Vec::new());
        for rec in [
            mk(0, 0xC0000201, 10, &[10, 20, 30], 0x0A000000),
            mk(1, 0xC0000202, 11, &[11, 11, 30], 0x0A000000), // prepended
            mk(2, 0xC0000201, 10, &[10, 40], 0x0B000000),
        ] {
            w.write_record(&rec).unwrap();
        }
        let bytes = w.finish().unwrap();
        let (points, obs) = import_table_dump(&bytes).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(obs.len(), 3);
        // Prepending was stripped; observer ASes follow the peer ASN.
        let prepended = obs
            .iter()
            .find(|o| o.observer_as == Asn(11))
            .expect("peer 11 present");
        assert_eq!(prepended.as_path.to_string(), "11 30");
        // Both routes of peer 10 share a feed id.
        let ids: Vec<u32> = obs
            .iter()
            .filter(|o| o.observer_as == Asn(10))
            .map(|o| o.point)
            .collect();
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0], ids[1]);
    }

    #[test]
    fn empty_inputs() {
        let bytes = export_table_dump_v2(&[], &[]);
        let (points, obs) = import_table_dump_v2(&bytes).unwrap();
        assert!(points.is_empty());
        assert!(obs.is_empty());
    }
}
