//! Router-level expansion of the AS hierarchy.
//!
//! The paper's central observation is that "ASes are not simple nodes in a
//! graph — they are comprised of routers" whose interplay (iBGP, IGP
//! hot-potato, multiple inter-AS connections) produces route diversity.
//! This module builds exactly that substrate for the ground truth: each AS
//! becomes 1..k border routers joined by an iBGP full mesh over a weighted
//! IGP ring, and each AS-level adjacency becomes one (sometimes two) eBGP
//! sessions between concrete router pairs.

use crate::config::NetGenConfig;
use crate::hierarchy::{AsLevelTopology, Tier};
use quasar_bgpsim::decision::DecisionConfig;
use quasar_bgpsim::igp::IgpTopology;
use quasar_bgpsim::network::{Network, SessionKind};
use quasar_bgpsim::types::{Asn, RouterId};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;

/// One eBGP adjacency between concrete routers, remembering the AS edge it
/// realizes (policies are attached per AS relationship).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EbgpLink {
    /// Router on the lower-ASN side.
    pub a: RouterId,
    /// Router on the higher-ASN side.
    pub b: RouterId,
}

/// The expanded router-level topology.
#[derive(Debug)]
pub struct RouterLevel {
    /// The simulator network: routers, iBGP/eBGP sessions, IGP costs.
    pub network: Network,
    /// Border routers of each AS, ascending by index.
    pub routers: BTreeMap<Asn, Vec<RouterId>>,
    /// All eBGP sessions created.
    pub ebgp_links: Vec<EbgpLink>,
}

impl RouterLevel {
    /// Expands `topo` according to `cfg`.
    pub fn expand(topo: &AsLevelTopology, cfg: &NetGenConfig, rng: &mut StdRng) -> Self {
        let mut network = Network::new(DecisionConfig::default());
        let mut routers: BTreeMap<Asn, Vec<RouterId>> = BTreeMap::new();

        // Create routers per AS.
        for (&asn, gen) in &topo.ases {
            let (lo, hi) = match gen.tier {
                Tier::Tier1 => cfg.tier1_routers,
                Tier::Tier2 => cfg.tier2_routers,
                Tier::Tier3 => cfg.tier3_routers,
                Tier::Stub => (1, 1),
            };
            let k = rng.gen_range(lo..=hi.max(lo));
            let ids: Vec<RouterId> = (0..k).map(|i| RouterId::new(asn, i)).collect();
            for &r in &ids {
                network.add_router(r);
            }
            // iBGP: full mesh, or (opt-in, ASes with >= 4 routers) RFC 4456
            // route reflection with router 0 as the reflector. The IGP ring
            // below provides hot-potato cost diversity either way.
            if cfg.use_route_reflection && ids.len() >= 4 {
                for &client in &ids[1..] {
                    network
                        .add_session(ids[0], client, SessionKind::Ibgp)
                        .expect("fresh iBGP session");
                    network
                        .set_rr_client(ids[0], client)
                        .expect("session just created");
                }
            } else {
                for (i, &r) in ids.iter().enumerate() {
                    for &s in &ids[i + 1..] {
                        network
                            .add_session(r, s, SessionKind::Ibgp)
                            .expect("fresh iBGP session");
                    }
                }
            }
            if ids.len() > 1 {
                let mut igp = IgpTopology::new();
                for i in 0..ids.len() {
                    let j = (i + 1) % ids.len();
                    if ids.len() == 2 && j == 0 {
                        break; // a 2-ring would duplicate the single link
                    }
                    igp.add_link(ids[i], ids[j], rng.gen_range(1..=cfg.max_igp_weight));
                }
                if ids.len() >= 4 {
                    igp.add_link(ids[0], ids[2], rng.gen_range(1..=cfg.max_igp_weight));
                }
                network.set_igp(asn, &igp);
            }
            routers.insert(asn, ids);
        }

        // Realize each AS edge with one or two eBGP sessions.
        let mut ebgp_links = Vec::new();
        for (a, b) in topo.edges() {
            let ra_pool = &routers[&a];
            let rb_pool = &routers[&b];
            let ra = ra_pool[rng.gen_range(0..ra_pool.len())];
            let rb = rb_pool[rng.gen_range(0..rb_pool.len())];
            network
                .add_session(ra, rb, SessionKind::Ebgp)
                .expect("fresh eBGP session");
            ebgp_links.push(EbgpLink { a: ra, b: rb });

            // Optional second, disjoint session — the source of much of the
            // observed path diversity.
            if rng.gen_bool(cfg.parallel_link_prob) && (ra_pool.len() > 1 || rb_pool.len() > 1) {
                let ra2 = if ra_pool.len() > 1 {
                    *ra_pool.iter().find(|&&r| r != ra).expect(">=2 routers")
                } else {
                    ra
                };
                let rb2 = if rb_pool.len() > 1 {
                    *rb_pool.iter().find(|&&r| r != rb).expect(">=2 routers")
                } else {
                    rb
                };
                if (ra2, rb2) != (ra, rb) && !network.has_session(ra2, rb2) {
                    network
                        .add_session(ra2, rb2, SessionKind::Ebgp)
                        .expect("checked fresh");
                    ebgp_links.push(EbgpLink { a: ra2, b: rb2 });
                }
            }
        }

        // Transient path exploration in the FIFO propagation model can
        // far exceed the engine's conservative default budget on large
        // topologies; raise it so only genuine policy oscillation trips
        // the divergence guard.
        network.message_budget = (network.num_sessions() as u64 * 5_000).max(1_000_000);

        RouterLevel {
            network,
            routers,
            ebgp_links,
        }
    }

    /// Total number of routers.
    pub fn num_routers(&self) -> usize {
        self.network.num_routers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn expand(seed: u64) -> (AsLevelTopology, RouterLevel) {
        let cfg = NetGenConfig::tiny(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = AsLevelTopology::generate(&cfg, &mut rng);
        let rl = RouterLevel::expand(&topo, &cfg, &mut rng);
        (topo, rl)
    }

    #[test]
    fn every_as_has_routers() {
        let (topo, rl) = expand(1);
        for &asn in topo.ases.keys() {
            assert!(!rl.routers[&asn].is_empty());
        }
        assert!(rl.num_routers() >= topo.len());
    }

    #[test]
    fn every_as_edge_realized() {
        let (topo, rl) = expand(2);
        for (a, b) in topo.edges() {
            let found = rl
                .ebgp_links
                .iter()
                .any(|l| (l.a.asn() == a && l.b.asn() == b) || (l.a.asn() == b && l.b.asn() == a));
            assert!(found, "AS edge {a}-{b} has no session");
        }
    }

    #[test]
    fn stub_ases_have_one_router() {
        let (topo, rl) = expand(3);
        for (asn, g) in &topo.ases {
            if g.tier == Tier::Stub {
                assert_eq!(rl.routers[asn].len(), 1);
            }
        }
    }

    #[test]
    fn expansion_deterministic() {
        let (_, a) = expand(4);
        let (_, b) = expand(4);
        assert_eq!(a.ebgp_links, b.ebgp_links);
        assert_eq!(a.num_routers(), b.num_routers());
    }

    #[test]
    fn route_reflection_mode_builds_and_routes() {
        use quasar_bgpsim::types::Prefix;
        let cfg = NetGenConfig {
            use_route_reflection: true,
            tier1_routers: (4, 5),
            ..NetGenConfig::tiny(9)
        };
        let mut rng = StdRng::seed_from_u64(9);
        let topo = AsLevelTopology::generate(&cfg, &mut rng);
        let rl = RouterLevel::expand(&topo, &cfg, &mut rng);
        // Some tier-1 AS has >= 4 routers with a reflector config.
        let t1 = topo.tier1()[0];
        let routers = &rl.routers[&t1];
        assert!(routers.len() >= 4);
        assert!(rl.network.is_rr_client(routers[0], routers[1]));
        // Routing still works end to end through reflected iBGP.
        let stub = topo
            .ases
            .values()
            .find(|g| g.tier == Tier::Stub)
            .expect("has stubs");
        let prefix = Prefix::for_origin(stub.asn);
        let res = rl.network.simulate(prefix, &rl.routers[&stub.asn]).unwrap();
        let reached = routers
            .iter()
            .filter(|&&r| res.best_route(r).is_some())
            .count();
        assert_eq!(reached, routers.len(), "reflection must reach all routers");
    }

    #[test]
    fn routes_propagate_on_ground_truth() {
        use quasar_bgpsim::types::Prefix;
        let (topo, rl) = expand(5);
        // Pick a stub and check that a tier-1 hears its prefix.
        let stub = topo
            .ases
            .values()
            .find(|g| g.tier == Tier::Stub)
            .expect("has stubs");
        let prefix = Prefix::for_origin(stub.asn);
        let res = rl.network.simulate(prefix, &rl.routers[&stub.asn]).unwrap();
        let t1 = topo.tier1()[0];
        let best = res.best_route(rl.routers[&t1][0]);
        assert!(best.is_some(), "tier-1 cannot reach stub prefix");
        assert_eq!(best.unwrap().as_path.origin(), Some(stub.asn));
    }
}
