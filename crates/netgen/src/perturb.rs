//! Seeded routing perturbations and before/after update streams.
//!
//! The streaming pipeline (`quasar-stream`) needs deterministic ground
//! truth: an update file whose final state is known exactly, so the
//! incrementally-maintained model can be compared against a from-scratch
//! retrain. This module produces that ground truth from one synthetic
//! Internet:
//!
//! * [`perturb_observations`] derives an "after" observation set from a
//!   "before" set by applying a seeded mix of the routing events the
//!   paper's data contains — path shifts (a feed switches to an
//!   alternative route after a link flap), prefix re-homings (a prefix
//!   moves to a different origin AS), and new announcements;
//! * [`transition_stream`] renders the before→after difference as a valid
//!   MRT archive: the before-RIB as a TABLE_DUMP_V2 dump plus one BGP4MP
//!   UPDATE per changed `(feed, prefix)` route, timestamp-ordered.
//!
//! Replaying the stream through [`crate::updates::reconstruct_stable`]
//! (or the live pipeline) recovers exactly the after set.
//!
//! Perturbations can be restricted to **graph-preserving** ones: path
//! shifts that neither add nor remove any AS-graph edge and keep every
//! prefix's origin. Those exercise the incremental trainer's fast path
//! (only the touched prefixes retrain); re-homings and new announcements
//! deliberately change the origin map and exercise its full-retrain
//! fallback.

use crate::observe::{ObservationPoint, RouteObservation};
use crate::updates::UpdateStreamConfig;
use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::types::{Asn, Prefix};
use quasar_mrt::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// How many of each routing event to attempt (each is best-effort: an
/// event that would violate the configured invariants is skipped).
#[derive(Debug, Clone, Copy)]
pub struct PerturbationConfig {
    /// Feeds that switch to an alternative path for one prefix.
    pub path_shifts: usize,
    /// Prefixes that move to a different origin AS.
    pub rehomings: usize,
    /// Brand-new prefixes announced by existing origins.
    pub new_prefixes: usize,
    /// Restrict to events that provably keep the AS graph and the
    /// prefix→origin map unchanged (the incremental trainer's fast
    /// path). Forces `rehomings` and `new_prefixes` to zero.
    pub graph_preserving: bool,
}

impl Default for PerturbationConfig {
    fn default() -> Self {
        PerturbationConfig {
            path_shifts: 8,
            rehomings: 2,
            new_prefixes: 2,
            graph_preserving: false,
        }
    }
}

impl PerturbationConfig {
    /// A config applying only graph-preserving path shifts — the after
    /// set has the same AS graph and origins, so the incremental trainer
    /// retrains nothing but the shifted prefixes.
    pub fn graph_preserving(path_shifts: usize) -> Self {
        PerturbationConfig {
            path_shifts,
            rehomings: 0,
            new_prefixes: 0,
            graph_preserving: true,
        }
    }
}

/// What [`perturb_observations`] did, with the after set and the exact
/// ground truth the delta detector must recover.
#[derive(Debug, Clone)]
pub struct Perturbation {
    /// The perturbed observation set, sorted by (prefix, point).
    pub after: Vec<RouteObservation>,
    /// Applied path shifts: `(feed, prefix)` routes now on a new path.
    pub shifted: Vec<(u32, Prefix)>,
    /// Applied re-homings: `(prefix, old origin, new origin)`.
    pub rehomed: Vec<(Prefix, Asn, Asn)>,
    /// Newly announced prefixes with their origin.
    pub added: Vec<(Prefix, Asn)>,
    /// Every prefix whose observed routes differ from before, ascending.
    pub dirty_prefixes: Vec<Prefix>,
}

/// Undirected edge key.
fn edge_key(a: Asn, b: Asn) -> (Asn, Asn) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Multiset of AS-graph edges over an observation set.
fn edge_counts(obs: &BTreeMap<(u32, Prefix), AsPath>) -> BTreeMap<(Asn, Asn), usize> {
    let mut counts: BTreeMap<(Asn, Asn), usize> = BTreeMap::new();
    for path in obs.values() {
        for (a, b) in path.edges() {
            *counts.entry(edge_key(a, b)).or_insert(0) += 1;
        }
    }
    counts
}

/// Applies a seeded mix of routing events to `before` and returns the
/// perturbed set plus ground truth about what changed. Deterministic in
/// `seed`. Events that would violate the config's invariants (or find no
/// viable candidate) are skipped, so the returned ground truth — not the
/// requested counts — is authoritative.
pub fn perturb_observations(
    points: &[ObservationPoint],
    before: &[RouteObservation],
    cfg: &PerturbationConfig,
    seed: u64,
) -> Perturbation {
    perturb_at(points, before, cfg, seed, None)
}

/// Like [`perturb_observations`], but path shifts are drawn only from a
/// contiguous block of the ascending prefix list: `block = (start, len)`
/// over the distinct-prefix index space. A contiguous dirty block maps to
/// a contiguous run of refinement domains, which is how the stream bench
/// measures the incremental speedup at a bounded dirty fraction.
pub fn perturb_observations_in_block(
    points: &[ObservationPoint],
    before: &[RouteObservation],
    cfg: &PerturbationConfig,
    seed: u64,
    block: (usize, usize),
) -> Perturbation {
    perturb_at(points, before, cfg, seed, Some(block))
}

fn perturb_at(
    points: &[ObservationPoint],
    before: &[RouteObservation],
    cfg: &PerturbationConfig,
    seed: u64,
    block: Option<(usize, usize)>,
) -> Perturbation {
    let mut rng = StdRng::seed_from_u64(seed);
    let point_as: BTreeMap<u32, Asn> = points.iter().map(|p| (p.id, p.observer_as())).collect();

    // Working state: (feed, prefix) -> path.
    let mut state: BTreeMap<(u32, Prefix), AsPath> = before
        .iter()
        .map(|o| ((o.point, o.prefix), o.as_path.clone()))
        .collect();
    let mut counts = edge_counts(&state);
    let prefix_list: Vec<Prefix> = {
        let set: BTreeSet<Prefix> = state.keys().map(|(_, p)| *p).collect();
        set.into_iter().collect()
    };
    let eligible: BTreeSet<Prefix> = match block {
        Some((start, len)) => prefix_list.iter().skip(start).take(len).copied().collect(),
        None => prefix_list.iter().copied().collect(),
    };

    let mut shifted: Vec<(u32, Prefix)> = Vec::new();
    let mut dirty: BTreeSet<Prefix> = BTreeSet::new();

    // --- Path shifts -----------------------------------------------------
    // A feed abandons its current path for `prefix` and re-learns the
    // route over a different first hop — the observable effect of a link
    // flap or a policy change upstream. The new path is spliced from
    // another feed's path for the same prefix (so it ends at the same
    // origin), re-headed with this feed's observer AS; it is only applied
    // if the splice edge already exists in the graph, and — in
    // graph-preserving mode — if dropping the old path leaves every one
    // of its edges covered elsewhere.
    let mut shift_candidates: Vec<(u32, Prefix)> = state
        .keys()
        .filter(|(_, p)| eligible.contains(p))
        .copied()
        .collect();
    shift_candidates.shuffle(&mut rng);
    for (feed, prefix) in shift_candidates {
        if shifted.len() >= cfg.path_shifts {
            break;
        }
        let Some(observer) = point_as.get(&feed).copied() else {
            continue;
        };
        let old = state[&(feed, prefix)].clone();
        // Donor tails for the same prefix from other feeds.
        let mut donors: Vec<AsPath> = state
            .iter()
            .filter(|((f, p), _)| *p == prefix && *f != feed)
            .map(|(_, path)| path.clone())
            .collect();
        donors.shuffle(&mut rng);
        let Some(new_path) = donors.iter().find_map(|donor| {
            let tail: Vec<Asn> = donor.iter().skip(1).collect();
            let candidate = if donor.head() == Some(observer) {
                donor.clone()
            } else {
                let first = *tail.first()?;
                if counts.get(&edge_key(observer, first)).copied().unwrap_or(0) == 0 {
                    return None; // splice edge would be new
                }
                let mut asns = Vec::with_capacity(tail.len() + 1);
                asns.push(observer);
                asns.extend(tail.iter().copied());
                AsPath::new(asns)
            };
            if candidate == old || candidate.has_loop() {
                return None;
            }
            if cfg.graph_preserving {
                // Dropping `old` must not remove any graph edge: every
                // edge needs a second user or coverage by the candidate.
                let candidate_edges: BTreeSet<(Asn, Asn)> =
                    candidate.edges().map(|(a, b)| edge_key(a, b)).collect();
                let safe = old.edges().all(|(a, b)| {
                    let k = edge_key(a, b);
                    counts.get(&k).copied().unwrap_or(0) >= 2 || candidate_edges.contains(&k)
                });
                if !safe {
                    return None;
                }
            }
            Some(candidate)
        }) else {
            continue;
        };
        for (a, b) in old.edges() {
            if let Some(c) = counts.get_mut(&edge_key(a, b)) {
                *c = c.saturating_sub(1);
            }
        }
        for (a, b) in new_path.edges() {
            *counts.entry(edge_key(a, b)).or_insert(0) += 1;
        }
        state.insert((feed, prefix), new_path);
        shifted.push((feed, prefix));
        dirty.insert(prefix);
    }

    // --- Prefix re-homings ----------------------------------------------
    // `prefix` moves from its origin to a donor origin: every feed that
    // reaches the donor's home prefix now reaches `prefix` over the same
    // path, and feeds that cannot reach the donor withdraw it.
    let mut rehomed: Vec<(Prefix, Asn, Asn)> = Vec::new();
    if !cfg.graph_preserving && cfg.rehomings > 0 {
        let origin_of: BTreeMap<Prefix, Asn> = state
            .iter()
            .filter_map(|((_, p), path)| path.origin().map(|o| (*p, o)))
            .collect();
        let mut candidates: Vec<Prefix> = prefix_list
            .iter()
            .filter(|p| eligible.contains(p) && !dirty.contains(p))
            .copied()
            .collect();
        candidates.shuffle(&mut rng);
        for prefix in candidates {
            if rehomed.len() >= cfg.rehomings {
                break;
            }
            let Some(&old_origin) = origin_of.get(&prefix) else {
                continue;
            };
            // Donor: a different prefix with a different origin.
            let Some((&donor_prefix, &new_origin)) = origin_of
                .iter()
                .find(|(dp, o)| **dp != prefix && **o != old_origin && !dirty.contains(dp))
            else {
                continue;
            };
            let donor_routes: Vec<(u32, AsPath)> = state
                .iter()
                .filter(|((_, p), _)| *p == donor_prefix)
                .map(|((f, _), path)| (*f, path.clone()))
                .collect();
            if donor_routes.is_empty() {
                continue;
            }
            state.retain(|(_, p), _| *p != prefix);
            for (feed, path) in donor_routes {
                state.insert((feed, prefix), path);
            }
            rehomed.push((prefix, old_origin, new_origin));
            dirty.insert(prefix);
        }
    }

    // --- New announcements ----------------------------------------------
    // An existing origin announces an additional prefix, visible over the
    // same paths as its home prefix.
    let mut added: Vec<(Prefix, Asn)> = Vec::new();
    if !cfg.graph_preserving && cfg.new_prefixes > 0 {
        let taken: BTreeSet<Prefix> = state.keys().map(|(_, p)| *p).collect();
        let mut origins: Vec<(Prefix, Asn)> = {
            let set: BTreeSet<(Prefix, Asn)> = state
                .iter()
                .filter_map(|((_, p), path)| path.origin().map(|o| (*p, o)))
                .collect();
            set.into_iter().collect()
        };
        origins.shuffle(&mut rng);
        for (home, origin) in origins {
            if added.len() >= cfg.new_prefixes {
                break;
            }
            let Some(new_prefix) = (0u8..64).find_map(|n| {
                let p = Prefix::for_origin_nth(origin, n);
                (!taken.contains(&p) && !added.iter().any(|(a, _)| *a == p)).then_some(p)
            }) else {
                continue;
            };
            let home_routes: Vec<(u32, AsPath)> = state
                .iter()
                .filter(|((_, p), _)| *p == home)
                .map(|((f, _), path)| (*f, path.clone()))
                .collect();
            for (feed, path) in home_routes {
                state.insert((feed, new_prefix), path);
            }
            added.push((new_prefix, origin));
            dirty.insert(new_prefix);
        }
    }

    let after: Vec<RouteObservation> = state
        .into_iter()
        .map(|((point, prefix), as_path)| RouteObservation {
            point,
            observer_as: point_as.get(&point).copied().unwrap_or(Asn::RESERVED),
            prefix,
            as_path,
        })
        .collect();
    Perturbation {
        after,
        shifted,
        rehomed,
        added,
        dirty_prefixes: dirty.into_iter().collect(),
    }
}

fn path_attrs(path: &AsPath, next_hop: u32) -> Vec<PathAttribute> {
    vec![
        PathAttribute::Origin(0),
        PathAttribute::AsPath(vec![AsPathSegment::sequence(
            path.iter().map(|a| a.0).collect(),
        )]),
        PathAttribute::NextHop(next_hop),
    ]
}

/// Renders the before→after transition as an MRT archive: the peer table
/// and the *before* RIB at `cfg.dump_time`, then one BGP4MP UPDATE per
/// changed `(feed, prefix)` route — withdrawals for routes that vanish,
/// announcements for routes that appear or change — at seeded timestamps
/// inside the stable window (so
/// [`reconstruct_stable`](crate::updates::reconstruct_stable) at
/// `cfg.snapshot_time` recovers exactly the after set). Records are
/// timestamp-ordered after the dump.
pub fn transition_stream(
    points: &[ObservationPoint],
    before: &[RouteObservation],
    after: &[RouteObservation],
    cfg: &UpdateStreamConfig,
    seed: u64,
) -> Vec<MrtRecord> {
    assert!(
        cfg.dump_time < cfg.snapshot_time,
        "dump must precede snapshot"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::new();

    records.push(MrtRecord {
        timestamp: cfg.dump_time,
        body: MrtBody::PeerIndexTable(PeerIndexTable {
            collector_id: 0x7F000001,
            view_name: "quasar-transition".into(),
            peers: points
                .iter()
                .map(|p| PeerEntry {
                    bgp_id: p.router.0,
                    address: PeerAddress::V4(p.router.0),
                    asn: p.observer_as().0,
                    as4: true,
                })
                .collect(),
        }),
    });

    // The before-RIB, grouped by prefix.
    let index: BTreeMap<u32, u16> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.id, i as u16))
        .collect();
    let mut by_prefix: BTreeMap<Prefix, Vec<&RouteObservation>> = BTreeMap::new();
    for o in before {
        by_prefix.entry(o.prefix).or_default().push(o);
    }
    for (seq, (prefix, group)) in by_prefix.iter().enumerate() {
        records.push(MrtRecord {
            timestamp: cfg.dump_time,
            body: MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                sequence: seq as u32,
                prefix: NlriPrefix::new(prefix.base, prefix.len).expect("valid prefix"),
                entries: group
                    .iter()
                    .map(|o| RibEntry {
                        peer_index: index[&o.point],
                        originated_time: cfg.dump_time,
                        attributes: path_attrs(&o.as_path, o.point),
                    })
                    .collect(),
            }),
        });
    }

    // The diff, one update per changed route, inside the stable window.
    let before_map: BTreeMap<(u32, Prefix), &AsPath> = before
        .iter()
        .map(|o| ((o.point, o.prefix), &o.as_path))
        .collect();
    let after_map: BTreeMap<(u32, Prefix), &RouteObservation> =
        after.iter().map(|o| ((o.point, o.prefix), o)).collect();
    let cutoff = cfg.snapshot_time.saturating_sub(cfg.stability_window);
    assert!(cfg.dump_time + 1 < cutoff, "no room inside stable window");
    let point_by_id: BTreeMap<u32, &ObservationPoint> = points.iter().map(|p| (p.id, p)).collect();
    let mut updates: Vec<MrtRecord> = Vec::new();
    let push_update = |rng: &mut StdRng, feed: u32, update: BgpUpdate, out: &mut Vec<MrtRecord>| {
        let Some(p) = point_by_id.get(&feed) else {
            return;
        };
        out.push(MrtRecord {
            timestamp: rng.gen_range(cfg.dump_time + 1..cutoff),
            body: MrtBody::Bgp4mp(Bgp4mpMessage {
                peer_asn: p.observer_as().0,
                local_asn: 65_000,
                interface: 0,
                peer_ip: p.router.0,
                local_ip: 0x7F000001,
                as4: true,
                message: BgpMessage::Update(update),
            }),
        });
    };
    for &(feed, prefix) in before_map.keys() {
        if after_map.contains_key(&(feed, prefix)) {
            continue;
        }
        let nlri = NlriPrefix::new(prefix.base, prefix.len).expect("valid prefix");
        push_update(
            &mut rng,
            feed,
            BgpUpdate {
                withdrawn: vec![nlri],
                attributes: Vec::new(),
                announced: Vec::new(),
            },
            &mut updates,
        );
    }
    for (&(feed, prefix), o) in &after_map {
        if before_map.get(&(feed, prefix)) == Some(&&o.as_path) {
            continue; // unchanged
        }
        let nlri = NlriPrefix::new(prefix.base, prefix.len).expect("valid prefix");
        push_update(
            &mut rng,
            feed,
            BgpUpdate {
                withdrawn: Vec::new(),
                attributes: path_attrs(&o.as_path, o.point),
                announced: vec![nlri],
            },
            &mut updates,
        );
    }
    updates.sort_by_key(|r| r.timestamp);
    records.extend(updates);
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetGenConfig;
    use crate::observe::SyntheticInternet;
    use crate::updates::reconstruct_stable;

    fn sorted_keys(obs: &[RouteObservation]) -> Vec<(u32, Prefix, String)> {
        let mut v: Vec<_> = obs
            .iter()
            .map(|o| (o.point, o.prefix, o.as_path.to_string()))
            .collect();
        v.sort();
        v.dedup();
        v
    }

    fn graph_and_origins(
        obs: &[RouteObservation],
    ) -> (BTreeSet<(Asn, Asn)>, BTreeMap<Prefix, Asn>) {
        let mut edges = BTreeSet::new();
        let mut origins = BTreeMap::new();
        for o in obs {
            for (a, b) in o.as_path.edges() {
                edges.insert(edge_key(a, b));
            }
            if let Some(or) = o.as_path.origin() {
                origins.insert(o.prefix, or);
            }
        }
        (edges, origins)
    }

    #[test]
    fn graph_preserving_shifts_keep_graph_and_origins() {
        let net = SyntheticInternet::generate(NetGenConfig::tiny(41));
        let cfg = PerturbationConfig::graph_preserving(6);
        let p = perturb_observations(&net.observation_points, &net.observations, &cfg, 7);
        assert!(!p.shifted.is_empty(), "no shift candidates found at all");
        assert!(p.rehomed.is_empty() && p.added.is_empty());
        let (e0, o0) = graph_and_origins(&net.observations);
        let (e1, o1) = graph_and_origins(&p.after);
        assert_eq!(e0, e1, "AS graph must be unchanged");
        assert_eq!(o0, o1, "origin map must be unchanged");
        assert_eq!(
            p.dirty_prefixes,
            p.shifted
                .iter()
                .map(|(_, pfx)| *pfx)
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn full_perturbation_changes_what_it_claims() {
        let net = SyntheticInternet::generate(NetGenConfig::tiny(42));
        let cfg = PerturbationConfig::default();
        let p = perturb_observations(&net.observation_points, &net.observations, &cfg, 8);
        assert!(!p.dirty_prefixes.is_empty());
        let before_prefixes: BTreeSet<Prefix> = net.observations.iter().map(|o| o.prefix).collect();
        for (added, _) in &p.added {
            assert!(!before_prefixes.contains(added));
            assert!(p.after.iter().any(|o| o.prefix == *added));
        }
        for (prefix, old, new) in &p.rehomed {
            assert_ne!(old, new);
            for o in p.after.iter().filter(|o| o.prefix == *prefix) {
                assert_eq!(o.as_path.origin(), Some(*new));
            }
        }
        // Untouched prefixes are bit-identical.
        let dirty: BTreeSet<Prefix> = p.dirty_prefixes.iter().copied().collect();
        let clean_before: Vec<_> = net
            .observations
            .iter()
            .filter(|o| !dirty.contains(&o.prefix))
            .cloned()
            .collect();
        let clean_after: Vec<_> = p
            .after
            .iter()
            .filter(|o| !dirty.contains(&o.prefix))
            .cloned()
            .collect();
        assert_eq!(sorted_keys(&clean_before), sorted_keys(&clean_after));
    }

    #[test]
    fn transition_stream_replays_to_the_after_set() {
        let net = SyntheticInternet::generate(NetGenConfig::tiny(43));
        let pcfg = PerturbationConfig::default();
        let p = perturb_observations(&net.observation_points, &net.observations, &pcfg, 9);
        let ucfg = UpdateStreamConfig::default();
        let recs = transition_stream(
            &net.observation_points,
            &net.observations,
            &p.after,
            &ucfg,
            10,
        );
        let (_, obs) = reconstruct_stable(&recs, ucfg.snapshot_time, ucfg.stability_window);
        assert_eq!(sorted_keys(&obs), sorted_keys(&p.after));
    }

    #[test]
    fn transition_stream_round_trips_through_bytes() {
        let net = SyntheticInternet::generate(NetGenConfig::tiny(44));
        let pcfg = PerturbationConfig::graph_preserving(4);
        let p = perturb_observations(&net.observation_points, &net.observations, &pcfg, 11);
        let ucfg = UpdateStreamConfig::default();
        let recs = transition_stream(
            &net.observation_points,
            &net.observations,
            &p.after,
            &ucfg,
            12,
        );
        let mut w = MrtWriter::new(Vec::new());
        for r in &recs {
            w.write_record(r).unwrap();
        }
        let bytes = w.finish().unwrap();
        let back = MrtReader::new(&bytes[..]).read_all().unwrap();
        assert_eq!(back, recs);
        // The stream must contain real withdrawals whenever a route
        // vanished (re-homings withdraw from non-donor feeds).
        let after_keys: BTreeSet<(u32, Prefix)> =
            p.after.iter().map(|o| (o.point, o.prefix)).collect();
        let vanished = net
            .observations
            .iter()
            .any(|o| !after_keys.contains(&(o.point, o.prefix)));
        if vanished {
            let has_withdraw = recs.iter().any(|r| {
                matches!(
                    &r.body,
                    MrtBody::Bgp4mp(m) if matches!(
                        &m.message,
                        BgpMessage::Update(u) if !u.withdrawn.is_empty()
                    )
                )
            });
            assert!(has_withdraw);
        }
    }

    #[test]
    fn block_perturbation_stays_inside_the_block() {
        let net = SyntheticInternet::generate(NetGenConfig::tiny(45));
        let all: BTreeSet<Prefix> = net.observations.iter().map(|o| o.prefix).collect();
        let prefixes: Vec<Prefix> = all.into_iter().collect();
        let block = (2usize, 5usize);
        let allowed: BTreeSet<Prefix> = prefixes
            .iter()
            .skip(block.0)
            .take(block.1)
            .copied()
            .collect();
        let cfg = PerturbationConfig::graph_preserving(100);
        let p = perturb_observations_in_block(
            &net.observation_points,
            &net.observations,
            &cfg,
            13,
            block,
        );
        for d in &p.dirty_prefixes {
            assert!(allowed.contains(d), "{d} escaped the block");
        }
    }
}
