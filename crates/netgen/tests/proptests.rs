//! Property tests over randomly seeded synthetic Internets: structural
//! invariants of the generator and of the feeds it produces.

use proptest::prelude::*;
use quasar_netgen::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every generated Internet satisfies the §3.1 structural facts the
    /// model pipeline depends on.
    #[test]
    fn internet_structural_invariants(seed in 0u64..200) {
        let net = SyntheticInternet::generate(NetGenConfig::tiny(seed));

        // (1) Hierarchy: tier-1 clique of peers; every non-tier-1 has a
        // provider; stubs have no customers.
        let t1 = net.as_topology.tier1();
        for (i, &a) in t1.iter().enumerate() {
            for &b in &t1[i + 1..] {
                prop_assert!(net.as_topology.ases[&a].peers.contains(&b));
            }
        }
        for g in net.as_topology.ases.values() {
            match g.tier {
                Tier::Tier1 => prop_assert!(g.providers.is_empty()),
                _ => prop_assert!(!g.providers.is_empty()),
            }
            if g.tier == Tier::Stub {
                prop_assert!(g.customers.is_empty());
            }
        }

        // (2) Feeds: every observation starts at its observer, ends at the
        // prefix's origin, and is loop-free.
        let origin_of: BTreeMap<_, _> = net.prefixes.iter().copied().collect();
        for o in &net.observations {
            prop_assert_eq!(o.as_path.head(), Some(o.observer_as));
            prop_assert_eq!(o.as_path.origin().unwrap(), origin_of[&o.prefix]);
            prop_assert!(!o.as_path.has_loop());
        }

        // (3) Every adjacent pair on every observed path is a true AS edge.
        for o in &net.observations {
            for (a, b) in o.as_path.edges() {
                prop_assert!(
                    net.as_topology.ases[&a].neighbors().any(|n| n == b),
                    "observed path uses non-edge {a}-{b}"
                );
            }
        }
    }

    /// Observed paths are valley-free against the ground-truth
    /// relationships whenever no weird policy touches their prefix (origin
    /// TE only removes announcements; it cannot create valleys).
    #[test]
    fn observed_paths_valley_free_modulo_weirdness(seed in 0u64..100) {
        use quasar_topology::gao::is_valley_free;
        let cfg = NetGenConfig {
            weird_policy_fraction: 0.0,
            ..NetGenConfig::tiny(seed)
        };
        let net = SyntheticInternet::generate(cfg);
        let truth = net.as_topology.ground_truth_relationships();
        for o in &net.observations {
            prop_assert!(
                is_valley_free(&o.as_path, &truth),
                "valley in {}",
                o.as_path
            );
        }
    }

    /// MRT export/import is lossless for any seed.
    #[test]
    fn mrt_roundtrip_any_seed(seed in 0u64..100) {
        let net = SyntheticInternet::generate(NetGenConfig::tiny(seed));
        let bytes = export_table_dump_v2(&net.observation_points, &net.observations);
        let (points, obs) = import_table_dump_v2(&bytes).unwrap();
        prop_assert_eq!(points.len(), net.observation_points.len());
        let mut a: Vec<_> = obs.iter().map(|o| (o.point, o.prefix, o.as_path.clone())).collect();
        let mut b: Vec<_> = net.observations.iter().map(|o| (o.point, o.prefix, o.as_path.clone())).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Update-stream reconstruction with no flapping is the identity.
    #[test]
    fn update_stream_identity(seed in 0u64..50) {
        let net = SyntheticInternet::generate(NetGenConfig::tiny(seed));
        let cfg = UpdateStreamConfig { flap_fraction: 0.0, ..UpdateStreamConfig::default() };
        let recs = generate_update_stream(&net.observation_points, &net.observations, &cfg, seed);
        let (_, obs) = reconstruct_stable(&recs, cfg.snapshot_time, cfg.stability_window);
        let mut a: Vec<_> = obs.iter().map(|o| (o.point, o.prefix, o.as_path.clone())).collect();
        let mut b: Vec<_> = net.observations.iter().map(|o| (o.point, o.prefix, o.as_path.clone())).collect();
        a.sort(); a.dedup();
        b.sort(); b.dedup();
        prop_assert_eq!(a, b);
    }
}
