use quasar_netgen::prelude::*;
use std::collections::BTreeMap;
fn main() {
    for seed in [1u64, 6, 42] {
        for (name, cfg) in [
            ("tiny", NetGenConfig::tiny(seed)),
            (
                "default",
                NetGenConfig {
                    seed,
                    ..NetGenConfig::default()
                },
            ),
        ] {
            let t0 = std::time::Instant::now();
            let net = SyntheticInternet::generate(cfg);
            let mut by_pair: BTreeMap<(u32, u32), std::collections::BTreeSet<String>> =
                BTreeMap::new();
            for o in &net.observations {
                by_pair
                    .entry((o.observer_as.0, o.as_path.origin().unwrap().0))
                    .or_default()
                    .insert(o.as_path.to_string());
            }
            let total = by_pair.len();
            let diverse = by_pair.values().filter(|s| s.len() > 1).count();
            let maxd = by_pair.values().map(|s| s.len()).max().unwrap_or(0);
            println!("{name} seed={seed}: obs={} points={} pairs={total} diverse={diverse} ({:.1}%) maxdiv={maxd} elapsed={:?}",
                net.observations.len(), net.observation_points.len(), 100.0*diverse as f64/total as f64, t0.elapsed());
        }
    }
}
