//! The MRT common header (RFC 6396 §2) and record-body dispatch.

use crate::bgp4mp::Bgp4mpMessage;
use crate::error::{MrtError, Result};
use crate::ipv6::{RibIpv6Unicast, SUBTYPE_RIB_IPV6_UNICAST};
use crate::tabledump::TableDumpEntry;
use crate::tabledump2::{self, PeerIndexTable, RibIpv4Unicast};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// MRT type codes handled natively.
pub mod mrt_type {
    /// Legacy TABLE_DUMP.
    pub const TABLE_DUMP: u16 = 12;
    /// TABLE_DUMP_V2.
    pub const TABLE_DUMP_V2: u16 = 13;
    /// BGP4MP.
    pub const BGP4MP: u16 = 16;
}

/// A decoded MRT record body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrtBody {
    /// TABLE_DUMP_V2 / PEER_INDEX_TABLE.
    PeerIndexTable(PeerIndexTable),
    /// TABLE_DUMP_V2 / RIB_IPV4_UNICAST.
    RibIpv4Unicast(RibIpv4Unicast),
    /// TABLE_DUMP_V2 / RIB_IPV6_UNICAST.
    RibIpv6Unicast(RibIpv6Unicast),
    /// Legacy TABLE_DUMP (IPv4).
    TableDump(TableDumpEntry),
    /// BGP4MP message.
    Bgp4mp(Bgp4mpMessage),
    /// Unhandled type/subtype, payload preserved.
    Unknown {
        /// MRT type code.
        mrt_type: u16,
        /// MRT subtype.
        subtype: u16,
        /// Raw body.
        data: Vec<u8>,
    },
}

/// One MRT record: header timestamp + typed body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrtRecord {
    /// UNIX timestamp of the record.
    pub timestamp: u32,
    /// The body.
    pub body: MrtBody,
}

impl MrtRecord {
    /// `(type, subtype)` codes this record serializes under.
    pub fn type_codes(&self) -> (u16, u16) {
        match &self.body {
            MrtBody::PeerIndexTable(_) => (
                mrt_type::TABLE_DUMP_V2,
                tabledump2::subtype::PEER_INDEX_TABLE,
            ),
            MrtBody::RibIpv4Unicast(_) => (
                mrt_type::TABLE_DUMP_V2,
                tabledump2::subtype::RIB_IPV4_UNICAST,
            ),
            MrtBody::RibIpv6Unicast(_) => (mrt_type::TABLE_DUMP_V2, SUBTYPE_RIB_IPV6_UNICAST),
            MrtBody::TableDump(_) => (mrt_type::TABLE_DUMP, crate::tabledump::SUBTYPE_AFI_IPV4),
            MrtBody::Bgp4mp(m) => (mrt_type::BGP4MP, m.subtype()),
            MrtBody::Unknown {
                mrt_type, subtype, ..
            } => (*mrt_type, *subtype),
        }
    }

    /// Serializes the full record (header + body).
    pub fn encode(&self) -> Bytes {
        let body: Bytes = match &self.body {
            MrtBody::PeerIndexTable(t) => t.encode(),
            MrtBody::RibIpv4Unicast(r) => r.encode(),
            MrtBody::RibIpv6Unicast(r) => r.encode(),
            MrtBody::TableDump(t) => t.encode(),
            MrtBody::Bgp4mp(m) => m.encode(),
            MrtBody::Unknown { data, .. } => Bytes::from(data.clone()),
        };
        let (t, s) = self.type_codes();
        let mut out = BytesMut::with_capacity(12 + body.len());
        out.put_u32(self.timestamp);
        out.put_u16(t);
        out.put_u16(s);
        out.put_u32(body.len() as u32);
        out.extend_from_slice(&body);
        out.freeze()
    }

    /// Parses one record from the front of `data`, advancing it.
    pub fn decode(data: &mut Bytes) -> Result<Self> {
        if data.remaining() < 12 {
            return Err(MrtError::Truncated {
                context: "MRT common header",
            });
        }
        let timestamp = data.get_u32();
        let t = data.get_u16();
        let s = data.get_u16();
        let len = data.get_u32() as usize;
        if data.remaining() < len {
            return Err(MrtError::Truncated {
                context: "MRT record body",
            });
        }
        let body_bytes = data.split_to(len);
        let body = match (t, s) {
            (mrt_type::TABLE_DUMP_V2, tabledump2::subtype::PEER_INDEX_TABLE) => {
                MrtBody::PeerIndexTable(PeerIndexTable::decode(body_bytes)?)
            }
            (mrt_type::TABLE_DUMP_V2, tabledump2::subtype::RIB_IPV4_UNICAST) => {
                MrtBody::RibIpv4Unicast(RibIpv4Unicast::decode(body_bytes)?)
            }
            (mrt_type::TABLE_DUMP_V2, SUBTYPE_RIB_IPV6_UNICAST) => {
                MrtBody::RibIpv6Unicast(RibIpv6Unicast::decode(body_bytes)?)
            }
            (mrt_type::TABLE_DUMP, crate::tabledump::SUBTYPE_AFI_IPV4) => {
                MrtBody::TableDump(TableDumpEntry::decode(body_bytes)?)
            }
            (mrt_type::BGP4MP, sub)
                if sub == crate::bgp4mp::subtype::MESSAGE
                    || sub == crate::bgp4mp::subtype::MESSAGE_AS4 =>
            {
                MrtBody::Bgp4mp(Bgp4mpMessage::decode(body_bytes, sub)?)
            }
            _ => MrtBody::Unknown {
                mrt_type: t,
                subtype: s,
                data: body_bytes.to_vec(),
            },
        };
        Ok(MrtRecord { timestamp, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_record_roundtrip() {
        let rec = MrtRecord {
            timestamp: 1_131_868_200,
            body: MrtBody::Unknown {
                mrt_type: 99,
                subtype: 7,
                data: vec![1, 2, 3, 4],
            },
        };
        let mut bytes = rec.encode();
        let dec = MrtRecord::decode(&mut bytes).unwrap();
        assert_eq!(dec, rec);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn truncated_header_errors() {
        let mut data = Bytes::from_static(&[0, 0, 0]);
        assert!(MrtRecord::decode(&mut data).is_err());
    }

    #[test]
    fn truncated_body_errors() {
        let rec = MrtRecord {
            timestamp: 1,
            body: MrtBody::Unknown {
                mrt_type: 99,
                subtype: 7,
                data: vec![1, 2, 3, 4],
            },
        };
        let enc = rec.encode();
        let mut cut = enc.slice(0..enc.len() - 2);
        assert!(MrtRecord::decode(&mut cut).is_err());
    }
}
