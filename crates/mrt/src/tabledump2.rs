//! TABLE_DUMP_V2 (RFC 6396 §4.3) — the format RouteViews and RIPE RIS use
//! for RIB snapshots: one PEER_INDEX_TABLE record followed by one
//! RIB_IPV4_UNICAST record per prefix, each holding the route of every peer
//! that announced it.

use crate::attributes::{decode_attributes, encode_attributes, AsWidth, PathAttribute};
use crate::error::{MrtError, Result};
use crate::nlri::{decode_prefix, encode_prefix, NlriPrefix};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Subtype constants within MRT type 13 (TABLE_DUMP_V2).
pub mod subtype {
    /// PEER_INDEX_TABLE.
    pub const PEER_INDEX_TABLE: u16 = 1;
    /// RIB_IPV4_UNICAST.
    pub const RIB_IPV4_UNICAST: u16 = 2;
}

/// Peer address (the collector may peer over v4 or v6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerAddress {
    /// IPv4, host order.
    V4(u32),
    /// IPv6, 16 raw octets.
    V6([u8; 16]),
}

/// One peer of the collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerEntry {
    /// Peer BGP identifier.
    pub bgp_id: u32,
    /// Peer address.
    pub address: PeerAddress,
    /// Peer AS number.
    pub asn: u32,
    /// True if the ASN is encoded with 4 bytes.
    pub as4: bool,
}

/// The PEER_INDEX_TABLE record body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PeerIndexTable {
    /// Collector BGP identifier.
    pub collector_id: u32,
    /// Optional view name.
    pub view_name: String,
    /// Peers, in index order; RIB entries reference them by position.
    pub peers: Vec<PeerEntry>,
}

impl PeerIndexTable {
    /// Serializes the body.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::new();
        out.put_u32(self.collector_id);
        out.put_u16(self.view_name.len() as u16);
        out.extend_from_slice(self.view_name.as_bytes());
        out.put_u16(self.peers.len() as u16);
        for p in &self.peers {
            let mut t = 0u8;
            if matches!(p.address, PeerAddress::V6(_)) {
                t |= 0x01;
            }
            if p.as4 {
                t |= 0x02;
            }
            out.put_u8(t);
            out.put_u32(p.bgp_id);
            match p.address {
                PeerAddress::V4(ip) => out.put_u32(ip),
                PeerAddress::V6(ip) => out.extend_from_slice(&ip),
            }
            if p.as4 {
                out.put_u32(p.asn);
            } else {
                out.put_u16(p.asn as u16);
            }
        }
        out.freeze()
    }

    /// Parses the body.
    pub fn decode(mut data: Bytes) -> Result<Self> {
        if data.remaining() < 8 {
            return Err(MrtError::Truncated {
                context: "peer index table header",
            });
        }
        let collector_id = data.get_u32();
        let name_len = data.get_u16() as usize;
        if data.remaining() < name_len + 2 {
            return Err(MrtError::Truncated {
                context: "peer index view name",
            });
        }
        let view_name = String::from_utf8_lossy(&data.split_to(name_len)).into_owned();
        let count = data.get_u16() as usize;
        let mut peers = Vec::with_capacity(count);
        for _ in 0..count {
            if data.remaining() < 5 {
                return Err(MrtError::Truncated {
                    context: "peer entry header",
                });
            }
            let t = data.get_u8();
            let bgp_id = data.get_u32();
            let v6 = t & 0x01 != 0;
            let as4 = t & 0x02 != 0;
            let addr_len = if v6 { 16 } else { 4 };
            let asn_len = if as4 { 4 } else { 2 };
            if data.remaining() < addr_len + asn_len {
                return Err(MrtError::Truncated {
                    context: "peer entry body",
                });
            }
            let address = if v6 {
                let mut ip = [0u8; 16];
                data.copy_to_slice(&mut ip);
                PeerAddress::V6(ip)
            } else {
                PeerAddress::V4(data.get_u32())
            };
            let asn = if as4 {
                data.get_u32()
            } else {
                data.get_u16() as u32
            };
            peers.push(PeerEntry {
                bgp_id,
                address,
                asn,
                as4,
            });
        }
        Ok(PeerIndexTable {
            collector_id,
            view_name,
            peers,
        })
    }
}

/// One peer's route inside a RIB record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibEntry {
    /// Index into the PEER_INDEX_TABLE.
    pub peer_index: u16,
    /// When the route was last changed (UNIX seconds) — the paper uses this
    /// to select routes "stable ... for at least one hour" (§3.1).
    pub originated_time: u32,
    /// BGP path attributes (AS_PATH uses 4-byte ASNs per RFC 6396).
    pub attributes: Vec<PathAttribute>,
}

/// A RIB_IPV4_UNICAST record body: all routes for one prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibIpv4Unicast {
    /// Monotone record sequence number.
    pub sequence: u32,
    /// The destination prefix.
    pub prefix: NlriPrefix,
    /// Per-peer routes.
    pub entries: Vec<RibEntry>,
}

impl RibIpv4Unicast {
    /// Serializes the body.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::new();
        out.put_u32(self.sequence);
        encode_prefix(&self.prefix, &mut out);
        out.put_u16(self.entries.len() as u16);
        for e in &self.entries {
            out.put_u16(e.peer_index);
            out.put_u32(e.originated_time);
            let attrs = encode_attributes(&e.attributes, AsWidth::Four);
            out.put_u16(attrs.len() as u16);
            out.extend_from_slice(&attrs);
        }
        out.freeze()
    }

    /// Parses the body.
    pub fn decode(mut data: Bytes) -> Result<Self> {
        if data.remaining() < 4 {
            return Err(MrtError::Truncated {
                context: "RIB sequence",
            });
        }
        let sequence = data.get_u32();
        let prefix = decode_prefix(&mut data)?;
        if data.remaining() < 2 {
            return Err(MrtError::Truncated {
                context: "RIB entry count",
            });
        }
        let count = data.get_u16() as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            if data.remaining() < 8 {
                return Err(MrtError::Truncated {
                    context: "RIB entry header",
                });
            }
            let peer_index = data.get_u16();
            let originated_time = data.get_u32();
            let alen = data.get_u16() as usize;
            if data.remaining() < alen {
                return Err(MrtError::Truncated {
                    context: "RIB entry attributes",
                });
            }
            let attributes = decode_attributes(data.split_to(alen), AsWidth::Four)?;
            entries.push(RibEntry {
                peer_index,
                originated_time,
                attributes,
            });
        }
        Ok(RibIpv4Unicast {
            sequence,
            prefix,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AsPathSegment;

    fn sample_peers() -> PeerIndexTable {
        PeerIndexTable {
            collector_id: 0x0A0A0A0A,
            view_name: "rv2".into(),
            peers: vec![
                PeerEntry {
                    bgp_id: 1,
                    address: PeerAddress::V4(0xC0000201),
                    asn: 7018,
                    as4: false,
                },
                PeerEntry {
                    bgp_id: 2,
                    address: PeerAddress::V6([0xFE; 16]),
                    asn: 4_200_000_000,
                    as4: true,
                },
            ],
        }
    }

    #[test]
    fn peer_index_roundtrip() {
        let t = sample_peers();
        let dec = PeerIndexTable::decode(t.encode()).unwrap();
        assert_eq!(dec, t);
    }

    #[test]
    fn empty_view_name_ok() {
        let t = PeerIndexTable {
            collector_id: 5,
            view_name: String::new(),
            peers: vec![],
        };
        assert_eq!(PeerIndexTable::decode(t.encode()).unwrap(), t);
    }

    #[test]
    fn rib_roundtrip() {
        let rib = RibIpv4Unicast {
            sequence: 42,
            prefix: NlriPrefix::new(0xC6336400, 24).unwrap(),
            entries: vec![
                RibEntry {
                    peer_index: 0,
                    originated_time: 1_131_868_200,
                    attributes: vec![
                        PathAttribute::Origin(0),
                        PathAttribute::AsPath(vec![AsPathSegment::sequence(vec![
                            7018, 3356, 24249,
                        ])]),
                        PathAttribute::NextHop(0xC0000201),
                    ],
                },
                RibEntry {
                    peer_index: 1,
                    originated_time: 1_131_868_300,
                    attributes: vec![PathAttribute::Med(10)],
                },
            ],
        };
        let dec = RibIpv4Unicast::decode(rib.encode()).unwrap();
        assert_eq!(dec, rib);
    }

    #[test]
    fn truncated_rib_errors() {
        let rib = RibIpv4Unicast {
            sequence: 1,
            prefix: NlriPrefix::new(0x0A000000, 8).unwrap(),
            entries: vec![],
        };
        let enc = rib.encode();
        assert!(RibIpv4Unicast::decode(enc.slice(0..3)).is_err());
    }
}
