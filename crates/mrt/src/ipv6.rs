//! IPv6 NLRI and RIB_IPV6_UNICAST (RFC 6396 §4.3.2, subtype 4).
//!
//! The reproduction pipeline is IPv4 (as the paper's 2005 dataset was),
//! but real archives carry IPv6 tables too; the codec handles them so a
//! full RouteViews file parses without `Unknown` fallbacks.

use crate::attributes::{decode_attributes, encode_attributes, AsWidth};
use crate::error::{MrtError, Result};
use crate::tabledump2::RibEntry;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Subtype code for RIB_IPV6_UNICAST.
pub const SUBTYPE_RIB_IPV6_UNICAST: u16 = 4;

/// An IPv6 prefix as carried in NLRI fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NlriPrefix6 {
    /// Network address (16 octets), masked to `len` bits.
    pub base: [u8; 16],
    /// Prefix length (0..=128).
    pub len: u8,
}

impl NlriPrefix6 {
    /// Builds a prefix, masking host bits away.
    pub fn new(mut base: [u8; 16], len: u8) -> Result<Self> {
        if len > 128 {
            return Err(MrtError::BadPrefixLength(len));
        }
        for (i, b) in base.iter_mut().enumerate() {
            let bit_start = (i * 8) as u8;
            if bit_start >= len {
                *b = 0;
            } else if len - bit_start < 8 {
                *b &= 0xFF << (8 - (len - bit_start));
            }
        }
        Ok(NlriPrefix6 { base, len })
    }

    fn packed_octets(&self) -> usize {
        (self.len as usize).div_ceil(8)
    }
}

/// Appends the packed `len + bits` form.
pub fn encode_prefix6(p: &NlriPrefix6, out: &mut BytesMut) {
    out.put_u8(p.len);
    out.extend_from_slice(&p.base[..p.packed_octets()]);
}

/// Reads one packed IPv6 prefix.
pub fn decode_prefix6(data: &mut Bytes) -> Result<NlriPrefix6> {
    if !data.has_remaining() {
        return Err(MrtError::Truncated {
            context: "IPv6 NLRI length byte",
        });
    }
    let len = data.get_u8();
    if len > 128 {
        return Err(MrtError::BadPrefixLength(len));
    }
    let octets = (len as usize).div_ceil(8);
    if data.remaining() < octets {
        return Err(MrtError::Truncated {
            context: "IPv6 NLRI prefix bits",
        });
    }
    let mut base = [0u8; 16];
    data.copy_to_slice(&mut base[..octets]);
    NlriPrefix6::new(base, len)
}

/// A RIB_IPV6_UNICAST record body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibIpv6Unicast {
    /// Monotone record sequence number.
    pub sequence: u32,
    /// The destination prefix.
    pub prefix: NlriPrefix6,
    /// Per-peer routes (same entry layout as IPv4).
    pub entries: Vec<RibEntry>,
}

impl RibIpv6Unicast {
    /// Serializes the body.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::new();
        out.put_u32(self.sequence);
        encode_prefix6(&self.prefix, &mut out);
        out.put_u16(self.entries.len() as u16);
        for e in &self.entries {
            out.put_u16(e.peer_index);
            out.put_u32(e.originated_time);
            let attrs = encode_attributes(&e.attributes, AsWidth::Four);
            out.put_u16(attrs.len() as u16);
            out.extend_from_slice(&attrs);
        }
        out.freeze()
    }

    /// Parses the body.
    pub fn decode(mut data: Bytes) -> Result<Self> {
        if data.remaining() < 4 {
            return Err(MrtError::Truncated {
                context: "IPv6 RIB sequence",
            });
        }
        let sequence = data.get_u32();
        let prefix = decode_prefix6(&mut data)?;
        if data.remaining() < 2 {
            return Err(MrtError::Truncated {
                context: "IPv6 RIB entry count",
            });
        }
        let count = data.get_u16() as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            if data.remaining() < 8 {
                return Err(MrtError::Truncated {
                    context: "IPv6 RIB entry header",
                });
            }
            let peer_index = data.get_u16();
            let originated_time = data.get_u32();
            let alen = data.get_u16() as usize;
            if data.remaining() < alen {
                return Err(MrtError::Truncated {
                    context: "IPv6 RIB entry attributes",
                });
            }
            let attributes = decode_attributes(data.split_to(alen), AsWidth::Four)?;
            entries.push(RibEntry {
                peer_index,
                originated_time,
                attributes,
            });
        }
        Ok(RibIpv6Unicast {
            sequence,
            prefix,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{AsPathSegment, PathAttribute};

    fn v6(s: &[u8], len: u8) -> NlriPrefix6 {
        let mut base = [0u8; 16];
        base[..s.len()].copy_from_slice(s);
        NlriPrefix6::new(base, len).unwrap()
    }

    #[test]
    fn prefix_roundtrip_various_lengths() {
        for (bytes, len) in [
            (&[0x20u8, 0x01, 0x0d, 0xb8][..], 32u8),
            (&[0x20, 0x01][..], 16),
            (&[][..], 0),
            (&[0xff; 16][..], 128),
            (&[0x20, 0x01, 0x0d, 0xb8, 0x80][..], 33),
        ] {
            let p = v6(bytes, len);
            let mut buf = BytesMut::new();
            encode_prefix6(&p, &mut buf);
            let mut b = buf.freeze();
            assert_eq!(decode_prefix6(&mut b).unwrap(), p);
            assert!(!b.has_remaining());
        }
    }

    #[test]
    fn host_bits_masked() {
        let p = v6(&[0xFF, 0xFF, 0xFF], 17);
        assert_eq!(p.base[0], 0xFF);
        assert_eq!(p.base[1], 0xFF);
        assert_eq!(p.base[2], 0x80);
    }

    #[test]
    fn invalid_length_rejected() {
        assert!(NlriPrefix6::new([0; 16], 129).is_err());
    }

    #[test]
    fn rib_roundtrip() {
        let rib = RibIpv6Unicast {
            sequence: 9,
            prefix: v6(&[0x20, 0x01, 0x0d, 0xb8], 32),
            entries: vec![RibEntry {
                peer_index: 1,
                originated_time: 1_131_868_200,
                attributes: vec![
                    PathAttribute::Origin(0),
                    PathAttribute::AsPath(vec![AsPathSegment::sequence(vec![7018, 6939])]),
                ],
            }],
        };
        assert_eq!(RibIpv6Unicast::decode(rib.encode()).unwrap(), rib);
    }
}
