//! BGP4MP (RFC 6396 §4.4) — per-message captures, used for UPDATE streams.
//! The paper notes: "In the future we are planning to also incorporate the
//! AS-path information from BGP updates" (§3.1); this module makes the
//! pipeline ready for that.

use crate::attributes::{decode_attributes, encode_attributes, AsWidth, PathAttribute};
use crate::error::{MrtError, Result};
use crate::nlri::{decode_prefix, encode_prefix, NlriPrefix};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Subtype constants within MRT types 16/17 (BGP4MP / BGP4MP_ET).
pub mod subtype {
    /// BGP4MP_MESSAGE (2-byte ASNs).
    pub const MESSAGE: u16 = 1;
    /// BGP4MP_MESSAGE_AS4 (4-byte ASNs).
    pub const MESSAGE_AS4: u16 = 4;
}

/// A parsed BGP UPDATE.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BgpUpdate {
    /// Withdrawn prefixes.
    pub withdrawn: Vec<NlriPrefix>,
    /// Path attributes of the announced routes.
    pub attributes: Vec<PathAttribute>,
    /// Announced prefixes.
    pub announced: Vec<NlriPrefix>,
}

/// The BGP message inside a BGP4MP record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgpMessage {
    /// UPDATE (type 2).
    Update(BgpUpdate),
    /// KEEPALIVE (type 4).
    KeepAlive,
    /// Any other message type, kept raw.
    Other {
        /// BGP message type byte.
        msg_type: u8,
        /// Raw body after the common header.
        data: Vec<u8>,
    },
}

/// A BGP4MP_MESSAGE / MESSAGE_AS4 record body (IPv4 endpoints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bgp4mpMessage {
    /// Announcing peer AS.
    pub peer_asn: u32,
    /// Collector-side AS.
    pub local_asn: u32,
    /// Interface index (usually 0).
    pub interface: u16,
    /// Peer IPv4 address (host order).
    pub peer_ip: u32,
    /// Local IPv4 address (host order).
    pub local_ip: u32,
    /// True for the MESSAGE_AS4 subtype (4-byte ASNs throughout).
    pub as4: bool,
    /// The carried BGP message.
    pub message: BgpMessage,
}

const AFI_IPV4: u16 = 1;

impl Bgp4mpMessage {
    fn as_width(&self) -> AsWidth {
        if self.as4 {
            AsWidth::Four
        } else {
            AsWidth::Two
        }
    }

    /// The MRT subtype this body serializes as.
    pub fn subtype(&self) -> u16 {
        if self.as4 {
            subtype::MESSAGE_AS4
        } else {
            subtype::MESSAGE
        }
    }

    /// Serializes the body (including the 16-byte BGP marker).
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::new();
        if self.as4 {
            out.put_u32(self.peer_asn);
            out.put_u32(self.local_asn);
        } else {
            out.put_u16(self.peer_asn as u16);
            out.put_u16(self.local_asn as u16);
        }
        out.put_u16(self.interface);
        out.put_u16(AFI_IPV4);
        out.put_u32(self.peer_ip);
        out.put_u32(self.local_ip);

        // BGP message: marker + length + type + body.
        let (msg_type, body): (u8, Bytes) = match &self.message {
            BgpMessage::Update(u) => {
                let mut b = BytesMut::new();
                let mut wd = BytesMut::new();
                for p in &u.withdrawn {
                    encode_prefix(p, &mut wd);
                }
                // The two block-length fields and the total message
                // length are u16s (RFC 4271 caps a message at 4096
                // octets); wrapping silently would corrupt the framing
                // and make the peer misparse everything after it.
                assert!(
                    wd.len() <= u16::MAX as usize,
                    "withdrawn-routes block exceeds the u16 length field"
                );
                b.put_u16(wd.len() as u16);
                b.extend_from_slice(&wd);
                let attrs = encode_attributes(&u.attributes, self.as_width());
                assert!(
                    attrs.len() <= u16::MAX as usize,
                    "path-attribute block exceeds the u16 length field"
                );
                b.put_u16(attrs.len() as u16);
                b.extend_from_slice(&attrs);
                for p in &u.announced {
                    encode_prefix(p, &mut b);
                }
                (2, b.freeze())
            }
            BgpMessage::KeepAlive => (4, Bytes::new()),
            BgpMessage::Other { msg_type, data } => (*msg_type, Bytes::from(data.clone())),
        };
        out.extend_from_slice(&[0xFF; 16]);
        assert!(
            body.len() <= u16::MAX as usize - 19,
            "BGP message body exceeds the u16 length field"
        );
        out.put_u16(19 + body.len() as u16);
        out.put_u8(msg_type);
        out.extend_from_slice(&body);
        out.freeze()
    }

    /// Parses a body given the MRT subtype.
    pub fn decode(mut data: Bytes, subtype: u16) -> Result<Self> {
        let as4 = subtype == subtype::MESSAGE_AS4;
        let head = if as4 { 8 } else { 4 };
        if data.remaining() < head + 4 {
            return Err(MrtError::Truncated {
                context: "BGP4MP header",
            });
        }
        let (peer_asn, local_asn) = if as4 {
            (data.get_u32(), data.get_u32())
        } else {
            (data.get_u16() as u32, data.get_u16() as u32)
        };
        let interface = data.get_u16();
        let afi = data.get_u16();
        if afi != AFI_IPV4 {
            return Err(MrtError::UnsupportedAfi(afi));
        }
        if data.remaining() < 8 {
            return Err(MrtError::Truncated {
                context: "BGP4MP addresses",
            });
        }
        let peer_ip = data.get_u32();
        let local_ip = data.get_u32();

        if data.remaining() < 19 {
            return Err(MrtError::Truncated {
                context: "BGP message header",
            });
        }
        let marker = data.split_to(16);
        if marker.iter().any(|&b| b != 0xFF) {
            return Err(MrtError::BadMarker);
        }
        let msg_len = data.get_u16() as usize;
        let msg_type = data.get_u8();
        if msg_len < 19 || data.remaining() < msg_len - 19 {
            return Err(MrtError::BadLength {
                context: "BGP message length",
                len: msg_len,
            });
        }
        let mut body = data.split_to(msg_len - 19);

        let message = match msg_type {
            2 => {
                if body.remaining() < 2 {
                    return Err(MrtError::Truncated {
                        context: "UPDATE withdrawn length",
                    });
                }
                let wd_len = body.get_u16() as usize;
                if body.remaining() < wd_len {
                    return Err(MrtError::Truncated {
                        context: "UPDATE withdrawn routes",
                    });
                }
                let mut wd = body.split_to(wd_len);
                let mut withdrawn = Vec::new();
                while wd.has_remaining() {
                    withdrawn.push(decode_prefix(&mut wd)?);
                }
                if body.remaining() < 2 {
                    return Err(MrtError::Truncated {
                        context: "UPDATE attribute length",
                    });
                }
                let at_len = body.get_u16() as usize;
                if body.remaining() < at_len {
                    return Err(MrtError::Truncated {
                        context: "UPDATE attributes",
                    });
                }
                let attributes = decode_attributes(
                    body.split_to(at_len),
                    if as4 { AsWidth::Four } else { AsWidth::Two },
                )?;
                let mut announced = Vec::new();
                while body.has_remaining() {
                    announced.push(decode_prefix(&mut body)?);
                }
                BgpMessage::Update(BgpUpdate {
                    withdrawn,
                    attributes,
                    announced,
                })
            }
            4 => BgpMessage::KeepAlive,
            t => BgpMessage::Other {
                msg_type: t,
                data: body.to_vec(),
            },
        };

        Ok(Bgp4mpMessage {
            peer_asn,
            local_asn,
            interface,
            peer_ip,
            local_ip,
            as4,
            message,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AsPathSegment;

    fn sample_update(as4: bool) -> Bgp4mpMessage {
        Bgp4mpMessage {
            peer_asn: if as4 { 4_200_000_000 } else { 7018 },
            local_asn: 65000,
            interface: 0,
            peer_ip: 0xC0000201,
            local_ip: 0xC0000202,
            as4,
            message: BgpMessage::Update(BgpUpdate {
                withdrawn: vec![NlriPrefix::new(0x0B000000, 8).unwrap()],
                attributes: vec![
                    PathAttribute::Origin(0),
                    PathAttribute::AsPath(vec![AsPathSegment::sequence(vec![7018, 5511])]),
                    PathAttribute::NextHop(0xC0000201),
                ],
                announced: vec![
                    NlriPrefix::new(0xC6336400, 24).unwrap(),
                    NlriPrefix::new(0x0A000000, 8).unwrap(),
                ],
            }),
        }
    }

    #[test]
    fn update_roundtrip_2byte() {
        let m = sample_update(false);
        let dec = Bgp4mpMessage::decode(m.encode(), m.subtype()).unwrap();
        assert_eq!(dec, m);
    }

    #[test]
    fn update_roundtrip_4byte() {
        let m = sample_update(true);
        let dec = Bgp4mpMessage::decode(m.encode(), m.subtype()).unwrap();
        assert_eq!(dec, m);
    }

    #[test]
    fn keepalive_roundtrip() {
        let m = Bgp4mpMessage {
            peer_asn: 1,
            local_asn: 2,
            interface: 0,
            peer_ip: 1,
            local_ip: 2,
            as4: false,
            message: BgpMessage::KeepAlive,
        };
        assert_eq!(Bgp4mpMessage::decode(m.encode(), m.subtype()).unwrap(), m);
    }

    /// A pure withdrawal: no attributes, no announced NLRI — the shape a
    /// route's final withdrawal takes on the wire.
    fn withdrawal_only(as4: bool, withdrawn: Vec<NlriPrefix>) -> Bgp4mpMessage {
        Bgp4mpMessage {
            peer_asn: if as4 { 131_072 } else { 3356 },
            local_asn: 65000,
            interface: 0,
            peer_ip: 0x0A000001,
            local_ip: 0x0A000002,
            as4,
            message: BgpMessage::Update(BgpUpdate {
                withdrawn,
                attributes: Vec::new(),
                announced: Vec::new(),
            }),
        }
    }

    #[test]
    fn withdrawal_only_roundtrip_both_widths() {
        for as4 in [false, true] {
            let m = withdrawal_only(as4, vec![NlriPrefix::new(0xC6336400, 24).unwrap()]);
            let dec = Bgp4mpMessage::decode(m.encode(), m.subtype()).unwrap();
            assert_eq!(dec, m);
            let BgpMessage::Update(u) = &dec.message else {
                panic!("not an update");
            };
            assert_eq!(u.withdrawn.len(), 1);
            assert!(u.attributes.is_empty() && u.announced.is_empty());
        }
    }

    #[test]
    fn multiple_withdrawals_of_varied_lengths_roundtrip() {
        // Mixed packed widths (0..=4 octets) exercise the withdrawn-block
        // length arithmetic; order must be preserved exactly.
        let withdrawn = vec![
            NlriPrefix::new(0, 0).unwrap(),
            NlriPrefix::new(0x80000000, 1).unwrap(),
            NlriPrefix::new(0x0A000000, 8).unwrap(),
            NlriPrefix::new(0xC0A80000, 16).unwrap(),
            NlriPrefix::new(0xC0A80100, 24).unwrap(),
            NlriPrefix::new(0xC0A80101, 32).unwrap(),
        ];
        let m = withdrawal_only(true, withdrawn.clone());
        let dec = Bgp4mpMessage::decode(m.encode(), m.subtype()).unwrap();
        let BgpMessage::Update(u) = &dec.message else {
            panic!("not an update");
        };
        assert_eq!(u.withdrawn, withdrawn);
    }

    #[test]
    fn mixed_withdraw_and_announce_roundtrip() {
        // Withdrawals and announcements in one message (RFC 4271 allows
        // both blocks to be non-empty) must land in their own fields.
        let m = sample_update(false);
        let dec = Bgp4mpMessage::decode(m.encode(), m.subtype()).unwrap();
        let BgpMessage::Update(u) = &dec.message else {
            panic!("not an update");
        };
        assert_eq!(u.withdrawn, vec![NlriPrefix::new(0x0B000000, 8).unwrap()]);
        assert_eq!(u.announced.len(), 2);
    }

    #[test]
    fn truncated_withdrawn_block_is_a_typed_error() {
        let m = withdrawal_only(
            false,
            vec![
                NlriPrefix::new(0x0A000000, 8).unwrap(),
                NlriPrefix::new(0xC0A80000, 16).unwrap(),
            ],
        );
        let enc = m.encode();
        // Chop the message anywhere inside the withdrawn block: every cut
        // must produce a typed error, never a panic or a bogus Ok.
        // 2-byte-AS layout: 16 header + 16 marker + 2 len + 1 type = 35
        // bytes before the withdrawn length field.
        for cut in 20..enc.len() {
            let res = Bgp4mpMessage::decode(enc.slice(0..cut), m.subtype());
            assert!(res.is_err(), "cut at {cut} decoded successfully");
        }
    }

    #[test]
    fn withdrawn_length_pointing_past_body_is_truncation() {
        let m = withdrawal_only(false, vec![NlriPrefix::new(0x0A000000, 8).unwrap()]);
        let mut enc = m.encode().to_vec();
        // The withdrawn-routes length field sits right after the 19-byte
        // BGP header, which follows the 16-byte BGP4MP header.
        let wd_len_at = 16 + 19;
        enc[wd_len_at] = 0xFF;
        enc[wd_len_at + 1] = 0xFF;
        assert!(matches!(
            Bgp4mpMessage::decode(Bytes::from(enc), m.subtype()),
            Err(MrtError::Truncated { .. })
        ));
    }

    #[test]
    fn withdrawn_block_cut_mid_prefix_is_typed() {
        // A block length that splits a packed prefix: the inner prefix
        // decoder must surface truncation, not read into the attributes.
        let m = withdrawal_only(false, vec![NlriPrefix::new(0xC0A80000, 16).unwrap()]);
        let mut enc = m.encode().to_vec();
        let wd_len_at = 16 + 19;
        // Shrink the declared block from 3 bytes (len byte + 2 octets) to
        // 2, cutting the prefix bits short.
        assert_eq!(enc[wd_len_at + 1], 3);
        enc[wd_len_at + 1] = 2;
        assert!(matches!(
            Bgp4mpMessage::decode(Bytes::from(enc), m.subtype()),
            Err(MrtError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_marker_rejected() {
        let m = sample_update(false);
        let mut enc = m.encode().to_vec();
        // 2-byte-AS layout: 2+2+2+2+4+4 = 16 header bytes, marker follows.
        enc[16] = 0;
        assert!(matches!(
            Bgp4mpMessage::decode(Bytes::from(enc), m.subtype()),
            Err(MrtError::BadMarker)
        ));
    }

    #[test]
    fn ipv6_afi_unsupported() {
        let m = sample_update(false);
        let mut enc = m.encode().to_vec();
        enc[7] = 2; // AFI field of the 2-byte-AS layout
        assert!(matches!(
            Bgp4mpMessage::decode(Bytes::from(enc), m.subtype()),
            Err(MrtError::UnsupportedAfi(2))
        ));
    }
}
