//! NLRI prefix encoding (RFC 4271 §4.3): one length byte followed by the
//! minimum number of octets holding that many bits.

use crate::error::{MrtError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// An IPv4 prefix as carried in NLRI fields (host byte order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NlriPrefix {
    /// Network address, host order, masked to `len` bits.
    pub base: u32,
    /// Prefix length (0..=32).
    pub len: u8,
}

impl NlriPrefix {
    /// Builds a prefix, masking host bits away.
    pub fn new(base: u32, len: u8) -> Result<Self> {
        if len > 32 {
            return Err(MrtError::BadPrefixLength(len));
        }
        let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
        Ok(NlriPrefix {
            base: base & mask,
            len,
        })
    }

    /// Number of octets the packed form occupies (excluding the length
    /// byte).
    pub fn packed_octets(&self) -> usize {
        (self.len as usize).div_ceil(8)
    }
}

/// Appends the packed `len + bits` form.
pub fn encode_prefix(p: &NlriPrefix, out: &mut BytesMut) {
    out.put_u8(p.len);
    let be = p.base.to_be_bytes();
    out.extend_from_slice(&be[..p.packed_octets()]);
}

/// Reads one packed prefix.
pub fn decode_prefix(data: &mut Bytes) -> Result<NlriPrefix> {
    if !data.has_remaining() {
        return Err(MrtError::Truncated {
            context: "NLRI length byte",
        });
    }
    let len = data.get_u8();
    if len > 32 {
        return Err(MrtError::BadPrefixLength(len));
    }
    let octets = (len as usize).div_ceil(8);
    if data.remaining() < octets {
        return Err(MrtError::Truncated {
            context: "NLRI prefix bits",
        });
    }
    let mut be = [0u8; 4];
    for b in be.iter_mut().take(octets) {
        *b = data.get_u8();
    }
    NlriPrefix::new(u32::from_be_bytes(be), len)
}

/// Reads packed prefixes until `data` is exhausted.
pub fn decode_prefixes(mut data: Bytes) -> Result<Vec<NlriPrefix>> {
    let mut out = Vec::new();
    while data.has_remaining() {
        out.push(decode_prefix(&mut data)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(base: u32, len: u8) {
        let p = NlriPrefix::new(base, len).unwrap();
        let mut buf = BytesMut::new();
        encode_prefix(&p, &mut buf);
        let mut b = buf.freeze();
        let q = decode_prefix(&mut b).unwrap();
        assert_eq!(p, q);
        assert!(!b.has_remaining());
    }

    #[test]
    fn roundtrip_various_lengths() {
        rt(0x0A000000, 8);
        rt(0xC0A80100, 24);
        rt(0xC0A80180, 25);
        rt(0xFFFFFFFF, 32);
        rt(0, 0);
        rt(0x80000000, 1);
    }

    #[test]
    fn host_bits_masked() {
        let p = NlriPrefix::new(0x0A0B0C0D, 16).unwrap();
        assert_eq!(p.base, 0x0A0B0000);
        assert_eq!(p.packed_octets(), 2);
    }

    #[test]
    fn invalid_length_rejected() {
        assert!(NlriPrefix::new(0, 33).is_err());
        let mut data = Bytes::from_static(&[40, 1, 2, 3, 4, 5]);
        assert!(decode_prefix(&mut data).is_err());
    }

    #[test]
    fn multiple_prefixes_decoded() {
        let mut buf = BytesMut::new();
        encode_prefix(&NlriPrefix::new(0x0A000000, 8).unwrap(), &mut buf);
        encode_prefix(&NlriPrefix::new(0xC0A80000, 16).unwrap(), &mut buf);
        let v = decode_prefixes(buf.freeze()).unwrap();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn truncated_bits_error() {
        let data = Bytes::from_static(&[24, 10]); // /24 needs 3 octets
        assert!(decode_prefixes(data).is_err());
    }
}
