//! Streaming reader/writer over `std::io`.

use crate::error::{MrtError, Result};
use crate::record::MrtRecord;
use bytes::Bytes;
use std::io::{Read, Write};

/// Streaming MRT record reader.
pub struct MrtReader<R: Read> {
    inner: R,
}

impl<R: Read> MrtReader<R> {
    /// Wraps a byte source.
    pub fn new(inner: R) -> Self {
        MrtReader { inner }
    }

    /// Reads the next record; `Ok(None)` at clean EOF.
    pub fn next_record(&mut self) -> Result<Option<MrtRecord>> {
        let mut header = [0u8; 12];
        match self.inner.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(MrtError::Io(e)),
        }
        let len = u32::from_be_bytes([header[8], header[9], header[10], header[11]]) as usize;
        let mut buf = vec![0u8; 12 + len];
        buf[..12].copy_from_slice(&header);
        self.inner.read_exact(&mut buf[12..])?;
        let mut bytes = Bytes::from(buf);
        Ok(Some(MrtRecord::decode(&mut bytes)?))
    }

    /// Reads every remaining record.
    pub fn read_all(&mut self) -> Result<Vec<MrtRecord>> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

impl<R: Read> Iterator for MrtReader<R> {
    type Item = Result<MrtRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// Streaming MRT record writer.
pub struct MrtWriter<W: Write> {
    inner: W,
}

impl<W: Write> MrtWriter<W> {
    /// Wraps a byte sink.
    pub fn new(inner: W) -> Self {
        MrtWriter { inner }
    }

    /// Serializes and writes one record.
    pub fn write_record(&mut self, rec: &MrtRecord) -> Result<()> {
        self.inner.write_all(&rec.encode())?;
        Ok(())
    }

    /// Flushes the sink and returns it.
    pub fn finish(mut self) -> Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MrtBody;

    fn rec(i: u32) -> MrtRecord {
        MrtRecord {
            timestamp: i,
            body: MrtBody::Unknown {
                mrt_type: 99,
                subtype: 1,
                data: vec![i as u8; i as usize % 5],
            },
        }
    }

    #[test]
    fn write_then_read_stream() {
        let mut w = MrtWriter::new(Vec::new());
        let recs: Vec<MrtRecord> = (0..10).map(rec).collect();
        for r in &recs {
            w.write_record(r).unwrap();
        }
        let buf = w.finish().unwrap();
        let mut r = MrtReader::new(&buf[..]);
        let back = r.read_all().unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn iterator_interface() {
        let mut w = MrtWriter::new(Vec::new());
        for i in 0..3 {
            w.write_record(&rec(i)).unwrap();
        }
        let buf = w.finish().unwrap();
        let count = MrtReader::new(&buf[..]).count();
        assert_eq!(count, 3);
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        let mut r = MrtReader::new(&[][..]);
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn mid_record_eof_errors() {
        let mut w = MrtWriter::new(Vec::new());
        w.write_record(&rec(4)).unwrap();
        let buf = w.finish().unwrap();
        let mut r = MrtReader::new(&buf[..buf.len() - 1]);
        assert!(r.next_record().is_err());
    }
}
