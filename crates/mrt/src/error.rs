//! Error type for MRT parsing and serialization.

use std::fmt;

/// Errors raised while decoding or encoding MRT data.
#[derive(Debug)]
pub enum MrtError {
    /// The input ended before a complete record/field was read.
    Truncated {
        /// What was being decoded.
        context: &'static str,
    },
    /// A length field is inconsistent with the enclosing structure.
    BadLength {
        /// What was being decoded.
        context: &'static str,
        /// The offending length.
        len: usize,
    },
    /// The 16-byte BGP message marker was not all-ones.
    BadMarker,
    /// An IPv4-only code path met an IPv6 address family.
    UnsupportedAfi(u16),
    /// A prefix length above 32 (IPv4) / 128 (IPv6).
    BadPrefixLength(u8),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for MrtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrtError::Truncated { context } => write!(f, "truncated input while reading {context}"),
            MrtError::BadLength { context, len } => {
                write!(f, "inconsistent length {len} in {context}")
            }
            MrtError::BadMarker => write!(f, "BGP message marker is not all-ones"),
            MrtError::UnsupportedAfi(afi) => write!(f, "unsupported address family {afi}"),
            MrtError::BadPrefixLength(l) => write!(f, "invalid prefix length {l}"),
            MrtError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for MrtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MrtError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MrtError {
    fn from(e: std::io::Error) -> Self {
        MrtError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MrtError>;
