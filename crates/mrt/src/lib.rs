//! # quasar-mrt — a from-scratch MRT (RFC 6396) codec
//!
//! RouteViews and RIPE RIS publish BGP routing tables as MRT files; the
//! paper's dataset is >1,300 such feeds (§3.1). This crate provides a
//! dependency-light reader/writer for the relevant record types so the
//! reproduction pipeline can both **export** its synthetic observation
//! feeds in the real archive format and **ingest** real dumps when they
//! are available:
//!
//! * `TABLE_DUMP_V2` — `PEER_INDEX_TABLE` + `RIB_IPV4_UNICAST` RIB
//!   snapshots (the modern format),
//! * legacy `TABLE_DUMP` (the format of the paper's November 2005 data),
//! * `BGP4MP` UPDATE message captures,
//! * the full BGP path-attribute codec (ORIGIN, AS_PATH with 2- and 4-byte
//!   ASNs, NEXT_HOP, MED, LOCAL_PREF, ATOMIC_AGGREGATE, AGGREGATOR,
//!   COMMUNITIES, AS4_PATH, unknown-attribute passthrough).
//!
//! The crate deliberately has no dependency on the simulator types — it is
//! a pure wire codec; conversion glue lives in `quasar-netgen`.
//!
//! ```
//! use quasar_mrt::prelude::*;
//!
//! let rib = RibIpv4Unicast {
//!     sequence: 0,
//!     prefix: NlriPrefix::new(0xC6336400, 24).unwrap(),
//!     entries: vec![RibEntry {
//!         peer_index: 0,
//!         originated_time: 1_131_868_200, // Nov 13 2005, 07:30 UTC
//!         attributes: vec![
//!             PathAttribute::Origin(0),
//!             PathAttribute::AsPath(vec![AsPathSegment::sequence(vec![5511, 4694, 24249])]),
//!         ],
//!     }],
//! };
//! let rec = MrtRecord { timestamp: 1_131_868_200, body: MrtBody::RibIpv4Unicast(rib) };
//!
//! let mut w = MrtWriter::new(Vec::new());
//! w.write_record(&rec).unwrap();
//! let buf = w.finish().unwrap();
//!
//! let mut r = MrtReader::new(&buf[..]);
//! assert_eq!(r.next_record().unwrap().unwrap(), rec);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attributes;
pub mod bgp4mp;
pub mod error;
pub mod io;
pub mod ipv6;
pub mod nlri;
pub mod record;
pub mod tabledump;
pub mod tabledump2;

/// Commonly used names.
pub mod prelude {
    pub use crate::attributes::{
        decode_attributes, encode_attributes, AsPathSegment, AsWidth, PathAttribute,
    };
    pub use crate::bgp4mp::{Bgp4mpMessage, BgpMessage, BgpUpdate};
    pub use crate::error::{MrtError, Result};
    pub use crate::io::{MrtReader, MrtWriter};
    pub use crate::ipv6::{NlriPrefix6, RibIpv6Unicast};
    pub use crate::nlri::NlriPrefix;
    pub use crate::record::{MrtBody, MrtRecord};
    pub use crate::tabledump::TableDumpEntry;
    pub use crate::tabledump2::{PeerAddress, PeerEntry, PeerIndexTable, RibEntry, RibIpv4Unicast};
}
