//! BGP path-attribute codec (RFC 4271 §4.3, RFC 6793 for 4-byte ASes).
//!
//! Attributes appear inside TABLE_DUMP / TABLE_DUMP_V2 RIB entries and in
//! BGP4MP UPDATE messages. The AS number width of `AS_PATH` depends on the
//! enclosing context (TABLE_DUMP_V2 always uses 4 bytes, RFC 6396 §4.3.4;
//! legacy formats use 2 bytes unless the peer negotiated AS4), so the codec
//! takes an explicit [`AsWidth`].

use crate::error::{MrtError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Attribute type codes handled natively.
pub mod type_code {
    /// ORIGIN.
    pub const ORIGIN: u8 = 1;
    /// AS_PATH.
    pub const AS_PATH: u8 = 2;
    /// NEXT_HOP.
    pub const NEXT_HOP: u8 = 3;
    /// MULTI_EXIT_DISC.
    pub const MED: u8 = 4;
    /// LOCAL_PREF.
    pub const LOCAL_PREF: u8 = 5;
    /// ATOMIC_AGGREGATE.
    pub const ATOMIC_AGGREGATE: u8 = 6;
    /// AGGREGATOR.
    pub const AGGREGATOR: u8 = 7;
    /// COMMUNITIES (RFC 1997).
    pub const COMMUNITIES: u8 = 8;
    /// AS4_PATH (RFC 6793).
    pub const AS4_PATH: u8 = 17;
}

/// Width of AS numbers inside AS_PATH segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsWidth {
    /// Classic 2-byte encoding.
    Two,
    /// RFC 6793 4-byte encoding (mandatory in TABLE_DUMP_V2).
    Four,
}

/// One AS_PATH segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsPathSegment {
    /// 1 = AS_SET, 2 = AS_SEQUENCE (3/4 = confed variants pass through).
    pub seg_type: u8,
    /// The AS numbers of the segment.
    pub asns: Vec<u32>,
}

impl AsPathSegment {
    /// An AS_SEQUENCE segment.
    pub fn sequence(asns: Vec<u32>) -> Self {
        AsPathSegment { seg_type: 2, asns }
    }

    /// An AS_SET segment.
    pub fn set(asns: Vec<u32>) -> Self {
        AsPathSegment { seg_type: 1, asns }
    }
}

/// A decoded BGP path attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathAttribute {
    /// ORIGIN (0 = IGP, 1 = EGP, 2 = INCOMPLETE).
    Origin(u8),
    /// AS_PATH segments.
    AsPath(Vec<AsPathSegment>),
    /// NEXT_HOP IPv4 address (host order).
    NextHop(u32),
    /// MULTI_EXIT_DISC.
    Med(u32),
    /// LOCAL_PREF.
    LocalPref(u32),
    /// ATOMIC_AGGREGATE (no payload).
    AtomicAggregate,
    /// AGGREGATOR.
    Aggregator {
        /// Aggregating AS.
        asn: u32,
        /// Aggregating router id (host order).
        addr: u32,
    },
    /// COMMUNITIES values.
    Communities(Vec<u32>),
    /// AS4_PATH segments (always 4-byte ASNs).
    As4Path(Vec<AsPathSegment>),
    /// Anything else, preserved verbatim for round-tripping.
    Unknown {
        /// Original attribute flags.
        flags: u8,
        /// Attribute type code.
        code: u8,
        /// Raw payload.
        data: Vec<u8>,
    },
}

impl PathAttribute {
    /// Flattens AS_PATH/AS4_PATH segments into a linear ASN sequence,
    /// expanding AS_SETs in order (good enough for topology work; the paper
    /// drops set-bearing paths anyway).
    pub fn flatten_as_path(segments: &[AsPathSegment]) -> Vec<u32> {
        segments
            .iter()
            .flat_map(|s| s.asns.iter().copied())
            .collect()
    }

    fn flags_for(&self) -> u8 {
        // WELL-KNOWN TRANSITIVE = 0x40; OPTIONAL TRANSITIVE = 0xC0;
        // OPTIONAL NON-TRANSITIVE = 0x80.
        match self {
            PathAttribute::Origin(_)
            | PathAttribute::AsPath(_)
            | PathAttribute::NextHop(_)
            | PathAttribute::LocalPref(_)
            | PathAttribute::AtomicAggregate => 0x40,
            PathAttribute::Med(_) => 0x80,
            PathAttribute::Aggregator { .. }
            | PathAttribute::Communities(_)
            | PathAttribute::As4Path(_) => 0xC0,
            PathAttribute::Unknown { flags, .. } => *flags,
        }
    }

    fn code(&self) -> u8 {
        match self {
            PathAttribute::Origin(_) => type_code::ORIGIN,
            PathAttribute::AsPath(_) => type_code::AS_PATH,
            PathAttribute::NextHop(_) => type_code::NEXT_HOP,
            PathAttribute::Med(_) => type_code::MED,
            PathAttribute::LocalPref(_) => type_code::LOCAL_PREF,
            PathAttribute::AtomicAggregate => type_code::ATOMIC_AGGREGATE,
            PathAttribute::Aggregator { .. } => type_code::AGGREGATOR,
            PathAttribute::Communities(_) => type_code::COMMUNITIES,
            PathAttribute::As4Path(_) => type_code::AS4_PATH,
            PathAttribute::Unknown { code, .. } => *code,
        }
    }
}

fn encode_segments(segments: &[AsPathSegment], width: AsWidth, out: &mut BytesMut) {
    for seg in segments {
        out.put_u8(seg.seg_type);
        out.put_u8(seg.asns.len() as u8);
        for &a in &seg.asns {
            match width {
                AsWidth::Two => out.put_u16(a as u16),
                AsWidth::Four => out.put_u32(a),
            }
        }
    }
}

fn decode_segments(mut data: Bytes, width: AsWidth) -> Result<Vec<AsPathSegment>> {
    let mut segments = Vec::new();
    while data.has_remaining() {
        if data.remaining() < 2 {
            return Err(MrtError::Truncated {
                context: "AS_PATH segment header",
            });
        }
        let seg_type = data.get_u8();
        let count = data.get_u8() as usize;
        let need = count
            * match width {
                AsWidth::Two => 2,
                AsWidth::Four => 4,
            };
        if data.remaining() < need {
            return Err(MrtError::Truncated {
                context: "AS_PATH segment body",
            });
        }
        let mut asns = Vec::with_capacity(count);
        for _ in 0..count {
            asns.push(match width {
                AsWidth::Two => data.get_u16() as u32,
                AsWidth::Four => data.get_u32(),
            });
        }
        segments.push(AsPathSegment { seg_type, asns });
    }
    Ok(segments)
}

/// Encodes one attribute (header + payload) to `out`.
pub fn encode_attribute(attr: &PathAttribute, width: AsWidth, out: &mut BytesMut) {
    let mut payload = BytesMut::new();
    match attr {
        PathAttribute::Origin(o) => payload.put_u8(*o),
        PathAttribute::AsPath(segs) => encode_segments(segs, width, &mut payload),
        PathAttribute::NextHop(ip) => payload.put_u32(*ip),
        PathAttribute::Med(v) | PathAttribute::LocalPref(v) => payload.put_u32(*v),
        PathAttribute::AtomicAggregate => {}
        PathAttribute::Aggregator { asn, addr } => {
            match width {
                AsWidth::Two => payload.put_u16(*asn as u16),
                AsWidth::Four => payload.put_u32(*asn),
            }
            payload.put_u32(*addr);
        }
        PathAttribute::Communities(cs) => {
            for c in cs {
                payload.put_u32(*c);
            }
        }
        PathAttribute::As4Path(segs) => encode_segments(segs, AsWidth::Four, &mut payload),
        PathAttribute::Unknown { data, .. } => payload.extend_from_slice(data),
    }
    let mut flags = attr.flags_for();
    let extended = payload.len() > 255;
    if extended {
        flags |= 0x10;
    } else {
        flags &= !0x10;
    }
    out.put_u8(flags);
    out.put_u8(attr.code());
    if extended {
        out.put_u16(payload.len() as u16);
    } else {
        out.put_u8(payload.len() as u8);
    }
    out.extend_from_slice(&payload);
}

/// Encodes a full attribute list.
pub fn encode_attributes(attrs: &[PathAttribute], width: AsWidth) -> Bytes {
    let mut out = BytesMut::new();
    for a in attrs {
        encode_attribute(a, width, &mut out);
    }
    out.freeze()
}

/// Decodes a full attribute list from `data`.
pub fn decode_attributes(mut data: Bytes, width: AsWidth) -> Result<Vec<PathAttribute>> {
    let mut attrs = Vec::new();
    while data.has_remaining() {
        if data.remaining() < 2 {
            return Err(MrtError::Truncated {
                context: "attribute header",
            });
        }
        let flags = data.get_u8();
        let code = data.get_u8();
        let extended = flags & 0x10 != 0;
        let len = if extended {
            if data.remaining() < 2 {
                return Err(MrtError::Truncated {
                    context: "extended attribute length",
                });
            }
            data.get_u16() as usize
        } else {
            if data.remaining() < 1 {
                return Err(MrtError::Truncated {
                    context: "attribute length",
                });
            }
            data.get_u8() as usize
        };
        if data.remaining() < len {
            return Err(MrtError::Truncated {
                context: "attribute payload",
            });
        }
        let mut payload = data.split_to(len);
        let attr = match code {
            type_code::ORIGIN if len == 1 => PathAttribute::Origin(payload.get_u8()),
            type_code::AS_PATH => PathAttribute::AsPath(decode_segments(payload, width)?),
            type_code::NEXT_HOP if len == 4 => PathAttribute::NextHop(payload.get_u32()),
            type_code::MED if len == 4 => PathAttribute::Med(payload.get_u32()),
            type_code::LOCAL_PREF if len == 4 => PathAttribute::LocalPref(payload.get_u32()),
            type_code::ATOMIC_AGGREGATE if len == 0 => PathAttribute::AtomicAggregate,
            type_code::AGGREGATOR if len == 6 || len == 8 => {
                let asn = if len == 6 {
                    payload.get_u16() as u32
                } else {
                    payload.get_u32()
                };
                PathAttribute::Aggregator {
                    asn,
                    addr: payload.get_u32(),
                }
            }
            type_code::COMMUNITIES if len % 4 == 0 => {
                let mut cs = Vec::with_capacity(len / 4);
                while payload.has_remaining() {
                    cs.push(payload.get_u32());
                }
                PathAttribute::Communities(cs)
            }
            type_code::AS4_PATH => PathAttribute::As4Path(decode_segments(payload, AsWidth::Four)?),
            _ => PathAttribute::Unknown {
                flags,
                code,
                data: payload.to_vec(),
            },
        };
        attrs.push(attr);
    }
    Ok(attrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(attrs: Vec<PathAttribute>, width: AsWidth) {
        let enc = encode_attributes(&attrs, width);
        let dec = decode_attributes(enc, width).unwrap();
        assert_eq!(dec, attrs);
    }

    #[test]
    fn basic_attributes_roundtrip_4byte() {
        roundtrip(
            vec![
                PathAttribute::Origin(0),
                PathAttribute::AsPath(vec![AsPathSegment::sequence(vec![7018, 3356, 199999])]),
                PathAttribute::NextHop(0xC0000201),
                PathAttribute::Med(50),
                PathAttribute::LocalPref(120),
                PathAttribute::AtomicAggregate,
                PathAttribute::Aggregator {
                    asn: 65001,
                    addr: 0x0A000001,
                },
                PathAttribute::Communities(vec![(7018 << 16) | 100, 0xFFFF_FF01]),
            ],
            AsWidth::Four,
        );
    }

    #[test]
    fn two_byte_as_path_roundtrip() {
        roundtrip(
            vec![PathAttribute::AsPath(vec![
                AsPathSegment::sequence(vec![701, 1239]),
                AsPathSegment::set(vec![3, 5]),
            ])],
            AsWidth::Two,
        );
    }

    #[test]
    fn as4_path_always_four_bytes() {
        roundtrip(
            vec![PathAttribute::As4Path(vec![AsPathSegment::sequence(vec![
                4_200_000_001,
            ])])],
            AsWidth::Two,
        );
    }

    #[test]
    fn unknown_attribute_passthrough() {
        roundtrip(
            vec![PathAttribute::Unknown {
                flags: 0xC0,
                code: 99,
                data: vec![1, 2, 3],
            }],
            AsWidth::Four,
        );
    }

    #[test]
    fn extended_length_used_for_long_payloads() {
        let long = PathAttribute::Communities((0..200).map(|i| i as u32).collect());
        let enc = encode_attributes(std::slice::from_ref(&long), AsWidth::Four);
        // 200*4 = 800 > 255 -> extended-length bit set.
        assert_eq!(enc[0] & 0x10, 0x10);
        let dec = decode_attributes(enc, AsWidth::Four).unwrap();
        assert_eq!(dec, vec![long]);
    }

    #[test]
    fn truncated_input_errors() {
        let enc = encode_attributes(&[PathAttribute::Med(5)], AsWidth::Four);
        let cut = enc.slice(0..enc.len() - 1);
        assert!(decode_attributes(cut, AsWidth::Four).is_err());
    }

    #[test]
    fn flatten_expands_sets_in_order() {
        let segs = vec![
            AsPathSegment::sequence(vec![1, 2]),
            AsPathSegment::set(vec![9, 8]),
        ];
        assert_eq!(PathAttribute::flatten_as_path(&segs), vec![1, 2, 9, 8]);
    }
}
