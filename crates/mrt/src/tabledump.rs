//! Legacy TABLE_DUMP (RFC 6396 §4.2) — one record per (prefix, peer) as
//! produced by older RouteViews archives (the paper's November 2005 dataset
//! predates TABLE_DUMP_V2).

use crate::attributes::{decode_attributes, encode_attributes, AsWidth, PathAttribute};
use crate::error::{MrtError, Result};
use crate::nlri::NlriPrefix;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// AFI subtype for IPv4.
pub const SUBTYPE_AFI_IPV4: u16 = 1;

/// One legacy TABLE_DUMP record body (IPv4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDumpEntry {
    /// View number (usually 0).
    pub view: u16,
    /// Sequence number.
    pub sequence: u16,
    /// Destination prefix.
    pub prefix: NlriPrefix,
    /// Status octet (unused, must be 1 per RFC).
    pub status: u8,
    /// Time the route was last changed.
    pub originated_time: u32,
    /// Peer IPv4 address (host order).
    pub peer_ip: u32,
    /// Peer AS (2-byte space).
    pub peer_asn: u16,
    /// Path attributes (2-byte AS_PATH encoding).
    pub attributes: Vec<PathAttribute>,
}

impl TableDumpEntry {
    /// Serializes the body.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::new();
        out.put_u16(self.view);
        out.put_u16(self.sequence);
        out.put_u32(self.prefix.base);
        out.put_u8(self.prefix.len);
        out.put_u8(self.status);
        out.put_u32(self.originated_time);
        out.put_u32(self.peer_ip);
        out.put_u16(self.peer_asn);
        let attrs = encode_attributes(&self.attributes, AsWidth::Two);
        out.put_u16(attrs.len() as u16);
        out.extend_from_slice(&attrs);
        out.freeze()
    }

    /// Parses the body.
    pub fn decode(mut data: Bytes) -> Result<Self> {
        if data.remaining() < 22 {
            return Err(MrtError::Truncated {
                context: "TABLE_DUMP fixed header",
            });
        }
        let view = data.get_u16();
        let sequence = data.get_u16();
        let base = data.get_u32();
        let len = data.get_u8();
        let prefix = NlriPrefix::new(base, len)?;
        let status = data.get_u8();
        let originated_time = data.get_u32();
        let peer_ip = data.get_u32();
        let peer_asn = data.get_u16();
        let alen = data.get_u16() as usize;
        if data.remaining() < alen {
            return Err(MrtError::Truncated {
                context: "TABLE_DUMP attributes",
            });
        }
        let attributes = decode_attributes(data.split_to(alen), AsWidth::Two)?;
        Ok(TableDumpEntry {
            view,
            sequence,
            prefix,
            status,
            originated_time,
            peer_ip,
            peer_asn,
            attributes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AsPathSegment;

    #[test]
    fn roundtrip() {
        let e = TableDumpEntry {
            view: 0,
            sequence: 7,
            prefix: NlriPrefix::new(0xC6336400, 24).unwrap(),
            status: 1,
            originated_time: 1_131_868_200,
            peer_ip: 0xC0000201,
            peer_asn: 7018,
            attributes: vec![
                PathAttribute::Origin(0),
                PathAttribute::AsPath(vec![AsPathSegment::sequence(vec![7018, 5511])]),
            ],
        };
        assert_eq!(TableDumpEntry::decode(e.encode()).unwrap(), e);
    }

    #[test]
    fn truncated_errors() {
        let data = Bytes::from_static(&[0, 0, 0, 1]);
        assert!(TableDumpEntry::decode(data).is_err());
    }
}
