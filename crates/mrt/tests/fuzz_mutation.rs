//! Mutation fuzzing: start from *valid* encoded records and apply
//! byte-level mutation operators — flips, insertions, deletions,
//! truncations, duplications, cross-record splices. Every mutant must
//! decode to `Ok` or a typed [`MrtError`], never panic; and a mutation
//! that happens to leave the stream valid must round-trip cleanly.
//!
//! Plain random byte soup (see `fuzz_robustness.rs`) mostly dies at the
//! header; mutants of valid records keep the framing plausible, which is
//! what drives the decoder deep into its branchy attribute paths.

use proptest::prelude::*;
use quasar_mrt::prelude::*;

/// A corpus of structurally diverse valid records to mutate.
fn corpus() -> Vec<MrtRecord> {
    vec![
        MrtRecord {
            timestamp: 1,
            body: MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                sequence: 0,
                prefix: NlriPrefix::new(0x0A00_0000, 8).unwrap(),
                entries: vec![RibEntry {
                    peer_index: 0,
                    originated_time: 0,
                    attributes: vec![PathAttribute::Origin(0)],
                }],
            }),
        },
        MrtRecord {
            timestamp: 1_130_000_000,
            body: MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                sequence: 42,
                prefix: NlriPrefix::new(0xC633_6400, 24).unwrap(),
                entries: vec![
                    RibEntry {
                        peer_index: 3,
                        originated_time: 1_129_999_000,
                        attributes: vec![
                            PathAttribute::Origin(0),
                            PathAttribute::AsPath(vec![AsPathSegment::sequence(vec![
                                7018, 3356, 5511,
                            ])]),
                        ],
                    },
                    RibEntry {
                        peer_index: 9,
                        originated_time: 1_129_998_000,
                        attributes: vec![
                            PathAttribute::Origin(1),
                            PathAttribute::AsPath(vec![AsPathSegment::sequence(vec![
                                1239, 701, 5511,
                            ])]),
                        ],
                    },
                ],
            }),
        },
        MrtRecord {
            timestamp: 7,
            body: MrtBody::Bgp4mp(Bgp4mpMessage {
                peer_asn: 7018,
                local_asn: 65000,
                interface: 0,
                peer_ip: 1,
                local_ip: 2,
                as4: false,
                message: BgpMessage::Update(BgpUpdate {
                    withdrawn: vec![NlriPrefix::new(0x0B00_0000, 8).unwrap()],
                    attributes: vec![
                        PathAttribute::Origin(0),
                        PathAttribute::AsPath(vec![AsPathSegment::sequence(vec![7018, 5511])]),
                    ],
                    announced: vec![NlriPrefix::new(0xC633_6400, 24).unwrap()],
                }),
            }),
        },
        MrtRecord {
            timestamp: 8,
            body: MrtBody::Bgp4mp(Bgp4mpMessage {
                peer_asn: 131072,
                local_asn: 65000,
                interface: 1,
                peer_ip: 3,
                local_ip: 4,
                as4: true,
                message: BgpMessage::Update(BgpUpdate {
                    withdrawn: vec![],
                    attributes: vec![
                        PathAttribute::Origin(2),
                        PathAttribute::AsPath(vec![AsPathSegment::sequence(vec![
                            131072, 3356, 196608,
                        ])]),
                    ],
                    announced: vec![
                        NlriPrefix::new(0x0A0A_0000, 16).unwrap(),
                        NlriPrefix::new(0x0A0B_0000, 16).unwrap(),
                    ],
                }),
            }),
        },
        // Withdrawal-only update: empty attribute block, no announced
        // NLRI — the wire shape of a route's final withdrawal, which
        // drives the withdrawn-block length arithmetic on its own.
        MrtRecord {
            timestamp: 9,
            body: MrtBody::Bgp4mp(Bgp4mpMessage {
                peer_asn: 3356,
                local_asn: 65000,
                interface: 0,
                peer_ip: 5,
                local_ip: 6,
                as4: false,
                message: BgpMessage::Update(BgpUpdate {
                    withdrawn: vec![
                        NlriPrefix::new(0xC633_6400, 24).unwrap(),
                        NlriPrefix::new(0x0A00_0000, 8).unwrap(),
                    ],
                    attributes: vec![],
                    announced: vec![],
                }),
            }),
        },
        // Withdrawal-heavy AS4 update with mixed packed widths (0..=4
        // octets per prefix) plus a simultaneous announcement.
        MrtRecord {
            timestamp: 10,
            body: MrtBody::Bgp4mp(Bgp4mpMessage {
                peer_asn: 196_608,
                local_asn: 65000,
                interface: 0,
                peer_ip: 7,
                local_ip: 8,
                as4: true,
                message: BgpMessage::Update(BgpUpdate {
                    withdrawn: vec![
                        NlriPrefix::new(0, 0).unwrap(),
                        NlriPrefix::new(0x8000_0000, 1).unwrap(),
                        NlriPrefix::new(0xC0A8_0000, 16).unwrap(),
                        NlriPrefix::new(0xC0A8_0101, 32).unwrap(),
                    ],
                    attributes: vec![
                        PathAttribute::Origin(0),
                        PathAttribute::AsPath(vec![AsPathSegment::sequence(vec![196_608, 7018])]),
                    ],
                    announced: vec![NlriPrefix::new(0x0B0B_0000, 16).unwrap()],
                }),
            }),
        },
    ]
}

/// Decodes a mutant stream to the end: every record parses or fails
/// with a typed error — reaching this function's return at all is the
/// no-panic assertion.
fn drain(bytes: &[u8]) -> std::result::Result<usize, MrtError> {
    let mut r = MrtReader::new(bytes);
    let mut parsed = 0usize;
    loop {
        match r.next_record() {
            Ok(Some(_)) => parsed += 1,
            Ok(None) => return Ok(parsed),
            Err(e) => {
                // The error type must render, too — a Display panic in
                // an error path is still a panic.
                let _ = e.to_string();
                return Err(e);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    /// Multi-byte flips anywhere in a valid record.
    #[test]
    fn byte_flips_parse_or_error(
        which in 0usize..4,
        flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = corpus()[which].encode().to_vec();
        for (pos, val) in flips {
            let pos = pos as usize % bytes.len();
            bytes[pos] ^= val;
        }
        let _ = drain(&bytes);
    }

    /// Truncation at every possible boundary: a cut record must never
    /// parse as success-with-garbage *silently panicking* — it is either
    /// a clean EOF before the record or a typed error.
    #[test]
    fn truncation_parses_or_errors(which in 0usize..4, keep in any::<u16>()) {
        let bytes = corpus()[which].encode().to_vec();
        let keep = keep as usize % (bytes.len() + 1);
        let _ = drain(&bytes[..keep]);
    }

    /// Random insertions grow the stream; framing lengths now lie.
    #[test]
    fn insertions_parse_or_error(
        which in 0usize..4,
        at in any::<u16>(),
        insert in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let mut bytes = corpus()[which].encode().to_vec();
        let at = at as usize % (bytes.len() + 1);
        bytes.splice(at..at, insert);
        let _ = drain(&bytes);
    }

    /// Random deletions shrink the stream mid-record.
    #[test]
    fn deletions_parse_or_error(which in 0usize..4, at in any::<u16>(), len in 1usize..24) {
        let mut bytes = corpus()[which].encode().to_vec();
        let at = at as usize % bytes.len();
        let end = (at + len).min(bytes.len());
        bytes.drain(at..end);
        let _ = drain(&bytes);
    }

    /// Splicing the head of one record onto the tail of another keeps
    /// both halves individually plausible.
    #[test]
    fn cross_record_splices_parse_or_error(
        a in 0usize..4,
        b in 0usize..4,
        cut_a in any::<u16>(),
        cut_b in any::<u16>(),
    ) {
        let bytes_a = corpus()[a].encode().to_vec();
        let bytes_b = corpus()[b].encode().to_vec();
        let cut_a = cut_a as usize % (bytes_a.len() + 1);
        let cut_b = cut_b as usize % (bytes_b.len() + 1);
        let mut spliced = bytes_a[..cut_a].to_vec();
        spliced.extend_from_slice(&bytes_b[cut_b..]);
        let _ = drain(&spliced);
    }

    /// A mutated stream followed by a pristine record: an error in the
    /// mutant must not corrupt reader state into a panic on what follows.
    #[test]
    fn garbage_then_valid_never_panics(
        which in 0usize..4,
        flips in proptest::collection::vec((any::<u16>(), 1u8..=255), 1..6),
    ) {
        let records = corpus();
        let mut bytes = records[which].encode().to_vec();
        for (pos, val) in flips {
            let pos = pos as usize % bytes.len();
            bytes[pos] ^= val;
        }
        bytes.extend_from_slice(&records[(which + 1) % 4].encode());
        let _ = drain(&bytes);
    }
}

#[test]
fn unmutated_corpus_round_trips() {
    // Sanity anchor for every mutation test above: the pristine corpus
    // itself must parse back to exactly what was encoded.
    let records = corpus();
    let mut stream = Vec::new();
    for r in &records {
        stream.extend_from_slice(&r.encode());
    }
    let mut reader = MrtReader::new(&stream[..]);
    let parsed = reader.read_all().expect("pristine corpus parses");
    assert_eq!(parsed.len(), records.len());
    for (got, want) in parsed.iter().zip(records.iter()) {
        assert_eq!(got.timestamp, want.timestamp);
    }
}
