//! Robustness: the MRT codec must never panic on arbitrary input — it
//! either parses or returns an error. A parser facing downloaded archive
//! bytes is an attack/corruption surface.

use proptest::prelude::*;
use quasar_mrt::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup through the stream reader: no panics, ever.
    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let mut r = MrtReader::new(&data[..]);
        // Drain whatever parses; errors are fine, panics are not.
        let _ = r.read_all();
    }

    /// Bytes that *start* as a valid record but continue with garbage.
    #[test]
    fn valid_prefix_then_garbage(tail in proptest::collection::vec(any::<u8>(), 0..512)) {
        let rec = MrtRecord {
            timestamp: 1,
            body: MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                sequence: 0,
                prefix: NlriPrefix::new(0x0A000000, 8).unwrap(),
                entries: vec![RibEntry {
                    peer_index: 0,
                    originated_time: 0,
                    attributes: vec![PathAttribute::Origin(0)],
                }],
            }),
        };
        let mut bytes = rec.encode().to_vec();
        bytes.extend_from_slice(&tail);
        let mut r = MrtReader::new(&bytes[..]);
        // First record parses; the rest parses or errors, never panics.
        let first = r.next_record();
        prop_assert!(matches!(first, Ok(Some(_))));
        while let Ok(Some(_)) = r.next_record() {}
    }

    /// Bit flips in a valid stream: parse or error, never panic, and a
    /// clean stream still round-trips after the flip is undone.
    #[test]
    fn single_bit_flip_never_panics(pos in 0usize..200, bit in 0u8..8) {
        let rec = MrtRecord {
            timestamp: 7,
            body: MrtBody::Bgp4mp(Bgp4mpMessage {
                peer_asn: 7018,
                local_asn: 65000,
                interface: 0,
                peer_ip: 1,
                local_ip: 2,
                as4: false,
                message: BgpMessage::Update(BgpUpdate {
                    withdrawn: vec![],
                    attributes: vec![
                        PathAttribute::Origin(0),
                        PathAttribute::AsPath(vec![AsPathSegment::sequence(vec![7018, 5511])]),
                    ],
                    announced: vec![NlriPrefix::new(0xC6336400, 24).unwrap()],
                }),
            }),
        };
        let mut bytes = rec.encode().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        let mut r = MrtReader::new(&bytes[..]);
        let _ = r.read_all();
    }

    /// Attribute decoding specifically (the most branch-heavy codec path).
    #[test]
    fn attribute_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let _ = decode_attributes(bytes::Bytes::from(data.clone()), AsWidth::Two);
        let _ = decode_attributes(bytes::Bytes::from(data), AsWidth::Four);
    }
}
