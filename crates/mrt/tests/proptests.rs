//! Round-trip property tests for the MRT codec.

use proptest::prelude::*;
use quasar_mrt::prelude::*;

fn arb_prefix() -> impl Strategy<Value = NlriPrefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(base, len)| NlriPrefix::new(base, len).unwrap())
}

fn arb_segment() -> impl Strategy<Value = AsPathSegment> {
    (1u8..=2, proptest::collection::vec(1u32..100_000, 1..6))
        .prop_map(|(t, asns)| AsPathSegment { seg_type: t, asns })
}

fn arb_attrs() -> impl Strategy<Value = Vec<PathAttribute>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..3).prop_map(PathAttribute::Origin),
            proptest::collection::vec(arb_segment(), 0..3).prop_map(PathAttribute::AsPath),
            any::<u32>().prop_map(PathAttribute::NextHop),
            any::<u32>().prop_map(PathAttribute::Med),
            any::<u32>().prop_map(PathAttribute::LocalPref),
            Just(PathAttribute::AtomicAggregate),
            proptest::collection::vec(any::<u32>(), 0..5).prop_map(PathAttribute::Communities),
        ],
        0..6,
    )
}

proptest! {
    /// Attribute lists round-trip in 4-byte mode.
    #[test]
    fn attributes_roundtrip(attrs in arb_attrs()) {
        let enc = encode_attributes(&attrs, AsWidth::Four);
        let dec = decode_attributes(enc, AsWidth::Four).unwrap();
        prop_assert_eq!(dec, attrs);
    }

    /// Attribute lists with 16-bit ASNs round-trip in 2-byte mode.
    #[test]
    fn attributes_roundtrip_2byte(attrs in arb_attrs()) {
        // Clamp ASNs to 16 bits for the legacy encoding.
        let attrs: Vec<PathAttribute> = attrs.into_iter().map(|a| match a {
            PathAttribute::AsPath(segs) => PathAttribute::AsPath(
                segs.into_iter()
                    .map(|s| AsPathSegment {
                        seg_type: s.seg_type,
                        asns: s.asns.into_iter().map(|x| x & 0xFFFF).collect(),
                    })
                    .collect(),
            ),
            other => other,
        }).collect();
        let enc = encode_attributes(&attrs, AsWidth::Two);
        let dec = decode_attributes(enc, AsWidth::Two).unwrap();
        prop_assert_eq!(dec, attrs);
    }

    /// RIB records round-trip through the full record + stream layers.
    #[test]
    fn rib_records_roundtrip(
        seq in any::<u32>(),
        prefix in arb_prefix(),
        entries in proptest::collection::vec((any::<u16>(), any::<u32>(), arb_attrs()), 0..5),
        ts in any::<u32>(),
    ) {
        let rib = RibIpv4Unicast {
            sequence: seq,
            prefix,
            entries: entries
                .into_iter()
                .map(|(p, t, attributes)| RibEntry {
                    peer_index: p,
                    originated_time: t,
                    attributes,
                })
                .collect(),
        };
        let rec = MrtRecord { timestamp: ts, body: MrtBody::RibIpv4Unicast(rib) };
        let mut w = MrtWriter::new(Vec::new());
        w.write_record(&rec).unwrap();
        let buf = w.finish().unwrap();
        let mut r = MrtReader::new(&buf[..]);
        prop_assert_eq!(r.next_record().unwrap().unwrap(), rec);
        prop_assert!(r.next_record().unwrap().is_none());
    }

    /// Whole streams of mixed records round-trip.
    #[test]
    fn streams_roundtrip(
        specs in proptest::collection::vec((any::<u32>(), arb_prefix(), arb_attrs()), 0..10)
    ) {
        let recs: Vec<MrtRecord> = specs
            .into_iter()
            .enumerate()
            .map(|(i, (ts, prefix, attributes))| MrtRecord {
                timestamp: ts,
                body: MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                    sequence: i as u32,
                    prefix,
                    entries: vec![RibEntry {
                        peer_index: 0,
                        originated_time: ts,
                        attributes,
                    }],
                }),
            })
            .collect();
        let mut w = MrtWriter::new(Vec::new());
        for r in &recs {
            w.write_record(r).unwrap();
        }
        let buf = w.finish().unwrap();
        let back = MrtReader::new(&buf[..]).read_all().unwrap();
        prop_assert_eq!(back, recs);
    }

    /// Arbitrary truncation never panics: it either parses a shorter
    /// stream or reports an error.
    #[test]
    fn truncation_never_panics(
        prefix in arb_prefix(),
        attrs in arb_attrs(),
        cut in 0usize..200,
    ) {
        let rec = MrtRecord {
            timestamp: 1,
            body: MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                sequence: 0,
                prefix,
                entries: vec![RibEntry { peer_index: 0, originated_time: 0, attributes: attrs }],
            }),
        };
        let enc = rec.encode();
        let cut = cut.min(enc.len());
        let mut r = MrtReader::new(&enc[..cut]);
        let _ = r.read_all(); // must not panic
    }

    /// Peer index tables with mixed v4/v6 and 2/4-byte peers round-trip.
    #[test]
    fn peer_table_roundtrip(
        peers in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<bool>(), any::<bool>()), 0..10),
        name in "[a-z]{0,12}",
    ) {
        let table = PeerIndexTable {
            collector_id: 7,
            view_name: name,
            peers: peers
                .into_iter()
                .map(|(id, asn, v6, as4)| PeerEntry {
                    bgp_id: id,
                    address: if v6 {
                        PeerAddress::V6([id as u8; 16])
                    } else {
                        PeerAddress::V4(id)
                    },
                    asn: if as4 { asn } else { asn & 0xFFFF },
                    as4,
                })
                .collect(),
        };
        let rec = MrtRecord { timestamp: 0, body: MrtBody::PeerIndexTable(table) };
        let mut bytes = rec.encode();
        prop_assert_eq!(MrtRecord::decode(&mut bytes).unwrap(), rec);
    }
}
