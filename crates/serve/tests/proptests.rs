//! Property tests for the serving layer's central safety claim: what-if
//! sessions are copy-on-write overlays, so no interleaving of `diff`
//! requests ever changes what the base cache answers for `predict` — and
//! the whole request/response behaviour is deterministic.

use proptest::prelude::*;
use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::types::{Asn, Prefix};
use quasar_core::model::AsRoutingModel;
use quasar_core::observed::{Dataset, ObservedRoute};
use quasar_serve::prelude::*;
use quasar_serve::server::{ServeConfig, ServerState};

/// Random loop-free observed-route sets over a small AS universe (the
/// same shape the core proptests use).
fn arb_routes() -> impl Strategy<Value = Vec<ObservedRoute>> {
    proptest::collection::vec(
        (
            0u32..4,                                   // observation point
            proptest::collection::vec(1u32..10, 1..4), // walk
            1u32..10,                                  // origin AS
        ),
        1..15,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(point, mut walk, origin)| {
                walk.retain(|&a| a != origin);
                walk.push(origin);
                let mut seen = std::collections::BTreeSet::new();
                walk.retain(|&a| seen.insert(a));
                ObservedRoute {
                    point,
                    observer_as: Asn(walk[0]),
                    prefix: Prefix::for_origin(Asn(origin)),
                    as_path: AsPath::from_u32s(&walk),
                }
            })
            .collect()
    })
}

/// An interleaving step: a predict probe or a what-if diff request.
#[derive(Debug, Clone)]
enum Op {
    Predict { prefix: usize, observer: usize },
    Diff { changes: Vec<(u8, u32, u32)> },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let predict =
        (0usize..64, 0usize..64).prop_map(|(prefix, observer)| Op::Predict { prefix, observer });
    let diff = proptest::collection::vec((0u8..3, 1u32..10, 1u32..10), 1..3)
        .prop_map(|changes| Op::Diff { changes });
    proptest::collection::vec(prop_oneof![predict, diff], 1..12)
}

fn build_model(routes: Vec<ObservedRoute>) -> Option<(AsRoutingModel, Vec<Prefix>, Vec<Asn>)> {
    let d = Dataset::new(routes);
    if d.is_empty() {
        return None;
    }
    let model = AsRoutingModel::initial(&d.as_graph(), &d.prefixes());
    let prefixes: Vec<Prefix> = model.prefixes().keys().copied().collect();
    let ases: Vec<Asn> = d
        .routes()
        .iter()
        .map(|r| r.observer_as)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    Some((model, prefixes, ases))
}

fn predict_request(prefixes: &[Prefix], ases: &[Asn], p: usize, o: usize) -> Request {
    Request::Predict {
        prefix: prefixes[p % prefixes.len()].to_string(),
        observer: ases[o % ases.len()].0,
        observed_path: None,
    }
}

fn diff_request(changes: &[(u8, u32, u32)], prefixes: &[Prefix]) -> Request {
    Request::Diff {
        changes: changes
            .iter()
            .map(|&(kind, a, b)| match kind {
                0 => ChangeSpec::Depeer { a, b },
                1 => ChangeSpec::AddPeering { a, b },
                _ => ChangeSpec::FilterPrefix {
                    asn: a,
                    neighbor: b,
                    prefix: prefixes[(a as usize) % prefixes.len()].to_string(),
                },
            })
            .collect(),
        prefixes: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Overlay isolation: however `diff` sessions are interleaved with
    /// `predict` queries, every predict answer is identical to what a
    /// fresh server (which never saw any what-if request) produces.
    #[test]
    fn interleaved_whatif_sessions_never_change_base_predictions(
        routes in arb_routes(),
        ops in arb_ops(),
    ) {
        let Some((model, prefixes, ases)) = build_model(routes) else { return Ok(()) };
        let pristine = ServerState::new(model.clone(), ServeConfig::default());
        let state = ServerState::new(model, ServeConfig::default());

        for op in &ops {
            match op {
                Op::Predict { prefix, observer } => {
                    let req = predict_request(&prefixes, &ases, *prefix, *observer);
                    let got = state.dispatch(&req);
                    let want = pristine.dispatch(&req);
                    prop_assert_eq!(got, want, "predict diverged after what-if traffic");
                }
                Op::Diff { changes } => {
                    // The diff may legitimately fail (e.g. unknown ASes
                    // are no-ops, scenarios may diverge); the property is
                    // only that it never leaks into the base answers.
                    let _ = state.dispatch(&diff_request(changes, &prefixes));
                }
            }
        }

        // Final sweep: every (prefix, observer) pair still matches.
        for (pi, _) in prefixes.iter().enumerate() {
            for (ai, _) in ases.iter().enumerate() {
                let req = predict_request(&prefixes, &ases, pi, ai);
                prop_assert_eq!(state.dispatch(&req), pristine.dispatch(&req));
            }
        }
    }

    /// Determinism: replaying the same op sequence on two fresh servers
    /// produces identical responses — caches and session reuse never
    /// introduce nondeterminism.
    #[test]
    fn request_sequences_are_deterministic(
        routes in arb_routes(),
        ops in arb_ops(),
    ) {
        let Some((model, prefixes, ases)) = build_model(routes) else { return Ok(()) };
        let run = || {
            let state = ServerState::new(model.clone(), ServeConfig::default());
            ops.iter()
                .map(|op| match op {
                    Op::Predict { prefix, observer } => {
                        state.dispatch(&predict_request(&prefixes, &ases, *prefix, *observer))
                    }
                    Op::Diff { changes } => state.dispatch(&diff_request(changes, &prefixes)),
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
