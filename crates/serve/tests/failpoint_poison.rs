//! Regression test for the `expect("connection queue poisoned")` family:
//! a worker that panics while holding the connection-queue lock used to
//! take the whole server down with it. Now the panic poisons the lock,
//! every other lock user recovers the inner data, and service continues.
//!
//! Run with `cargo test -p quasar-serve --features testkit`.

#![cfg(feature = "testkit")]

use quasar_bgpsim::fail;
use quasar_serve::server::{serve, ServeConfig, ServerState};
use quasar_testkit::diff::{ask, reply_line};
use quasar_testkit::workload::{toy_model, toy_requests};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

#[test]
fn worker_panic_inside_queue_lock_does_not_stop_service() {
    fail::reset(9);
    // The point sits between `pop_front` and the guard drop, so the
    // panic poisons the queue mutex — the exact scenario the old
    // `.expect(...)` calls turned into a cascading abort.
    fail::set("serve.worker.panic", "once:panic");

    let state = Arc::new(ServerState::new(
        toy_model(),
        ServeConfig {
            workers: 3,
            ..ServeConfig::default()
        },
    ));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let server = {
        let state = Arc::clone(&state);
        thread::spawn(move || serve(state, listener))
    };

    // The first connection triggers the armed panic; its request may or
    // may not be answered depending on which worker dequeues it first.
    let _ = ask(addr, r#"{"type":"stats"}"#);
    // Let the doomed worker die and poison the lock.
    thread::sleep(Duration::from_millis(100));
    assert_eq!(
        fail::fired("serve.worker.panic"),
        1,
        "the panic point must fire once"
    );

    // Every surviving worker must keep serving through the poisoned
    // lock, with byte-exact replies.
    let oneshot = ServerState::new(toy_model(), ServeConfig::default());
    for round in 0..3 {
        for req in toy_requests() {
            let got = ask(addr, &req)
                .unwrap_or_else(|e| panic!("round {round}: pool dead after poison: {e}"));
            assert_eq!(
                got,
                reply_line(&oneshot, &req),
                "reply diverged after poison"
            );
        }
    }

    // Graceful shutdown still drains: the scope join tolerates the dead
    // worker instead of propagating its panic.
    let _ = ask(addr, r#"{"type":"shutdown"}"#).expect("shutdown answered");
    let (tx, rx) = std::sync::mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(server.join());
    });
    let joined = rx
        .recv_timeout(Duration::from_secs(20))
        .expect("serve must exit after shutdown despite a dead worker");
    let io_result = joined.expect("serve() itself must not panic");
    io_result.expect("serve() must exit cleanly");
    fail::clear_all();
}
