//! The `reload` verb: a valid model file is validated off-thread and
//! atomically swapped in; a corrupt or truncated file is rejected with a
//! typed error — the current model keeps serving, and the failure is
//! counted. No failpoints needed: real files drive both paths.

use quasar_core::persist::save_model;
use quasar_serve::protocol::{Request, Response};
use quasar_serve::server::{ServeConfig, ServerState};
use quasar_testkit::workload::{tiny_trained, toy_model};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("quasar-reload-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn stats_of(state: &ServerState) -> (usize, usize) {
    match state.dispatch(&Request::Stats) {
        Response::Stats(s) => (s.prefixes, s.quasi_routers),
        other => panic!("stats request failed: {other:?}"),
    }
}

#[test]
fn reload_swaps_in_a_fresh_model() {
    let dir = scratch("swap");
    let replacement = tiny_trained(11).model;
    let path = dir.join("next.model");
    save_model(&path, &replacement).expect("save replacement");

    let state = ServerState::new(toy_model(), ServeConfig::default());
    let before = stats_of(&state);

    let resp = state.dispatch(&Request::Reload {
        path: path.to_str().unwrap().to_string(),
    });
    match resp {
        Response::Reload(r) => {
            assert!(r.swapped);
            assert_eq!(r.prefixes, replacement.prefixes().len());
        }
        other => panic!("want Reload reply, got {other:?}"),
    }

    let after = stats_of(&state);
    assert_eq!(after.0, replacement.prefixes().len());
    assert_ne!(before, after, "the served model must actually change");
    assert_eq!(state.metrics().reloads(), 1);
    assert_eq!(state.metrics().reload_failures(), 0);
}

#[test]
fn reload_accepts_a_legacy_bare_json_model() {
    let dir = scratch("legacy");
    let replacement = tiny_trained(12).model;
    let path = dir.join("legacy.json");
    std::fs::write(&path, replacement.to_json().expect("serializes")).expect("write bare JSON");

    let state = ServerState::new(toy_model(), ServeConfig::default());
    let resp = state.dispatch(&Request::Reload {
        path: path.to_str().unwrap().to_string(),
    });
    assert!(
        matches!(resp, Response::Reload(_)),
        "pre-persist models must remain reloadable: {resp:?}"
    );
    assert_eq!(stats_of(&state).0, replacement.prefixes().len());
}

#[test]
fn corrupt_reload_is_rejected_and_the_old_model_keeps_serving() {
    let dir = scratch("corrupt");
    let replacement = tiny_trained(13).model;
    let path = dir.join("next.model");
    save_model(&path, &replacement).expect("save replacement");
    // Truncate the artifact mid-payload.
    let bytes = std::fs::read(&path).expect("read");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");

    let state = ServerState::new(toy_model(), ServeConfig::default());
    let before = stats_of(&state);

    let resp = state.dispatch(&Request::Reload {
        path: path.to_str().unwrap().to_string(),
    });
    match resp {
        Response::Error(e) => {
            assert!(
                e.message.contains("reload rejected; keeping current model"),
                "the reply must say rollback happened: {}",
                e.message
            );
            assert!(
                e.message.contains("byte"),
                "the typed persist error must name the byte offset: {}",
                e.message
            );
        }
        other => panic!("want Error reply for corrupt reload, got {other:?}"),
    }

    assert_eq!(
        stats_of(&state),
        before,
        "a rejected reload must leave the serving model untouched"
    );
    assert_eq!(state.metrics().reloads(), 0);
    assert_eq!(state.metrics().reload_failures(), 1);

    // The same state still accepts a good artifact afterwards.
    save_model(&path, &replacement).expect("re-save intact");
    let resp = state.dispatch(&Request::Reload {
        path: path.to_str().unwrap().to_string(),
    });
    assert!(
        matches!(resp, Response::Reload(_)),
        "recovery reload: {resp:?}"
    );
    assert_eq!(state.metrics().reloads(), 1);
}

#[test]
fn reload_of_a_missing_file_is_rejected() {
    let dir = scratch("missing");
    let state = ServerState::new(toy_model(), ServeConfig::default());
    let resp = state.dispatch(&Request::Reload {
        path: dir.join("nope.model").to_str().unwrap().to_string(),
    });
    assert!(
        matches!(resp, Response::Error(_)),
        "missing file must be rejected: {resp:?}"
    );
    assert_eq!(state.metrics().reload_failures(), 1);
}

#[test]
fn audit_error_vetoes_reload_and_the_old_epoch_keeps_serving() {
    use quasar_testkit::defects::DefectClass;

    let dir = scratch("audit-veto");
    // A model that loads and simulates fine but carries an Error-level
    // audit finding: a duplicated per-prefix MED ranking (QL0006).
    let mut tainted = tiny_trained(21).model;
    DefectClass::DuplicateMedRanking
        .inject(&mut tainted, 3)
        .expect("inject duplicate MED ranking");
    let path = dir.join("tainted.model");
    save_model(&path, &tainted).expect("save tainted model");

    let state = ServerState::new(toy_model(), ServeConfig::default());
    let before = stats_of(&state);

    let resp = state.dispatch(&Request::Reload {
        path: path.to_str().unwrap().to_string(),
    });
    match resp {
        Response::Error(e) => {
            assert!(
                e.message.contains("reload rejected; keeping current model"),
                "the reply must say rollback happened: {}",
                e.message
            );
            assert!(
                e.message.contains("static audit") && e.message.contains("QL0006"),
                "the typed reply must name the audit rule: {}",
                e.message
            );
        }
        other => panic!("want Error reply for audit veto, got {other:?}"),
    }
    assert_eq!(
        stats_of(&state),
        before,
        "a vetoed reload must leave the serving model untouched"
    );
    assert_eq!(state.metrics().reloads(), 0);
    assert_eq!(state.metrics().reload_failures(), 1);

    // Warn-level findings do not veto: the fixture's own trained model
    // (possibly warn-carrying, never error-carrying) swaps in fine.
    let clean_path = dir.join("clean.model");
    save_model(&clean_path, &tiny_trained(21).model).expect("save clean model");
    let resp = state.dispatch(&Request::Reload {
        path: clean_path.to_str().unwrap().to_string(),
    });
    assert!(
        matches!(resp, Response::Reload(_)),
        "audit-clean model must swap in: {resp:?}"
    );
    assert_eq!(state.metrics().reloads(), 1);
}
