//! Arming coverage for the serve transport failpoints.
//!
//! `quasar sast`'s failpoint-registry rule (QS0003) requires every inject
//! site to be armed by at least one test. These drills arm the four
//! transport-layer sites — `serve.reload` (candidate validation),
//! `serve.accept` (acceptor stall), `serve.conn.read` / `serve.conn.write`
//! (peer reset mid-request / vanished client) — and assert the server
//! degrades exactly as designed: typed errors, dropped connections, and
//! full recovery once the fault clears.
//!
//! Run with `cargo test -p quasar-serve --features testkit`.

#![cfg(feature = "testkit")]

use quasar_bgpsim::fail;
use quasar_core::persist::save_model;
use quasar_serve::protocol::{Request, Response};
use quasar_serve::server::{serve, ServeConfig, ServerState};
use quasar_testkit::diff::ask;
use quasar_testkit::workload::{tiny_trained, toy_model};
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// The failpoint registry is process-global; armed tests serialize.
static SERIAL: Mutex<()> = Mutex::new(());

fn stats_of(state: &ServerState) -> String {
    format!("{:?}", state.dispatch(&Request::Stats))
}

#[test]
fn reload_validation_fault_rejects_the_swap_and_keeps_serving() {
    let _guard = SERIAL.lock().unwrap();
    fail::reset(21);
    let dir = std::env::temp_dir().join(format!("quasar-servefp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("next.model");
    save_model(&path, &tiny_trained(9).model).expect("save replacement");

    let state = ServerState::new(toy_model(), ServeConfig::default());
    let before = stats_of(&state);

    fail::set("serve.reload", "always:error");
    let resp = state.dispatch(&Request::Reload {
        path: path.to_str().unwrap().to_string(),
    });
    match resp {
        Response::Error(e) => assert!(
            e.message.contains("serve.reload"),
            "rejection must name the injected fault: {e:?}"
        ),
        other => panic!("a failed validation must produce a typed error: {other:?}"),
    }
    assert_eq!(
        stats_of(&state),
        before,
        "a rejected reload must leave the serving model untouched"
    );

    fail::clear_all();
    let resp = state.dispatch(&Request::Reload {
        path: path.to_str().unwrap().to_string(),
    });
    assert!(
        matches!(resp, Response::Reload(_)),
        "the same file must swap in once the fault clears: {resp:?}"
    );
    assert_ne!(stats_of(&state), before, "the replacement model serves");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawns a real TCP server on an ephemeral port.
fn start_server() -> (Arc<ServerState>, SocketAddr, thread::JoinHandle<()>) {
    let state = Arc::new(ServerState::new(toy_model(), ServeConfig::default()));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let server = {
        let state = Arc::clone(&state);
        thread::spawn(move || {
            let _ = serve(state, listener);
        })
    };
    (state, addr, server)
}

fn shutdown(addr: SocketAddr, server: thread::JoinHandle<()>) {
    let _ = ask(addr, r#"{"type":"shutdown"}"#);
    let (tx, rx) = std::sync::mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(server.join());
    });
    rx.recv_timeout(Duration::from_secs(20))
        .expect("serve must exit after shutdown")
        .expect("server thread");
}

#[test]
fn accept_stall_delays_but_never_drops_connections() {
    let _guard = SERIAL.lock().unwrap();
    fail::reset(22);
    // Every accept sleeps 30ms: queued connections must still be served.
    fail::set("serve.accept", "always:delay:30");
    let (_state, addr, server) = start_server();

    for _ in 0..3 {
        let reply = ask(addr, r#"{"type":"stats"}"#).expect("stalled acceptor still answers");
        assert!(
            reply.contains(r#""type":"stats""#),
            "stats reply expected: {reply}"
        );
    }

    fail::clear_all();
    shutdown(addr, server);
}

#[test]
fn connection_read_fault_drops_the_peer_and_recovers() {
    let _guard = SERIAL.lock().unwrap();
    fail::reset(23);
    let (state, addr, server) = start_server();

    fail::set("serve.conn.read", "once:error");
    // The injected peer-reset lands after the read; the connection dies
    // without a reply (an empty line counts — EOF before any response).
    match ask(addr, r#"{"type":"stats"}"#) {
        Ok(line) => assert!(
            line.is_empty(),
            "a reset connection must not produce a reply: {line}"
        ),
        Err(_) => {} // connection error surfaced to the client: also fine
    }

    fail::clear_all();
    let reply = ask(addr, r#"{"type":"stats"}"#).expect("server recovers after the fault");
    assert!(
        reply.contains(r#""type":"stats""#),
        "recovered reply: {reply}"
    );
    assert!(
        state.metrics().connections() >= 2,
        "both connections must have been accepted"
    );
    shutdown(addr, server);
}

#[test]
fn connection_write_fault_loses_the_reply_but_not_the_server() {
    let _guard = SERIAL.lock().unwrap();
    fail::reset(24);
    let (_state, addr, server) = start_server();

    fail::set("serve.conn.write", "once:error");
    match ask(addr, r#"{"type":"stats"}"#) {
        Ok(line) => assert!(
            line.is_empty(),
            "a vanished-client write fault must not deliver a reply: {line}"
        ),
        Err(_) => {}
    }

    fail::clear_all();
    let reply = ask(addr, r#"{"type":"stats"}"#).expect("server recovers after the fault");
    assert!(
        reply.contains(r#""type":"stats""#),
        "recovered reply: {reply}"
    );
    shutdown(addr, server);
}
