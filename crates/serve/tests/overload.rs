//! Overload hardening: a full pending-connection queue sheds new
//! connections with a typed `overloaded` reply (and counts them), and a
//! per-request compute deadline turns runaway requests into typed
//! `deadline_exceeded` replies instead of unbounded stalls.
//!
//! Run with `cargo test -p quasar-serve --features testkit`.

#![cfg(feature = "testkit")]

use quasar_bgpsim::fail;
use quasar_serve::protocol::Response;
use quasar_serve::server::{serve, ServeConfig, ServerState};
use quasar_testkit::diff::ask;
use quasar_testkit::workload::toy_model;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// The failpoint registry is process-global; armed tests serialize.
static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn full_queue_sheds_connections_with_typed_reply() {
    let _guard = SERIAL.lock().unwrap();
    fail::reset(3);
    // Every dispatched request stalls 150ms, so one slow worker plus a
    // one-slot queue guarantees the burst below overflows the queue.
    fail::set("serve.handle_line", "always:delay:150");

    let state = Arc::new(ServerState::new(
        toy_model(),
        ServeConfig {
            workers: 1,
            max_pending: 1,
            ..ServeConfig::default()
        },
    ));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let server = {
        let state = Arc::clone(&state);
        thread::spawn(move || serve(state, listener))
    };

    // A burst of 8 concurrent one-shot clients: 1 is being served, 1 can
    // wait in the queue, the rest must be shed.
    let clients: Vec<_> = (0..8)
        .map(|_| thread::spawn(move || ask(addr, r#"{"type":"stats"}"#)))
        .collect();
    let replies: Vec<String> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread").expect("one reply line"))
        .collect();

    let shed: Vec<&String> = replies
        .iter()
        .filter(|r| r.contains(r#""type":"overloaded""#))
        .collect();
    let served = replies
        .iter()
        .filter(|r| r.contains(r#""type":"stats""#))
        .count();
    assert!(
        !shed.is_empty(),
        "an 8-connection burst against a 1-slot queue must shed: {replies:?}"
    );
    assert!(
        served >= 1,
        "the queue must still serve someone: {replies:?}"
    );
    assert_eq!(
        state.metrics().sheds(),
        shed.len() as u64,
        "every shed connection must be counted"
    );
    // The typed reply parses and tells the client when to come back.
    for r in &shed {
        match serde_json::from_str::<Response>(r) {
            Ok(Response::Overloaded(o)) => assert!(o.retry_after_ms > 0),
            other => panic!("shed reply must parse as Overloaded: {other:?} from {r}"),
        }
    }

    fail::clear_all();
    let _ = ask(addr, r#"{"type":"shutdown"}"#).expect("shutdown answered");
    let (tx, rx) = std::sync::mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(server.join());
    });
    rx.recv_timeout(Duration::from_secs(20))
        .expect("serve must exit after shutdown")
        .expect("server thread")
        .expect("serve() exits cleanly");
}

#[test]
fn slow_request_draws_deadline_exceeded() {
    let _guard = SERIAL.lock().unwrap();
    fail::reset(5);
    // The injected stall lands after the request clock starts but before
    // dispatch, so a 5ms budget is always blown.
    fail::set("serve.handle_line", "always:delay:30");

    let state = ServerState::new(
        toy_model(),
        ServeConfig {
            deadline_ms: 5,
            ..ServeConfig::default()
        },
    );
    let reply = state.handle_line(r#"{"type":"stats"}"#);
    match reply {
        Response::DeadlineExceeded(d) => {
            assert_eq!(d.deadline_ms, 5);
            assert!(
                d.elapsed_ms >= d.deadline_ms,
                "reported elapsed {}ms must exceed the {}ms budget",
                d.elapsed_ms,
                d.deadline_ms
            );
        }
        other => panic!("want DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(state.metrics().deadlines_exceeded(), 1);

    // With the stall disarmed the same request fits the budget again —
    // the deadline rejects slow requests, not the server.
    fail::clear_all();
    let reply = state.handle_line(r#"{"type":"stats"}"#);
    assert!(
        matches!(reply, Response::Stats(_)),
        "want Stats after disarming, got {reply:?}"
    );
    assert_eq!(state.metrics().deadlines_exceeded(), 1);
}

#[test]
fn deadline_disabled_by_default() {
    let _guard = SERIAL.lock().unwrap();
    fail::reset(6);
    fail::set("serve.handle_line", "always:delay:20");
    // deadline_ms = 0 (the default) means no budget: slow but served.
    let state = ServerState::new(toy_model(), ServeConfig::default());
    let reply = state.handle_line(r#"{"type":"stats"}"#);
    assert!(
        matches!(reply, Response::Stats(_)),
        "no deadline configured, got {reply:?}"
    );
    assert_eq!(state.metrics().deadlines_exceeded(), 0);
    fail::clear_all();
}
