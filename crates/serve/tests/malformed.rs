//! Hostile-input tests against a live server: oversized request lines,
//! non-UTF-8 bytes, unknown request tags, and clients that vanish
//! mid-request. Every case must get an error reply (or a clean close) —
//! never a panic, never a wedged worker — and the pool must keep
//! answering normal traffic afterwards.

use quasar_serve::server::{serve, ServeConfig, ServerState, MAX_REQUEST_LINE};
use quasar_testkit::diff::{ask, reply_line};
use quasar_testkit::workload::{toy_model, toy_requests};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn start_server() -> (
    SocketAddr,
    Arc<ServerState>,
    thread::JoinHandle<std::io::Result<()>>,
) {
    let state = Arc::new(ServerState::new(
        toy_model(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    ));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let handle = {
        let state = Arc::clone(&state);
        thread::spawn(move || serve(state, listener))
    };
    (addr, state, handle)
}

fn shutdown(addr: SocketAddr, handle: thread::JoinHandle<std::io::Result<()>>) {
    let _ = ask(addr, r#"{"type":"shutdown"}"#);
    handle
        .join()
        .expect("no worker panicked")
        .expect("serve exited cleanly");
}

/// Reads everything until EOF with a bounded timeout.
fn read_to_eof(stream: &mut TcpStream) -> Vec<u8> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    buf
}

/// The pool still answers every canonical request with the exact
/// fault-free bytes.
fn assert_pool_healthy(addr: SocketAddr) {
    let oneshot = ServerState::new(toy_model(), ServeConfig::default());
    for req in toy_requests() {
        let got = ask(addr, &req).expect("healthy pool answers");
        assert_eq!(
            got,
            reply_line(&oneshot, &req),
            "pool corrupted by hostile input"
        );
    }
}

#[test]
fn oversized_request_line_gets_one_error_then_close() {
    let (addr, _state, handle) = start_server();

    let mut stream = TcpStream::connect(addr).unwrap();
    // A megabyte-plus of newline-free garbage; the server must cap its
    // buffer, answer once, and hang up.
    let blob = vec![b'x'; MAX_REQUEST_LINE + 4096];
    // The server may close while we are still writing — that is the
    // correct behavior, not a test failure.
    let _ = stream.write_all(&blob);
    let _ = stream.flush();
    let reply = read_to_eof(&mut stream);
    let reply = String::from_utf8_lossy(&reply);
    assert!(
        reply.contains(r#""type":"error""#) && reply.contains("exceeds"),
        "oversized line must earn a bounded error reply, got: {reply:?}"
    );
    assert_eq!(
        reply.matches(r#""type":"error""#).count(),
        1,
        "exactly one error reply, then close"
    );

    assert_pool_healthy(addr);
    shutdown(addr, handle);
}

#[test]
fn non_utf8_bytes_get_an_error_reply_not_a_panic() {
    let (addr, _state, handle) = start_server();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(&[0xff, 0xfe, 0x80, b'{', 0xc3, 0x28, b'}', b'\n'])
        .unwrap();
    stream.flush().unwrap();
    // Half-close so the server sees EOF once it has answered; an error
    // reply on its own rightly keeps the connection open.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let reply = read_to_eof(&mut stream);
    let reply = String::from_utf8_lossy(&reply);
    assert!(
        reply.contains(r#""type":"error""#),
        "binary garbage must be answered with an error reply, got: {reply:?}"
    );

    assert_pool_healthy(addr);
    shutdown(addr, handle);
}

#[test]
fn unknown_request_tag_is_rejected_with_context() {
    let (addr, _state, handle) = start_server();

    for bad in [
        r#"{"type":"prediict","prefix":"10.0.0.0/24","observer":1}"#,
        r#"{"type":42}"#,
        r#"{"no_type_at_all":true}"#,
        r#"[1,2,3]"#,
        r#""just a string""#,
    ] {
        let reply = ask(addr, bad).expect("server answers malformed requests");
        assert!(
            reply.contains(r#""type":"error""#),
            "unknown tag `{bad}` must be an error reply, got: {reply}"
        );
    }

    assert_pool_healthy(addr);
    shutdown(addr, handle);
}

#[test]
fn abrupt_disconnect_mid_request_leaves_the_pool_healthy() {
    let (addr, state, handle) = start_server();

    for _ in 0..8 {
        let mut stream = TcpStream::connect(addr).unwrap();
        // Half a request, no newline — then vanish.
        stream
            .write_all(br#"{"type":"predict","prefix":"10."#)
            .unwrap();
        stream.flush().unwrap();
        drop(stream);
    }
    // Give the pool a moment to reap the corpses, then demand service.
    thread::sleep(Duration::from_millis(100));
    assert_pool_healthy(addr);
    assert_eq!(state.metrics().panics_caught(), 0);
    shutdown(addr, handle);
}

#[test]
fn pipelined_and_empty_lines_are_handled_in_order() {
    let (addr, _state, handle) = start_server();
    let oneshot = ServerState::new(toy_model(), ServeConfig::default());

    let reqs = toy_requests();
    let mut stream = TcpStream::connect(addr).unwrap();
    // All requests in one write, with blank lines sprinkled in.
    let mut payload = String::new();
    for r in &reqs {
        payload.push('\n');
        payload.push_str(r);
        payload.push('\n');
    }
    stream.write_all(payload.as_bytes()).unwrap();
    stream.flush().unwrap();
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let replies = read_to_eof(&mut stream);
    let replies = String::from_utf8_lossy(&replies);
    let got: Vec<&str> = replies.lines().collect();
    let want: Vec<String> = reqs.iter().map(|r| reply_line(&oneshot, r)).collect();
    assert_eq!(got.len(), want.len(), "one reply per non-empty line");
    for (g, w) in got.iter().zip(want.iter()) {
        assert_eq!(
            g, w,
            "pipelined replies must match one-shot dispatch in order"
        );
    }
    shutdown(addr, handle);
}
