//! Server-side observability: request counters, latency histograms, and
//! cache statistics, all lock-free atomics so the hot path never blocks
//! on a metrics mutex.

use crate::cache::CacheSnapshot;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (microseconds) of the latency histogram buckets; an
/// implicit final bucket catches everything slower.
pub const BUCKET_BOUNDS_US: [u64; 7] = [10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

const NUM_BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1;

/// The request types the server distinguishes in its metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// `predict` requests.
    Predict,
    /// `diff` (what-if) requests.
    Diff,
    /// `explain` requests.
    Explain,
    /// `stats` requests.
    Stats,
    /// `metrics` requests.
    Metrics,
    /// `reload` (model hot-swap) requests.
    Reload,
    /// `shutdown` requests.
    Shutdown,
    /// `stream_report` requests (a streaming pipeline publishing its
    /// per-window progress).
    StreamReport,
    /// `health` (readiness) requests.
    Health,
    /// Malformed or failed requests (answered with an error response).
    Error,
}

impl RequestKind {
    const ALL: [RequestKind; 10] = [
        RequestKind::Predict,
        RequestKind::Diff,
        RequestKind::Explain,
        RequestKind::Stats,
        RequestKind::Metrics,
        RequestKind::Reload,
        RequestKind::Shutdown,
        RequestKind::StreamReport,
        RequestKind::Health,
        RequestKind::Error,
    ];

    /// Stable wire name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestKind::Predict => "predict",
            RequestKind::Diff => "diff",
            RequestKind::Explain => "explain",
            RequestKind::Stats => "stats",
            RequestKind::Metrics => "metrics",
            RequestKind::Reload => "reload",
            RequestKind::Shutdown => "shutdown",
            RequestKind::StreamReport => "stream_report",
            RequestKind::Health => "health",
            RequestKind::Error => "error",
        }
    }

    fn index(self) -> usize {
        match self {
            RequestKind::Predict => 0,
            RequestKind::Diff => 1,
            RequestKind::Explain => 2,
            RequestKind::Stats => 3,
            RequestKind::Metrics => 4,
            RequestKind::Reload => 5,
            RequestKind::Shutdown => 6,
            RequestKind::StreamReport => 7,
            RequestKind::Health => 8,
            RequestKind::Error => 9,
        }
    }
}

/// Log-scale latency histogram with atomic buckets.
#[derive(Default)]
pub struct LatencyHistogram {
    count: AtomicU64,
    total_us: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl LatencyHistogram {
    /// Records one observation in microseconds.
    pub fn record(&self, us: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us < b)
            .unwrap_or(NUM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Current state of the histogram.
    pub fn snapshot(&self) -> LatencySnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let total_us = self.total_us.load(Ordering::Relaxed);
        let buckets: Vec<(u64, u64)> = (0..NUM_BUCKETS)
            .map(|i| {
                let bound = BUCKET_BOUNDS_US.get(i).copied().unwrap_or(u64::MAX);
                (bound, self.buckets[i].load(Ordering::Relaxed))
            })
            .collect();
        LatencySnapshot {
            count,
            total_us,
            mean_us: if count == 0 {
                0.0
            } else {
                total_us as f64 / count as f64
            },
            p50_us: percentile(&buckets, count, 0.50),
            p99_us: percentile(&buckets, count, 0.99),
            buckets,
        }
    }
}

/// Bucket upper bound containing the q-th quantile (an upper-bound
/// estimate — exact percentiles would need every sample).
fn percentile(buckets: &[(u64, u64)], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((count as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0;
    for &(bound, n) in buckets {
        seen += n;
        if seen >= rank {
            return bound;
        }
    }
    u64::MAX
}

/// Serializable state of one latency histogram.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySnapshot {
    /// Requests recorded.
    pub count: u64,
    /// Sum of latencies (µs).
    pub total_us: u64,
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Upper-bound estimate of the median latency (µs).
    pub p50_us: u64,
    /// Upper-bound estimate of the 99th-percentile latency (µs).
    pub p99_us: u64,
    /// `(upper_bound_us, count)` per bucket; the last bound is `u64::MAX`.
    pub buckets: Vec<(u64, u64)>,
}

/// One streamed window's worth of pipeline progress, as reported by a
/// `quasar stream` process through the `stream_report` request.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamWindowReport {
    /// Window sequence number (0-based, monotonically increasing).
    pub seq: u64,
    /// BGP UPDATE messages parsed in this window.
    pub updates: u64,
    /// Announced (prefix, feed) route changes applied.
    pub announcements: u64,
    /// Withdrawn (prefix, feed) routes applied.
    pub withdrawals: u64,
    /// Prefixes whose observed-path set actually changed.
    pub dirty_prefixes: u64,
    /// Training mode chosen for this window: `"initial"`,
    /// `"incremental"`, `"incremental_replay"` or `"full_retrain"`.
    pub mode: String,
    /// Wall-clock time spent re-refining the model (ms).
    pub refine_ms: u64,
    /// Wall-clock time from window close to the serve swap taking
    /// effect (ms); `0` when no swap was attempted.
    pub swap_ms: u64,
    /// Updates parsed per second of window wall-clock.
    pub updates_per_sec: f64,
}

/// Cumulative status of a streaming ingestion pipeline, pushed to the
/// server so operators can read it back through the `metrics` request.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamStatusReport {
    /// Windows processed so far.
    pub windows: u64,
    /// BGP UPDATE messages parsed across all windows.
    pub updates_total: u64,
    /// Dirty prefixes accumulated across all windows.
    pub dirty_prefixes_total: u64,
    /// Model epochs successfully swapped into the server.
    pub swaps: u64,
    /// Epoch swaps the server rejected (the old model kept serving).
    pub swaps_rejected: u64,
    /// Windows trained on the incremental fast path.
    pub incremental_windows: u64,
    /// Windows that fell back to a full retrain.
    pub full_retrain_windows: u64,
    /// Whether the update source is exhausted (replay finished or the
    /// follow-mode tail went idle past its timeout).
    pub source_done: bool,
    /// Serve-tier outages the pipeline rode out: windows whose swap (or
    /// status publication) hit a transport failure while the pipeline
    /// kept training and persisting epochs locally.
    #[serde(default)]
    pub serve_outages: u64,
    /// Swaps that healed an outage: the first successful reload after
    /// one or more transport failures, pushing only the newest persisted
    /// epoch (so the served model matches an uninterrupted run).
    #[serde(default)]
    pub catch_up_swaps: u64,
    /// Transient ingest faults retried successfully (reads that failed
    /// with a retryable error and then recovered in follow mode).
    #[serde(default)]
    pub ingest_retries: u64,
    /// The most recently completed window, if any.
    pub last_window: Option<StreamWindowReport>,
}

/// All server counters.
#[derive(Default)]
pub struct ServeMetrics {
    per_kind: [LatencyHistogram; 10],
    connections: AtomicU64,
    panics_caught: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    reloads: AtomicU64,
    reload_failures: AtomicU64,
    quarantines: AtomicU64,
    rebuilds: AtomicU64,
    rebuild_failures: AtomicU64,
}

impl ServeMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one handled request of `kind` taking `us` microseconds.
    pub fn record(&self, kind: RequestKind, us: u64) {
        self.per_kind[kind.index()].record(us);
    }

    /// Records one accepted connection.
    pub fn connection_opened(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Total connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Records one connection-handler panic that was caught and contained
    /// (the worker survived).
    pub fn panic_caught(&self) {
        self.panics_caught.fetch_add(1, Ordering::Relaxed);
    }

    /// Connection-handler panics caught so far.
    pub fn panics_caught(&self) -> u64 {
        self.panics_caught.load(Ordering::Relaxed)
    }

    /// Records one connection shed at the accept loop because the pending
    /// queue was full (the peer got an `overloaded` reply and was closed).
    pub fn connection_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections shed under overload so far.
    pub fn sheds(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Records one request cut short by the per-request compute deadline.
    pub fn deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests answered with `deadline_exceeded` so far.
    pub fn deadlines_exceeded(&self) -> u64 {
        self.deadline_exceeded.load(Ordering::Relaxed)
    }

    /// Records one successful model hot-swap.
    pub fn reload_ok(&self) {
        self.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one rejected reload (the old model kept serving).
    pub fn reload_failed(&self) {
        self.reload_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Successful model reloads so far.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Rejected reloads so far.
    pub fn reload_failures(&self) -> u64 {
        self.reload_failures.load(Ordering::Relaxed)
    }

    /// Records one shard crossing its panic threshold into quarantine.
    pub fn shard_quarantined(&self) {
        self.quarantines.fetch_add(1, Ordering::Relaxed);
    }

    /// Shards quarantined so far.
    pub fn quarantines(&self) -> u64 {
        self.quarantines.load(Ordering::Relaxed)
    }

    /// Records one quarantined shard rebuilt and reinstated.
    pub fn shard_rebuilt(&self) {
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// Shard rebuilds completed so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// Records one failed rebuild (the shard stays quarantined).
    pub fn shard_rebuild_failed(&self) {
        self.rebuild_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Failed shard rebuilds so far.
    pub fn rebuild_failures(&self) -> u64 {
        self.rebuild_failures.load(Ordering::Relaxed)
    }

    /// Requests served of one kind.
    pub fn count(&self, kind: RequestKind) -> u64 {
        self.per_kind[kind.index()].snapshot().count
    }

    /// Builds the full snapshot served by the `metrics` request.
    pub fn snapshot(
        &self,
        base_cache: CacheSnapshot,
        overlay_cache: CacheSnapshot,
        active_sessions: usize,
        stream: Option<StreamStatusReport>,
    ) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: RequestKind::ALL
                .iter()
                .map(|k| (k.as_str().to_string(), self.per_kind[k.index()].snapshot()))
                .collect(),
            connections: self.connections(),
            panics_caught: self.panics_caught(),
            shed: self.sheds(),
            deadline_exceeded: self.deadlines_exceeded(),
            reloads: self.reloads(),
            reload_failures: self.reload_failures(),
            base_cache,
            overlay_cache,
            active_sessions,
            stream,
            generation: 0,
            shards: None,
            quarantines: self.quarantines(),
            rebuilds: self.rebuilds(),
            rebuild_failures: self.rebuild_failures(),
        }
    }
}

/// Per-shard counters as served in the `metrics` reply of a sharded
/// server. Each shard owns a contiguous slice of the prefix space with
/// its own epoch and caches, so these are genuinely independent tallies,
/// not a partition of the totals recomputed after the fact.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Shard index (0-based, ascending prefix ranges).
    pub shard: usize,
    /// Prefixes of the current model owned by this shard's slice.
    pub prefixes: usize,
    /// Requests dispatched to this shard.
    pub requests: u64,
    /// Requests answered with an `error` reply by this shard.
    pub errors: u64,
    /// Dispatch panics caught and contained on this shard (each failed
    /// one request for this slice; other shards kept serving).
    pub panics_caught: u64,
    /// Requests on this shard answered with `deadline_exceeded`.
    pub deadline_exceeded: u64,
    /// Swap generation of this shard's epoch. Outside of an in-flight
    /// coordinated swap, all shards report the same value.
    pub generation: u64,
    /// This shard's private steady-state cache counters.
    pub base_cache: CacheSnapshot,
    /// This shard's aggregated overlay-cache counters.
    pub overlay_cache: CacheSnapshot,
    /// What-if sessions resident on this shard.
    pub active_sessions: usize,
    /// Self-healing state of this shard: `"healthy"`, `"quarantined"`
    /// (panic threshold tripped, slice answering typed `degraded`
    /// replies), or `"rebuilding"` (a background worker is building its
    /// replacement epoch). Empty on snapshots from servers predating
    /// quarantine.
    #[serde(default)]
    pub state: String,
    /// Panics on this shard since it was last (re)instated — the count
    /// the quarantine threshold is compared against, unlike the
    /// cumulative `panics_caught`.
    #[serde(default)]
    pub strikes: u64,
}

/// The `metrics` response payload.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Per-request-type latency histograms (`predict`, `diff`, `explain`,
    /// `stats`, `metrics`, `reload`, `shutdown`, `stream_report`,
    /// `health`, `error`).
    pub requests: Vec<(String, LatencySnapshot)>,
    /// Connections accepted since startup.
    pub connections: u64,
    /// Connection-handler panics caught and contained since startup
    /// (each one ended a single connection, never a worker).
    pub panics_caught: u64,
    /// Connections shed at the accept loop because the pending queue was
    /// full (each got an `overloaded` reply, not a hang).
    pub shed: u64,
    /// Requests answered with `deadline_exceeded` because they blew the
    /// per-request compute budget.
    pub deadline_exceeded: u64,
    /// Successful model hot-swaps (`reload` requests that took effect).
    pub reloads: u64,
    /// Rejected reloads — the proposed model failed validation and the
    /// old model kept serving.
    pub reload_failures: u64,
    /// Base steady-state cache counters.
    pub base_cache: CacheSnapshot,
    /// Aggregated overlay-cache counters over resident sessions.
    pub overlay_cache: CacheSnapshot,
    /// Resident what-if sessions.
    pub active_sessions: usize,
    /// Latest streaming-pipeline status, if a `quasar stream` process has
    /// reported one (absent on servers that never received a report).
    #[serde(default)]
    pub stream: Option<StreamStatusReport>,
    /// Swap generation of the serving epoch (0 at process start, +1 per
    /// successful reload). On a sharded server this is the fleet-wide
    /// generation — one value across all shards, by construction of the
    /// coordinated swap.
    #[serde(default)]
    pub generation: u64,
    /// Per-shard counters on a sharded server; `None` on the
    /// single-epoch server (and on snapshots from servers predating
    /// sharding).
    #[serde(default)]
    pub shards: Option<Vec<ShardSnapshot>>,
    /// Shards quarantined since startup (panic threshold trips).
    #[serde(default)]
    pub quarantines: u64,
    /// Quarantined shards rebuilt and reinstated since startup.
    #[serde(default)]
    pub rebuilds: u64,
    /// Shard rebuilds that failed, leaving the shard quarantined.
    #[serde(default)]
    pub rebuild_failures: u64,
}

impl MetricsSnapshot {
    /// The latency snapshot of one request kind, if present.
    pub fn for_kind(&self, kind: &str) -> Option<&LatencySnapshot> {
        self.requests
            .iter()
            .find(|(k, _)| k == kind)
            .map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = LatencyHistogram::default();
        for us in [5, 50, 50, 500, 5_000, 50_000] {
            h.record(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.total_us, 55_555 + 50);
        // Bucket counts: <10 → 1, <100 → 2, <1k → 1, <10k → 1, <100k → 1.
        assert_eq!(s.buckets[0].1, 1);
        assert_eq!(s.buckets[1].1, 2);
        assert_eq!(s.p50_us, 100); // 3rd of 6 samples falls in the <100µs bucket
        assert_eq!(s.p99_us, 100_000);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let s = LatencyHistogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_us, 0);
        assert_eq!(s.p99_us, 0);
        assert_eq!(s.mean_us, 0.0);
    }

    #[test]
    fn metrics_snapshot_reports_all_kinds() {
        let m = ServeMetrics::new();
        m.record(RequestKind::Predict, 42);
        m.record(RequestKind::Predict, 43);
        m.record(RequestKind::Diff, 1_000_000);
        m.connection_opened();
        let s = m.snapshot(CacheSnapshot::default(), CacheSnapshot::default(), 3, None);
        assert_eq!(s.requests.len(), 10);
        assert_eq!(s.for_kind("predict").unwrap().count, 2);
        assert_eq!(s.for_kind("diff").unwrap().count, 1);
        assert_eq!(s.for_kind("explain").unwrap().count, 0);
        assert_eq!(s.for_kind("stream_report").unwrap().count, 0);
        assert_eq!(s.for_kind("health").unwrap().count, 0);
        assert_eq!(s.connections, 1);
        assert_eq!(s.active_sessions, 3);
        assert!(s.stream.is_none());
    }

    #[test]
    fn stream_status_rides_along_in_the_snapshot() {
        let m = ServeMetrics::new();
        m.record(RequestKind::StreamReport, 17);
        let report = StreamStatusReport {
            windows: 3,
            updates_total: 120,
            dirty_prefixes_total: 14,
            swaps: 3,
            swaps_rejected: 1,
            incremental_windows: 2,
            full_retrain_windows: 1,
            source_done: false,
            serve_outages: 1,
            catch_up_swaps: 1,
            ingest_retries: 0,
            last_window: Some(StreamWindowReport {
                seq: 2,
                updates: 40,
                announcements: 30,
                withdrawals: 10,
                dirty_prefixes: 5,
                mode: "incremental".into(),
                refine_ms: 250,
                swap_ms: 12,
                updates_per_sec: 160.0,
            }),
        };
        let s = m.snapshot(
            CacheSnapshot::default(),
            CacheSnapshot::default(),
            0,
            Some(report.clone()),
        );
        assert_eq!(s.for_kind("stream_report").unwrap().count, 1);
        assert_eq!(s.stream, Some(report));
        // The snapshot (stream field included) survives the wire format,
        // and a pre-streaming snapshot without the field still parses.
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        let old = serde_json::to_string(&m.snapshot(
            CacheSnapshot::default(),
            CacheSnapshot::default(),
            0,
            None,
        ))
        .unwrap();
        // A snapshot from a server predating streaming has no `stream`
        // key at all; `#[serde(default)]` must cover both shapes.
        let without_field = old.replace(",\"stream\":null", "");
        for json in [old, without_field] {
            let parsed: MetricsSnapshot = serde_json::from_str(&json).unwrap();
            assert!(parsed.stream.is_none(), "{json}");
        }
    }

    #[test]
    fn overflow_bucket_catches_slow_requests() {
        let h = LatencyHistogram::default();
        h.record(u64::MAX / 2);
        let s = h.snapshot();
        assert_eq!(s.buckets.last().unwrap().0, u64::MAX);
        assert_eq!(s.buckets.last().unwrap().1, 1);
        assert_eq!(s.p50_us, u64::MAX);
    }
}
