//! Copy-on-write what-if sessions.
//!
//! A `diff` request carries a list of hypothetical [`Change`]s (§1:
//! de-peering, added peerings, selective filtering). Applying them to the
//! served model in place would poison the base steady-state cache, so
//! each distinct change-list gets a [`Session`]: an edited *copy* of the
//! model plus its own overlay [`SteadyStateCache`]. The base cache is
//! never invalidated — only shadowed — and repeated queries against the
//! same scenario (keyed by [`scenario_key`]) warm the same overlay.

use crate::cache::{CachedSim, SteadyStateCache};
use parking_lot::RwLock;
use quasar_bgpsim::types::Prefix;
use quasar_core::model::AsRoutingModel;
use quasar_core::whatif::{apply_change, Change};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Canonical 64-bit key of a scenario: FNV-1a over the serialized
/// change-list. Order-sensitive — applying changes in a different order
/// is a different scenario (and can produce a different model).
pub fn scenario_key(changes: &[Change]) -> u64 {
    let json = serde_json::to_string(changes).unwrap_or_default();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One what-if scenario resident in the server: the edited model and the
/// overlay cache of its converged per-prefix steady states.
pub struct Session {
    key: u64,
    changes: Vec<Change>,
    edited: AsRoutingModel,
    cache: SteadyStateCache,
}

impl Session {
    /// Builds a session by applying `changes`, in order, to a copy of
    /// `base`.
    pub fn new(base: &AsRoutingModel, changes: Vec<Change>) -> Self {
        let mut edited = base.clone();
        for c in &changes {
            apply_change(&mut edited, c);
        }
        Session {
            key: scenario_key(&changes),
            changes,
            edited,
            cache: SteadyStateCache::new(),
        }
    }

    /// The scenario key.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The changes this session applied.
    pub fn changes(&self) -> &[Change] {
        &self.changes
    }

    /// The edited model.
    pub fn edited(&self) -> &AsRoutingModel {
        &self.edited
    }

    /// The session's overlay cache counters.
    pub fn cache(&self) -> &SteadyStateCache {
        &self.cache
    }

    /// Simulates `prefix` under the scenario, memoized in the overlay
    /// cache.
    pub fn simulate(&self, prefix: Prefix) -> CachedSim {
        self.cache.get_or_simulate(&self.edited, prefix)
    }
}

/// The sessions currently resident in a server, keyed by scenario hash
/// and bounded in number (oldest-created evicted first once the cap is
/// reached — an evicted scenario is not an error, just a cold overlay on
/// its next use).
pub struct SessionStore {
    max: usize,
    inner: RwLock<Inner>,
}

#[derive(Default)]
struct Inner {
    map: HashMap<u64, Arc<Session>>,
    order: VecDeque<u64>,
}

impl SessionStore {
    /// Creates a store keeping at most `max` sessions (minimum 1).
    pub fn with_capacity(max: usize) -> Self {
        SessionStore {
            max: max.max(1),
            inner: RwLock::new(Inner::default()),
        }
    }

    /// Returns the session for `changes`, creating (and registering) it
    /// on first use.
    pub fn get_or_create(&self, base: &AsRoutingModel, changes: &[Change]) -> Arc<Session> {
        let key = scenario_key(changes);
        if let Some(s) = self.inner.read().map.get(&key) {
            return s.clone();
        }
        // Build outside the write lock: cloning + editing the model is the
        // expensive part and must not serialize unrelated sessions.
        let fresh = Arc::new(Session::new(base, changes.to_vec()));
        let mut inner = self.inner.write();
        if let Some(s) = inner.map.get(&key) {
            return s.clone(); // another thread won the race
        }
        while inner.order.len() >= self.max {
            if let Some(old) = inner.order.pop_front() {
                inner.map.remove(&old);
            }
        }
        inner.order.push_back(key);
        inner.map.insert(key, fresh.clone());
        fresh
    }

    /// Number of resident sessions.
    pub fn len(&self) -> usize {
        self.inner.read().map.len()
    }

    /// True when no session is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated overlay-cache counters over all resident sessions.
    pub fn overlay_snapshot(&self) -> crate::cache::CacheSnapshot {
        let inner = self.inner.read();
        let mut out = crate::cache::CacheSnapshot::default();
        for s in inner.map.values() {
            let c = s.cache.snapshot();
            out.entries += c.entries;
            out.hits += c.hits;
            out.misses += c.misses;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_bgpsim::aspath::AsPath;
    use quasar_bgpsim::types::Asn;
    use quasar_topology::graph::AsGraph;
    use std::collections::BTreeMap;

    fn model() -> AsRoutingModel {
        let paths = vec![AsPath::from_u32s(&[1, 2, 3]), AsPath::from_u32s(&[1, 4, 3])];
        let graph = AsGraph::from_paths(&paths);
        let mut origins = BTreeMap::new();
        origins.insert(Prefix::for_origin(Asn(3)), Asn(3));
        AsRoutingModel::initial(&graph, &origins)
    }

    #[test]
    fn scenario_key_is_order_sensitive_and_stable() {
        let a = Change::Depeer(Asn(1), Asn(2));
        let b = Change::AddPeering(Asn(1), Asn(3));
        assert_eq!(scenario_key(&[a, b]), scenario_key(&[a, b]));
        assert_ne!(scenario_key(&[a, b]), scenario_key(&[b, a]));
        assert_ne!(scenario_key(&[a]), scenario_key(&[]));
    }

    #[test]
    fn session_overlay_shadows_without_touching_base() {
        let base = model();
        let base_cache = SteadyStateCache::new();
        let p = Prefix::for_origin(Asn(3));
        let before = base_cache.get_or_simulate(&base, p).unwrap();

        let session = Session::new(&base, vec![Change::Depeer(Asn(2), Asn(3))]);
        let after = session.simulate(p).unwrap();

        // The scenario changed AS1's route, but the base cache still
        // answers with the original steady state.
        let r1 = base.quasi_routers_of(Asn(1))[0];
        assert_ne!(
            before.best_route(r1).map(|r| r.as_path.clone()),
            after.best_route(r1).map(|r| r.as_path.clone())
        );
        let again = base_cache.get_or_simulate(&base, p).unwrap();
        assert!(Arc::ptr_eq(&before, &again));
        assert_eq!(base_cache.misses(), 1);
    }

    #[test]
    fn store_reuses_sessions_and_evicts_beyond_capacity() {
        let base = model();
        let store = SessionStore::with_capacity(2);
        let c1 = [Change::Depeer(Asn(2), Asn(3))];
        let c2 = [Change::Depeer(Asn(4), Asn(3))];
        let c3 = [Change::AddPeering(Asn(1), Asn(3))];

        let s1 = store.get_or_create(&base, &c1);
        let s1_again = store.get_or_create(&base, &c1);
        assert!(Arc::ptr_eq(&s1, &s1_again));
        assert_eq!(store.len(), 1);

        store.get_or_create(&base, &c2);
        store.get_or_create(&base, &c3); // evicts the oldest (c1)
        assert_eq!(store.len(), 2);
        let s1_rebuilt = store.get_or_create(&base, &c1);
        assert!(!Arc::ptr_eq(&s1, &s1_rebuilt));
    }
}
