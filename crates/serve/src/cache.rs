//! The per-prefix steady-state cache.
//!
//! Per-prefix simulation is deterministic for a fixed model (DESIGN.md
//! §7) and independent across prefixes, which makes the converged RIBs
//! perfectly memoizable: the first query touching a prefix pays for a
//! full `bgpsim` run to convergence, every later query for *any*
//! observation point of that prefix reuses the stored
//! [`SimulationResult`].
//!
//! Concurrency: the prefix → slot map is guarded by a
//! [`parking_lot::RwLock`]; each slot carries its own mutex so that two
//! threads racing on the *same* cold prefix compute it once (the loser
//! blocks on the slot, not on the whole map), while simulations of
//! *different* prefixes proceed in parallel.

use parking_lot::{Mutex, RwLock};
use quasar_bgpsim::engine::SimulationResult;
use quasar_bgpsim::error::SimError;
use quasar_bgpsim::types::Prefix;
use quasar_core::model::AsRoutingModel;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A memoized per-prefix outcome: the converged RIBs, or the simulation
/// error (e.g. policy divergence) that run produced. Errors are cached
/// too — re-simulating a diverging prefix on every query would be the
/// slowest possible way to keep failing.
pub type CachedSim = Result<Arc<SimulationResult>, SimError>;

/// One prefix's compute-once cell.
#[derive(Default)]
struct Slot(Mutex<Option<CachedSim>>);

/// Compute-once, read-many cache of converged per-prefix simulations.
#[derive(Default)]
pub struct SteadyStateCache {
    slots: RwLock<HashMap<Prefix, Arc<Slot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Point-in-time counters of one cache, as reported by the `metrics`
/// request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Prefixes with a memoized steady state.
    pub entries: usize,
    /// Queries answered from memory.
    pub hits: u64,
    /// Queries that had to run (or wait for) a simulation.
    pub misses: u64,
}

impl SteadyStateCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the converged simulation of `prefix` under `model`,
    /// computing and memoizing it on first use. A query counts as a hit
    /// when the slot already existed (even if its computation is still in
    /// flight on another thread), as a miss when this call created it.
    pub fn get_or_simulate(&self, model: &AsRoutingModel, prefix: Prefix) -> CachedSim {
        let slot = {
            let map = self.slots.read();
            map.get(&prefix).cloned()
        };
        let slot = match slot {
            Some(s) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                s
            }
            None => {
                let mut map = self.slots.write();
                // Double-checked: another thread may have created the slot
                // between our read unlock and write lock.
                if let Some(s) = map.get(&prefix) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    s.clone()
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let s = Arc::new(Slot::default());
                    map.insert(prefix, s.clone());
                    s
                }
            }
        };
        let mut cell = slot.0.lock();
        if let Some(cached) = cell.as_ref() {
            return cached.clone();
        }
        let computed = model.simulate(prefix).map(Arc::new);
        *cell = Some(computed.clone());
        computed
    }

    /// Number of prefixes with a slot (computed or in flight).
    pub fn len(&self) -> usize {
        self.slots.read().len()
    }

    /// True when no prefix has been queried yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queries answered from an existing slot.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Queries that created a slot (triggered a simulation).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Current counters.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            entries: self.len(),
            hits: self.hits(),
            misses: self.misses(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_bgpsim::aspath::AsPath;
    use quasar_bgpsim::types::Asn;
    use quasar_topology::graph::AsGraph;
    use std::collections::BTreeMap;

    fn model() -> AsRoutingModel {
        let paths = vec![AsPath::from_u32s(&[1, 2, 3]), AsPath::from_u32s(&[1, 4, 3])];
        let graph = AsGraph::from_paths(&paths);
        let mut origins = BTreeMap::new();
        origins.insert(Prefix::for_origin(Asn(3)), Asn(3));
        origins.insert(Prefix::for_origin(Asn(2)), Asn(2));
        AsRoutingModel::initial(&graph, &origins)
    }

    #[test]
    fn first_query_misses_then_hits() {
        let m = model();
        let cache = SteadyStateCache::new();
        let p = Prefix::for_origin(Asn(3));
        let a = cache.get_or_simulate(&m, p).unwrap();
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 0);
        let b = cache.get_or_simulate(&m, p).unwrap();
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        // Same memoized steady state, not a re-simulation.
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn distinct_prefixes_get_distinct_slots() {
        let m = model();
        let cache = SteadyStateCache::new();
        cache
            .get_or_simulate(&m, Prefix::for_origin(Asn(3)))
            .unwrap();
        cache
            .get_or_simulate(&m, Prefix::for_origin(Asn(2)))
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.snapshot().misses, 2);
    }

    #[test]
    fn cached_result_equals_direct_simulation() {
        let m = model();
        let cache = SteadyStateCache::new();
        let p = Prefix::for_origin(Asn(3));
        let cached = cache.get_or_simulate(&m, p).unwrap();
        let direct = m.simulate(p).unwrap();
        for rib in direct.ribs() {
            let c = cached.rib(rib.router).unwrap();
            assert_eq!(
                c.best().map(|r| r.as_path.clone()),
                rib.best().map(|r| r.as_path.clone())
            );
        }
    }

    #[test]
    fn concurrent_cold_queries_simulate_once() {
        let m = model();
        let cache = SteadyStateCache::new();
        let p = Prefix::for_origin(Asn(3));
        let results: Vec<Arc<SimulationResult>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|_| cache.get_or_simulate(&m, p).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        // Every thread observed the same Arc: exactly one simulation ran.
        for r in &results[1..] {
            assert!(Arc::ptr_eq(&results[0], r));
        }
        assert_eq!(cache.misses() + cache.hits(), 8);
        assert_eq!(cache.misses(), 1);
    }
}
