//! # quasar-serve — a resident what-if/prediction query server
//!
//! DESIGN.md promises "train once, what-if forever"; this crate delivers
//! the serving half. A long-running daemon loads a trained
//! [`quasar_core::model::AsRoutingModel`] once, listens on TCP, and
//! answers the paper's interactive questions (§1 what-if analyses,
//! per-(prefix, observation-AS) route predictions, decision narrations)
//! over a newline-delimited JSON protocol — without re-simulating the
//! world for every question.
//!
//! The heart is the **per-prefix steady-state cache** ([`cache`]): the
//! engine is deterministic per (model, prefix) (DESIGN.md §7), so the
//! first query touching a prefix runs `bgpsim` to convergence and
//! memoizes the resulting RIBs; every later query against any observation
//! point of that prefix is a cache hit. What-if scenarios never
//! invalidate that base cache: each distinct change-list gets its own
//! copy-on-write [`session::Session`] holding an edited model and an
//! overlay cache keyed by the scenario hash ([`session::scenario_key`]),
//! so the base steady state is only ever *shadowed*.
//!
//! Modules:
//! * [`protocol`] — wire request/response types and the shared reply
//!   builders (also used by the one-shot CLI, so served answers are
//!   byte-identical to `quasar predict`/`quasar whatif` output);
//! * [`cache`] — the per-prefix steady-state cache;
//! * [`session`] — copy-on-write what-if sessions with overlay caches;
//! * [`metrics`] — request counters, latency histograms, cache hit/miss
//!   tallies;
//! * [`server`] — the TCP listener, crossbeam worker pool, and request
//!   dispatch ([`server::ServerState`] is usable without sockets, which
//!   is how the property tests drive it);
//! * [`shard`] — the prefix-sharded dispatcher: N shards, each with a
//!   private epoch and caches over a contiguous slice of the prefix
//!   space, with a coordinated all-or-nothing epoch swap. Byte-identical
//!   to the single-epoch server by construction (and by the testkit's
//!   sharding differential suite).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors (or `expect` with an
// invariant message, annotated at the use site); unit tests are exempt.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod session;
pub mod shard;

/// Commonly used names.
pub mod prelude {
    pub use crate::cache::{CacheSnapshot, SteadyStateCache};
    pub use crate::metrics::{
        LatencySnapshot, MetricsSnapshot, RequestKind, ServeMetrics, ShardSnapshot,
        StreamStatusReport, StreamWindowReport,
    };
    pub use crate::protocol::{
        diff_reply, explain_reply, predict_reply, stats_reply, ChangeSpec, DiffReply, ErrorReply,
        ExplainReply, ImpactEntry, PredictReply, Request, Response, RouterBest, ShutdownReply,
        StatsReply, StreamReportReply,
    };
    pub use crate::server::{serve, ServeConfig, ServeHandler, ServerState};
    pub use crate::session::{scenario_key, Session, SessionStore};
    pub use crate::shard::{ShardMap, ShardedState};
}
