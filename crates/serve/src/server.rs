//! The TCP server: shared state, request dispatch, worker pool, and
//! graceful shutdown.
//!
//! The model lives in a [`ModelEpoch`] — model + caches + session store,
//! immutable once published — behind an `RwLock<Arc<...>>`: every request
//! clones the `Arc` once and runs entirely against that epoch, and a
//! `reload` request publishes a fresh epoch atomically (in-flight
//! requests finish on the epoch they started with; a failed validation
//! keeps the old epoch serving). The accept loop runs non-blocking and
//! hands connections to workers through a bounded `Mutex<VecDeque>` +
//! `Condvar` queue; beyond [`ServeConfig::max_pending`] pending
//! connections the acceptor *sheds*: the peer gets one `overloaded` JSON
//! reply and a closed connection instead of an unbounded queue. A
//! `shutdown` request flips one flag, after which the acceptor stops
//! taking connections and every worker finishes its in-flight request,
//! closes its stream, and exits — no thread or port is leaked.
//!
//! The accept loop, worker pool, and connection handler are generic over
//! [`ServeHandler`]: the single-epoch [`ServerState`] here and the
//! prefix-sharded [`crate::shard::ShardedState`] plug into the same
//! front end, so everything from load shedding to panic containment is
//! written (and tested) once. Request-level dispatch against one epoch
//! lives in free functions (`predict_on`, `explain_on`, `diff_on`)
//! shared by both servers — the sharding differential suite exists to
//! prove the dispatcher composition of those functions is byte-identical
//! to the single-epoch composition.

use crate::cache::SteadyStateCache;
use crate::metrics::{RequestKind, ServeMetrics, StreamStatusReport};
use crate::protocol::{
    diff_reply, explain_reply, predict_reply, stats_reply, ChangeSpec, DeadlineExceededReply,
    HealthReply, OverloadedReply, ReloadReply, Request, Response, ShutdownReply, StreamHealth,
    StreamReportReply,
};
use crate::session::SessionStore;
use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::error::SimError;
use quasar_bgpsim::types::{Asn, Prefix};
use quasar_core::model::AsRoutingModel;
use quasar_core::whatif::{Change, RoutingDiff};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How long the acceptor sleeps when no connection is pending, and how
/// long workers wait on the queue before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Per-connection read timeout so idle workers notice a shutdown instead
/// of blocking in `read` forever.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Hard cap on one buffered request line. A client that streams this many
/// bytes without a newline gets one error reply and a closed connection
/// instead of growing the buffer without bound.
pub const MAX_REQUEST_LINE: usize = 1 << 20;

/// Locks a mutex, recovering the data if a previous holder panicked.
/// Every value guarded here (the connection queue, the accept-error slot)
/// stays structurally valid across a panic — a half-handled connection
/// was popped before the handler ran — so continuing with the inner data
/// is safe, and it keeps one panicking worker from cascading into every
/// thread that touches the same lock.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Maximum resident what-if sessions (oldest evicted beyond this).
    pub max_sessions: usize,
    /// Maximum pending (accepted but not yet handled) connections before
    /// the acceptor sheds new ones with an `overloaded` reply.
    pub max_pending: usize,
    /// Per-request compute deadline in milliseconds; requests running
    /// longer are answered with `deadline_exceeded`. `0` disables the
    /// deadline.
    pub deadline_ms: u64,
    /// Panics on one shard (since its last reinstate) before the shard is
    /// quarantined and rebuilt in the background. `0` disables quarantine:
    /// every panic is answered per-request and the shard keeps serving.
    /// Only the sharded server reads this; the single-epoch server has no
    /// slice to fence off.
    pub quarantine_threshold: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(16),
            max_sessions: 32,
            max_pending: 128,
            deadline_ms: 0,
            quarantine_threshold: 0,
        }
    }
}

/// One published generation of served state: the model plus the caches
/// that are only valid for exactly that model. A `reload` swaps the whole
/// epoch, so a cache entry can never outlive the model it was computed
/// from; requests in flight keep the `Arc` of the epoch they started on.
///
/// The model itself sits behind its own `Arc` so a sharded server can
/// share one loaded model across N epochs whose *caches* stay private
/// per shard.
pub struct ModelEpoch {
    /// The served model (shared between shards on a sharded server; each
    /// shard wraps it in its own epoch with private caches).
    pub model: Arc<AsRoutingModel>,
    /// Per-prefix steady-state cache for `model`.
    pub base_cache: SteadyStateCache,
    /// What-if session store (overlays on `model`).
    pub sessions: SessionStore,
    /// Swap generation: `0` for the process-start epoch, incremented by
    /// one on every successful reload. On a sharded server every shard
    /// publishes the same generation outside a swap — a torn generation
    /// is exactly the state the coordinated two-phase swap exists to
    /// make unobservable.
    pub generation: u64,
}

impl ModelEpoch {
    /// Wraps a model with fresh (cold) caches at generation 0.
    pub fn new(model: AsRoutingModel, max_sessions: usize) -> Self {
        Self::shared(Arc::new(model), max_sessions, 0)
    }

    /// Wraps an already-shared model with fresh private caches at an
    /// explicit swap generation.
    pub fn shared(model: Arc<AsRoutingModel>, max_sessions: usize, generation: u64) -> Self {
        ModelEpoch {
            model,
            base_cache: SteadyStateCache::new(),
            sessions: SessionStore::with_capacity(max_sessions),
            generation,
        }
    }
}

/// What the TCP front end ([`serve`]) needs from a request handler: the
/// single-epoch [`ServerState`] and the prefix-sharded
/// [`crate::shard::ShardedState`] both implement it, so one accept loop,
/// worker pool, and connection handler serve either.
pub trait ServeHandler: Send + Sync {
    /// Parses one request line, dispatches it, records metrics, and
    /// returns the reply.
    fn handle_line(&self, line: &str) -> Response;
    /// The server configuration.
    fn config(&self) -> &ServeConfig;
    /// The front-end metrics (connections, sheds, caught panics).
    fn metrics(&self) -> &ServeMetrics;
    /// True once a `shutdown` request has been accepted.
    fn shutting_down(&self) -> bool;
    /// Flips the shutdown flag (idempotent).
    fn request_shutdown(&self);
}

/// Everything the workers share: the current model epoch, the metrics,
/// and the shutdown flag.
pub struct ServerState {
    config: ServeConfig,
    epoch: parking_lot::RwLock<Arc<ModelEpoch>>,
    metrics: ServeMetrics,
    /// Latest status pushed by a `stream_report` request (plus when it
    /// arrived, so `health` can report its age); served back under
    /// `metrics` and `health`. A plain mutex — touched once per window,
    /// never on the query hot path.
    stream_report: parking_lot::Mutex<Option<(StreamStatusReport, Instant)>>,
    shutdown: AtomicBool,
}

impl ServerState {
    /// Wraps a trained model in fresh server state.
    pub fn new(model: AsRoutingModel, config: ServeConfig) -> Self {
        ServerState {
            config,
            epoch: parking_lot::RwLock::new(Arc::new(ModelEpoch::new(model, config.max_sessions))),
            metrics: ServeMetrics::new(),
            stream_report: parking_lot::Mutex::new(None),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The current model epoch. Requests clone the `Arc` once and use it
    /// throughout, so a concurrent `reload` never changes an answer
    /// mid-request.
    pub fn epoch(&self) -> Arc<ModelEpoch> {
        Arc::clone(&self.epoch.read())
    }

    /// The server configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The server metrics.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// True once a `shutdown` request has been accepted.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag (idempotent).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Simulates every model prefix into the base cache so the first
    /// real query after the listener opens is a cache hit. Returns the
    /// number of prefixes warmed.
    pub fn prewarm(&self) -> usize {
        let epoch = self.epoch();
        prewarm_epoch(&epoch, |_| true)
    }

    /// Parses one request line, dispatches it, and records latency
    /// metrics. Malformed lines and failed requests are tallied under the
    /// `error` kind; deadline-exceeded replies are tallied under the
    /// request's own kind plus the dedicated `deadline_exceeded` counter.
    pub fn handle_line(&self, line: &str) -> Response {
        let start = Instant::now();
        // Failpoint: injects a dispatch-level fault (error reply, stall,
        // or panic — the panic is caught by the worker's unwind guard).
        // An injected delay lands before the deadline check, so it also
        // drives `deadline_exceeded` tests.
        #[cfg(feature = "testkit")]
        if quasar_bgpsim::fail::inject("serve.handle_line") {
            let resp = Response::error("injected fault (failpoint serve.handle_line)");
            self.metrics
                .record(RequestKind::Error, start.elapsed().as_micros() as u64);
            return resp;
        }
        let deadline = (self.config.deadline_ms > 0).then(|| Deadline {
            start,
            limit: Duration::from_millis(self.config.deadline_ms),
        });
        let (kind, response) = match serde_json::from_str::<Request>(line.trim()) {
            Ok(req) => {
                let resp = self.dispatch_bounded(&req, deadline.as_ref());
                let kind = if matches!(resp, Response::Error(_)) {
                    RequestKind::Error
                } else {
                    req.kind()
                };
                if matches!(resp, Response::DeadlineExceeded(_)) {
                    self.metrics.deadline_exceeded();
                }
                (kind, resp)
            }
            Err(e) => (
                RequestKind::Error,
                Response::error(format!("bad request: {e}")),
            ),
        };
        self.metrics
            .record(kind, start.elapsed().as_micros() as u64);
        response
    }

    /// Dispatches one parsed request with no compute deadline.
    pub fn dispatch(&self, req: &Request) -> Response {
        self.dispatch_bounded(req, None)
    }

    /// Dispatches one parsed request, cutting the computation short with
    /// a `deadline_exceeded` reply if it outlives `deadline`. The epoch
    /// is pinned once here: the whole request runs against one model even
    /// if a `reload` lands concurrently.
    fn dispatch_bounded(&self, req: &Request, deadline: Option<&Deadline>) -> Response {
        let epoch = self.epoch();
        if let Some(resp) = deadline.and_then(Deadline::exceeded) {
            return resp;
        }
        match req {
            Request::Predict {
                prefix,
                observer,
                observed_path,
            } => predict_on(
                &epoch,
                prefix,
                *observer,
                observed_path.as_deref(),
                deadline,
            ),
            Request::Diff { changes, prefixes } => {
                let changes = match parse_changes(changes) {
                    Ok(c) => c,
                    Err(e) => return e,
                };
                let targets = match resolve_targets(&epoch, prefixes.as_deref()) {
                    Ok(t) => t,
                    Err(e) => return e,
                };
                diff_on(&epoch, &changes, &targets, deadline)
            }
            Request::Explain { prefix, observer } => {
                explain_on(&epoch, prefix, *observer, deadline)
            }
            Request::Stats => Response::Stats(stats_reply(&epoch.model)),
            Request::Metrics => {
                let mut snap = self.metrics.snapshot(
                    epoch.base_cache.snapshot(),
                    epoch.sessions.overlay_snapshot(),
                    epoch.sessions.len(),
                    self.stream_report.lock().as_ref().map(|(r, _)| r.clone()),
                );
                snap.generation = epoch.generation;
                Response::Metrics(Box::new(snap))
            }
            Request::Health => {
                // A single-epoch server has no shard to degrade: if it
                // answers at all, it is healthy.
                Response::Health(HealthReply {
                    status: "healthy".to_string(),
                    generation: epoch.generation,
                    panics_caught: self.metrics.panics_caught(),
                    quarantines: 0,
                    rebuilds: 0,
                    rebuild_failures: 0,
                    shards: None,
                    stream: stream_health(&self.stream_report),
                })
            }
            Request::Reload { path } => self.do_reload(path),
            Request::StreamReport { report } => {
                let windows = report.windows;
                *self.stream_report.lock() = Some((report.clone(), Instant::now()));
                Response::StreamReport(StreamReportReply {
                    accepted: true,
                    windows,
                })
            }
            Request::Shutdown => {
                self.request_shutdown();
                Response::Shutdown(ShutdownReply { draining: true })
            }
        }
    }

    /// Loads and validates the model at `path` on a separate thread, then
    /// atomically swaps it in as a fresh epoch. Any failure — unreadable
    /// file, corrupt artifact, a model that cannot simulate its first
    /// prefix, even a panic during validation — leaves the current epoch
    /// serving untouched and comes back as an `error` reply.
    fn do_reload(&self, path: &str) -> Response {
        match validate_off_thread(path) {
            Ok(model) => {
                let stats = model.stats();
                let prefixes = model.prefixes().len();
                let generation = {
                    let mut guard = self.epoch.write();
                    let generation = guard.generation + 1;
                    *guard = Arc::new(ModelEpoch::shared(
                        Arc::new(model),
                        self.config.max_sessions,
                        generation,
                    ));
                    generation
                };
                self.metrics.reload_ok();
                Response::Reload(ReloadReply {
                    swapped: true,
                    prefixes,
                    quasi_routers: stats.quasi_routers,
                    generation,
                })
            }
            Err(msg) => {
                self.metrics.reload_failed();
                Response::error(format!("reload rejected; keeping current model: {msg}"))
            }
        }
    }
}

impl ServeHandler for ServerState {
    fn handle_line(&self, line: &str) -> Response {
        ServerState::handle_line(self, line)
    }
    fn config(&self) -> &ServeConfig {
        ServerState::config(self)
    }
    fn metrics(&self) -> &ServeMetrics {
        ServerState::metrics(self)
    }
    fn shutting_down(&self) -> bool {
        ServerState::shutting_down(self)
    }
    fn request_shutdown(&self) {
        ServerState::request_shutdown(self)
    }
}

/// Parses and validates a (prefix, observer) query pair.
// The Err is the ready-to-send error reply, produced at most once per
// request — its size does not matter on this path.
#[allow(clippy::result_large_err)]
fn lookup(epoch: &ModelEpoch, prefix: &str, observer: u32) -> Result<(Prefix, Asn), Response> {
    let prefix: Prefix = prefix.parse().map_err(Response::error)?;
    if !epoch.model.prefixes().contains_key(&prefix) {
        return Err(Response::error(format!("unknown prefix `{prefix}`")));
    }
    let observer = Asn(observer);
    if epoch.model.quasi_routers_of(observer).is_empty() {
        return Err(Response::error(format!("unknown AS `{}`", observer.0)));
    }
    Ok((prefix, observer))
}

// See `lookup` on the Err size.
#[allow(clippy::result_large_err)]
pub(crate) fn lookup_prefix(epoch: &ModelEpoch, prefix: &str) -> Result<Prefix, Response> {
    let prefix: Prefix = prefix.parse().map_err(Response::error)?;
    if !epoch.model.prefixes().contains_key(&prefix) {
        return Err(Response::error(format!("unknown prefix `{prefix}`")));
    }
    Ok(prefix)
}

/// Answers a `predict` request against one pinned epoch.
pub(crate) fn predict_on(
    epoch: &ModelEpoch,
    prefix: &str,
    observer: u32,
    observed: Option<&[u32]>,
    deadline: Option<&Deadline>,
) -> Response {
    let (prefix, observer) = match lookup(epoch, prefix, observer) {
        Ok(pair) => pair,
        Err(e) => return e,
    };
    let result = match epoch.base_cache.get_or_simulate(&epoch.model, prefix) {
        Ok(r) => r,
        Err(e) => return Response::error(format!("simulation failed: {e}")),
    };
    if let Some(resp) = deadline.and_then(Deadline::exceeded) {
        return resp;
    }
    let routers = epoch.model.quasi_routers_of(observer);
    let observed = observed.map(AsPath::from_u32s);
    Response::Predict(predict_reply(
        &result,
        &routers,
        prefix,
        observer,
        observed.as_ref(),
    ))
}

/// Answers an `explain` request against one pinned epoch.
pub(crate) fn explain_on(
    epoch: &ModelEpoch,
    prefix: &str,
    observer: u32,
    deadline: Option<&Deadline>,
) -> Response {
    let (prefix, observer) = match lookup(epoch, prefix, observer) {
        Ok(pair) => pair,
        Err(e) => return e,
    };
    let result = match epoch.base_cache.get_or_simulate(&epoch.model, prefix) {
        Ok(r) => r,
        Err(e) => return Response::error(format!("simulation failed: {e}")),
    };
    if let Some(resp) = deadline.and_then(Deadline::exceeded) {
        return resp;
    }
    let routers = epoch.model.quasi_routers_of(observer);
    Response::Explain(explain_reply(&result, &routers, prefix, observer))
}

/// Validates and converts the wire-level change specs of a `diff`
/// request, first error wins.
#[allow(clippy::result_large_err)]
pub(crate) fn parse_changes(specs: &[ChangeSpec]) -> Result<Vec<Change>, Response> {
    if specs.is_empty() {
        return Err(Response::error("a diff request needs at least one change"));
    }
    let mut changes: Vec<Change> = Vec::with_capacity(specs.len());
    for s in specs {
        match s.to_change() {
            Ok(c) => changes.push(c),
            Err(e) => return Err(Response::error(e)),
        }
    }
    Ok(changes)
}

/// Resolves a `diff` request's target set: every model prefix when the
/// request names none, otherwise the named prefixes validated in the
/// order given (first error wins), then sorted and deduplicated.
#[allow(clippy::result_large_err)]
pub(crate) fn resolve_targets(
    epoch: &ModelEpoch,
    prefixes: Option<&[String]>,
) -> Result<Vec<Prefix>, Response> {
    match prefixes {
        None => Ok(epoch.model.prefixes().keys().copied().collect()),
        Some(list) => {
            let mut out = Vec::with_capacity(list.len());
            for p in list {
                out.push(lookup_prefix(epoch, p)?);
            }
            out.sort();
            out.dedup();
            Ok(out)
        }
    }
}

/// Runs a validated `diff` over sorted targets against one pinned epoch.
/// The caller guarantees `targets` is sorted — the reply's impact list
/// comes out in exactly that order, which is what lets a sharded
/// dispatcher concatenate per-shard replies deterministically.
pub(crate) fn diff_on(
    epoch: &ModelEpoch,
    changes: &[Change],
    targets: &[Prefix],
    deadline: Option<&Deadline>,
) -> Response {
    let session = epoch.sessions.get_or_create(&epoch.model, changes);
    let mut diff = RoutingDiff::default();
    for &prefix in targets {
        // The deadline is checked between prefixes — a whole-model
        // diff is the one request whose work grows with the model,
        // so this is where a bounded reply matters most.
        if let Some(resp) = deadline.and_then(Deadline::exceeded) {
            return resp;
        }
        let before = match epoch.base_cache.get_or_simulate(&epoch.model, prefix) {
            Ok(r) => r,
            Err(e) => return Response::error(format!("simulation failed: {e}")),
        };
        let after = match session.simulate(prefix) {
            Ok(r) => Some(r),
            Err(SimError::Divergence { .. }) => None,
            Err(e) => return Response::error(format!("scenario simulation failed: {e}")),
        };
        diff.record_prefix(prefix, &before, after.as_deref());
    }
    Response::Diff(diff_reply(session.key(), changes.len(), &diff))
}

/// Simulates every model prefix matching `owns` into the epoch's base
/// cache; returns how many were warmed. Simulation failures are left for
/// the first real query to report — prewarming is best-effort by design.
pub(crate) fn prewarm_epoch(epoch: &ModelEpoch, owns: impl Fn(Prefix) -> bool) -> usize {
    let mut warmed = 0;
    for (&prefix, _) in epoch.model.prefixes().iter() {
        if owns(prefix) {
            let _ = epoch.base_cache.get_or_simulate(&epoch.model, prefix);
            warmed += 1;
        }
    }
    warmed
}

/// Loads and validates a candidate model: artifact decode, static audit
/// at `--deny error` severity, and a semantic probe simulating the first
/// prefix. This is the shared phase-0 of both the single-epoch reload
/// and the sharded two-phase swap.
pub(crate) fn validate_candidate(path: &str) -> Result<AsRoutingModel, String> {
    #[cfg(feature = "testkit")]
    if quasar_bgpsim::fail::inject("serve.reload") {
        return Err("injected fault (failpoint serve.reload)".to_string());
    }
    let model = quasar_core::persist::load_model(path).map_err(|e| match e.hint() {
        Some(h) => format!("{e} ({h})"),
        None => e.to_string(),
    })?;
    // Static audit before the (costlier) simulation probe:
    // Error-level findings veto the swap outright — the previous
    // epoch keeps serving.
    let report = quasar_lint::audit(&model);
    if report.denies(quasar_lint::Severity::Error) {
        return Err(format!(
            "model failed static audit: {}",
            report.error_summary()
        ));
    }
    // Semantic probe: a structurally valid model that cannot
    // simulate is as useless as a corrupt one.
    if let Some((&prefix, _)) = model.prefixes().iter().next() {
        model
            .simulate(prefix)
            .map_err(|e| format!("model failed validation probe on {prefix}: {e}"))?;
    }
    Ok(model)
}

/// Runs [`validate_candidate`] on a separate thread so even a panic
/// during validation cannot take the serving thread down; a panic comes
/// back as an ordinary rejection message.
pub(crate) fn validate_off_thread(path: &str) -> Result<AsRoutingModel, String> {
    let path = path.to_string();
    match std::thread::spawn(move || validate_candidate(&path)).join() {
        Ok(result) => result,
        Err(_) => Err("validation thread panicked".to_string()),
    }
}

/// A per-request compute budget, measured from the moment the request
/// line reached the server's `handle_line`.
pub(crate) struct Deadline {
    pub(crate) start: Instant,
    pub(crate) limit: Duration,
}

impl Deadline {
    /// The `deadline_exceeded` reply if the budget is spent, else `None`.
    pub(crate) fn exceeded(&self) -> Option<Response> {
        let elapsed = self.start.elapsed();
        if elapsed > self.limit {
            Some(Response::DeadlineExceeded(DeadlineExceededReply {
                deadline_ms: self.limit.as_millis() as u64,
                elapsed_ms: elapsed.as_millis() as u64,
            }))
        } else {
            None
        }
    }
}

/// Serves requests on `listener` until a `shutdown` request arrives,
/// then drains in-flight work and returns. The listener is bound by the
/// caller so an ephemeral port can be printed before serving starts.
pub fn serve<H: ServeHandler>(state: Arc<H>, listener: TcpListener) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let queue: Mutex<VecDeque<TcpStream>> = Mutex::new(VecDeque::new());
    let available = Condvar::new();
    let accept_error: Mutex<Option<io::Error>> = Mutex::new(None);

    crossbeam::thread::scope(|scope| {
        for _ in 0..state.config().workers.max(1) {
            scope.spawn(|_| worker_loop(&*state, &queue, &available));
        }

        // Accept loop: non-blocking so the shutdown flag is observed
        // within one poll interval.
        loop {
            if state.shutting_down() {
                break;
            }
            // Failpoint: stalls the acceptor; queued connections must
            // survive an arbitrarily slow accept path.
            #[cfg(feature = "testkit")]
            let _ = quasar_bgpsim::fail::inject("serve.accept");
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let mut guard = lock_recovering(&queue);
                    if guard.len() >= state.config().max_pending.max(1) {
                        // Load shedding: beyond the bounded queue the peer
                        // gets one typed reply and a closed connection —
                        // bounded memory and an honest answer instead of
                        // unbounded queueing. The write is best-effort: a
                        // peer that already gave up loses nothing.
                        let pending = guard.len();
                        drop(guard);
                        state.metrics().connection_shed();
                        shed_connection(stream, pending, state.config().workers);
                        continue;
                    }
                    state.metrics().connection_opened();
                    guard.push_back(stream);
                    drop(guard);
                    available.notify_one();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => {}
                Err(e) => {
                    *lock_recovering(&accept_error) = Some(e);
                    state.request_shutdown();
                    break;
                }
            }
        }
        available.notify_all();
    })
    // A worker that panicked outside the unwind guard (e.g. a failpoint
    // firing inside the queue's critical section) died alone: the accept
    // loop and the surviving workers recovered the poisoned locks and
    // finished the drain, so a dead worker is a warning, not a serve error.
    .unwrap_or_else(|_| eprintln!("quasar-serve: a worker thread panicked and was dropped"));

    match accept_error
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
    {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// How long a shed peer should wait before retrying, derived from the
/// pending-queue depth: each worker drains roughly one queued connection
/// per accept-poll interval, so the advertised delay scales with how deep
/// the backlog actually is instead of a hardcoded constant. Floored at
/// 50ms (the historical fixed value, still right for shallow queues) and
/// capped at 5s so a huge configured queue never tells clients to go away
/// for minutes.
pub(crate) fn shed_retry_after_ms(pending: usize, workers: usize) -> u64 {
    let per_slot = POLL_INTERVAL.as_millis() as u64;
    let rounds = (pending as u64).div_ceil(workers.max(1) as u64);
    (rounds * per_slot).clamp(50, 5_000)
}

/// Answers a shed connection with one `overloaded` JSON line and closes
/// it. Runs on the acceptor thread, so it must never block on the peer:
/// a short write timeout bounds even a zero-window client.
fn shed_connection(mut stream: TcpStream, pending: usize, workers: usize) {
    let retry_after_ms = shed_retry_after_ms(pending, workers);
    let reply = Response::Overloaded(OverloadedReply { retry_after_ms });
    let mut out = serde_json::to_string(&reply).unwrap_or_else(|_| {
        format!(r#"{{"type":"overloaded","retry_after_ms":{retry_after_ms}}}"#)
    });
    out.push('\n');
    let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
    let _ = stream.write_all(out.as_bytes());
    let _ = stream.flush();
}

/// Maps the last pushed stream status (if any) into the `health` reply's
/// stream section, stamping how stale the report is. Shared by the
/// single-epoch and sharded servers.
pub(crate) fn stream_health(
    report: &parking_lot::Mutex<Option<(StreamStatusReport, Instant)>>,
) -> Option<StreamHealth> {
    report.lock().as_ref().map(|(r, at)| StreamHealth {
        windows: r.windows,
        swaps: r.swaps,
        swaps_rejected: r.swaps_rejected,
        serve_outages: r.serve_outages,
        catch_up_swaps: r.catch_up_swaps,
        source_done: r.source_done,
        report_age_ms: at.elapsed().as_millis() as u64,
    })
}

/// One worker: pull connections off the queue until shutdown, then exit.
fn worker_loop<H: ServeHandler>(
    state: &H,
    queue: &Mutex<VecDeque<TcpStream>>,
    available: &Condvar,
) {
    let mut guard = lock_recovering(queue);
    loop {
        if let Some(stream) = guard.pop_front() {
            // Failpoint: a panic here fires *inside* the queue's critical
            // section, poisoning the connection queue — the regression
            // case for the poison-recovering lock handling.
            #[cfg(feature = "testkit")]
            let _ = quasar_bgpsim::fail::inject("serve.worker.panic");
            drop(guard);
            // Connection errors (reset peers, broken pipes) and panics
            // escaping the request handler only end this connection,
            // never the worker: the panic is caught, counted, and the
            // worker returns to the queue.
            let outcome =
                std::panic::catch_unwind(AssertUnwindSafe(|| handle_connection(state, stream)));
            if outcome.is_err() {
                state.metrics().panic_caught();
            }
            guard = lock_recovering(queue);
            continue;
        }
        if state.shutting_down() {
            return;
        }
        guard = available
            .wait_timeout(guard, POLL_INTERVAL)
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .0;
    }
}

/// Reads newline-delimited requests off one connection and answers each
/// with one JSON line, until the client closes (EOF) or the server
/// drains for shutdown.
fn handle_connection<H: ServeHandler>(state: &H, mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    // Replies are single small writes in a request/response lockstep;
    // leaving Nagle on would stall each one behind the peer's delayed
    // ACK (~40ms — dwarfing a cache hit).
    stream.set_nodelay(true)?;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // clean EOF from the client
            Ok(n) => {
                // Failpoint: a fault after a successful read models a
                // peer reset mid-request.
                #[cfg(feature = "testkit")]
                if quasar_bgpsim::fail::inject("serve.conn.read") {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "injected read fault (failpoint serve.conn.read)",
                    ));
                }
                pending.extend_from_slice(&chunk[..n]);
                while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = pending.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                    if line.trim().is_empty() {
                        continue;
                    }
                    let response = state.handle_line(&line);
                    let mut out = serde_json::to_string(&response).unwrap_or_else(|_| {
                        r#"{"type":"error","message":"serialization failed"}"#.to_string()
                    });
                    out.push('\n');
                    // Failpoint: a fault before the reply write models a
                    // client that vanished between request and response.
                    #[cfg(feature = "testkit")]
                    if quasar_bgpsim::fail::inject("serve.conn.write") {
                        return Err(io::Error::new(
                            io::ErrorKind::BrokenPipe,
                            "injected write fault (failpoint serve.conn.write)",
                        ));
                    }
                    stream.write_all(out.as_bytes())?;
                    stream.flush()?;
                }
                if pending.len() > MAX_REQUEST_LINE {
                    // One bounded error reply, then close: the peer is
                    // either malicious or broken, and buffering more of
                    // its newline-free stream helps neither of us.
                    state.metrics().record(RequestKind::Error, 0);
                    let mut out = serde_json::to_string(&Response::error(format!(
                        "request line exceeds {MAX_REQUEST_LINE} bytes without a newline"
                    )))
                    .unwrap_or_else(|_| {
                        r#"{"type":"error","message":"serialization failed"}"#.to_string()
                    });
                    out.push('\n');
                    let _ = stream.write_all(out.as_bytes());
                    let _ = stream.flush();
                    return Ok(());
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle: close only when draining, otherwise keep waiting.
                if state.shutting_down() {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ChangeSpec;
    use quasar_bgpsim::aspath::AsPath;
    use quasar_topology::graph::AsGraph;
    use std::collections::BTreeMap;
    use std::io::BufRead;

    fn model() -> AsRoutingModel {
        let paths = vec![
            AsPath::from_u32s(&[1, 2, 3]),
            AsPath::from_u32s(&[1, 4, 3]),
            AsPath::from_u32s(&[5, 4, 3]),
        ];
        let graph = AsGraph::from_paths(&paths);
        let mut origins = BTreeMap::new();
        origins.insert(Prefix::for_origin(Asn(3)), Asn(3));
        origins.insert(Prefix::for_origin(Asn(2)), Asn(2));
        AsRoutingModel::initial(&graph, &origins)
    }

    fn state() -> ServerState {
        ServerState::new(model(), ServeConfig::default())
    }

    #[test]
    fn predict_warms_the_base_cache() {
        let s = state();
        let p = Prefix::for_origin(Asn(3)).to_string();
        let line = format!(r#"{{"type":"predict","prefix":"{p}","observer":1}}"#);
        let first = s.handle_line(&line);
        assert!(matches!(first, Response::Predict(_)), "{first:?}");
        assert_eq!(s.epoch().base_cache.misses(), 1);
        let second = s.handle_line(&line);
        assert_eq!(first, second);
        assert_eq!(s.epoch().base_cache.hits(), 1);
        assert_eq!(s.metrics().count(RequestKind::Predict), 2);
    }

    #[test]
    fn prewarm_fills_the_base_cache_before_any_request() {
        let s = state();
        assert_eq!(s.prewarm(), 2);
        assert_eq!(s.epoch().base_cache.misses(), 2);
        let p = Prefix::for_origin(Asn(3)).to_string();
        let line = format!(r#"{{"type":"predict","prefix":"{p}","observer":1}}"#);
        assert!(matches!(s.handle_line(&line), Response::Predict(_)));
        // The prewarmed entry serves the first query as a hit.
        assert_eq!(s.epoch().base_cache.hits(), 1);
        assert_eq!(s.epoch().base_cache.misses(), 2);
    }

    #[test]
    fn unknown_prefix_and_as_are_errors() {
        let s = state();
        let bad_prefix =
            s.handle_line(r#"{"type":"predict","prefix":"192.0.2.0/24","observer":1}"#);
        assert!(matches!(bad_prefix, Response::Error(_)), "{bad_prefix:?}");
        let p = Prefix::for_origin(Asn(3)).to_string();
        let bad_as = s.handle_line(&format!(
            r#"{{"type":"predict","prefix":"{p}","observer":99}}"#
        ));
        assert!(matches!(bad_as, Response::Error(_)), "{bad_as:?}");
        let garbage = s.handle_line("not json at all");
        assert!(matches!(garbage, Response::Error(_)), "{garbage:?}");
        assert_eq!(s.metrics().count(RequestKind::Error), 3);
        assert_eq!(s.metrics().count(RequestKind::Predict), 0);
    }

    #[test]
    fn diff_runs_in_an_overlay_session() {
        let s = state();
        let req = Request::Diff {
            changes: vec![ChangeSpec::Depeer { a: 2, b: 3 }],
            prefixes: None,
        };
        let line = serde_json::to_string(&req).unwrap();
        let resp = s.handle_line(&line);
        let Response::Diff(diff) = resp else {
            panic!("expected diff reply, got {resp:?}");
        };
        assert!(diff.pairs > 0);
        assert_eq!(s.epoch().sessions.len(), 1);
        // Same scenario again: session (and its overlay cache) is reused.
        let again = s.handle_line(&line);
        let Response::Diff(diff2) = again else {
            panic!("expected diff reply");
        };
        assert_eq!(diff, diff2);
        assert_eq!(s.epoch().sessions.len(), 1);
        assert!(s.epoch().sessions.overlay_snapshot().hits > 0);
        // The base cache never saw the scenario model.
        let p = Prefix::for_origin(Asn(3)).to_string();
        let predict = s.handle_line(&format!(
            r#"{{"type":"predict","prefix":"{p}","observer":1}}"#
        ));
        let fresh = ServerState::new(model(), ServeConfig::default());
        let expected = fresh.handle_line(&format!(
            r#"{{"type":"predict","prefix":"{p}","observer":1}}"#
        ));
        assert_eq!(predict, expected);
    }

    #[test]
    fn diff_matches_scenario_api() {
        let s = state();
        let changes = vec![Change::Depeer(Asn(2), Asn(3))];
        let epoch = s.epoch();
        let scenario =
            quasar_core::whatif::Scenario::new(&epoch.model).apply(Change::Depeer(Asn(2), Asn(3)));
        let expected = scenario.diff().unwrap();
        let resp = s.dispatch(&Request::Diff {
            changes: vec![ChangeSpec::Depeer { a: 2, b: 3 }],
            prefixes: None,
        });
        let Response::Diff(diff) = resp else {
            panic!("expected diff reply");
        };
        assert_eq!(
            diff,
            diff_reply(crate::session::scenario_key(&changes), 1, &expected)
        );
    }

    #[test]
    fn stats_metrics_and_shutdown_dispatch() {
        let s = state();
        let Response::Stats(stats) = s.handle_line(r#"{"type":"stats"}"#) else {
            panic!("expected stats reply");
        };
        assert_eq!(stats.ases, 5);
        assert_eq!(stats.prefixes, 2);
        let Response::Metrics(m) = s.handle_line(r#"{"type":"metrics"}"#) else {
            panic!("expected metrics reply");
        };
        assert_eq!(m.for_kind("stats").unwrap().count, 1);
        assert_eq!(m.generation, 0);
        assert!(m.shards.is_none());
        assert!(!s.shutting_down());
        let Response::Shutdown(sd) = s.handle_line(r#"{"type":"shutdown"}"#) else {
            panic!("expected shutdown reply");
        };
        assert!(sd.draining);
        assert!(s.shutting_down());
    }

    #[test]
    fn stream_report_is_stored_and_served_back() {
        let s = state();
        // No report yet: metrics carries no stream status.
        let Response::Metrics(m) = s.handle_line(r#"{"type":"metrics"}"#) else {
            panic!("expected metrics reply");
        };
        assert!(m.stream.is_none());
        let report = StreamStatusReport {
            windows: 5,
            updates_total: 200,
            dirty_prefixes_total: 31,
            swaps: 4,
            swaps_rejected: 1,
            incremental_windows: 4,
            full_retrain_windows: 1,
            source_done: false,
            serve_outages: 0,
            catch_up_swaps: 0,
            ingest_retries: 0,
            last_window: None,
        };
        let req = serde_json::to_string(&Request::StreamReport {
            report: report.clone(),
        })
        .unwrap();
        let Response::StreamReport(reply) = s.handle_line(&req) else {
            panic!("expected stream_report reply");
        };
        assert!(reply.accepted);
        assert_eq!(reply.windows, 5);
        let Response::Metrics(m) = s.handle_line(r#"{"type":"metrics"}"#) else {
            panic!("expected metrics reply");
        };
        assert_eq!(m.stream, Some(report));
        assert_eq!(m.for_kind("stream_report").unwrap().count, 1);
        // A newer report replaces the old one wholesale.
        let newer = StreamStatusReport {
            windows: 6,
            source_done: true,
            ..m.stream.unwrap()
        };
        let req = serde_json::to_string(&Request::StreamReport {
            report: newer.clone(),
        })
        .unwrap();
        assert!(matches!(s.handle_line(&req), Response::StreamReport(_)));
        let Response::Metrics(m) = s.handle_line(r#"{"type":"metrics"}"#) else {
            panic!("expected metrics reply");
        };
        assert_eq!(m.stream, Some(newer));
    }

    #[test]
    fn shed_retry_scales_with_queue_depth_and_clamps() {
        // Shallow queues keep the historical 50ms answer.
        assert_eq!(shed_retry_after_ms(0, 4), 50);
        assert_eq!(shed_retry_after_ms(1, 4), 50);
        assert_eq!(shed_retry_after_ms(8, 4), 50);
        // Deeper backlogs advertise proportionally longer waits...
        assert_eq!(shed_retry_after_ms(128, 8), 320);
        assert!(shed_retry_after_ms(256, 8) > shed_retry_after_ms(128, 8));
        // ...more workers drain the same backlog faster...
        assert!(shed_retry_after_ms(128, 16) < shed_retry_after_ms(128, 4));
        // ...and the cap bounds even absurd queues (with zero workers
        // treated as one rather than dividing by zero).
        assert_eq!(shed_retry_after_ms(1_000_000, 1), 5_000);
        assert_eq!(shed_retry_after_ms(64, 0), shed_retry_after_ms(64, 1));
    }

    #[test]
    fn health_reports_a_single_epoch_server_as_healthy() {
        let s = state();
        let Response::Health(h) = s.handle_line(r#"{"type":"health"}"#) else {
            panic!("expected health reply");
        };
        assert_eq!(h.status, "healthy");
        assert_eq!(h.generation, 0);
        assert_eq!(h.panics_caught, 0);
        assert!(h.shards.is_none(), "single-epoch server has no shards");
        assert!(h.stream.is_none(), "no stream report pushed yet");
        // Push a stream report: health now carries its counters and age.
        let report = StreamStatusReport {
            windows: 3,
            swaps: 2,
            serve_outages: 1,
            catch_up_swaps: 1,
            ..Default::default()
        };
        let req = serde_json::to_string(&Request::StreamReport { report }).unwrap();
        assert!(matches!(s.handle_line(&req), Response::StreamReport(_)));
        let Response::Health(h) = s.handle_line(r#"{"type":"health"}"#) else {
            panic!("expected health reply");
        };
        let stream = h.stream.expect("stream section after a report");
        assert_eq!(stream.windows, 3);
        assert_eq!(stream.serve_outages, 1);
        assert_eq!(stream.catch_up_swaps, 1);
        assert!(stream.report_age_ms < 60_000);
    }

    /// Full TCP round trip: spawn the server on an ephemeral port, talk
    /// to it from several client threads, then shut it down and verify
    /// the serve loop returns (no leaked thread, port released).
    #[test]
    fn tcp_round_trip_with_graceful_shutdown() {
        let state = Arc::new(ServerState::new(
            model(),
            ServeConfig {
                workers: 2,
                max_sessions: 4,
                ..ServeConfig::default()
            },
        ));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let state = state.clone();
            std::thread::spawn(move || serve(state, listener))
        };

        fn ask(addr: std::net::SocketAddr, line: String) -> Response {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            let mut reader = std::io::BufReader::new(stream);
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            serde_json::from_str(&reply).unwrap()
        }

        let p = Prefix::for_origin(Asn(3)).to_string();
        let clients: Vec<_> = (0..4)
            .map(|i| {
                let p = p.clone();
                std::thread::spawn(move || {
                    ask(
                        addr,
                        format!(
                            r#"{{"type":"predict","prefix":"{p}","observer":{}}}"#,
                            1 + (i % 2) * 4
                        ),
                    )
                })
            })
            .collect();
        for c in clients {
            assert!(matches!(c.join().unwrap(), Response::Predict(_)));
        }

        let Response::Metrics(m) = ask(addr, r#"{"type":"metrics"}"#.to_string()) else {
            panic!("expected metrics reply");
        };
        assert_eq!(m.for_kind("predict").unwrap().count, 4);
        assert_eq!(m.base_cache.misses, 1);
        assert_eq!(m.base_cache.hits, 3);

        let Response::Shutdown(sd) = ask(addr, r#"{"type":"shutdown"}"#.to_string()) else {
            panic!("expected shutdown reply");
        };
        assert!(sd.draining);
        server.join().unwrap().unwrap();
        // The port is released: a fresh bind to the same address works.
        TcpListener::bind(addr).unwrap();
    }
}
