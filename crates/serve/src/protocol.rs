//! The wire protocol: newline-delimited JSON, one request object in, one
//! response object out, over a plain TCP stream.
//!
//! Requests and responses are JSON objects tagged by a `"type"` field:
//!
//! ```text
//! → {"type":"predict","prefix":"10.0.4.0/24","observer":5}
//! ← {"type":"predict","prefix":"10.0.4.0/24","observer":5,
//!    "routes":[{"router":"r5.0","path":[4,3]}], ...}
//! → {"type":"diff","changes":[{"action":"depeer","a":2,"b":3}]}
//! ← {"type":"diff","scenario":"c0ffee...","pairs":12,"rerouted":2,...}
//! → {"type":"explain","prefix":"10.0.4.0/24","observer":5}
//! → {"type":"stats"}      → {"type":"metrics"}      → {"type":"shutdown"}
//! ```
//!
//! The reply builders ([`predict_reply`], [`diff_reply`], [`explain_reply`],
//! [`stats_reply`]) are shared by the server and by the one-shot
//! `quasar predict`/`quasar whatif` CLI paths, so a served answer is
//! byte-identical to the answer the same question gets from a fresh
//! process — the cache can never change an answer, only its latency.

use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::engine::SimulationResult;
use quasar_bgpsim::types::{Asn, Prefix, RouterId};
use quasar_core::metrics::{MatchLevel, MismatchReason};
use quasar_core::model::AsRoutingModel;
use quasar_core::predict::predict_route;
use quasar_core::whatif::{Change, Impact, RoutingDiff};
use serde::content::{field, ContentError};
use serde::{Content, Deserialize, Serialize};

use crate::metrics::{MetricsSnapshot, RequestKind, StreamStatusReport};

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Best route + match class for a (prefix, observation AS) pair.
    Predict {
        /// Queried prefix in CIDR notation (`"10.0.4.0/24"`).
        prefix: String,
        /// The observing AS number.
        observer: u32,
        /// Optional observed AS-path (observer first, origin last) to
        /// classify against (RIB-In / potential-RIB-Out / RIB-Out).
        observed_path: Option<Vec<u32>>,
    },
    /// What-if scenario: apply `changes` as a copy-on-write overlay and
    /// report the routing diff.
    Diff {
        /// Hypothetical changes, applied in order.
        changes: Vec<ChangeSpec>,
        /// Restrict the diff to these prefixes (default: all model
        /// prefixes).
        prefixes: Option<Vec<String>>,
    },
    /// Decision-process narration for every quasi-router of an AS.
    Explain {
        /// Queried prefix in CIDR notation.
        prefix: String,
        /// The AS whose quasi-routers are narrated.
        observer: u32,
    },
    /// Model size counters.
    Stats,
    /// Server counters (requests, latencies, cache hits/misses).
    Metrics,
    /// Hot-swap the served model: validate the artifact at `path`
    /// off-thread and atomically swap it in, keeping the old model on
    /// any validation failure.
    Reload {
        /// Filesystem path of the model artifact to load.
        path: String,
    },
    /// A streaming pipeline publishing its cumulative per-window status
    /// so operators can read it back through `metrics`.
    StreamReport {
        /// The pipeline's cumulative status.
        report: StreamStatusReport,
    },
    /// Readiness probe: fleet and per-shard self-healing state plus the
    /// stream heartbeat, cheap enough to poll from scripts.
    Health,
    /// Graceful shutdown: drain in-flight work, then exit.
    Shutdown,
}

impl Request {
    /// The metrics bucket this request is tallied under.
    pub fn kind(&self) -> RequestKind {
        match self {
            Request::Predict { .. } => RequestKind::Predict,
            Request::Diff { .. } => RequestKind::Diff,
            Request::Explain { .. } => RequestKind::Explain,
            Request::Stats => RequestKind::Stats,
            Request::Metrics => RequestKind::Metrics,
            Request::Reload { .. } => RequestKind::Reload,
            Request::StreamReport { .. } => RequestKind::StreamReport,
            Request::Health => RequestKind::Health,
            Request::Shutdown => RequestKind::Shutdown,
        }
    }
}

/// One hypothetical change, in wire form (see
/// [`quasar_core::whatif::Change`] for semantics).
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeSpec {
    /// Remove the adjacency between ASes `a` and `b`.
    Depeer {
        /// First AS.
        a: u32,
        /// Second AS.
        b: u32,
    },
    /// Add an adjacency between ASes `a` and `b`.
    AddPeering {
        /// First AS.
        a: u32,
        /// Second AS.
        b: u32,
    },
    /// AS `asn` stops announcing `prefix` towards `neighbor`.
    FilterPrefix {
        /// The filtering AS.
        asn: u32,
        /// The neighbor the announcement is withheld from.
        neighbor: u32,
        /// The filtered prefix in CIDR notation.
        prefix: String,
    },
}

impl ChangeSpec {
    /// Converts the wire form into a model [`Change`].
    pub fn to_change(&self) -> Result<Change, String> {
        Ok(match self {
            ChangeSpec::Depeer { a, b } => Change::Depeer(Asn(*a), Asn(*b)),
            ChangeSpec::AddPeering { a, b } => Change::AddPeering(Asn(*a), Asn(*b)),
            ChangeSpec::FilterPrefix {
                asn,
                neighbor,
                prefix,
            } => Change::FilterPrefix {
                asn: Asn(*asn),
                neighbor: Asn(*neighbor),
                prefix: prefix.parse()?,
            },
        })
    }

    /// The wire form of a model [`Change`].
    pub fn from_change(c: &Change) -> Self {
        match *c {
            Change::Depeer(a, b) => ChangeSpec::Depeer { a: a.0, b: b.0 },
            Change::AddPeering(a, b) => ChangeSpec::AddPeering { a: a.0, b: b.0 },
            Change::FilterPrefix {
                asn,
                neighbor,
                prefix,
            } => ChangeSpec::FilterPrefix {
                asn: asn.0,
                neighbor: neighbor.0,
                prefix: prefix.to_string(),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Best route at one quasi-router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterBest {
    /// Quasi-router id (`"r5.0"`).
    pub router: String,
    /// Selected best AS-path towards the prefix, origin last (`None` =
    /// no route).
    pub path: Option<Vec<u32>>,
}

/// Answer to a `predict` request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictReply {
    /// Queried prefix.
    pub prefix: String,
    /// Observing AS.
    pub observer: u32,
    /// Best route per quasi-router of the observing AS.
    pub routes: Vec<RouterBest>,
    /// Match class of the observed path, when one was supplied:
    /// `"rib_out"`, `"potential_rib_out"`, `"rib_in"` or `"none"`.
    pub match_level: Option<String>,
    /// Mismatch taxonomy when not a RIB-Out match: `"not_available"`,
    /// `"shorter_path_selected"`, `"tie_break_lost"` or `"other_policy"`.
    pub mismatch: Option<String>,
}

/// One affected (router, prefix) pair in a diff.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImpactEntry {
    /// Affected quasi-router.
    pub router: String,
    /// Affected prefix.
    pub prefix: String,
    /// `"rerouted"`, `"lost"` or `"gained"`.
    pub kind: String,
    /// Best path before the change (`None` = unreachable before).
    pub before: Option<Vec<u32>>,
    /// Best path after the change (`None` = unreachable after).
    pub after: Option<Vec<u32>>,
}

/// Answer to a `diff` request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffReply {
    /// Scenario hash (16 hex digits) — the overlay-cache key.
    pub scenario: String,
    /// Number of changes applied.
    pub changes: usize,
    /// (router, prefix) pairs evaluated.
    pub pairs: usize,
    /// Pairs that kept their route.
    pub unchanged: usize,
    /// Pairs whose best route changed.
    pub rerouted: usize,
    /// Pairs that lost reachability.
    pub lost: usize,
    /// Pairs that gained reachability.
    pub gained: usize,
    /// Prefixes whose scenario simulation diverged.
    pub diverged_prefixes: usize,
    /// Every affected pair with before/after paths.
    pub impacts: Vec<ImpactEntry>,
}

/// One quasi-router's decision narration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterExplanation {
    /// The quasi-router.
    pub router: String,
    /// Human-readable account of every candidate and the decision step
    /// that eliminated it.
    pub text: String,
}

/// Answer to an `explain` request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplainReply {
    /// Queried prefix.
    pub prefix: String,
    /// The AS whose quasi-routers are narrated.
    pub observer: u32,
    /// Narration per quasi-router, ascending by router id.
    pub routers: Vec<RouterExplanation>,
}

/// Answer to a `stats` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsReply {
    /// ASes in the model.
    pub ases: usize,
    /// Total quasi-routers.
    pub quasi_routers: usize,
    /// Total eBGP sessions.
    pub sessions: usize,
    /// Policy rules installed by refinement.
    pub policy_rules: usize,
    /// Prefixes the model routes.
    pub prefixes: usize,
}

/// Answer to a `shutdown` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShutdownReply {
    /// Always true: the server is draining and will exit.
    pub draining: bool,
}

/// Answer to a successful `reload` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReloadReply {
    /// Always true: the new model is now serving (failed reloads come
    /// back as `error` replies and keep the old model).
    pub swapped: bool,
    /// Prefixes the new model routes.
    pub prefixes: usize,
    /// Quasi-routers in the new model.
    pub quasi_routers: usize,
    /// Swap generation now serving (0 at process start, +1 per
    /// successful reload; a sharded fleet reports one generation across
    /// all shards).
    #[serde(default)]
    pub generation: u64,
}

/// Answer to a `stream_report` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamReportReply {
    /// Always true: the report is now the one served under `metrics`.
    pub accepted: bool,
    /// Windows the accepted report covers (echo of `report.windows`).
    pub windows: u64,
}

/// Self-healing state of one shard, as reported in a `health` reply.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardHealth {
    /// Shard index (0-based, ascending prefix ranges).
    pub shard: usize,
    /// `"healthy"`, `"quarantined"` or `"rebuilding"`.
    pub state: String,
    /// Swap generation of this shard's serving epoch.
    pub generation: u64,
    /// Dispatch panics caught on this shard since startup.
    pub panics: u64,
    /// Panics since the shard was last (re)instated — what the
    /// quarantine threshold compares against.
    pub strikes: u64,
}

/// Streaming-pipeline heartbeat, as reported in a `health` reply of a
/// server that has received at least one `stream_report`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamHealth {
    /// Windows the pipeline has processed.
    pub windows: u64,
    /// Epochs successfully swapped in.
    pub swaps: u64,
    /// Swaps the server rejected.
    pub swaps_rejected: u64,
    /// Serve-tier outages the pipeline rode out.
    pub serve_outages: u64,
    /// Swaps that healed an outage by pushing the newest epoch.
    pub catch_up_swaps: u64,
    /// Whether the update source is exhausted.
    pub source_done: bool,
    /// Milliseconds since the report was received — the staleness (lag)
    /// of this heartbeat, not of the data inside it.
    pub report_age_ms: u64,
}

/// Answer to a `health` request.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthReply {
    /// `"healthy"` when every shard serves its slice; `"degraded"` while
    /// any shard is quarantined or rebuilding.
    pub status: String,
    /// Fleet-wide swap generation.
    pub generation: u64,
    /// Dispatch panics caught since startup.
    pub panics_caught: u64,
    /// Shards quarantined since startup.
    pub quarantines: u64,
    /// Quarantined shards rebuilt and reinstated since startup.
    pub rebuilds: u64,
    /// Shard rebuilds that failed, leaving the shard quarantined.
    pub rebuild_failures: u64,
    /// Per-shard self-healing state; `None` on a single-epoch server.
    #[serde(default)]
    pub shards: Option<Vec<ShardHealth>>,
    /// Stream heartbeat; `None` until a pipeline reports in.
    #[serde(default)]
    pub stream: Option<StreamHealth>,
}

/// Typed reply for a request routed to a quarantined or rebuilding
/// shard: only that slice of the prefix space is degraded, every other
/// shard keeps answering byte-identically.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedReply {
    /// The degraded shard.
    pub shard: usize,
    /// `"quarantined"` or `"rebuilding"`.
    pub state: String,
    /// Suggested client backoff before retrying this slice (the
    /// background rebuild may have reinstated the shard by then).
    pub retry_after_ms: u64,
}

/// Load-shed reply: the pending-connection queue was full, so the server
/// answered immediately and closed the connection instead of queueing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverloadedReply {
    /// Suggested client backoff before retrying (a starting point for
    /// jittered exponential backoff, not a promise of capacity).
    pub retry_after_ms: u64,
}

/// Deadline reply: the request's computation was cut short because it
/// exceeded the server's per-request compute budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadlineExceededReply {
    /// The configured per-request deadline (ms).
    pub deadline_ms: u64,
    /// How long the request had been running when it was cut off (ms).
    pub elapsed_ms: u64,
}

/// Error answer (malformed request, unknown prefix/AS, diverged base
/// simulation, ...).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorReply {
    /// What went wrong.
    pub message: String,
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to `predict`.
    Predict(PredictReply),
    /// Answer to `diff`.
    Diff(DiffReply),
    /// Answer to `explain`.
    Explain(ExplainReply),
    /// Answer to `stats`.
    Stats(StatsReply),
    /// Answer to `metrics` (boxed: the per-shard table makes this the
    /// by-far largest variant, and replies are built once per request).
    Metrics(Box<MetricsSnapshot>),
    /// Answer to a successful `reload`.
    Reload(ReloadReply),
    /// Answer to `stream_report`.
    StreamReport(StreamReportReply),
    /// Answer to `health`.
    Health(HealthReply),
    /// Answer to `shutdown`.
    Shutdown(ShutdownReply),
    /// Load-shed answer sent when the pending-connection queue is full.
    Overloaded(OverloadedReply),
    /// The request's slice of the prefix space is quarantined or
    /// rebuilding; other slices keep serving.
    Degraded(DegradedReply),
    /// The request blew the per-request compute deadline.
    DeadlineExceeded(DeadlineExceededReply),
    /// Error answer.
    Error(ErrorReply),
}

impl Response {
    /// Builds an error response.
    pub fn error(message: impl Into<String>) -> Self {
        Response::Error(ErrorReply {
            message: message.into(),
        })
    }
}

// ---------------------------------------------------------------------------
// Reply builders (shared with the one-shot CLI)
// ---------------------------------------------------------------------------

fn path_to_u32s(p: &AsPath) -> Vec<u32> {
    p.iter().map(|a| a.0).collect()
}

fn match_level_str(l: MatchLevel) -> &'static str {
    match l {
        MatchLevel::RibOut => "rib_out",
        MatchLevel::PotentialRibOut => "potential_rib_out",
        MatchLevel::RibIn => "rib_in",
        MatchLevel::None => "none",
    }
}

fn mismatch_str(m: MismatchReason) -> &'static str {
    match m {
        MismatchReason::NotAvailable => "not_available",
        MismatchReason::ShorterPathSelected => "shorter_path_selected",
        MismatchReason::TieBreakLost => "tie_break_lost",
        MismatchReason::OtherPolicy => "other_policy",
    }
}

/// Builds the `predict` answer for a (prefix, observation AS) pair from a
/// converged simulation of the prefix.
pub fn predict_reply(
    result: &SimulationResult,
    routers: &[RouterId],
    prefix: Prefix,
    observer: Asn,
    observed: Option<&AsPath>,
) -> PredictReply {
    let p = predict_route(result, routers, observed);
    PredictReply {
        prefix: prefix.to_string(),
        observer: observer.0,
        routes: p
            .best
            .iter()
            .map(|(r, path)| RouterBest {
                router: r.to_string(),
                path: path.as_ref().map(path_to_u32s),
            })
            .collect(),
        match_level: p.match_level.map(|l| match_level_str(l).to_string()),
        mismatch: p.mismatch.map(|m| mismatch_str(m).to_string()),
    }
}

/// Builds the `diff` answer from a computed [`RoutingDiff`].
pub fn diff_reply(scenario_key: u64, changes: usize, diff: &RoutingDiff) -> DiffReply {
    DiffReply {
        scenario: format!("{scenario_key:016x}"),
        changes,
        pairs: diff.pairs,
        unchanged: diff.unchanged(),
        rerouted: diff.rerouted(),
        lost: diff.lost(),
        gained: diff.gained(),
        diverged_prefixes: diff.diverged_prefixes,
        impacts: diff
            .impacts
            .iter()
            .map(|(router, prefix, impact)| {
                let (kind, before, after) = match impact {
                    Impact::Rerouted(a, b) => {
                        ("rerouted", Some(path_to_u32s(a)), Some(path_to_u32s(b)))
                    }
                    Impact::Lost(a) => ("lost", Some(path_to_u32s(a)), None),
                    Impact::Gained(b) => ("gained", None, Some(path_to_u32s(b))),
                };
                ImpactEntry {
                    router: router.to_string(),
                    prefix: prefix.to_string(),
                    kind: kind.to_string(),
                    before,
                    after,
                }
            })
            .collect(),
    }
}

/// Builds the `explain` answer: the engine's decision narration at every
/// quasi-router of the observing AS.
pub fn explain_reply(
    result: &SimulationResult,
    routers: &[RouterId],
    prefix: Prefix,
    observer: Asn,
) -> ExplainReply {
    ExplainReply {
        prefix: prefix.to_string(),
        observer: observer.0,
        routers: routers
            .iter()
            .filter_map(|&r| {
                result.rib(r).map(|rib| RouterExplanation {
                    router: r.to_string(),
                    text: rib.explain(),
                })
            })
            .collect(),
    }
}

/// Builds the `stats` answer from the served model.
pub fn stats_reply(model: &AsRoutingModel) -> StatsReply {
    let s = model.stats();
    StatsReply {
        ases: s.ases,
        quasi_routers: s.quasi_routers,
        sessions: s.sessions,
        policy_rules: s.policy_rules,
        prefixes: model.prefixes().len(),
    }
}

// ---------------------------------------------------------------------------
// Manual serde: `"type"`- / `"action"`-tagged objects
// ---------------------------------------------------------------------------

fn key(name: &str) -> Content {
    Content::Str(name.to_string())
}

fn tagged(tag_field: &str, tag: &str, fields: Vec<(Content, Content)>) -> Content {
    let mut entries = vec![(key(tag_field), Content::Str(tag.to_string()))];
    entries.extend(fields);
    Content::Map(entries)
}

fn req_field<T: for<'de> Deserialize<'de>>(c: &Content, name: &str) -> Result<T, ContentError> {
    match field(c, name)? {
        Some(v) => T::from_content(v),
        None => Err(ContentError::msg(format!("missing field `{name}`"))),
    }
}

fn opt_field<T: for<'de> Deserialize<'de>>(
    c: &Content,
    name: &str,
) -> Result<Option<T>, ContentError> {
    match field(c, name)? {
        None | Some(Content::Null) => Ok(None),
        Some(v) => Ok(Some(T::from_content(v)?)),
    }
}

fn tag_of<'a>(c: &'a Content, tag_field: &str) -> Result<&'a str, ContentError> {
    match field(c, tag_field)? {
        Some(Content::Str(s)) => Ok(s.as_str()),
        Some(other) => Err(ContentError::msg(format!(
            "`{tag_field}` must be a string, got {other:?}"
        ))),
        None => Err(ContentError::msg(format!("missing `{tag_field}` field"))),
    }
}

impl Serialize for ChangeSpec {
    fn to_content(&self) -> Content {
        match self {
            ChangeSpec::Depeer { a, b } => tagged(
                "action",
                "depeer",
                vec![(key("a"), a.to_content()), (key("b"), b.to_content())],
            ),
            ChangeSpec::AddPeering { a, b } => tagged(
                "action",
                "add_peering",
                vec![(key("a"), a.to_content()), (key("b"), b.to_content())],
            ),
            ChangeSpec::FilterPrefix {
                asn,
                neighbor,
                prefix,
            } => tagged(
                "action",
                "filter_prefix",
                vec![
                    (key("asn"), asn.to_content()),
                    (key("neighbor"), neighbor.to_content()),
                    (key("prefix"), prefix.to_content()),
                ],
            ),
        }
    }
}

impl<'de> Deserialize<'de> for ChangeSpec {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        match tag_of(c, "action")? {
            "depeer" => Ok(ChangeSpec::Depeer {
                a: req_field(c, "a")?,
                b: req_field(c, "b")?,
            }),
            "add_peering" => Ok(ChangeSpec::AddPeering {
                a: req_field(c, "a")?,
                b: req_field(c, "b")?,
            }),
            "filter_prefix" => Ok(ChangeSpec::FilterPrefix {
                asn: req_field(c, "asn")?,
                neighbor: req_field(c, "neighbor")?,
                prefix: req_field(c, "prefix")?,
            }),
            other => Err(ContentError::msg(format!("unknown action `{other}`"))),
        }
    }
}

impl Serialize for Request {
    fn to_content(&self) -> Content {
        match self {
            Request::Predict {
                prefix,
                observer,
                observed_path,
            } => {
                let mut fields = vec![
                    (key("prefix"), prefix.to_content()),
                    (key("observer"), observer.to_content()),
                ];
                if let Some(p) = observed_path {
                    fields.push((key("observed_path"), p.to_content()));
                }
                tagged("type", "predict", fields)
            }
            Request::Diff { changes, prefixes } => {
                let mut fields = vec![(key("changes"), changes.to_content())];
                if let Some(p) = prefixes {
                    fields.push((key("prefixes"), p.to_content()));
                }
                tagged("type", "diff", fields)
            }
            Request::Explain { prefix, observer } => tagged(
                "type",
                "explain",
                vec![
                    (key("prefix"), prefix.to_content()),
                    (key("observer"), observer.to_content()),
                ],
            ),
            Request::Stats => tagged("type", "stats", vec![]),
            Request::Metrics => tagged("type", "metrics", vec![]),
            Request::Reload { path } => {
                tagged("type", "reload", vec![(key("path"), path.to_content())])
            }
            Request::StreamReport { report } => tagged(
                "type",
                "stream_report",
                vec![(key("report"), report.to_content())],
            ),
            Request::Health => tagged("type", "health", vec![]),
            Request::Shutdown => tagged("type", "shutdown", vec![]),
        }
    }
}

impl<'de> Deserialize<'de> for Request {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        match tag_of(c, "type")? {
            "predict" => Ok(Request::Predict {
                prefix: req_field(c, "prefix")?,
                observer: req_field(c, "observer")?,
                observed_path: opt_field(c, "observed_path")?,
            }),
            "diff" => Ok(Request::Diff {
                changes: req_field(c, "changes")?,
                prefixes: opt_field(c, "prefixes")?,
            }),
            "explain" => Ok(Request::Explain {
                prefix: req_field(c, "prefix")?,
                observer: req_field(c, "observer")?,
            }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "reload" => Ok(Request::Reload {
                path: req_field(c, "path")?,
            }),
            "stream_report" => Ok(Request::StreamReport {
                report: req_field(c, "report")?,
            }),
            "health" => Ok(Request::Health),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ContentError::msg(format!("unknown request type `{other}`"))),
        }
    }
}

impl Response {
    fn tag(&self) -> &'static str {
        match self {
            Response::Predict(_) => "predict",
            Response::Diff(_) => "diff",
            Response::Explain(_) => "explain",
            Response::Stats(_) => "stats",
            Response::Metrics(_) => "metrics",
            Response::Reload(_) => "reload",
            Response::StreamReport(_) => "stream_report",
            Response::Health(_) => "health",
            Response::Shutdown(_) => "shutdown",
            Response::Overloaded(_) => "overloaded",
            Response::Degraded(_) => "degraded",
            Response::DeadlineExceeded(_) => "deadline_exceeded",
            Response::Error(_) => "error",
        }
    }
}

impl Serialize for Response {
    fn to_content(&self) -> Content {
        let inner = match self {
            Response::Predict(r) => r.to_content(),
            Response::Diff(r) => r.to_content(),
            Response::Explain(r) => r.to_content(),
            Response::Stats(r) => r.to_content(),
            Response::Metrics(r) => r.to_content(),
            Response::Reload(r) => r.to_content(),
            Response::StreamReport(r) => r.to_content(),
            Response::Health(r) => r.to_content(),
            Response::Shutdown(r) => r.to_content(),
            Response::Overloaded(r) => r.to_content(),
            Response::Degraded(r) => r.to_content(),
            Response::DeadlineExceeded(r) => r.to_content(),
            Response::Error(r) => r.to_content(),
        };
        let fields = match inner {
            Content::Map(entries) => entries,
            other => vec![(key("value"), other)],
        };
        tagged("type", self.tag(), fields)
    }
}

impl<'de> Deserialize<'de> for Response {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        match tag_of(c, "type")? {
            "predict" => Ok(Response::Predict(PredictReply::from_content(c)?)),
            "diff" => Ok(Response::Diff(DiffReply::from_content(c)?)),
            "explain" => Ok(Response::Explain(ExplainReply::from_content(c)?)),
            "stats" => Ok(Response::Stats(StatsReply::from_content(c)?)),
            "metrics" => Ok(Response::Metrics(Box::new(MetricsSnapshot::from_content(
                c,
            )?))),
            "reload" => Ok(Response::Reload(ReloadReply::from_content(c)?)),
            "stream_report" => Ok(Response::StreamReport(StreamReportReply::from_content(c)?)),
            "health" => Ok(Response::Health(HealthReply::from_content(c)?)),
            "shutdown" => Ok(Response::Shutdown(ShutdownReply::from_content(c)?)),
            "overloaded" => Ok(Response::Overloaded(OverloadedReply::from_content(c)?)),
            "degraded" => Ok(Response::Degraded(DegradedReply::from_content(c)?)),
            "deadline_exceeded" => Ok(Response::DeadlineExceeded(
                DeadlineExceededReply::from_content(c)?,
            )),
            "error" => Ok(Response::Error(ErrorReply::from_content(c)?)),
            other => Err(ContentError::msg(format!(
                "unknown response type `{other}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_json() {
        let reqs = vec![
            Request::Predict {
                prefix: "10.0.4.0/24".into(),
                observer: 5,
                observed_path: Some(vec![5, 4, 3]),
            },
            Request::Predict {
                prefix: "10.0.4.0/24".into(),
                observer: 5,
                observed_path: None,
            },
            Request::Diff {
                changes: vec![
                    ChangeSpec::Depeer { a: 1, b: 2 },
                    ChangeSpec::AddPeering { a: 3, b: 4 },
                    ChangeSpec::FilterPrefix {
                        asn: 3,
                        neighbor: 2,
                        prefix: "10.0.4.0/24".into(),
                    },
                ],
                prefixes: Some(vec!["10.0.4.0/24".into()]),
            },
            Request::Explain {
                prefix: "10.0.4.0/24".into(),
                observer: 5,
            },
            Request::Stats,
            Request::Metrics,
            Request::Reload {
                path: "/tmp/model.json".into(),
            },
            Request::StreamReport {
                report: StreamStatusReport {
                    windows: 2,
                    updates_total: 64,
                    dirty_prefixes_total: 9,
                    swaps: 2,
                    swaps_rejected: 0,
                    incremental_windows: 1,
                    full_retrain_windows: 1,
                    source_done: true,
                    serve_outages: 1,
                    catch_up_swaps: 1,
                    ingest_retries: 2,
                    last_window: Some(crate::metrics::StreamWindowReport {
                        seq: 1,
                        updates: 32,
                        announcements: 20,
                        withdrawals: 12,
                        dirty_prefixes: 4,
                        mode: "full_retrain".into(),
                        refine_ms: 480,
                        swap_ms: 9,
                        updates_per_sec: 66.7,
                    }),
                },
            },
            Request::Health,
            Request::Shutdown,
        ];
        for req in reqs {
            let json = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(back, req, "{json}");
        }
    }

    #[test]
    fn request_json_is_type_tagged() {
        let json = serde_json::to_string(&Request::Stats).unwrap();
        assert_eq!(json, r#"{"type":"stats"}"#);
        let json = serde_json::to_string(&Request::Predict {
            prefix: "10.0.4.0/24".into(),
            observer: 5,
            observed_path: None,
        })
        .unwrap();
        assert!(json.starts_with(r#"{"type":"predict""#), "{json}");
    }

    #[test]
    fn hand_written_request_json_parses() {
        let req: Request =
            serde_json::from_str(r#"{"type":"predict","prefix":"10.0.4.0/24","observer":7}"#)
                .unwrap();
        assert_eq!(
            req,
            Request::Predict {
                prefix: "10.0.4.0/24".into(),
                observer: 7,
                observed_path: None,
            }
        );
        let req: Request = serde_json::from_str(r#"{"type":"health"}"#).unwrap();
        assert_eq!(req, Request::Health);
        let req: Request = serde_json::from_str(
            r#"{"type":"diff","changes":[{"action":"depeer","a":10,"b":101}]}"#,
        )
        .unwrap();
        assert_eq!(
            req,
            Request::Diff {
                changes: vec![ChangeSpec::Depeer { a: 10, b: 101 }],
                prefixes: None,
            }
        );
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            r#"{"prefix":"10.0.4.0/24"}"#,                   // no type
            r#"{"type":"teleport"}"#,                        // unknown type
            r#"{"type":"predict","observer":7}"#,            // missing prefix
            r#"{"type":"diff"}"#,                            // missing changes
            r#"{"type":"diff","changes":[{"action":"x"}]}"#, // unknown action
            r#"{"type":"reload"}"#,                          // missing path
            r#"{"type":"stream_report"}"#,                   // missing report
            "[]",
        ] {
            assert!(serde_json::from_str::<Request>(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn response_roundtrips_through_json() {
        let resps = vec![
            Response::Predict(PredictReply {
                prefix: "10.0.4.0/24".into(),
                observer: 5,
                routes: vec![RouterBest {
                    router: "r5.0".into(),
                    path: Some(vec![4, 3]),
                }],
                match_level: Some("rib_out".into()),
                mismatch: None,
            }),
            Response::Diff(DiffReply {
                scenario: "00000000deadbeef".into(),
                changes: 1,
                pairs: 4,
                unchanged: 2,
                rerouted: 1,
                lost: 1,
                gained: 0,
                diverged_prefixes: 0,
                impacts: vec![ImpactEntry {
                    router: "r1.0".into(),
                    prefix: "10.0.4.0/24".into(),
                    kind: "lost".into(),
                    before: Some(vec![2, 3]),
                    after: None,
                }],
            }),
            Response::Explain(ExplainReply {
                prefix: "10.0.4.0/24".into(),
                observer: 5,
                routers: vec![RouterExplanation {
                    router: "r5.0".into(),
                    text: "r5.0: 1 candidate(s)".into(),
                }],
            }),
            Response::Stats(StatsReply {
                ases: 4,
                quasi_routers: 5,
                sessions: 6,
                policy_rules: 7,
                prefixes: 8,
            }),
            Response::Reload(ReloadReply {
                swapped: true,
                prefixes: 12,
                quasi_routers: 40,
                generation: 3,
            }),
            Response::StreamReport(StreamReportReply {
                accepted: true,
                windows: 7,
            }),
            Response::Health(HealthReply {
                status: "degraded".into(),
                generation: 4,
                panics_caught: 9,
                quarantines: 1,
                rebuilds: 0,
                rebuild_failures: 0,
                shards: Some(vec![
                    ShardHealth {
                        shard: 0,
                        state: "healthy".into(),
                        generation: 4,
                        panics: 0,
                        strikes: 0,
                    },
                    ShardHealth {
                        shard: 1,
                        state: "quarantined".into(),
                        generation: 4,
                        panics: 9,
                        strikes: 3,
                    },
                ]),
                stream: Some(StreamHealth {
                    windows: 12,
                    swaps: 10,
                    swaps_rejected: 1,
                    serve_outages: 1,
                    catch_up_swaps: 1,
                    source_done: false,
                    report_age_ms: 250,
                }),
            }),
            Response::Shutdown(ShutdownReply { draining: true }),
            Response::Overloaded(OverloadedReply { retry_after_ms: 50 }),
            Response::Degraded(DegradedReply {
                shard: 1,
                state: "quarantined".into(),
                retry_after_ms: 100,
            }),
            Response::DeadlineExceeded(DeadlineExceededReply {
                deadline_ms: 100,
                elapsed_ms: 161,
            }),
            Response::error("bad prefix"),
        ];
        for resp in resps {
            let json = serde_json::to_string(&resp).unwrap();
            let back: Response = serde_json::from_str(&json).unwrap();
            assert_eq!(back, resp, "{json}");
        }
    }

    #[test]
    fn change_spec_converts_to_model_changes() {
        let spec = ChangeSpec::FilterPrefix {
            asn: 3,
            neighbor: 2,
            prefix: "10.0.4.0/24".into(),
        };
        let change = spec.to_change().unwrap();
        assert_eq!(ChangeSpec::from_change(&change), spec);
        assert!(ChangeSpec::FilterPrefix {
            asn: 3,
            neighbor: 2,
            prefix: "not-a-prefix".into(),
        }
        .to_change()
        .is_err());
    }
}
