//! Prefix-sharded serving: N shards, each owning a contiguous run of
//! the model's *sorted prefix list* with a *private* [`ModelEpoch`]
//! (its own steady-state cache and session store), behind a front
//! dispatcher that routes single-prefix requests to the owner and fans
//! multi-prefix requests out, merging replies in ascending prefix
//! order.
//!
//! Why sharding helps: per-prefix simulation is independent and
//! deterministic (DESIGN.md §7), so the only cross-request coupling in
//! the single-epoch server is *infrastructure* — one epoch `RwLock` and
//! one cache map shared by every worker. Giving each shard its own epoch
//! and caches removes that coupling entirely: two requests for prefixes
//! in different shards touch disjoint locks end to end, so the query
//! path has zero cross-shard synchronization.
//!
//! The [`ShardMap`] partitions by *rank*, not by raw address: shard k
//! owns the k-th of N nearly-equal runs of the sorted prefix list, so
//! the fleet is balanced (slice sizes differ by at most one) no matter
//! how the address space is laid out — a proportional `base * n >> 32`
//! map would put every synthetic prefix (packed low by
//! `Prefix::for_origin`) on shard 0. Routing is load placement only:
//! every shard holds the full model, so *which* shard answers can never
//! change the bytes of the answer.
//!
//! Determinism of the merge: [`ShardMap::shard_of`] is monotone in the
//! [`Prefix`] ordering (shard k's run sorts entirely below shard
//! k+1's), so concatenating per-shard results in ascending shard order
//! reproduces exactly the globally sorted prefix order the single-epoch
//! server iterates in — merged replies are byte-identical by
//! construction, which the testkit's sharding differential suite
//! enforces against a real single-epoch server.
//!
//! Reload is a two-phase coordinated swap (DESIGN.md §14): the candidate
//! artifact is validated once off-thread, then every shard builds and
//! probes a private candidate epoch (phase 1), and only then are all
//! candidates installed while *every* shard's write lock is held in
//! ascending order (phase 2). A failure at any point rolls every shard
//! back to its old epoch before any lock is released, so a torn
//! generation — some shards serving the new model, some the old — is
//! never observable from outside.
//!
//! Self-healing (DESIGN.md §15): each shard tracks its panics since it
//! was last (re)instated ("strikes") against a configurable threshold.
//! A shard that trips it is **quarantined** — its slice answers typed
//! `degraded` replies instead of running dispatch work — and a detached
//! background worker rebuilds a fresh private epoch from the fleet's
//! current model, probes it, and reinstates the shard at the fleet
//! generation. Other shards are never touched: their epochs, caches and
//! replies stay byte-identical throughout. A failed rebuild leaves the
//! shard quarantined (a later coordinated reload reinstates the whole
//! fleet); it never tears the fleet generation, because the rebuild
//! serializes on the same `reload_lock` as the coordinated swap and
//! installs at the generation it read under that lock.

use crate::cache::CacheSnapshot;
use crate::metrics::{RequestKind, ServeMetrics, ShardSnapshot, StreamStatusReport};
use crate::protocol::{
    diff_reply, stats_reply, DegradedReply, DiffReply, HealthReply, ReloadReply, Request, Response,
    ShardHealth, ShutdownReply, StreamReportReply,
};
use crate::server::{
    diff_on, explain_on, parse_changes, predict_on, prewarm_epoch, resolve_targets, stream_health,
    validate_off_thread, Deadline, ModelEpoch, ServeConfig, ServeHandler,
};
use crate::session::scenario_key;
use quasar_bgpsim::types::Prefix;
use quasar_core::model::AsRoutingModel;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hard cap on the shard count: beyond this the per-shard metrics reply
/// dwarfs any useful payload, and no machine this serves on has more
/// cores anyway.
pub const MAX_SHARDS: usize = 1024;

/// The fleet's prefix-to-shard assignment: shard k owns the k-th of N
/// nearly-equal contiguous runs of a model's sorted prefix list.
///
/// `boundaries[k]` is the first prefix owned by shard `k + 1`;
/// [`ShardMap::shard_of`] counts boundaries at or below the query, so
/// it is total over *all* prefixes (an unknown prefix routes to the
/// shard whose run it would sort into — every shard holds the full
/// model, so the unknown-prefix error reply is identical wherever it
/// lands) and monotone in [`Prefix`]'s derived ordering: if `a <= b`
/// then `shard_of(a) <= shard_of(b)`. Monotonicity is the property the
/// dispatcher's deterministic merge rests on; balance (run sizes differ
/// by at most one) is what makes N shards worth having.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: usize,
    boundaries: Vec<Prefix>,
}

impl ShardMap {
    /// The balanced map for `shards` shards over a model's prefix set.
    pub fn build(model: &AsRoutingModel, shards: usize) -> Self {
        let prefixes: Vec<Prefix> = model.prefixes().keys().copied().collect();
        Self::from_sorted(&prefixes, shards)
    }

    /// The balanced map over an already-sorted prefix list: run k starts
    /// at index `k * len / shards`, so sizes differ by at most one and
    /// shards beyond the prefix count own empty runs.
    pub fn from_sorted(sorted: &[Prefix], shards: usize) -> Self {
        let shards = shards.clamp(1, MAX_SHARDS);
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let boundaries = (1..shards)
            .filter_map(|k| sorted.get(k * sorted.len() / shards).copied())
            .collect();
        ShardMap { shards, boundaries }
    }

    /// Number of shards this map routes across.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `prefix` (total and monotone, see the type doc).
    pub fn shard_of(&self, prefix: Prefix) -> usize {
        self.boundaries.partition_point(|b| *b <= prefix)
    }
}

/// Self-healing states of one shard (stored in [`Shard::state`]).
const HEALTHY: u8 = 0;
const QUARANTINED: u8 = 1;
const REBUILDING: u8 = 2;

/// Suggested client backoff on a `degraded` reply: long enough for a
/// toy-model rebuild to finish, short enough that a recovered slice is
/// retried promptly.
const DEGRADED_RETRY_MS: u64 = 100;

fn state_name(state: u8) -> &'static str {
    match state {
        QUARANTINED => "quarantined",
        REBUILDING => "rebuilding",
        _ => "healthy",
    }
}

/// One shard: a private epoch slot plus its request tallies. The epoch
/// lock is only ever contended by requests for this shard's slice and
/// by the coordinated swap.
struct Shard {
    epoch: parking_lot::RwLock<Arc<ModelEpoch>>,
    requests: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    deadline_exceeded: AtomicU64,
    /// Panics since the shard was last (re)instated — the counter the
    /// quarantine threshold compares against (unlike `panics`, which is
    /// cumulative for observability).
    strikes: AtomicU64,
    /// [`HEALTHY`], [`QUARANTINED`] or [`REBUILDING`].
    state: AtomicU8,
}

impl Shard {
    fn new(epoch: ModelEpoch) -> Self {
        Shard {
            epoch: parking_lot::RwLock::new(Arc::new(epoch)),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            strikes: AtomicU64::new(0),
            state: AtomicU8::new(HEALTHY),
        }
    }
}

/// The shared core of a sharded server: everything a detached rebuild
/// worker needs to outlive the request that quarantined a shard. The
/// dispatcher and the worker both hold it behind an `Arc`, so a rebuild
/// keeps its footing even while the front end churns.
struct Fleet {
    shards: Vec<Shard>,
    /// The current prefix-to-shard assignment, rebuilt on every
    /// accepted reload (the prefix set may change) and installed while
    /// the swap still holds every shard's write lock. Readers clone the
    /// `Arc` and drop the guard immediately, so a request racing a swap
    /// may route with the outgoing map — harmless, since every shard
    /// serves the full model and routing is load placement only.
    map: parking_lot::RwLock<Arc<ShardMap>>,
    metrics: ServeMetrics,
    /// Serializes coordinated swaps *and* shard rebuilds. Two
    /// interleaved two-phase swaps would race on the generation number,
    /// and a rebuild must install at a generation that cannot move
    /// between reading it and writing the shard's epoch slot.
    reload_lock: parking_lot::Mutex<()>,
    max_sessions: usize,
    /// Strikes that quarantine a shard; 0 disables quarantine (panics
    /// stay per-request typed errors, the pre-self-healing behaviour).
    quarantine_threshold: u64,
}

impl Fleet {
    /// Trips `shard` from healthy into quarantine and spawns its
    /// background rebuild. Returns false if the shard was already
    /// quarantined or rebuilding (exactly one worker per incident).
    fn quarantine(self: &Arc<Self>, shard: usize) -> bool {
        if self.shards[shard]
            .state
            .compare_exchange(HEALTHY, QUARANTINED, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        self.metrics.shard_quarantined();
        let fleet = Arc::clone(self);
        std::thread::spawn(move || fleet.rebuild(shard));
        true
    }

    /// The background rebuild: builds a fresh private epoch from the
    /// fleet's current model, probes it, and reinstates the shard at
    /// the fleet generation. On any failure the shard stays
    /// quarantined, its slice answering typed `degraded` replies, until
    /// the next coordinated reload reinstates the whole fleet.
    fn rebuild(&self, shard: usize) {
        self.shards[shard]
            .state
            .store(REBUILDING, Ordering::Release);
        // Failpoint: `serve.shard.rebuild` — an injected error is the
        // rebuild-fails-mid-recovery case; an injected delay holds the
        // shard visibly in `rebuilding` for the health protocol tests.
        #[cfg(feature = "testkit")]
        if quasar_bgpsim::fail::inject("serve.shard.rebuild") {
            self.metrics.shard_rebuild_failed();
            self.shards[shard]
                .state
                .store(QUARANTINED, Ordering::Release);
            return;
        }
        // Under the reload lock no coordinated swap is in flight, so
        // this shard's own (old) epoch carries the fleet's current model
        // and generation — the swap always updates every shard at once.
        let _serialized = self.reload_lock.lock();
        let (model, generation) = {
            let current = self.shards[shard].epoch.read();
            (Arc::clone(&current.model), current.generation)
        };
        let candidate = ModelEpoch::shared(model, self.max_sessions, generation);
        // Probe the first owned prefix through the candidate's fresh
        // cache — the same one-entry validation a coordinated swap runs
        // per shard in its phase 1.
        let map = Arc::clone(&self.map.read());
        let probe = candidate
            .model
            .prefixes()
            .keys()
            .copied()
            .find(|&p| map.shard_of(p) == shard);
        if let Some(p) = probe {
            if candidate
                .base_cache
                .get_or_simulate(&candidate.model, p)
                .is_err()
            {
                self.metrics.shard_rebuild_failed();
                self.shards[shard]
                    .state
                    .store(QUARANTINED, Ordering::Release);
                return;
            }
        }
        // Reinstate: fresh epoch at the fleet generation, strikes
        // cleared, state healthy last so a reader that sees `healthy`
        // is guaranteed the new epoch.
        *self.shards[shard].epoch.write() = Arc::new(candidate);
        self.shards[shard].strikes.store(0, Ordering::Release);
        self.shards[shard].state.store(HEALTHY, Ordering::Release);
        self.metrics.shard_rebuilt();
    }
}

/// A prefix-sharded server: the drop-in sharded counterpart of
/// [`crate::server::ServerState`], speaking the identical protocol with
/// byte-identical replies.
pub struct ShardedState {
    config: ServeConfig,
    fleet: Arc<Fleet>,
    /// The latest accepted stream report plus its wall-clock receipt
    /// time, so `health` can report the heartbeat's age (lag).
    stream_report: parking_lot::Mutex<Option<(StreamStatusReport, Instant)>>,
    shutdown: AtomicBool,
}

impl ShardedState {
    /// Wraps a trained model in `shards` shards (clamped to
    /// `1..=`[`MAX_SHARDS`]). The model is loaded once and shared; each
    /// shard gets private caches and a private session store.
    pub fn new(model: AsRoutingModel, config: ServeConfig, shards: usize) -> Self {
        let shards = shards.clamp(1, MAX_SHARDS);
        let map = ShardMap::build(&model, shards);
        let model = Arc::new(model);
        ShardedState {
            config,
            fleet: Arc::new(Fleet {
                shards: (0..shards)
                    .map(|_| {
                        Shard::new(ModelEpoch::shared(
                            Arc::clone(&model),
                            config.max_sessions,
                            0,
                        ))
                    })
                    .collect(),
                map: parking_lot::RwLock::new(Arc::new(map)),
                metrics: ServeMetrics::new(),
                reload_lock: parking_lot::Mutex::new(()),
                max_sessions: config.max_sessions,
                quarantine_threshold: config.quarantine_threshold,
            }),
            stream_report: parking_lot::Mutex::new(None),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.fleet.shards.len()
    }

    /// Pins one shard's current epoch.
    pub fn epoch_of(&self, shard: usize) -> Arc<ModelEpoch> {
        Arc::clone(&self.fleet.shards[shard].epoch.read())
    }

    /// Pins the current prefix-to-shard map (the guard is dropped
    /// before any epoch lock is taken, so map and epoch locks never
    /// nest).
    pub fn pin_map(&self) -> Arc<ShardMap> {
        Arc::clone(&self.fleet.map.read())
    }

    /// Trips one shard into quarantine by hand, exactly as a panic
    /// threshold crossing would, spawning its background rebuild.
    /// Returns false if the shard was already quarantined or
    /// rebuilding. This is the hook recovery drills and the MTTR bench
    /// use; production quarantine goes through the panic counter.
    pub fn quarantine_shard(&self, shard: usize) -> bool {
        if shard >= self.fleet.shards.len() {
            return false;
        }
        self.fleet.quarantine(shard)
    }

    /// The self-healing state of one shard: `"healthy"`,
    /// `"quarantined"` or `"rebuilding"`.
    pub fn shard_state(&self, shard: usize) -> &'static str {
        state_name(self.fleet.shards[shard].state.load(Ordering::Acquire))
    }

    /// The shard currently owning `prefix`.
    pub fn owner_of(&self, prefix: Prefix) -> usize {
        self.pin_map().shard_of(prefix)
    }

    /// The fleet-wide swap generation (shard 0's — outside an in-flight
    /// swap every shard agrees, and the swap holds all write locks, so
    /// no reader can observe disagreement).
    pub fn generation(&self) -> u64 {
        self.epoch_of(0).generation
    }

    /// The server configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The server metrics.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.fleet.metrics
    }

    /// True once a `shutdown` request has been accepted.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag (idempotent).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Simulates every shard's owned prefixes into that shard's private
    /// cache, in parallel across shards, so the first real query after
    /// the listener opens is a hit everywhere. Returns the total number
    /// of (shard, prefix) entries warmed.
    pub fn prewarm(&self) -> usize {
        let map = self.pin_map();
        let epochs = self.pin_fleet();
        std::thread::scope(|scope| {
            let handles: Vec<_> = epochs
                .iter()
                .enumerate()
                .map(|(id, epoch)| {
                    let map = &map;
                    scope.spawn(move || prewarm_epoch(epoch, |p| map.shard_of(p) == id))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
        })
    }

    /// Takes an atomic snapshot of every shard's epoch: read locks are
    /// acquired in ascending shard order — the same order the swap takes
    /// its write locks, so this can never deadlock against it — and
    /// because the swap publishes all shards under all write locks, the
    /// snapshot is either entirely pre-swap or entirely post-swap.
    fn pin_fleet(&self) -> Vec<Arc<ModelEpoch>> {
        let guards: Vec<_> = self.fleet.shards.iter().map(|s| s.epoch.read()).collect();
        guards.iter().map(|g| Arc::clone(g)).collect()
    }

    /// Parses one request line, dispatches it, and records latency
    /// metrics — the sharded twin of `ServerState::handle_line`, with
    /// identical tallying semantics.
    pub fn handle_line(&self, line: &str) -> Response {
        let start = Instant::now();
        // Failpoint: same dispatch-level fault as the single-epoch
        // server, so front-end chaos suites run unchanged against either.
        #[cfg(feature = "testkit")]
        if quasar_bgpsim::fail::inject("serve.handle_line") {
            let resp = Response::error("injected fault (failpoint serve.handle_line)");
            self.fleet
                .metrics
                .record(RequestKind::Error, start.elapsed().as_micros() as u64);
            return resp;
        }
        let deadline = (self.config.deadline_ms > 0).then(|| Deadline {
            start,
            limit: Duration::from_millis(self.config.deadline_ms),
        });
        let (kind, response) = match serde_json::from_str::<Request>(line.trim()) {
            Ok(req) => {
                let resp = self.dispatch_bounded(&req, deadline.as_ref());
                let kind = if matches!(resp, Response::Error(_)) {
                    RequestKind::Error
                } else {
                    req.kind()
                };
                if matches!(resp, Response::DeadlineExceeded(_)) {
                    self.fleet.metrics.deadline_exceeded();
                }
                (kind, resp)
            }
            Err(e) => (
                RequestKind::Error,
                Response::error(format!("bad request: {e}")),
            ),
        };
        self.fleet
            .metrics
            .record(kind, start.elapsed().as_micros() as u64);
        response
    }

    /// Dispatches one parsed request with no compute deadline.
    pub fn dispatch(&self, req: &Request) -> Response {
        self.dispatch_bounded(req, None)
    }

    fn dispatch_bounded(&self, req: &Request, deadline: Option<&Deadline>) -> Response {
        if let Some(resp) = deadline.and_then(Deadline::exceeded) {
            return resp;
        }
        match req {
            Request::Predict {
                prefix,
                observer,
                observed_path,
            } => self.on_owner(prefix, |epoch| {
                predict_on(epoch, prefix, *observer, observed_path.as_deref(), deadline)
            }),
            Request::Explain { prefix, observer } => self.on_owner(prefix, |epoch| {
                explain_on(epoch, prefix, *observer, deadline)
            }),
            Request::Diff { changes, prefixes } => {
                self.do_diff(changes, prefixes.as_deref(), deadline)
            }
            Request::Stats => Response::Stats(stats_reply(&self.epoch_of(0).model)),
            Request::Metrics => self.do_metrics(),
            Request::Reload { path } => self.do_reload(path),
            Request::StreamReport { report } => {
                let windows = report.windows;
                *self.stream_report.lock() = Some((report.clone(), Instant::now()));
                Response::StreamReport(StreamReportReply {
                    accepted: true,
                    windows,
                })
            }
            Request::Health => self.do_health(),
            Request::Shutdown => {
                self.request_shutdown();
                Response::Shutdown(ShutdownReply { draining: true })
            }
        }
    }

    /// Routes a single-prefix request to the shard owning it. A prefix
    /// that does not parse cannot be routed; it gets exactly the parse
    /// error the epoch-level lookup would have produced, keeping error
    /// replies byte-identical with the single-epoch server.
    fn on_owner<F>(&self, prefix: &str, f: F) -> Response
    where
        F: FnOnce(&ModelEpoch) -> Response,
    {
        let shard = match prefix.parse::<Prefix>() {
            Ok(p) => self.owner_of(p),
            Err(e) => return Response::error(e),
        };
        let epoch = self.epoch_of(shard);
        self.run_on_shard(shard, || f(&epoch))
    }

    /// Runs one unit of shard work under a panic guard, tallying the
    /// shard's counters. A panic is contained to this one request: it
    /// becomes a typed error naming the shard, the shard's epoch and
    /// caches are untouched (the epoch is immutable; cache slots are
    /// poison-recovering), and every other shard keeps answering. A
    /// shard whose strikes crossed the quarantine threshold answers a
    /// typed `degraded` reply without running the work at all, until
    /// its background rebuild reinstates it.
    fn run_on_shard<F>(&self, id: usize, f: F) -> Response
    where
        F: FnOnce() -> Response,
    {
        let shard = &self.fleet.shards[id];
        shard.requests.fetch_add(1, Ordering::Relaxed);
        let state = shard.state.load(Ordering::Acquire);
        if state != HEALTHY {
            return Response::Degraded(DegradedReply {
                shard: id,
                state: state_name(state).to_string(),
                retry_after_ms: DEGRADED_RETRY_MS,
            });
        }
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            // Failpoint: `serve.shard.panic.<id>` kills exactly this
            // shard's dispatch — the blast-radius the crash-recovery
            // suite measures.
            #[cfg(feature = "testkit")]
            let _ = quasar_bgpsim::fail::inject(&format!("serve.shard.panic.{id}"));
            f()
        }));
        let resp = match outcome {
            Ok(resp) => resp,
            Err(_) => {
                self.fleet.metrics.panic_caught();
                shard.panics.fetch_add(1, Ordering::Relaxed);
                let strikes = shard.strikes.fetch_add(1, Ordering::AcqRel) + 1;
                let threshold = self.fleet.quarantine_threshold;
                if threshold > 0 && strikes >= threshold {
                    self.fleet.quarantine(id);
                }
                Response::error(format!(
                    "shard {id} panicked handling this request; its slice failed this \
                     once, other shards keep serving"
                ))
            }
        };
        match &resp {
            Response::Error(_) => {
                shard.errors.fetch_add(1, Ordering::Relaxed);
            }
            Response::DeadlineExceeded(_) => {
                shard.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        resp
    }

    /// A `diff` fanned out over the shards owning its targets, merged in
    /// ascending shard order. Validation order matches the single-epoch
    /// server exactly: change specs first (first error wins), then
    /// explicit prefixes in the order given — so every error reply is
    /// byte-identical. Because shard slices are contiguous and ascending,
    /// the first failing prefix overall lives in the first failing shard,
    /// and first-error-wins composes across the fan-out too.
    fn do_diff(
        &self,
        specs: &[crate::protocol::ChangeSpec],
        prefixes: Option<&[String]>,
        deadline: Option<&Deadline>,
    ) -> Response {
        let changes = match parse_changes(specs) {
            Ok(c) => c,
            Err(e) => return e,
        };
        let map = self.pin_map();
        let epochs = self.pin_fleet();
        let targets = match resolve_targets(&epochs[0], prefixes) {
            Ok(t) => t,
            Err(e) => return e,
        };
        let mut per_shard: Vec<Vec<Prefix>> = vec![Vec::new(); self.fleet.shards.len()];
        for p in targets {
            per_shard[map.shard_of(p)].push(p);
        }
        // An explicitly empty target list still creates the scenario
        // session (on shard 0) and answers its header, exactly like the
        // single-epoch server.
        if per_shard.iter().all(|t| t.is_empty()) {
            let changes = &changes;
            return self.run_on_shard(0, || diff_on(&epochs[0], changes, &[], deadline));
        }
        let mut merged: Option<DiffReply> = None;
        for (id, targets) in per_shard.iter().enumerate() {
            if targets.is_empty() {
                continue;
            }
            let changes = &changes;
            let epoch = &epochs[id];
            match self.run_on_shard(id, || diff_on(epoch, changes, targets, deadline)) {
                Response::Diff(part) => {
                    merged = Some(match merged.take() {
                        None => part,
                        Some(acc) => merge_diff(acc, part),
                    });
                }
                other => return other,
            }
        }
        match merged {
            Some(reply) => Response::Diff(reply),
            // Unreachable (the empty case returned above), kept as a
            // typed answer rather than a panic path.
            None => Response::Diff(diff_reply(
                scenario_key(&changes),
                changes.len(),
                &Default::default(),
            )),
        }
    }

    /// The `metrics` reply: front-end totals, cache counters summed over
    /// the fleet snapshot, the fleet generation, and one
    /// [`ShardSnapshot`] per shard.
    fn do_metrics(&self) -> Response {
        let map = self.pin_map();
        let epochs = self.pin_fleet();
        let mut base = CacheSnapshot::default();
        let mut overlay = CacheSnapshot::default();
        let mut sessions = 0usize;
        for e in &epochs {
            add_cache(&mut base, e.base_cache.snapshot());
            add_cache(&mut overlay, e.sessions.overlay_snapshot());
            sessions += e.sessions.len();
        }
        let mut snap = self.fleet.metrics.snapshot(
            base,
            overlay,
            sessions,
            self.stream_report.lock().as_ref().map(|(r, _)| r.clone()),
        );
        snap.generation = epochs[0].generation;
        snap.shards = Some(
            self.fleet
                .shards
                .iter()
                .zip(&epochs)
                .enumerate()
                .map(|(id, (shard, epoch))| ShardSnapshot {
                    shard: id,
                    prefixes: epoch
                        .model
                        .prefixes()
                        .keys()
                        .filter(|&&p| map.shard_of(p) == id)
                        .count(),
                    requests: shard.requests.load(Ordering::Relaxed),
                    errors: shard.errors.load(Ordering::Relaxed),
                    panics_caught: shard.panics.load(Ordering::Relaxed),
                    deadline_exceeded: shard.deadline_exceeded.load(Ordering::Relaxed),
                    generation: epoch.generation,
                    base_cache: epoch.base_cache.snapshot(),
                    overlay_cache: epoch.sessions.overlay_snapshot(),
                    active_sessions: epoch.sessions.len(),
                    state: state_name(shard.state.load(Ordering::Acquire)).to_string(),
                    // sast: relaxed-ok display-only snapshot; quarantine decisions use the AcqRel fetch_add result
                    strikes: shard.strikes.load(Ordering::Relaxed),
                })
                .collect(),
        );
        Response::Metrics(Box::new(snap))
    }

    /// The `health` reply: fleet status, per-shard self-healing state,
    /// and the stream heartbeat with its age. The fleet is `degraded`
    /// exactly while any shard is not serving its slice.
    fn do_health(&self) -> Response {
        let epochs = self.pin_fleet();
        let shards: Vec<ShardHealth> = self
            .fleet
            .shards
            .iter()
            .zip(&epochs)
            .enumerate()
            .map(|(id, (shard, epoch))| ShardHealth {
                shard: id,
                state: state_name(shard.state.load(Ordering::Acquire)).to_string(),
                generation: epoch.generation,
                panics: shard.panics.load(Ordering::Relaxed),
                // sast: relaxed-ok display-only snapshot; quarantine decisions use the AcqRel fetch_add result
                strikes: shard.strikes.load(Ordering::Relaxed),
            })
            .collect();
        let degraded = shards.iter().any(|s| s.state != "healthy");
        Response::Health(HealthReply {
            status: if degraded { "degraded" } else { "healthy" }.to_string(),
            generation: epochs[0].generation,
            panics_caught: self.fleet.metrics.panics_caught(),
            quarantines: self.fleet.metrics.quarantines(),
            rebuilds: self.fleet.metrics.rebuilds(),
            rebuild_failures: self.fleet.metrics.rebuild_failures(),
            shards: Some(shards),
            stream: stream_health(&self.stream_report),
        })
    }

    /// The coordinated two-phase swap. Phase 0 validates the artifact
    /// once (decode + static audit + simulation probe, off-thread).
    /// Phase 1 builds a private candidate epoch per shard and probes the
    /// first prefix of that shard's slice through the candidate's own
    /// cache (doubling as a one-entry pre-warm). Phase 2 installs every
    /// candidate while holding *all* shard write locks in ascending
    /// order; any failure rolls already-swapped shards back before a
    /// single lock is released. All shards swap or none do.
    fn do_reload(&self, path: &str) -> Response {
        let _serialized = self.fleet.reload_lock.lock();
        let model = match validate_off_thread(path) {
            Ok(m) => m,
            Err(msg) => {
                return self.reject_reload(format!("reload rejected; keeping current model: {msg}"))
            }
        };
        let stats = model.stats();
        let prefixes = model.prefixes().len();
        // The candidate's prefix set may differ from the serving one, so
        // the swap carries its own rebalanced map.
        let map = Arc::new(ShardMap::build(&model, self.fleet.shards.len()));
        let model = Arc::new(model);
        let n = self.fleet.shards.len();
        let generation = self.generation() + 1;

        // Phase 1: per-shard candidates, each probed on its own slice.
        let mut candidates: Vec<Arc<ModelEpoch>> = Vec::with_capacity(n);
        for id in 0..n {
            // Failpoint: a per-shard validation failure (`atN:error`
            // fails the N-th shard) must abort the whole fleet's swap.
            #[cfg(feature = "testkit")]
            if quasar_bgpsim::fail::inject("serve.shard.validate") {
                return self.reject_reload(format!(
                    "reload rejected; keeping current model: shard {id} failed \
                     validation (injected)"
                ));
            }
            let epoch =
                ModelEpoch::shared(Arc::clone(&model), self.config.max_sessions, generation);
            let probe = model
                .prefixes()
                .keys()
                .copied()
                .find(|&p| map.shard_of(p) == id);
            if let Some(p) = probe {
                if let Err(e) = epoch.base_cache.get_or_simulate(&epoch.model, p) {
                    return self.reject_reload(format!(
                        "reload rejected; keeping current model: shard {id} failed \
                         validation probe on {p}: {e}"
                    ));
                }
            }
            candidates.push(Arc::new(epoch));
        }

        // Phase 2: install under every write lock, ascending — the same
        // order readers pin the fleet in, so no deadlock. A mid-loop
        // failure restores shards 0..id before any lock drops; readers
        // can never see a mix of generations.
        let mut guards: Vec<_> = self.fleet.shards.iter().map(|s| s.epoch.write()).collect();
        // The only swap-failure path is the injected one below, so the
        // rollback snapshot is only needed under the testkit feature.
        #[cfg(feature = "testkit")]
        let old: Vec<Arc<ModelEpoch>> = guards.iter().map(|g| Arc::clone(g)).collect();
        for (id, candidate) in candidates.into_iter().enumerate() {
            // Failpoint: a swap failure after some shards already took
            // the new epoch — the rollback regression case.
            #[cfg(feature = "testkit")]
            if quasar_bgpsim::fail::inject("serve.shard.swap") {
                for (guard, previous) in guards.iter_mut().take(id).zip(&old) {
                    **guard = Arc::clone(previous);
                }
                drop(guards);
                return self.reject_reload(format!(
                    "reload rejected; keeping current model: shard {id} failed to \
                     swap (all shards rolled back)"
                ));
            }
            *guards[id] = candidate;
        }
        // Publish the rebalanced map while every epoch write lock is
        // still held: a failed swap above returns first, so the old map
        // stays with the old epochs. (Readers never hold the map lock
        // while taking an epoch lock, so this nesting cannot deadlock.)
        *self.fleet.map.write() = map;
        // A fleet swap gives every shard a brand-new epoch, so it also
        // reinstates any quarantined shard: strikes cleared, healthy
        // again. Published under the write locks, so no reader can see
        // a healthy shard still holding a pre-swap epoch.
        for shard in &self.fleet.shards {
            shard.strikes.store(0, Ordering::Release);
            shard.state.store(HEALTHY, Ordering::Release);
        }
        drop(guards);
        self.fleet.metrics.reload_ok();
        Response::Reload(ReloadReply {
            swapped: true,
            prefixes,
            quasi_routers: stats.quasi_routers,
            generation,
        })
    }

    fn reject_reload(&self, message: String) -> Response {
        self.fleet.metrics.reload_failed();
        Response::error(message)
    }
}

impl ServeHandler for ShardedState {
    fn handle_line(&self, line: &str) -> Response {
        ShardedState::handle_line(self, line)
    }
    fn config(&self) -> &ServeConfig {
        ShardedState::config(self)
    }
    fn metrics(&self) -> &ServeMetrics {
        ShardedState::metrics(self)
    }
    fn shutting_down(&self) -> bool {
        ShardedState::shutting_down(self)
    }
    fn request_shutdown(&self) {
        ShardedState::request_shutdown(self)
    }
}

/// Merges two per-shard diff replies covering disjoint target ranges,
/// left range strictly below the right. Scalar tallies add; the impact
/// lists concatenate, staying in global prefix order because every
/// prefix on the left sorts below every prefix on the right.
fn merge_diff(mut acc: DiffReply, part: DiffReply) -> DiffReply {
    debug_assert_eq!(acc.scenario, part.scenario);
    acc.pairs += part.pairs;
    acc.unchanged += part.unchanged;
    acc.rerouted += part.rerouted;
    acc.lost += part.lost;
    acc.gained += part.gained;
    acc.diverged_prefixes += part.diverged_prefixes;
    acc.impacts.extend(part.impacts);
    acc
}

fn add_cache(acc: &mut CacheSnapshot, s: CacheSnapshot) {
    acc.entries += s.entries;
    acc.hits += s.hits;
    acc.misses += s.misses;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ChangeSpec;
    use crate::server::ServerState;
    use quasar_bgpsim::aspath::AsPath;
    use quasar_bgpsim::types::Asn;
    use quasar_topology::graph::AsGraph;
    use std::collections::BTreeMap;

    fn model() -> AsRoutingModel {
        let paths = vec![
            AsPath::from_u32s(&[1, 2, 3]),
            AsPath::from_u32s(&[1, 4, 3]),
            AsPath::from_u32s(&[5, 4, 3]),
        ];
        let graph = AsGraph::from_paths(&paths);
        let mut origins = BTreeMap::new();
        origins.insert(Prefix::for_origin(Asn(3)), Asn(3));
        origins.insert(Prefix::for_origin(Asn(2)), Asn(2));
        AsRoutingModel::initial(&graph, &origins)
    }

    fn requests() -> Vec<String> {
        let p3 = Prefix::for_origin(Asn(3)).to_string();
        let p2 = Prefix::for_origin(Asn(2)).to_string();
        vec![
            format!(r#"{{"type":"predict","prefix":"{p3}","observer":1}}"#),
            format!(r#"{{"type":"predict","prefix":"{p2}","observer":5}}"#),
            format!(r#"{{"type":"explain","prefix":"{p3}","observer":4}}"#),
            r#"{"type":"stats"}"#.to_string(),
            r#"{"type":"diff","changes":[{"action":"depeer","a":2,"b":3}]}"#.to_string(),
            format!(
                r#"{{"type":"diff","changes":[{{"action":"depeer","a":2,"b":3}}],"prefixes":["{p3}","{p2}","{p3}"]}}"#
            ),
            r#"{"type":"diff","changes":[{"action":"depeer","a":2,"b":3}],"prefixes":[]}"#
                .to_string(),
            r#"{"type":"diff","changes":[]}"#.to_string(),
            format!(r#"{{"type":"predict","prefix":"{p3}","observer":99}}"#),
            r#"{"type":"predict","prefix":"192.0.2.0/24","observer":1}"#.to_string(),
            r#"{"type":"predict","prefix":"nonsense","observer":1}"#.to_string(),
            "not json at all".to_string(),
        ]
    }

    #[test]
    fn shard_map_is_balanced_monotone_and_total() {
        // Bases packed low, exactly like `Prefix::for_origin` lays the
        // synthetic address space out — the case a proportional
        // base-space map degenerates on.
        for len in [0usize, 1, 2, 3, 7, 48, 102, 1000] {
            let sorted: Vec<Prefix> = (0..len as u32)
                .map(|i| Prefix {
                    base: (i * 8) << 8,
                    len: 24,
                })
                .collect();
            for n in [1usize, 2, 3, 4, 8, 1024] {
                let map = ShardMap::from_sorted(&sorted, n);
                assert_eq!(map.shards(), n);
                // Monotone and total over owned AND unknown prefixes.
                let mut last = 0usize;
                for base in (0u64..=u32::MAX as u64).step_by(1 << 22) {
                    let s = map.shard_of(Prefix {
                        base: base as u32,
                        len: 24,
                    });
                    assert!(s < n, "shard {s} out of range for {n}");
                    assert!(s >= last, "not monotone at base {base:#x}");
                    last = s;
                }
                // Owned runs are contiguous and balanced within one.
                let owners: Vec<usize> = sorted.iter().map(|&p| map.shard_of(p)).collect();
                assert!(owners.windows(2).all(|w| w[0] <= w[1]));
                let mut counts = vec![0usize; n];
                for &o in &owners {
                    counts[o] += 1;
                }
                let busy: Vec<usize> = counts.iter().copied().filter(|&c| c > 0).collect();
                if let (Some(&max), Some(&min)) = (busy.iter().max(), busy.iter().min()) {
                    assert!(
                        max - min <= 1,
                        "unbalanced: {counts:?} for {len} prefixes over {n} shards"
                    );
                }
                if len >= n {
                    assert!(
                        counts.iter().all(|&c| c > 0),
                        "idle shard with {len} >= {n} prefixes: {counts:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn shard_map_balances_the_packed_toy_model() {
        // The regression the rank map exists for: toy/synthetic prefixes
        // all sit in low address space, and must still spread out.
        let map = ShardMap::build(&model(), 2);
        let owners: Vec<usize> = model()
            .prefixes()
            .keys()
            .map(|&p| map.shard_of(p))
            .collect();
        assert_eq!(owners, vec![0, 1]);
    }

    #[test]
    fn sharded_replies_match_single_epoch_byte_for_byte() {
        for shards in [1usize, 2, 4, 8] {
            let plain = ServerState::new(model(), ServeConfig::default());
            let sharded = ShardedState::new(model(), ServeConfig::default(), shards);
            for req in requests() {
                let expected = serde_json::to_string(&plain.handle_line(&req)).unwrap();
                let got = serde_json::to_string(&sharded.handle_line(&req)).unwrap();
                assert_eq!(got, expected, "request {req} diverged at {shards} shards");
            }
        }
    }

    #[test]
    fn query_path_touches_only_the_owning_shard() {
        let s = ShardedState::new(model(), ServeConfig::default(), 4);
        let p3 = Prefix::for_origin(Asn(3));
        let owner = s.owner_of(p3);
        let line = format!(r#"{{"type":"predict","prefix":"{p3}","observer":1}}"#);
        assert!(matches!(s.handle_line(&line), Response::Predict(_)));
        for (id, shard) in s.fleet.shards.iter().enumerate() {
            let expected = u64::from(id == owner);
            assert_eq!(shard.requests.load(Ordering::Relaxed), expected);
        }
        // Only the owner's private cache warmed.
        for id in 0..s.shards() {
            let misses = s.epoch_of(id).base_cache.misses();
            assert_eq!(misses, u64::from(id == owner));
        }
    }

    #[test]
    fn metrics_report_per_shard_and_one_generation() {
        let s = ShardedState::new(model(), ServeConfig::default(), 4);
        let p3 = Prefix::for_origin(Asn(3)).to_string();
        s.handle_line(&format!(
            r#"{{"type":"predict","prefix":"{p3}","observer":1}}"#
        ));
        let Response::Metrics(m) = s.dispatch(&Request::Metrics) else {
            panic!("expected metrics reply");
        };
        assert_eq!(m.generation, 0);
        let shards = m.shards.expect("sharded metrics must list shards");
        assert_eq!(shards.len(), 4);
        assert_eq!(shards.iter().map(|s| s.prefixes).sum::<usize>(), 2);
        assert_eq!(shards.iter().map(|s| s.requests).sum::<u64>(), 1);
        assert!(shards.iter().all(|s| s.generation == 0));
        // The summed cache counters match the fleet.
        assert_eq!(m.base_cache.misses, 1);
    }

    #[test]
    fn rejected_reload_keeps_generation_and_model() {
        let s = ShardedState::new(model(), ServeConfig::default(), 3);
        let resp = s.dispatch(&Request::Reload {
            path: "/nonexistent/model.quasar".into(),
        });
        let Response::Error(e) = resp else {
            panic!("expected rejection, got {resp:?}");
        };
        assert!(e.message.contains("reload rejected; keeping current model"));
        assert_eq!(s.generation(), 0);
        assert_eq!(s.metrics().reload_failures(), 1);
        let p3 = Prefix::for_origin(Asn(3)).to_string();
        let line = format!(r#"{{"type":"predict","prefix":"{p3}","observer":1}}"#);
        assert!(matches!(s.handle_line(&line), Response::Predict(_)));
    }

    #[test]
    fn prewarm_fills_every_owning_shard() {
        let s = ShardedState::new(model(), ServeConfig::default(), 4);
        assert_eq!(s.prewarm(), 2);
        let mut total_entries = 0;
        for id in 0..s.shards() {
            total_entries += s.epoch_of(id).base_cache.snapshot().entries;
        }
        assert_eq!(total_entries, 2);
        // First query is a hit now.
        let p3 = Prefix::for_origin(Asn(3));
        let line = format!(r#"{{"type":"predict","prefix":"{p3}","observer":1}}"#);
        assert!(matches!(s.handle_line(&line), Response::Predict(_)));
        let owner = s.owner_of(p3);
        assert_eq!(s.epoch_of(owner).base_cache.hits(), 1);
    }

    /// Polls `pred` for up to `timeout`, for tests waiting on the
    /// detached rebuild worker.
    fn wait_until(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < timeout {
            if pred() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        pred()
    }

    #[test]
    fn health_reports_a_fresh_fleet_as_healthy() {
        let s = ShardedState::new(model(), ServeConfig::default(), 2);
        let Response::Health(h) = s.dispatch(&Request::Health) else {
            panic!("expected health reply");
        };
        assert_eq!(h.status, "healthy");
        assert_eq!(h.generation, 0);
        assert_eq!(h.panics_caught, 0);
        let shards = h.shards.expect("sharded health lists shards");
        assert_eq!(shards.len(), 2);
        assert!(shards.iter().all(|sh| sh.state == "healthy"));
        assert!(shards.iter().all(|sh| sh.generation == 0));
        assert!(h.stream.is_none(), "no pipeline has reported in");
    }

    #[test]
    fn quarantined_shard_is_rebuilt_and_reinstated_in_the_background() {
        let s = ShardedState::new(model(), ServeConfig::default(), 2);
        let p3 = Prefix::for_origin(Asn(3));
        let victim = s.owner_of(p3);
        let line = format!(r#"{{"type":"predict","prefix":"{p3}","observer":1}}"#);
        let before = serde_json::to_string(&s.handle_line(&line)).unwrap();

        assert!(s.quarantine_shard(victim), "healthy shard must quarantine");
        assert_eq!(s.metrics().quarantines(), 1);
        // The detached worker rebuilds a fresh epoch and reinstates the
        // shard at the fleet generation.
        assert!(
            wait_until(Duration::from_secs(10), || {
                s.shard_state(victim) == "healthy" && s.metrics().rebuilds() == 1
            }),
            "rebuild never reinstated the shard: state={}, rebuilds={}",
            s.shard_state(victim),
            s.metrics().rebuilds()
        );
        assert_eq!(s.generation(), 0, "a rebuild must not move the generation");
        assert_eq!(s.metrics().rebuild_failures(), 0);
        // The reinstated shard answers its slice byte-identically, from
        // a fresh (cold) private cache.
        let after = serde_json::to_string(&s.handle_line(&line)).unwrap();
        assert_eq!(before, after, "reinstated shard diverged");
        let Response::Health(h) = s.dispatch(&Request::Health) else {
            panic!("expected health reply");
        };
        assert_eq!(h.status, "healthy");
        assert_eq!(h.rebuilds, 1);
    }

    #[test]
    fn quarantine_is_idempotent_while_degraded() {
        // A shard with no owned prefixes still rebuilds (the probe is
        // skipped); out-of-range ids are refused.
        let s = ShardedState::new(model(), ServeConfig::default(), 2);
        assert!(!s.quarantine_shard(99), "out-of-range shard id");
        assert!(s.quarantine_shard(0));
        // Whatever state the shard is in now (quarantined, rebuilding,
        // or already healthy again), the counters saw exactly one trip
        // so far.
        assert_eq!(s.metrics().quarantines(), 1);
        assert!(wait_until(Duration::from_secs(10), || {
            s.shard_state(0) == "healthy"
        }));
    }

    #[test]
    fn diff_merge_concatenates_in_prefix_order() {
        // Whole-model diff across shard boundaries must list impacts in
        // globally sorted prefix order — compare against 1 shard.
        let one = ShardedState::new(model(), ServeConfig::default(), 1);
        let many = ShardedState::new(model(), ServeConfig::default(), 8);
        let req = Request::Diff {
            changes: vec![ChangeSpec::Depeer { a: 2, b: 3 }],
            prefixes: None,
        };
        let (Response::Diff(a), Response::Diff(b)) = (one.dispatch(&req), many.dispatch(&req))
        else {
            panic!("expected diff replies");
        };
        assert_eq!(a, b);
        let prefixes: Vec<&String> = b.impacts.iter().map(|i| &i.prefix).collect();
        let mut sorted = prefixes.clone();
        sorted.sort();
        assert_eq!(prefixes, sorted);
    }
}
