//! AS degree distribution.
//!
//! The paper opens with the observation that "high-level features of the
//! inter-domain topology have been used to make generic inferences about
//! its behavior, e.g., power-law distributions" (§1, citing Faloutsos et
//! al.) — and argues such generic features cannot answer specific routing
//! questions. This module measures the degree distribution of an AS graph
//! so the synthetic Internet's shape can be compared against the real
//! one's heavy tail.

use quasar_bgpsim::types::Asn;
use quasar_topology::graph::AsGraph;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Degree statistics of an AS graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DegreeDistribution {
    /// Degree per AS.
    pub per_as: BTreeMap<Asn, usize>,
}

impl DegreeDistribution {
    /// Measures `graph`.
    pub fn from_graph(graph: &AsGraph) -> Self {
        DegreeDistribution {
            per_as: graph.nodes().map(|a| (a, graph.degree(a))).collect(),
        }
    }

    /// Mean degree.
    pub fn mean(&self) -> f64 {
        if self.per_as.is_empty() {
            return 0.0;
        }
        self.per_as.values().sum::<usize>() as f64 / self.per_as.len() as f64
    }

    /// Maximum degree.
    pub fn max(&self) -> usize {
        self.per_as.values().copied().max().unwrap_or(0)
    }

    /// Complementary CDF: for each observed degree `d`, the fraction of
    /// ASes with degree ≥ `d` (descending fractions).
    pub fn ccdf(&self) -> Vec<(usize, f64)> {
        if self.per_as.is_empty() {
            return Vec::new();
        }
        let mut hist: BTreeMap<usize, usize> = BTreeMap::new();
        for &d in self.per_as.values() {
            *hist.entry(d).or_default() += 1;
        }
        let n = self.per_as.len() as f64;
        let mut remaining = self.per_as.len();
        let mut out = Vec::with_capacity(hist.len());
        for (&d, &c) in &hist {
            out.push((d, remaining as f64 / n));
            remaining -= c;
        }
        out
    }

    /// Least-squares slope of `log(CCDF)` vs `log(degree)` over degrees
    /// ≥ 1 — the power-law exponent estimate (expected around −1.2 for the
    /// real AS graph per Faloutsos et al.). `None` with fewer than two
    /// distinct positive degrees.
    pub fn power_law_slope(&self) -> Option<f64> {
        let pts: Vec<(f64, f64)> = self
            .ccdf()
            .into_iter()
            .filter(|&(d, f)| d >= 1 && f > 0.0)
            .map(|(d, f)| ((d as f64).ln(), f.ln()))
            .collect();
        if pts.len() < 2 {
            return None;
        }
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            None
        } else {
            Some((n * sxy - sx * sy) / denom)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n: u32) -> AsGraph {
        let mut g = AsGraph::new();
        for i in 1..=n {
            g.add_edge(Asn(0), Asn(i));
        }
        g
    }

    #[test]
    fn star_degrees() {
        let d = DegreeDistribution::from_graph(&star(5));
        assert_eq!(d.max(), 5);
        assert_eq!(d.per_as[&Asn(0)], 5);
        assert_eq!(d.per_as[&Asn(3)], 1);
        assert!((d.mean() - 10.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ccdf_monotone_and_complete() {
        let d = DegreeDistribution::from_graph(&star(5));
        let c = d.ccdf();
        assert_eq!(c.first().map(|&(_, f)| f), Some(1.0));
        for w in c.windows(2) {
            assert!(w[0].1 >= w[1].1, "CCDF must not increase");
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn slope_negative_on_heavy_tail() {
        // A crude heavy tail: many degree-1 nodes, one hub.
        let d = DegreeDistribution::from_graph(&star(40));
        let s = d.power_law_slope().unwrap();
        assert!(s < 0.0, "slope {s}");
    }

    #[test]
    fn empty_graph() {
        let d = DegreeDistribution::from_graph(&AsGraph::new());
        assert_eq!(d.mean(), 0.0);
        assert!(d.ccdf().is_empty());
        assert!(d.power_law_slope().is_none());
    }
}
