//! Table 1: quantiles of the maximum route diversity received per AS.
//!
//! "To judge how much of the path diversity is due to multiple routes per
//! ASes ... we determine the distribution of the maximum number of
//! distinct unique paths each AS receives towards any destination prefix.
//! This value is a lower bound on how many routers are needed inside an AS
//! to propagate all these paths" (§3.2). From vantage-point data, the
//! routes an AS `a` "receives" for prefix `p` are the distinct suffixes
//! *after* `a` of the observed paths for `p` that traverse `a`.

use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::types::{Asn, Prefix};
use quasar_core::observed::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Per-AS maximum received-path diversity.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiversityQuantiles {
    /// For each AS: the maximum, over prefixes, of the number of distinct
    /// paths it was observed to receive.
    pub per_as: BTreeMap<Asn, usize>,
}

impl DiversityQuantiles {
    /// Computes the per-AS diversity from a dataset.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        // (AS, prefix) -> set of received suffixes (the path after the AS).
        let mut received: BTreeMap<(Asn, Prefix), BTreeSet<AsPath>> = BTreeMap::new();
        for r in dataset.routes() {
            let s = r.as_path.as_slice();
            for (i, &a) in s.iter().enumerate() {
                if i + 1 < s.len() {
                    received
                        .entry((a, r.prefix))
                        .or_default()
                        .insert(r.as_path.suffix(s.len() - i - 1));
                }
            }
        }
        let mut per_as: BTreeMap<Asn, usize> = BTreeMap::new();
        for ((a, _), set) in received {
            let e = per_as.entry(a).or_default();
            *e = (*e).max(set.len());
        }
        DiversityQuantiles { per_as }
    }

    /// The `q`-quantile (0.0..=1.0) of the per-AS maxima, by the
    /// nearest-rank method.
    pub fn quantile(&self, q: f64) -> usize {
        if self.per_as.is_empty() {
            return 0;
        }
        let mut v: Vec<usize> = self.per_as.values().copied().collect();
        v.sort_unstable();
        let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
        v[rank - 1]
    }

    /// The Table 1 row: maxima at the paper's percentiles
    /// (50/75/90/95/98/99).
    pub fn table1_row(&self) -> [(u8, usize); 6] {
        [
            (50, self.quantile(0.50)),
            (75, self.quantile(0.75)),
            (90, self.quantile(0.90)),
            (95, self.quantile(0.95)),
            (98, self.quantile(0.98)),
            (99, self.quantile(0.99)),
        ]
    }

    /// Fraction of ASes receiving at least `k` distinct paths for some
    /// prefix ("more than 50% of the ASes receive two unique AS-paths for
    /// at least one destination prefix").
    pub fn fraction_at_least(&self, k: usize) -> f64 {
        if self.per_as.is_empty() {
            return 0.0;
        }
        let n = self.per_as.values().filter(|&&d| d >= k).count();
        n as f64 / self.per_as.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_core::observed::ObservedRoute;

    fn dataset() -> Dataset {
        // AS2 receives, for AS4's prefix, paths via 3 and via 5 (as seen
        // from observer 1): 1-2-3-4 and 1-2-5-4.
        let routes = vec![
            (&[1u32, 2, 3, 4][..], 4u32, 0u32),
            (&[1, 2, 5, 4], 4, 1),
            (&[1, 2], 2, 0),
        ];
        Dataset::new(routes.into_iter().map(|(p, origin, point)| ObservedRoute {
            point,
            observer_as: Asn(p[0]),
            prefix: Prefix::for_origin(Asn(origin)),
            as_path: AsPath::from_u32s(p),
        }))
    }

    #[test]
    fn received_suffixes_counted() {
        let q = DiversityQuantiles::from_dataset(&dataset());
        assert_eq!(q.per_as[&Asn(2)], 2); // {3-4, 5-4}
        assert_eq!(q.per_as[&Asn(1)], 2); // receives both full paths
        assert_eq!(q.per_as[&Asn(3)], 1);
        // AS4 originates; it receives nothing.
        assert!(!q.per_as.contains_key(&Asn(4)));
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut q = DiversityQuantiles::default();
        for (i, d) in [1usize, 1, 1, 2, 5].into_iter().enumerate() {
            q.per_as.insert(Asn(i as u32 + 1), d);
        }
        assert_eq!(q.quantile(0.5), 1);
        assert_eq!(q.quantile(0.8), 2);
        assert_eq!(q.quantile(1.0), 5);
        assert_eq!(q.quantile(0.0), 1);
    }

    #[test]
    fn fraction_at_least_counts() {
        let q = DiversityQuantiles::from_dataset(&dataset());
        // per_as = {AS1: 2, AS2: 2, AS3: 1, AS5: 1} -> exactly half.
        assert!((q.fraction_at_least(2) - 0.5).abs() < 1e-12);
        assert_eq!(q.fraction_at_least(100), 0.0);
    }

    #[test]
    fn table1_row_is_monotone() {
        let q = DiversityQuantiles::from_dataset(&dataset());
        let row = q.table1_row();
        for w in row.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn empty_dataset_zeroes() {
        let q = DiversityQuantiles::from_dataset(&Dataset::default());
        assert_eq!(q.quantile(0.9), 0);
    }
}
