//! The §3.1 dataset summary ("T0"): everything the paper reports about its
//! BGP data in one structure.

use quasar_bgpsim::types::Asn;
use quasar_core::observed::Dataset;
use quasar_topology::classify::classify;
use quasar_topology::prune::prune_single_homed_stubs;
use serde::{Deserialize, Serialize};

/// Counts mirroring the paper's §3.1 narrative.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Observed routes (post-cleaning).
    pub routes: usize,
    /// Distinct AS-paths.
    pub distinct_paths: usize,
    /// Distinct (observer AS, origin AS) pairs.
    pub as_pairs: usize,
    /// Observation points.
    pub observation_points: usize,
    /// Distinct observer ASes.
    pub observer_ases: usize,
    /// ASes in the graph.
    pub ases: usize,
    /// AS-level edges.
    pub edges: usize,
    /// The tier-1 clique.
    pub level1: Vec<Asn>,
    /// Level-2 ASes (neighbors of level-1).
    pub level2: usize,
    /// Remaining ASes.
    pub other: usize,
    /// Transit ASes (appear mid-path).
    pub transit: usize,
    /// Single-homed stubs.
    pub single_homed_stubs: usize,
    /// Multi-homed stubs.
    pub multi_homed_stubs: usize,
    /// Nodes after single-homed-stub pruning.
    pub pruned_nodes: usize,
    /// Edges after pruning.
    pub pruned_edges: usize,
}

/// Computes the summary for a dataset; `seeds` are tier-1 hints.
pub fn summarize(dataset: &Dataset, seeds: &[Asn]) -> DatasetSummary {
    let graph = dataset.as_graph();
    let paths = dataset.paths();
    let class = classify(&graph, &paths, seeds);
    let pruned = prune_single_homed_stubs(&graph, &class);
    let mut observer_ases: Vec<Asn> = dataset.routes().iter().map(|r| r.observer_as).collect();
    observer_ases.sort();
    observer_ases.dedup();

    DatasetSummary {
        routes: dataset.len(),
        distinct_paths: paths.len(),
        as_pairs: dataset.paths_per_as_pair().len(),
        observation_points: dataset.observation_points().len(),
        observer_ases: observer_ases.len(),
        ases: graph.num_nodes(),
        edges: graph.num_edges(),
        level1: class.level1.clone(),
        level2: class.level2.len(),
        other: class.num_other(),
        transit: class.transit.len(),
        single_homed_stubs: class.single_homed_stubs.len(),
        multi_homed_stubs: class.multi_homed_stubs.len(),
        pruned_nodes: pruned.graph.num_nodes(),
        pruned_edges: pruned.graph.num_edges(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_bgpsim::aspath::AsPath;
    use quasar_bgpsim::types::Prefix;
    use quasar_core::observed::ObservedRoute;

    #[test]
    fn summary_counts_consistent() {
        let routes = vec![
            (&[1u32, 2][..], 2u32, 0u32),
            (&[2, 1], 1, 1),
            (&[1, 3, 6], 6, 0),
            (&[1, 5], 5, 0),
            (&[2, 1, 5], 5, 1),
        ];
        let d = Dataset::new(routes.into_iter().map(|(p, origin, point)| ObservedRoute {
            point,
            observer_as: Asn(p[0]),
            prefix: Prefix::for_origin(Asn(origin)),
            as_path: AsPath::from_u32s(p),
        }));
        let s = summarize(&d, &[Asn(1), Asn(2)]);
        assert_eq!(s.routes, 5);
        assert_eq!(s.observer_ases, 2);
        assert_eq!(s.level1, vec![Asn(1), Asn(2)]);
        assert_eq!(s.ases, 5);
        assert_eq!(
            s.transit + s.single_homed_stubs + s.multi_homed_stubs,
            s.ases
        );
        assert!(s.pruned_nodes <= s.ases);
        assert_eq!(s.level1.len() + s.level2 + s.other, s.ases);
    }
}
