//! Figure 2: histogram of the number of distinct AS-paths per
//! (origin AS, observation AS) pair.
//!
//! "Note, that for more than 30% of the AS-pairs we see more than one
//! AS-path. Indeed, there are more than 5,000 pairs with more than 10
//! different paths." (§3.2)

use quasar_core::observed::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The Figure 2 histogram: `counts[k]` = number of AS pairs observed with
/// exactly `k` distinct AS-paths.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathDiversityHistogram {
    /// Frequency per distinct-path count.
    pub counts: BTreeMap<usize, usize>,
}

impl PathDiversityHistogram {
    /// Builds the histogram from a dataset.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        for paths in dataset.paths_per_as_pair().values() {
            *counts.entry(paths.len()).or_default() += 1;
        }
        PathDiversityHistogram { counts }
    }

    /// Total number of AS pairs.
    pub fn total_pairs(&self) -> usize {
        self.counts.values().sum()
    }

    /// Fraction of pairs with strictly more than `k` distinct paths.
    pub fn fraction_with_more_than(&self, k: usize) -> f64 {
        let total = self.total_pairs();
        if total == 0 {
            return 0.0;
        }
        let above: usize = self
            .counts
            .iter()
            .filter(|(&n, _)| n > k)
            .map(|(_, &f)| f)
            .sum();
        above as f64 / total as f64
    }

    /// Number of pairs with strictly more than `k` distinct paths.
    pub fn pairs_with_more_than(&self, k: usize) -> usize {
        self.counts
            .iter()
            .filter(|(&n, _)| n > k)
            .map(|(_, &f)| f)
            .sum()
    }

    /// The maximum diversity seen for any pair.
    pub fn max_diversity(&self) -> usize {
        self.counts.keys().next_back().copied().unwrap_or(0)
    }

    /// Rows `(distinct paths, pair count)` for printing/plotting, dense
    /// from 1 to the maximum.
    pub fn rows(&self) -> Vec<(usize, usize)> {
        (1..=self.max_diversity())
            .map(|k| (k, self.counts.get(&k).copied().unwrap_or(0)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_bgpsim::aspath::AsPath;
    use quasar_bgpsim::types::{Asn, Prefix};
    use quasar_core::observed::ObservedRoute;

    fn dataset() -> Dataset {
        // Pair (1,3): two paths; pair (2,3): one path; pair (1,2): one.
        let routes = vec![
            (&[1u32, 2, 3][..], 3u32, 0u32),
            (&[1, 4, 3], 3, 1),
            (&[2, 3], 3, 2),
            (&[1, 2], 2, 0),
        ];
        Dataset::new(routes.into_iter().map(|(p, origin, point)| ObservedRoute {
            point,
            observer_as: Asn(p[0]),
            prefix: Prefix::for_origin(Asn(origin)),
            as_path: AsPath::from_u32s(p),
        }))
    }

    #[test]
    fn histogram_counts_pairs() {
        let h = PathDiversityHistogram::from_dataset(&dataset());
        assert_eq!(h.total_pairs(), 3);
        assert_eq!(h.counts[&1], 2);
        assert_eq!(h.counts[&2], 1);
        assert_eq!(h.max_diversity(), 2);
    }

    #[test]
    fn fraction_above_threshold() {
        let h = PathDiversityHistogram::from_dataset(&dataset());
        assert!((h.fraction_with_more_than(1) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.pairs_with_more_than(10), 0);
    }

    #[test]
    fn rows_are_dense() {
        let h = PathDiversityHistogram::from_dataset(&dataset());
        assert_eq!(h.rows(), vec![(1, 2), (2, 1)]);
    }

    #[test]
    fn empty_dataset() {
        let h = PathDiversityHistogram::from_dataset(&Dataset::default());
        assert_eq!(h.total_pairs(), 0);
        assert_eq!(h.fraction_with_more_than(0), 0.0);
    }
}
