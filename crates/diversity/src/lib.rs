//! # quasar-diversity — route-diversity analysis (paper §3)
//!
//! The measurements that motivate the whole paper: how many distinct
//! AS-paths exist between AS pairs (Figure 2), how many distinct paths an
//! AS receives for a single prefix (Table 1 — "a lower bound on how many
//! routers are needed inside an AS"), how many prefixes share an AS-path,
//! and the §3.1 dataset summary.
//!
//! ```
//! use quasar_bgpsim::aspath::AsPath;
//! use quasar_bgpsim::types::{Asn, Prefix};
//! use quasar_core::observed::{Dataset, ObservedRoute};
//! use quasar_diversity::prelude::*;
//!
//! let dataset = Dataset::new(vec![
//!     ObservedRoute { point: 0, observer_as: Asn(1), prefix: Prefix::for_origin(Asn(3)),
//!                     as_path: AsPath::from_u32s(&[1, 2, 3]) },
//!     ObservedRoute { point: 1, observer_as: Asn(1), prefix: Prefix::for_origin(Asn(3)),
//!                     as_path: AsPath::from_u32s(&[1, 4, 3]) },
//! ]);
//! let hist = PathDiversityHistogram::from_dataset(&dataset);
//! assert_eq!(hist.pairs_with_more_than(1), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod degrees;
pub mod histogram;
pub mod prefix_spread;
pub mod quantiles;
pub mod summary;

/// Commonly used names.
pub mod prelude {
    pub use crate::degrees::DegreeDistribution;
    pub use crate::histogram::PathDiversityHistogram;
    pub use crate::prefix_spread::PrefixSpread;
    pub use crate::quantiles::DiversityQuantiles;
    pub use crate::summary::{summarize, DatasetSummary};
}
