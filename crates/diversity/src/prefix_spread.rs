//! Prefixes-per-AS-path distribution (§3.2).
//!
//! "there are very popular AS-paths used by more than 1,000 different
//! prefixes while the number of AS-paths that are only used by a single
//! prefix is less than 50%. When plotting the histogram of how many
//! prefixes are propagated along an AS-path on a log-log plot, one can see
//! a linear relationship."

use quasar_bgpsim::aspath::AsPath;
use quasar_core::observed::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Distribution of how many prefixes each distinct AS-path carries.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixSpread {
    /// Per distinct AS-path: number of prefixes observed along it.
    pub per_path: BTreeMap<AsPath, usize>,
}

impl PrefixSpread {
    /// Computes the spread from a dataset.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        let mut sets: BTreeMap<AsPath, BTreeSet<quasar_bgpsim::types::Prefix>> = BTreeMap::new();
        for r in dataset.routes() {
            sets.entry(r.as_path.clone()).or_default().insert(r.prefix);
        }
        PrefixSpread {
            per_path: sets.into_iter().map(|(p, s)| (p, s.len())).collect(),
        }
    }

    /// Histogram rows `(prefixes per path, number of paths)`.
    pub fn histogram(&self) -> BTreeMap<usize, usize> {
        let mut h: BTreeMap<usize, usize> = BTreeMap::new();
        for &n in self.per_path.values() {
            *h.entry(n).or_default() += 1;
        }
        h
    }

    /// Fraction of AS-paths used by exactly one prefix (the paper: below
    /// 50 %).
    pub fn single_prefix_fraction(&self) -> f64 {
        if self.per_path.is_empty() {
            return 0.0;
        }
        let n = self.per_path.values().filter(|&&c| c == 1).count();
        n as f64 / self.per_path.len() as f64
    }

    /// The busiest path's prefix count.
    pub fn max_prefixes(&self) -> usize {
        self.per_path.values().copied().max().unwrap_or(0)
    }

    /// Least-squares slope of `log(count)` vs `log(frequency)` over the
    /// histogram — the paper's "linear relationship on a log-log plot"
    /// (expected negative).
    pub fn log_log_slope(&self) -> Option<f64> {
        let h = self.histogram();
        if h.len() < 2 {
            return None;
        }
        let pts: Vec<(f64, f64)> = h
            .iter()
            .map(|(&x, &y)| ((x as f64).ln(), (y as f64).ln()))
            .collect();
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            None
        } else {
            Some((n * sxy - sx * sy) / denom)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_bgpsim::types::{Asn, Prefix};
    use quasar_core::observed::ObservedRoute;

    fn dataset() -> Dataset {
        // The path 1-2 carries two prefixes; 1-3 carries one.
        let routes = vec![
            (&[1u32, 2][..], Prefix::for_origin_nth(Asn(2), 0), 0u32),
            (&[1, 2], Prefix::for_origin_nth(Asn(2), 1), 0),
            (&[1, 3], Prefix::for_origin_nth(Asn(3), 0), 0),
        ];
        Dataset::new(routes.into_iter().map(|(p, prefix, point)| ObservedRoute {
            point,
            observer_as: Asn(p[0]),
            prefix,
            as_path: quasar_bgpsim::aspath::AsPath::from_u32s(p),
        }))
    }

    #[test]
    fn spread_counts_prefixes_per_path() {
        let s = PrefixSpread::from_dataset(&dataset());
        assert_eq!(s.per_path.len(), 2);
        assert_eq!(s.max_prefixes(), 2);
        assert!((s.single_prefix_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_shape() {
        let s = PrefixSpread::from_dataset(&dataset());
        let h = s.histogram();
        assert_eq!(h[&1], 1);
        assert_eq!(h[&2], 1);
    }

    #[test]
    fn slope_requires_two_points() {
        let s = PrefixSpread::from_dataset(&Dataset::default());
        assert!(s.log_log_slope().is_none());
        assert!(PrefixSpread::from_dataset(&dataset())
            .log_log_slope()
            .is_some());
    }
}
