//! Property-based tests over random path datasets.

use proptest::prelude::*;
use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::types::Asn;
use quasar_topology::prelude::*;

fn arb_paths() -> impl Strategy<Value = Vec<AsPath>> {
    proptest::collection::vec(
        proptest::collection::vec(1u32..40, 1..7).prop_map(|v| AsPath::from_u32s(&v)),
        1..40,
    )
}

proptest! {
    /// Every adjacent pair of every path is an edge of the derived graph,
    /// and every node of the graph appears on some path.
    #[test]
    fn graph_covers_paths(paths in arb_paths()) {
        let g = AsGraph::from_paths(&paths);
        for p in &paths {
            for (a, b) in p.edges() {
                if a != b {
                    prop_assert!(g.has_edge(a, b));
                }
            }
        }
        for n in g.nodes() {
            prop_assert!(paths.iter().any(|p| p.contains(n)));
        }
    }

    /// The tier-1 clique returned is in fact a clique and is maximal.
    #[test]
    fn tier1_result_is_maximal_clique(paths in arb_paths(), seed in 1u32..40) {
        let g = AsGraph::from_paths(&paths);
        let c = tier1_clique(&g, &[Asn(seed)]);
        prop_assert!(g.is_clique(&c));
        for n in g.nodes() {
            if !c.contains(&n) {
                // n must miss at least one clique member.
                prop_assert!(c.iter().any(|&m| !g.has_edge(m, n)),
                    "clique not maximal: {n} adjacent to all");
            }
        }
    }

    /// transit / single-homed stubs / multi-homed stubs partition the ASes.
    #[test]
    fn classification_is_a_partition(paths in arb_paths()) {
        let g = AsGraph::from_paths(&paths);
        let c = classify(&g, &paths, &[]);
        let mut count = 0;
        for a in g.nodes() {
            let memberships = [
                c.transit.contains(&a),
                c.single_homed_stubs.contains(&a),
                c.multi_homed_stubs.contains(&a),
            ];
            prop_assert_eq!(memberships.iter().filter(|&&m| m).count(), 1,
                "{} in {} classes", a, memberships.iter().filter(|&&m| m).count());
            count += 1;
        }
        prop_assert_eq!(count, c.num_ases);
    }

    /// Pruned paths never traverse a removed AS and are loop-free; the
    /// pruned graph contains exactly the surviving nodes.
    #[test]
    fn pruned_paths_avoid_removed(paths in arb_paths()) {
        let g = AsGraph::from_paths(&paths);
        let c = classify(&g, &paths, &[]);
        let mut pr = prune_single_homed_stubs(&g, &c);
        let kept = pr.rewrite_paths(&paths);
        for p in &kept {
            prop_assert!(!p.has_loop());
            for a in p.iter() {
                prop_assert!(!pr.removed.contains(&a));
            }
        }
        for a in pr.removed.iter() {
            prop_assert!(!pr.graph.contains(*a));
        }
        prop_assert_eq!(pr.graph.num_nodes() + pr.removed.len(), g.num_nodes());
    }

    /// Relationship inference classifies only existing edges, reports
    /// symmetric lookups, and tier-1 clique edges are always peerings.
    #[test]
    fn relationships_cover_edges_symmetrically(paths in arb_paths()) {
        let g = AsGraph::from_paths(&paths);
        let level1 = tier1_clique(&g, &[]);
        let rels = infer_relationships(&g, &paths, &level1, &InferenceConfig::default());
        for (&(a, b), _) in rels.iter() {
            prop_assert!(g.has_edge(a, b));
            prop_assert_eq!(rels.get(a, b), rels.get(b, a));
        }
        for (i, &a) in level1.iter().enumerate() {
            for &b in &level1[i + 1..] {
                prop_assert_eq!(rels.get(a, b), Some(Relationship::PeerPeer));
            }
        }
        let (cp, pp, sib) = rels.counts();
        prop_assert_eq!(cp + pp + sib, rels.len());
    }

    /// Valley-freeness is suffix-closed: every suffix of a valley-free
    /// path is itself valley-free (the refinement heuristic depends on
    /// suffixes being realizable wherever the full path is).
    #[test]
    fn valley_free_closed_under_suffix(paths in arb_paths()) {
        use quasar_topology::gao::is_valley_free;
        let g = AsGraph::from_paths(&paths);
        let rels = infer_relationships(&g, &paths, &[], &InferenceConfig::default());
        for p in &paths {
            if p.has_loop() || !is_valley_free(p, &rels) {
                continue;
            }
            for n in 1..=p.len() {
                prop_assert!(
                    is_valley_free(&p.suffix(n), &rels),
                    "suffix {} of valley-free {} has a valley",
                    p.suffix(n),
                    p
                );
            }
        }
    }

    /// An AS is never simultaneously provider and customer of the same
    /// neighbor (directions are exclusive).
    #[test]
    fn provider_direction_exclusive(paths in arb_paths()) {
        let g = AsGraph::from_paths(&paths);
        let rels = infer_relationships(&g, &paths, &[], &InferenceConfig::default());
        for (&(a, b), _) in rels.iter() {
            prop_assert!(!(rels.is_provider(a, b) && rels.is_provider(b, a)));
        }
    }
}
