//! AS classification (paper §3.1): tier levels, transit vs stub,
//! single- vs multi-homed.

use crate::clique::tier1_clique;
use crate::graph::AsGraph;
use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::types::Asn;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Tier level of an AS in the paper's three-way partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Level {
    /// Member of the tier-1 clique.
    Level1,
    /// Direct neighbor of a level-1 provider.
    Level2,
    /// Everything else.
    Other,
}

/// Full §3.1 classification of an AS-path dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Classification {
    /// The tier-1 clique, ascending.
    pub level1: Vec<Asn>,
    /// Neighbors of level-1 providers (excluding level-1 themselves).
    pub level2: BTreeSet<Asn>,
    /// ASes appearing in the middle of at least one AS-path.
    pub transit: BTreeSet<Asn>,
    /// Non-transit ASes with exactly one observed neighbor.
    pub single_homed_stubs: BTreeSet<Asn>,
    /// Non-transit ASes with two or more observed neighbors.
    pub multi_homed_stubs: BTreeSet<Asn>,
    /// Total number of ASes seen.
    pub num_ases: usize,
}

impl Classification {
    /// Level of `asn`.
    pub fn level(&self, asn: Asn) -> Level {
        if self.level1.binary_search(&asn).is_ok() {
            Level::Level1
        } else if self.level2.contains(&asn) {
            Level::Level2
        } else {
            Level::Other
        }
    }

    /// True if the AS provides transit (appears mid-path somewhere).
    pub fn is_transit(&self, asn: Asn) -> bool {
        self.transit.contains(&asn)
    }

    /// True if the AS is a stub (single- or multi-homed).
    pub fn is_stub(&self, asn: Asn) -> bool {
        self.single_homed_stubs.contains(&asn) || self.multi_homed_stubs.contains(&asn)
    }

    /// Count of "other" ASes (neither level-1 nor level-2).
    pub fn num_other(&self) -> usize {
        self.num_ases - self.level1.len() - self.level2.len()
    }
}

/// Classifies every AS of `graph` given the observed `paths` and tier-1
/// `seeds` (the paper seeds with well-known tier-1 ASNs such as 701, 1239,
/// 3356, 7018, ...).
pub fn classify<'a>(
    graph: &AsGraph,
    paths: impl IntoIterator<Item = &'a AsPath>,
    seeds: &[Asn],
) -> Classification {
    let level1 = tier1_clique(graph, seeds);

    let mut transit: BTreeSet<Asn> = BTreeSet::new();
    for p in paths {
        let s = p.as_slice();
        for &mid in s.iter().take(s.len().saturating_sub(1)).skip(1) {
            transit.insert(mid);
        }
    }

    let mut level2 = BTreeSet::new();
    for &l1 in &level1 {
        for n in graph.neighbors(l1) {
            if level1.binary_search(&n).is_err() {
                level2.insert(n);
            }
        }
    }

    let mut single = BTreeSet::new();
    let mut multi = BTreeSet::new();
    for a in graph.nodes() {
        if transit.contains(&a) {
            continue;
        }
        match graph.degree(a) {
            0 | 1 => {
                single.insert(a);
            }
            _ => {
                multi.insert(a);
            }
        }
    }

    Classification {
        level1,
        level2,
        transit,
        single_homed_stubs: single,
        multi_homed_stubs: multi,
        num_ases: graph.num_nodes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(v: &[u32]) -> AsPath {
        AsPath::from_u32s(v)
    }

    /// Clique {1,2}; 3 hangs off 1 (transit for 4); 4 single-homed stub;
    /// 5 multi-homed stub (to 1 and 3 — not to the whole clique, so it
    /// cannot join it).
    fn dataset() -> (AsGraph, Vec<AsPath>) {
        let paths = vec![
            path(&[1, 2]),
            path(&[2, 1]),
            path(&[2, 1, 3, 4]),
            path(&[1, 3, 4]),
            path(&[1, 5]),
            path(&[2, 1, 3, 5]),
            path(&[3, 5]),
        ];
        let g = AsGraph::from_paths(&paths);
        (g, paths)
    }

    #[test]
    fn levels_assigned() {
        let (g, paths) = dataset();
        let c = classify(&g, &paths, &[Asn(1), Asn(2)]);
        assert_eq!(c.level1, vec![Asn(1), Asn(2)]);
        assert_eq!(c.level(Asn(3)), Level::Level2);
        assert_eq!(c.level(Asn(5)), Level::Level2);
        assert_eq!(c.level(Asn(4)), Level::Other);
    }

    #[test]
    fn transit_detected_mid_path() {
        let (g, paths) = dataset();
        let c = classify(&g, &paths, &[Asn(1), Asn(2)]);
        assert!(c.is_transit(Asn(3)));
        assert!(c.is_transit(Asn(1)));
        assert!(!c.is_transit(Asn(4)));
        assert!(!c.is_transit(Asn(5)));
    }

    #[test]
    fn stub_homing_split() {
        let (g, paths) = dataset();
        let c = classify(&g, &paths, &[Asn(1), Asn(2)]);
        assert!(c.single_homed_stubs.contains(&Asn(4)));
        assert!(c.multi_homed_stubs.contains(&Asn(5)));
        assert!(c.is_stub(Asn(4)));
        assert!(!c.is_stub(Asn(3)));
    }

    #[test]
    fn counts_consistent() {
        let (g, paths) = dataset();
        let c = classify(&g, &paths, &[Asn(1), Asn(2)]);
        assert_eq!(c.num_ases, 5);
        assert_eq!(c.num_other(), 1); // AS4
    }

    #[test]
    fn two_hop_paths_have_no_transit() {
        let paths = vec![path(&[1, 2])];
        let g = AsGraph::from_paths(&paths);
        let c = classify(&g, &paths, &[Asn(1)]);
        assert!(c.transit.is_empty());
    }
}
