//! # quasar-topology — AS-level topology machinery
//!
//! Implements §3.1/§3.3 of *"Building an AS-topology model that captures
//! route diversity"* (SIGCOMM 2006): deriving the AS graph from observed
//! AS-paths, locating the tier-1 clique, classifying ASes (level-1/2/other,
//! transit vs stub, single- vs multi-homed), pruning single-homed stubs
//! with path transfer, and inferring customer-provider / peer / sibling
//! relationships under the valley-free assumption together with their
//! local-pref + export-filter realization.
//!
//! ```
//! use quasar_bgpsim::aspath::AsPath;
//! use quasar_bgpsim::types::Asn;
//! use quasar_topology::prelude::*;
//!
//! let paths = vec![AsPath::from_u32s(&[1, 2]), AsPath::from_u32s(&[2, 1, 3])];
//! let graph = AsGraph::from_paths(&paths);
//! let class = classify(&graph, &paths, &[Asn(1), Asn(2)]);
//! assert_eq!(class.level1, vec![Asn(1), Asn(2)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod clique;
pub mod gao;
pub mod graph;
pub mod prune;
pub mod relationships;

/// Commonly used names.
pub mod prelude {
    pub use crate::classify::{classify, Classification, Level};
    pub use crate::clique::tier1_clique;
    pub use crate::gao::{
        import_local_pref, is_valley_free, may_export, neighbor_kind, LocalPrefClasses,
        NeighborKind,
    };
    pub use crate::graph::AsGraph;
    pub use crate::prune::{prune_single_homed_stubs, PruneResult};
    pub use crate::relationships::{
        infer_relationships, InferenceConfig, Relationship, Relationships,
    };
}
