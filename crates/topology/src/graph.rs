//! The AS-level adjacency graph.
//!
//! "We derive an AS-level topology from the AS-paths. If two ASes are next
//! to each other on a path we assume that they have an agreement to exchange
//! data and are therefore neighbors in the AS-topology graph." (§3.1)
//!
//! Deterministic by construction: adjacency is kept in ordered sets, so
//! iteration order never depends on hash seeds.

use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::types::Asn;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Undirected AS-level graph.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsGraph {
    adj: BTreeMap<Asn, BTreeSet<Asn>>,
}

impl AsGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the graph from a collection of AS-paths, adding one edge per
    /// adjacent pair. Paths with loops contribute their edges too (they are
    /// filtered at the dataset level, not here).
    pub fn from_paths<'a>(paths: impl IntoIterator<Item = &'a AsPath>) -> Self {
        let mut g = Self::new();
        for p in paths {
            for (a, b) in p.edges() {
                g.add_edge(a, b);
            }
            // A one-element path still witnesses the AS itself.
            if let Some(o) = p.origin() {
                g.add_node(o);
            }
        }
        g
    }

    /// Ensures `a` exists as a node.
    pub fn add_node(&mut self, a: Asn) {
        self.adj.entry(a).or_default();
    }

    /// Adds the undirected edge `a -- b` (self-loops register the node but
    /// no edge).
    pub fn add_edge(&mut self, a: Asn, b: Asn) {
        if a == b {
            self.add_node(a);
            return;
        }
        self.adj.entry(a).or_default().insert(b);
        self.adj.entry(b).or_default().insert(a);
    }

    /// Removes a node and all incident edges.
    pub fn remove_node(&mut self, a: Asn) {
        if let Some(nbrs) = self.adj.remove(&a) {
            for n in nbrs {
                if let Some(s) = self.adj.get_mut(&n) {
                    s.remove(&a);
                }
            }
        }
    }

    /// True if the node exists.
    pub fn contains(&self, a: Asn) -> bool {
        self.adj.contains_key(&a)
    }

    /// True if the edge exists.
    pub fn has_edge(&self, a: Asn, b: Asn) -> bool {
        self.adj.get(&a).is_some_and(|s| s.contains(&b))
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.values().map(|s| s.len()).sum::<usize>() / 2
    }

    /// Degree of `a` (0 if absent).
    pub fn degree(&self, a: Asn) -> usize {
        self.adj.get(&a).map_or(0, |s| s.len())
    }

    /// Neighbors of `a` in ascending ASN order.
    pub fn neighbors(&self, a: Asn) -> impl Iterator<Item = Asn> + '_ {
        self.adj.get(&a).into_iter().flatten().copied()
    }

    /// All nodes in ascending ASN order.
    pub fn nodes(&self) -> impl Iterator<Item = Asn> + '_ {
        self.adj.keys().copied()
    }

    /// All undirected edges, each once, `(low, high)` ordered.
    pub fn edges(&self) -> impl Iterator<Item = (Asn, Asn)> + '_ {
        self.adj.iter().flat_map(|(&a, s)| {
            s.iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }

    /// True if every pair of the given ASes is connected (used by the
    /// tier-1 clique search).
    pub fn is_clique(&self, asns: &[Asn]) -> bool {
        for (i, &a) in asns.iter().enumerate() {
            for &b in &asns[i + 1..] {
                if !self.has_edge(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(v: &[u32]) -> AsPath {
        AsPath::from_u32s(v)
    }

    #[test]
    fn from_paths_builds_edges() {
        let paths = vec![path(&[1, 2, 3]), path(&[2, 4])];
        let g = AsGraph::from_paths(&paths);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(Asn(1), Asn(2)));
        assert!(g.has_edge(Asn(2), Asn(3)));
        assert!(g.has_edge(Asn(2), Asn(4)));
        assert!(!g.has_edge(Asn(1), Asn(3)));
    }

    #[test]
    fn edges_are_undirected_and_deduped() {
        let paths = vec![path(&[1, 2]), path(&[2, 1])];
        let g = AsGraph::from_paths(&paths);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(Asn(1)), 1);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = AsGraph::new();
        g.add_edge(Asn(1), Asn(1));
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_nodes(), 1);
    }

    #[test]
    fn remove_node_cleans_incident_edges() {
        let mut g = AsGraph::new();
        g.add_edge(Asn(1), Asn(2));
        g.add_edge(Asn(2), Asn(3));
        g.remove_node(Asn(2));
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_nodes(), 2);
        assert!(!g.contains(Asn(2)));
    }

    #[test]
    fn singleton_path_adds_origin_node() {
        let paths = vec![path(&[7])];
        let g = AsGraph::from_paths(&paths);
        assert!(g.contains(Asn(7)));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn clique_detection() {
        let mut g = AsGraph::new();
        for (a, b) in [(1, 2), (1, 3), (2, 3), (3, 4)] {
            g.add_edge(Asn(a), Asn(b));
        }
        assert!(g.is_clique(&[Asn(1), Asn(2), Asn(3)]));
        assert!(!g.is_clique(&[Asn(1), Asn(2), Asn(4)]));
        assert!(g.is_clique(&[Asn(1)]));
        assert!(g.is_clique(&[]));
    }

    #[test]
    fn neighbors_sorted() {
        let mut g = AsGraph::new();
        g.add_edge(Asn(5), Asn(9));
        g.add_edge(Asn(5), Asn(2));
        g.add_edge(Asn(5), Asn(7));
        let n: Vec<Asn> = g.neighbors(Asn(5)).collect();
        assert_eq!(n, vec![Asn(2), Asn(7), Asn(9)]);
    }
}
