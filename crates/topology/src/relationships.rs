//! Inter-AS business-relationship inference (paper §3.3).
//!
//! "Relying on the BGP data we use a simple heuristic for inferring
//! customer-provider relationship utilizing the valley-free assumption. We
//! start by declaring all links between the level-1 ASes as peering and
//! then iteratively infer customer-provider relationships."
//!
//! The implementation is a Gao-style degree-peak voting pass: for every
//! loop-free path (origin-first) the maximum-degree AS is taken as the
//! "peak"; edges before it vote customer→provider, edges after it vote
//! provider→customer. Edges voted in both directions within a factor of two
//! become siblings; the top edge of each path whose endpoints have
//! comparable degree becomes a peering candidate, and candidates with weak
//! transit evidence are classified as peerings. Tier-1 clique edges are
//! always peerings.
//!
//! The paper stresses that such inference is *insufficient* for accurate
//! prediction (Table 2) — this module exists to reproduce that baseline and
//! to provide the local-pref/export realization (see [`crate::gao`]).

use crate::graph::AsGraph;
use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::types::Asn;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Relationship of an AS pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Relationship {
    /// `customer` pays `provider` for transit.
    CustomerProvider {
        /// The paying AS.
        customer: Asn,
        /// The transit-providing AS.
        provider: Asn,
    },
    /// Settlement-free peering.
    PeerPeer,
    /// Same organization; treated like peering by the paper (§3.3 fn. 2).
    Sibling,
}

/// Inferred relationships for the edges of an AS graph. Edges without an
/// entry are *unknown* ("All other edges cannot be classified", §3.3).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relationships {
    map: BTreeMap<(Asn, Asn), Relationship>,
}

/// Tuning knobs of the inference heuristic.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// Maximum degree ratio between the endpoints of a path's top edge for
    /// it to be considered a peering candidate.
    pub peer_degree_ratio: f64,
    /// A peering candidate stays customer-provider if one direction
    /// collected strictly more transit votes than this.
    pub peer_vote_ceiling: u32,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            peer_degree_ratio: 10.0,
            peer_vote_ceiling: 2,
        }
    }
}

impl Relationships {
    fn key(a: Asn, b: Asn) -> (Asn, Asn) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Sets the relationship of an edge.
    pub fn set(&mut self, a: Asn, b: Asn, rel: Relationship) {
        self.map.insert(Self::key(a, b), rel);
    }

    /// Relationship of the edge `a -- b`, if classified.
    pub fn get(&self, a: Asn, b: Asn) -> Option<Relationship> {
        self.map.get(&Self::key(a, b)).copied()
    }

    /// True if `p` was inferred to be a provider of `c`.
    pub fn is_provider(&self, p: Asn, c: Asn) -> bool {
        matches!(
            self.get(p, c),
            Some(Relationship::CustomerProvider { customer, provider })
                if provider == p && customer == c
        )
    }

    /// Counts per class: `(customer_provider, peer_peer, sibling)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut cp = 0;
        let mut pp = 0;
        let mut sib = 0;
        for r in self.map.values() {
            match r {
                Relationship::CustomerProvider { .. } => cp += 1,
                Relationship::PeerPeer => pp += 1,
                Relationship::Sibling => sib += 1,
            }
        }
        (cp, pp, sib)
    }

    /// Number of classified edges.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing was classified.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over all classified edges.
    pub fn iter(&self) -> impl Iterator<Item = (&(Asn, Asn), &Relationship)> {
        self.map.iter()
    }
}

/// Infers relationships from observed AS-paths (observer-first, as stored),
/// the AS graph, and the tier-1 clique.
pub fn infer_relationships<'a>(
    graph: &AsGraph,
    paths: impl IntoIterator<Item = &'a AsPath>,
    level1: &[Asn],
    cfg: &InferenceConfig,
) -> Relationships {
    // transit_votes[(x, y)]: evidence that y provides transit to x.
    let mut transit_votes: BTreeMap<(Asn, Asn), u32> = BTreeMap::new();
    let mut peer_candidates: BTreeSet<(Asn, Asn)> = BTreeSet::new();

    for path in paths {
        if path.has_loop() || path.len() < 2 {
            continue;
        }
        // Work origin-first: reverse of the stored observer-first order.
        let seq: Vec<Asn> = path.iter().rev().collect();
        let peak = seq
            .iter()
            .enumerate()
            .max_by_key(|(i, &a)| (graph.degree(a), std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
            .expect("non-empty path");
        // Uphill: each AS before the peak is a customer of its successor.
        for w in seq[..=peak].windows(2) {
            *transit_votes.entry((w[0], w[1])).or_default() += 1;
        }
        // Downhill: each AS after the peak is a customer of its predecessor.
        for w in seq[peak..].windows(2) {
            *transit_votes.entry((w[1], w[0])).or_default() += 1;
        }
        // Top edge: candidate peering if endpoint degrees are comparable.
        let neighbor = match (peak.checked_sub(1), seq.get(peak + 1)) {
            (Some(l), Some(&r)) => {
                if graph.degree(seq[l]) >= graph.degree(r) {
                    Some(seq[l])
                } else {
                    Some(r)
                }
            }
            (Some(l), None) => Some(seq[l]),
            (None, Some(&r)) => Some(r),
            (None, None) => None,
        };
        if let Some(n) = neighbor {
            let (dp, dn) = (graph.degree(seq[peak]) as f64, graph.degree(n) as f64);
            if dn > 0.0
                && dp / dn <= cfg.peer_degree_ratio
                && dn / dp.max(1.0) <= cfg.peer_degree_ratio
            {
                let k = if seq[peak] <= n {
                    (seq[peak], n)
                } else {
                    (n, seq[peak])
                };
                peer_candidates.insert(k);
            }
        }
    }

    let mut rels = Relationships::default();
    for (a, b) in graph.edges() {
        let up = transit_votes.get(&(a, b)).copied().unwrap_or(0); // b provides for a
        let down = transit_votes.get(&(b, a)).copied().unwrap_or(0); // a provides for b
        let rel = if up > 0 && down > 0 && up.min(down) * 2 >= up.max(down) {
            Some(Relationship::Sibling)
        } else if up > down {
            Some(Relationship::CustomerProvider {
                customer: a,
                provider: b,
            })
        } else if down > up {
            Some(Relationship::CustomerProvider {
                customer: b,
                provider: a,
            })
        } else if up > 0 {
            // up == down > 0 but not sibling-balanced is impossible
            // (equal values are within a factor of two); kept for clarity.
            Some(Relationship::Sibling)
        } else {
            None
        };
        // Weak customer-provider evidence on a candidate top edge is
        // reinterpreted as peering.
        let rel = match rel {
            Some(Relationship::CustomerProvider { .. })
                if peer_candidates.contains(&(a, b)) && up.max(down) <= cfg.peer_vote_ceiling =>
            {
                Some(Relationship::PeerPeer)
            }
            other => other,
        };
        if let Some(r) = rel {
            rels.set(a, b, r);
        }
    }

    // Tier-1 clique edges are peerings by definition.
    for (i, &a) in level1.iter().enumerate() {
        for &b in &level1[i + 1..] {
            if graph.has_edge(a, b) {
                rels.set(a, b, Relationship::PeerPeer);
            }
        }
    }

    rels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(v: &[u32]) -> AsPath {
        AsPath::from_u32s(v)
    }

    /// Two tier-1s (1, 2) with customers 3 (of 1) and 4 (of 2); stub 5 is a
    /// customer of 3. Observed paths cross the core.
    fn dataset() -> (AsGraph, Vec<AsPath>) {
        let paths = vec![
            // observer-first; e.g. observed at 4: 4 2 1 3 5.
            path(&[4, 2, 1, 3, 5]),
            path(&[3, 1, 2, 4]),
            path(&[4, 2, 1, 3]),
            path(&[5, 3, 1, 2]),
            path(&[1, 2]),
            path(&[2, 1]),
            // Extra degree for the core.
            path(&[6, 1]),
            path(&[7, 2]),
            path(&[6, 1, 2, 7]),
        ];
        let g = AsGraph::from_paths(&paths);
        (g, paths)
    }

    #[test]
    fn clique_edges_are_peer() {
        let (g, paths) = dataset();
        let rels = infer_relationships(&g, &paths, &[Asn(1), Asn(2)], &InferenceConfig::default());
        assert_eq!(rels.get(Asn(1), Asn(2)), Some(Relationship::PeerPeer));
    }

    #[test]
    fn customers_inferred_below_core() {
        let (g, paths) = dataset();
        let rels = infer_relationships(&g, &paths, &[Asn(1), Asn(2)], &InferenceConfig::default());
        assert!(rels.is_provider(Asn(3), Asn(5)));
        assert!(rels.is_provider(Asn(1), Asn(3)));
        assert!(rels.is_provider(Asn(2), Asn(4)));
    }

    #[test]
    fn counts_tally() {
        let (g, paths) = dataset();
        let rels = infer_relationships(&g, &paths, &[Asn(1), Asn(2)], &InferenceConfig::default());
        let (cp, pp, sib) = rels.counts();
        assert_eq!(cp + pp + sib, rels.len());
        assert!(pp >= 1);
        assert!(cp >= 3);
    }

    #[test]
    fn sibling_on_balanced_votes() {
        // 1 and 2 mutually transit for each other's customers.
        let paths = vec![
            path(&[3, 1, 2, 4]),
            path(&[4, 2, 1, 3]),
            path(&[3, 1]),
            path(&[4, 2]),
            path(&[9, 1]),
            path(&[9, 1, 2]),
            path(&[8, 2]),
            path(&[8, 2, 1]),
        ];
        let g = AsGraph::from_paths(&paths);
        let rels = infer_relationships(&g, &paths, &[], &InferenceConfig::default());
        // Votes 1->2 and 2->1 both present and balanced.
        let r = rels.get(Asn(1), Asn(2));
        assert!(
            matches!(
                r,
                Some(Relationship::Sibling) | Some(Relationship::PeerPeer)
            ),
            "expected sibling/peer, got {r:?}"
        );
    }

    #[test]
    fn get_is_symmetric() {
        let mut rels = Relationships::default();
        rels.set(
            Asn(10),
            Asn(20),
            Relationship::CustomerProvider {
                customer: Asn(10),
                provider: Asn(20),
            },
        );
        assert_eq!(rels.get(Asn(20), Asn(10)), rels.get(Asn(10), Asn(20)));
        assert!(rels.is_provider(Asn(20), Asn(10)));
        assert!(!rels.is_provider(Asn(10), Asn(20)));
    }
}
