//! Tier-1 ("level-1") clique detection.
//!
//! "We identify level-1 providers by starting with a small list of providers
//! that are known to be tier-1. An AS is added to the list of level-1
//! providers if the resulting AS-subgraph between level-1 providers is
//! complete, that is, we derive the AS-subgraph to be the largest clique of
//! ASes including our seed ASes." (§3.1)
//!
//! This is a greedy maximal-clique expansion around a seed set: candidates
//! are considered in descending degree (big transit providers first), ties
//! broken by ascending ASN for determinism.

use crate::graph::AsGraph;
use quasar_bgpsim::types::Asn;

/// Expands `seeds` to a maximal clique of `graph`.
///
/// Returns the clique in ascending ASN order. Seeds that are not mutually
/// connected are reduced first: seeds are inserted greedily (highest degree
/// first) and a seed conflicting with already-kept seeds is dropped — the
/// paper assumes a consistent seed list, but measured data can be noisy.
pub fn tier1_clique(graph: &AsGraph, seeds: &[Asn]) -> Vec<Asn> {
    let by_degree = |list: &mut Vec<Asn>| {
        list.sort_by_key(|&a| (std::cmp::Reverse(graph.degree(a)), a.0));
    };

    // Keep a consistent subset of the seeds.
    let mut clique: Vec<Asn> = Vec::new();
    let mut seed_order: Vec<Asn> = seeds
        .iter()
        .copied()
        .filter(|&a| graph.contains(a))
        .collect();
    by_degree(&mut seed_order);
    for s in seed_order {
        if clique.iter().all(|&c| graph.has_edge(c, s)) {
            clique.push(s);
        }
    }

    // Greedy expansion: any AS adjacent to the whole current clique joins.
    let mut candidates: Vec<Asn> = graph.nodes().filter(|a| !clique.contains(a)).collect();
    by_degree(&mut candidates);
    for c in candidates {
        if clique.iter().all(|&m| graph.has_edge(m, c)) {
            clique.push(c);
        }
    }

    clique.sort();
    clique
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(edges: &[(u32, u32)]) -> AsGraph {
        let mut g = AsGraph::new();
        for &(a, b) in edges {
            g.add_edge(Asn(a), Asn(b));
        }
        g
    }

    #[test]
    fn seed_clique_expands_to_maximal() {
        // 1,2,3 form a triangle; 4 connects to all three; 5 only to 1.
        let g = graph(&[(1, 2), (1, 3), (2, 3), (4, 1), (4, 2), (4, 3), (5, 1)]);
        let c = tier1_clique(&g, &[Asn(1), Asn(2)]);
        assert_eq!(c, vec![Asn(1), Asn(2), Asn(3), Asn(4)]);
    }

    #[test]
    fn inconsistent_seed_dropped() {
        // Seeds 1 and 9 are not connected; 9 has lower degree and is dropped.
        let g = graph(&[(1, 2), (1, 3), (2, 3), (9, 5)]);
        let c = tier1_clique(&g, &[Asn(1), Asn(9)]);
        assert!(c.contains(&Asn(1)));
        assert!(!c.contains(&Asn(9)));
    }

    #[test]
    fn missing_seed_ignored() {
        let g = graph(&[(1, 2)]);
        let c = tier1_clique(&g, &[Asn(1), Asn(777)]);
        assert_eq!(c, vec![Asn(1), Asn(2)]);
    }

    #[test]
    fn empty_graph_yields_empty_clique() {
        let g = AsGraph::new();
        assert!(tier1_clique(&g, &[Asn(1)]).is_empty());
    }

    #[test]
    fn expansion_prefers_high_degree() {
        // Triangle 1-2-3 plus two mutually exclusive extensions: 4 (degree 5)
        // and 5 (degree 3), not connected to each other.
        let g = graph(&[
            (1, 2),
            (1, 3),
            (2, 3),
            (4, 1),
            (4, 2),
            (4, 3),
            (4, 10),
            (4, 11),
            (5, 1),
            (5, 2),
            (5, 3),
        ]);
        let c = tier1_clique(&g, &[Asn(1)]);
        // 4 joins first (higher degree); 5 then conflicts with nothing? 5 is
        // not adjacent to 4, so it cannot join.
        assert!(c.contains(&Asn(4)));
        assert!(!c.contains(&Asn(5)));
    }
}
