//! Policy realization of inferred relationships (paper §3.3).
//!
//! "We then realized appropriate policies based on the local-pref BGP
//! attribute and route filters in the simulator" — customer routes get the
//! highest local-pref, peer/sibling/unknown routes an intermediate one,
//! provider routes the lowest ("We treat siblings in the same manner as
//! peerings relationships and set the same local-preference for unknown AS
//! edges as for peerings", fn. 2), and exports follow the valley-free rule:
//! routes learned from a provider or peer are announced to customers only.

use crate::relationships::{Relationship, Relationships};
use quasar_bgpsim::types::Asn;
use serde::{Deserialize, Serialize};

/// How a neighbor relates to us, from our own point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NeighborKind {
    /// The neighbor pays us.
    Customer,
    /// Settlement-free peer (also used for siblings and unknown edges,
    /// following the paper's footnote 2).
    Peer,
    /// We pay the neighbor.
    Provider,
}

/// Local-preference classes used by the relationship baseline.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LocalPrefClasses {
    /// Routes learned from customers.
    pub customer: u32,
    /// Routes learned from peers / siblings / unknown neighbors.
    pub peer: u32,
    /// Routes learned from providers.
    pub provider: u32,
}

impl Default for LocalPrefClasses {
    fn default() -> Self {
        LocalPrefClasses {
            customer: 130,
            peer: 110,
            provider: 90,
        }
    }
}

/// Classifies neighbor `them` from the viewpoint of `us`. Unknown and
/// sibling edges collapse to [`NeighborKind::Peer`] per the paper.
pub fn neighbor_kind(rels: &Relationships, us: Asn, them: Asn) -> NeighborKind {
    match rels.get(us, them) {
        Some(Relationship::CustomerProvider { customer, provider }) => {
            if provider == us && customer == them {
                NeighborKind::Customer
            } else {
                NeighborKind::Provider
            }
        }
        Some(Relationship::PeerPeer) | Some(Relationship::Sibling) | None => NeighborKind::Peer,
    }
}

/// Local-pref assigned to routes learned from a neighbor of this kind.
pub fn import_local_pref(classes: &LocalPrefClasses, kind: NeighborKind) -> u32 {
    match kind {
        NeighborKind::Customer => classes.customer,
        NeighborKind::Peer => classes.peer,
        NeighborKind::Provider => classes.provider,
    }
}

/// The valley-free export rule: a route learned from `learned_from` may be
/// announced to `toward` only if the route came from a customer (or is
/// locally originated, handled by the caller) *or* the recipient is a
/// customer.
pub fn may_export(learned_from: NeighborKind, toward: NeighborKind) -> bool {
    learned_from == NeighborKind::Customer || toward == NeighborKind::Customer
}

/// Checks the valley-free property of an AS-path (observer-first, as
/// stored) against a relationship assignment: walking **origin-first**, the
/// path must be a sequence of customer→provider steps, at most one peer
/// step, then provider→customer steps — "the valley-free assumption"
/// (§3.3). Unknown edges are treated as peer steps (paper fn. 2).
pub fn is_valley_free(path: &quasar_bgpsim::aspath::AsPath, rels: &Relationships) -> bool {
    // Phases: 0 = climbing (uphill), 1 = descended/peered (only downhill
    // allowed from here on).
    let mut phase = 0u8;
    let mut peer_steps = 0usize;
    let seq: Vec<_> = path.iter().rev().collect();
    for w in seq.windows(2) {
        let (from, to) = (w[0], w[1]);
        let step = match rels.get(from, to) {
            Some(Relationship::CustomerProvider { customer, .. }) if customer == from => 0u8, // up
            Some(Relationship::CustomerProvider { .. }) => 2, // down
            Some(Relationship::PeerPeer) | Some(Relationship::Sibling) | None => 1, // flat
        };
        match step {
            0 if phase == 0 => {}
            0 => return false, // up after descending: a valley
            1 => {
                peer_steps += 1;
                if peer_steps > 1 || phase == 1 {
                    return false; // more than one peer step, or peer after descent
                }
                phase = 1;
            }
            _ => phase = 1,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relationships::Relationship;

    fn rels() -> Relationships {
        let mut r = Relationships::default();
        r.set(
            Asn(1),
            Asn(2),
            Relationship::CustomerProvider {
                customer: Asn(2),
                provider: Asn(1),
            },
        );
        r.set(Asn(1), Asn(3), Relationship::PeerPeer);
        r.set(Asn(1), Asn(4), Relationship::Sibling);
        r
    }

    #[test]
    fn neighbor_kinds() {
        let r = rels();
        assert_eq!(neighbor_kind(&r, Asn(1), Asn(2)), NeighborKind::Customer);
        assert_eq!(neighbor_kind(&r, Asn(2), Asn(1)), NeighborKind::Provider);
        assert_eq!(neighbor_kind(&r, Asn(1), Asn(3)), NeighborKind::Peer);
        assert_eq!(neighbor_kind(&r, Asn(1), Asn(4)), NeighborKind::Peer);
        // Unknown edge defaults to peer (paper fn. 2).
        assert_eq!(neighbor_kind(&r, Asn(1), Asn(99)), NeighborKind::Peer);
    }

    #[test]
    fn local_pref_ordering() {
        let c = LocalPrefClasses::default();
        assert!(
            import_local_pref(&c, NeighborKind::Customer)
                > import_local_pref(&c, NeighborKind::Peer)
        );
        assert!(
            import_local_pref(&c, NeighborKind::Peer)
                > import_local_pref(&c, NeighborKind::Provider)
        );
    }

    #[test]
    fn valley_free_paths() {
        use quasar_bgpsim::aspath::AsPath;
        let mut r = Relationships::default();
        // 1 provider of 2 provider of 3; 1 peers with 4; 4 provider of 5.
        for (c, p) in [(2u32, 1u32), (3, 2), (5, 4)] {
            r.set(
                Asn(c),
                Asn(p),
                Relationship::CustomerProvider {
                    customer: Asn(c),
                    provider: Asn(p),
                },
            );
        }
        r.set(Asn(1), Asn(4), Relationship::PeerPeer);
        // Pure uphill (origin-first 3->2->1): valid.
        assert!(is_valley_free(&AsPath::from_u32s(&[1, 2, 3]), &r));
        // Uphill, one peer step, downhill (3->2->1, 1~4, 4->5): valid.
        assert!(is_valley_free(&AsPath::from_u32s(&[5, 4, 1, 2, 3]), &r));
        // Peer step first, then downhill (4~1, 1->2, 2->3): valid.
        assert!(is_valley_free(&AsPath::from_u32s(&[3, 2, 1, 4]), &r));
        // Uphill, peer, downhill across both branches: valid.
        assert!(is_valley_free(&AsPath::from_u32s(&[3, 2, 1, 4, 5]), &r));
        // Peer step after a descent (1->2 down, then 2~6): a valley.
        r.set(Asn(2), Asn(6), Relationship::PeerPeer);
        assert!(!is_valley_free(&AsPath::from_u32s(&[6, 2, 1]), &r));
        // Climbing after a descent (1->2 down, then 2->7 up): a valley.
        r.set(
            Asn(2),
            Asn(7),
            Relationship::CustomerProvider {
                customer: Asn(2),
                provider: Asn(7),
            },
        );
        assert!(!is_valley_free(&AsPath::from_u32s(&[7, 2, 1]), &r));
    }

    #[test]
    fn valley_free_matrix() {
        use NeighborKind::*;
        // Customer routes go everywhere.
        assert!(may_export(Customer, Customer));
        assert!(may_export(Customer, Peer));
        assert!(may_export(Customer, Provider));
        // Peer/provider routes only to customers.
        assert!(may_export(Peer, Customer));
        assert!(!may_export(Peer, Peer));
        assert!(!may_export(Peer, Provider));
        assert!(may_export(Provider, Customer));
        assert!(!may_export(Provider, Peer));
        assert!(!may_export(Provider, Provider));
    }
}
