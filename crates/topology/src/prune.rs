//! Dataset pruning (paper §3.1).
//!
//! "Single-homed ASes that do not provide transit only add limited
//! information about the AS-topology as long as any path information
//! gathered from prefixes originated at such stub-ASes is transferred to a
//! prefix originated at its AS neighbor. Removing single-homed stub-ASes
//! and AS-paths with loops from the AS-topology results in a graph with
//! 14,563 nodes and 52,288 edges."

use crate::classify::Classification;
use crate::graph::AsGraph;
use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::types::Asn;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Result of pruning single-homed stubs from a graph + path set.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PruneResult {
    /// The pruned AS graph.
    pub graph: AsGraph,
    /// Removed single-homed stub ASes.
    pub removed: BTreeSet<Asn>,
    /// For each removed stub, the neighbor its path information is
    /// transferred to.
    pub transferred_to: BTreeMap<Asn, Asn>,
    /// Number of input paths dropped because they contained a loop.
    pub looped_paths_dropped: usize,
}

/// Removes single-homed stub ASes from `graph`, recording where their path
/// information transfers (their unique provider).
pub fn prune_single_homed_stubs(graph: &AsGraph, class: &Classification) -> PruneResult {
    let mut out = PruneResult {
        graph: graph.clone(),
        ..Default::default()
    };
    for &stub in &class.single_homed_stubs {
        if let Some(provider) = graph.neighbors(stub).next() {
            out.transferred_to.insert(stub, provider);
        }
        out.graph.remove_node(stub);
        out.removed.insert(stub);
    }
    out
}

impl PruneResult {
    /// Rewrites an observed path for the pruned topology:
    /// * paths with loops are dropped (`None`);
    /// * a path originated at a removed stub is shortened by one hop — its
    ///   information now belongs to the stub's provider's prefix (§3.1);
    /// * paths traversing a removed AS anywhere else are dropped (cannot
    ///   happen for true single-homed stubs, which never transit, but
    ///   guards against inconsistent inputs);
    /// * a path that becomes empty (it was the stub announcing itself)
    ///   is dropped.
    pub fn rewrite_path(&self, path: &AsPath) -> Option<AsPath> {
        if path.has_loop() {
            return None;
        }
        let s = path.as_slice();
        let cut = match s.last() {
            Some(origin) if self.removed.contains(origin) => s.len() - 1,
            _ => s.len(),
        };
        let kept = &s[..cut];
        if kept.is_empty() || kept.iter().any(|a| self.removed.contains(a)) {
            return None;
        }
        Some(AsPath::new(kept.to_vec()))
    }

    /// Applies [`Self::rewrite_path`] to a whole set, also counting loop
    /// drops.
    pub fn rewrite_paths<'a>(
        &mut self,
        paths: impl IntoIterator<Item = &'a AsPath>,
    ) -> Vec<AsPath> {
        let mut out = Vec::new();
        for p in paths {
            if p.has_loop() {
                self.looped_paths_dropped += 1;
                continue;
            }
            if let Some(q) = self.rewrite_path(p) {
                out.push(q);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;

    fn path(v: &[u32]) -> AsPath {
        AsPath::from_u32s(v)
    }

    fn setup() -> (AsGraph, Vec<AsPath>, Classification) {
        // 4 is a single-homed stub of 3; 5 multi-homed.
        let paths = vec![
            path(&[1, 2]),
            path(&[2, 1]),
            path(&[2, 1, 3, 4]),
            path(&[1, 3, 4]),
            path(&[1, 5]),
            path(&[2, 5]),
        ];
        let g = AsGraph::from_paths(&paths);
        let c = classify(&g, &paths, &[Asn(1), Asn(2)]);
        (g, paths, c)
    }

    #[test]
    fn stub_removed_and_transfer_recorded() {
        let (g, _p, c) = setup();
        let pr = prune_single_homed_stubs(&g, &c);
        assert!(pr.removed.contains(&Asn(4)));
        assert_eq!(pr.transferred_to.get(&Asn(4)), Some(&Asn(3)));
        assert!(!pr.graph.contains(Asn(4)));
        assert!(pr.graph.contains(Asn(5)));
    }

    #[test]
    fn paths_rewritten_to_provider() {
        let (g, _p, c) = setup();
        let pr = prune_single_homed_stubs(&g, &c);
        assert_eq!(
            pr.rewrite_path(&path(&[2, 1, 3, 4])),
            Some(path(&[2, 1, 3]))
        );
        assert_eq!(pr.rewrite_path(&path(&[1, 5])), Some(path(&[1, 5])));
    }

    #[test]
    fn looped_paths_dropped() {
        let (g, _p, c) = setup();
        let mut pr = prune_single_homed_stubs(&g, &c);
        assert_eq!(pr.rewrite_path(&path(&[1, 2, 1])), None);
        let kept = pr.rewrite_paths(&[path(&[1, 2, 1]), path(&[1, 2])]);
        assert_eq!(kept.len(), 1);
        assert_eq!(pr.looped_paths_dropped, 1);
    }

    #[test]
    fn stub_self_announcement_dropped() {
        let (g, _p, c) = setup();
        let pr = prune_single_homed_stubs(&g, &c);
        assert_eq!(pr.rewrite_path(&path(&[4])), None);
    }

    #[test]
    fn pruned_counts_match_paper_shape() {
        let (g, _p, c) = setup();
        let pr = prune_single_homed_stubs(&g, &c);
        assert_eq!(pr.graph.num_nodes(), g.num_nodes() - 1);
        // 4's single edge is gone.
        assert_eq!(pr.graph.num_edges(), g.num_edges() - 1);
    }
}
