//! # quasar-lint — a static analyzer for trained AS-routing models
//!
//! The refinement heuristic of *"Building an AS-topology model that
//! captures route diversity"* (SIGCOMM 2006) mutates a model thousands of
//! times: per-prefix MED rankings, shorter-path egress filters,
//! quasi-router duplication. Any bug in that pipeline — or any corruption
//! of a persisted artifact — produces a model that is *structurally*
//! wrong long before a simulation reveals it behaviorally. This crate
//! audits an [`AsRoutingModel`] **without running the simulator**: every
//! rule is a pure walk over routers, sessions, and policy chains.
//!
//! ## Rule catalogue
//!
//! | id     | name                 | severity | what it catches |
//! |--------|----------------------|----------|-----------------|
//! | QL0001 | dangling-prefix      | Error    | a filter or MED ranking names a prefix the model does not route |
//! | QL0002 | dangling-as          | Error    | a matcher names an AS with no quasi-router |
//! | QL0003 | unreachable-router   | Warn     | a quasi-router with no sessions that originates nothing |
//! | QL0004 | dead-filter          | Warn     | a rule that can never match any route on its chain |
//! | QL0005 | shadowed-rule        | Warn     | a rule fully subsumed by an earlier terminal rule |
//! | QL0006 | med-contradiction    | Error/Warn | duplicated (Error), non-total or preferring-nothing (Warn) per-prefix MED rankings |
//! | QL0007 | dispute-cycle        | Warn     | a cycle in the per-prefix local-pref dispute digraph |
//! | QL0008 | reflector-cycle      | Error    | a cycle in the route-reflection client digraph (CLUSTER_LIST is not modeled) |
//! | QL0009 | coverage-gap         | Info     | a prefix that cannot leave its origin AS through any permitted egress |
//!
//! Severity semantics: **Error** findings make the model unsound — the
//! serve `reload` path vetoes an epoch swap on them; **Warn** findings are
//! suspicious but a converged model can legitimately carry them; **Info**
//! findings are advisory (the model is relationship-agnostic, so a
//! coverage gap may be intentional).
//!
//! A freshly refined, converged model is clean at `Error` severity by
//! construction: refinement installs exactly one `SetMed` per
//! (session, prefix), references only prefixes it routes, never touches
//! `from_asn`/`origin_asn`/local-pref matchers, and builds no iBGP
//! sessions at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors (or `expect` with an
// invariant message, annotated at the use site); unit tests are exempt.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use quasar_core::audit::AuditSummary;
use quasar_core::model::AsRoutingModel;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

mod rules;

/// How bad a finding is. Ordered: `Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; expected on some legitimate models.
    Info,
    /// Suspicious; worth a look but not disqualifying.
    Warn,
    /// The model is unsound; serving or shipping it is a bug.
    Error,
}

impl Severity {
    /// Lowercase name as used by `--deny` and the JSON renderer.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses `info`/`warn`/`error` (as accepted by `--deny`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable identifiers of the audit rules. Codes are append-only: a rule
/// may be retired but its code is never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// QL0001: a matcher or ranking names a prefix the model doesn't route.
    DanglingPrefix,
    /// QL0002: a matcher names an AS with no quasi-router.
    DanglingAs,
    /// QL0003: a session-less quasi-router that originates nothing.
    UnreachableRouter,
    /// QL0004: a rule that can never match a route on its chain.
    DeadFilter,
    /// QL0005: a rule fully subsumed by an earlier terminal rule.
    ShadowedRule,
    /// QL0006: duplicated / non-total / preferring-nothing MED rankings.
    MedContradiction,
    /// QL0007: a cycle in the per-prefix local-pref dispute digraph.
    DisputeCycle,
    /// QL0008: a cycle in the route-reflection client digraph.
    ReflectorCycle,
    /// QL0009: a prefix with no permitted egress out of its origin AS.
    CoverageGap,
}

impl RuleId {
    /// Every rule, in code order.
    pub const ALL: [RuleId; 9] = [
        RuleId::DanglingPrefix,
        RuleId::DanglingAs,
        RuleId::UnreachableRouter,
        RuleId::DeadFilter,
        RuleId::ShadowedRule,
        RuleId::MedContradiction,
        RuleId::DisputeCycle,
        RuleId::ReflectorCycle,
        RuleId::CoverageGap,
    ];

    /// The stable code, e.g. `QL0004`.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::DanglingPrefix => "QL0001",
            RuleId::DanglingAs => "QL0002",
            RuleId::UnreachableRouter => "QL0003",
            RuleId::DeadFilter => "QL0004",
            RuleId::ShadowedRule => "QL0005",
            RuleId::MedContradiction => "QL0006",
            RuleId::DisputeCycle => "QL0007",
            RuleId::ReflectorCycle => "QL0008",
            RuleId::CoverageGap => "QL0009",
        }
    }

    /// Short kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::DanglingPrefix => "dangling-prefix",
            RuleId::DanglingAs => "dangling-as",
            RuleId::UnreachableRouter => "unreachable-router",
            RuleId::DeadFilter => "dead-filter",
            RuleId::ShadowedRule => "shadowed-rule",
            RuleId::MedContradiction => "med-contradiction",
            RuleId::DisputeCycle => "dispute-cycle",
            RuleId::ReflectorCycle => "reflector-cycle",
            RuleId::CoverageGap => "coverage-gap",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code(), self.name())
    }
}

/// Where in the model a finding points. All fields optional; rendered as
/// a compact `r1.0 -> r2.0 export[3] prefix 10.9.0.0/16` suffix.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct Location {
    /// The quasi-router the finding is about (e.g. `r7018.0`).
    pub router: Option<String>,
    /// The session direction, announcing router first (`r1.0 -> r2.0`).
    pub session: Option<String>,
    /// Which chain of the direction: `export` or `import`.
    pub chain: Option<String>,
    /// Zero-based rule index within the chain.
    pub rule_index: Option<usize>,
    /// The prefix the finding is scoped to.
    pub prefix: Option<String>,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(r) = &self.router {
            parts.push(r.clone());
        }
        if let Some(s) = &self.session {
            parts.push(s.clone());
        }
        match (&self.chain, self.rule_index) {
            (Some(c), Some(i)) => parts.push(format!("{c}[{i}]")),
            (Some(c), None) => parts.push(c.clone()),
            (None, Some(i)) => parts.push(format!("rule[{i}]")),
            (None, None) => {}
        }
        if let Some(p) = &self.prefix {
            parts.push(format!("prefix {p}"));
        }
        f.write_str(&parts.join(" "))
    }
}

/// One finding: a rule, its severity, a message, and a model location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable description of the defect.
    pub message: String,
    /// Where in the model it sits.
    pub location: Location,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let loc = self.location.to_string();
        if loc.is_empty() {
            write!(
                f,
                "{}[{}]: {}",
                self.severity,
                self.rule.code(),
                self.message
            )
        } else {
            write!(
                f,
                "{}[{}]: {} ({loc})",
                self.severity,
                self.rule.code(),
                self.message
            )
        }
    }
}

/// The result of one audit pass: every finding plus model-size context.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, in rule-code order.
    pub diagnostics: Vec<Diagnostic>,
    /// Quasi-routers in the audited model.
    pub quasi_routers: usize,
    /// Sessions in the audited model.
    pub sessions: usize,
    /// Prefixes the model routes.
    pub prefixes: usize,
    /// Policy rules examined across every chain.
    pub rules_scanned: usize,
    /// Wall time of the pass, microseconds.
    pub elapsed_micros: u64,
}

impl LintReport {
    /// Findings at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// Error-level findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Warn-level findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Info-level findings.
    pub fn infos(&self) -> usize {
        self.count(Severity::Info)
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The most severe finding, or `None` when clean.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// True when any finding is at or above `threshold` (the `--deny`
    /// semantics).
    pub fn denies(&self, threshold: Severity) -> bool {
        self.worst().is_some_and(|w| w >= threshold)
    }

    /// Per-rule counts: code → (rule, worst severity, findings).
    pub fn per_rule(&self) -> BTreeMap<&'static str, (RuleId, Severity, usize)> {
        let mut out: BTreeMap<&'static str, (RuleId, Severity, usize)> = BTreeMap::new();
        for d in &self.diagnostics {
            let entry = out.entry(d.rule.code()).or_insert((d.rule, d.severity, 0));
            entry.1 = entry.1.max(d.severity);
            entry.2 += 1;
        }
        out
    }

    /// The set of rule codes that fired (for tests and terse summaries).
    pub fn fired_codes(&self) -> Vec<&'static str> {
        self.per_rule().keys().copied().collect()
    }

    /// One line summarizing Error-level findings — the serve `reload`
    /// veto message. Empty string when there are none.
    pub fn error_summary(&self) -> String {
        let errors: Vec<&Diagnostic> = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        if errors.is_empty() {
            return String::new();
        }
        let codes: Vec<&'static str> = {
            let mut seen = Vec::new();
            for d in &errors {
                if !seen.contains(&d.rule.code()) {
                    seen.push(d.rule.code());
                }
            }
            seen
        };
        format!(
            "{} error-level audit finding(s) [{}]; first: {}",
            errors.len(),
            codes.join(", "),
            errors[0]
        )
    }

    /// Human-readable rendering: a header, per-rule counts, then every
    /// finding.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "audit: {} finding(s) ({} error, {} warn, {} info) — {} quasi-routers, \
             {} sessions, {} prefixes, {} policy rules scanned in {}us\n",
            self.diagnostics.len(),
            self.errors(),
            self.warnings(),
            self.infos(),
            self.quasi_routers,
            self.sessions,
            self.prefixes,
            self.rules_scanned,
            self.elapsed_micros,
        ));
        if self.is_clean() {
            out.push_str("clean: no findings\n");
            return out;
        }
        for (code, (rule, worst, count)) in self.per_rule() {
            out.push_str(&format!(
                "  {code} {:<20} {count} finding(s), worst {worst}\n",
                rule.name()
            ));
        }
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n"));
        }
        out
    }

    /// Machine-readable JSON rendering.
    pub fn to_json(&self) -> serde_json::Result<String> {
        #[derive(Serialize)]
        struct RuleCount {
            rule: &'static str,
            name: &'static str,
            worst: &'static str,
            count: usize,
        }
        // The vendored serde derive does not support generic (including
        // lifetime-parameterized) types, so the mirror structs are owned.
        #[derive(Serialize)]
        struct JsonDiagnostic {
            rule: &'static str,
            name: &'static str,
            severity: &'static str,
            message: String,
            location: Location,
        }
        #[derive(Serialize)]
        struct JsonReport {
            errors: usize,
            warnings: usize,
            infos: usize,
            quasi_routers: usize,
            sessions: usize,
            prefixes: usize,
            rules_scanned: usize,
            elapsed_micros: u64,
            rules: Vec<RuleCount>,
            diagnostics: Vec<JsonDiagnostic>,
        }
        let report = JsonReport {
            errors: self.errors(),
            warnings: self.warnings(),
            infos: self.infos(),
            quasi_routers: self.quasi_routers,
            sessions: self.sessions,
            prefixes: self.prefixes,
            rules_scanned: self.rules_scanned,
            elapsed_micros: self.elapsed_micros,
            rules: self
                .per_rule()
                .into_iter()
                .map(|(code, (rule, worst, count))| RuleCount {
                    rule: code,
                    name: rule.name(),
                    worst: worst.as_str(),
                    count,
                })
                .collect(),
            diagnostics: self
                .diagnostics
                .iter()
                .map(|d| JsonDiagnostic {
                    rule: d.rule.code(),
                    name: d.rule.name(),
                    severity: d.severity.as_str(),
                    message: d.message.clone(),
                    location: d.location.clone(),
                })
                .collect(),
        };
        serde_json::to_string(&report)
    }
}

/// Runs every audit rule over `model` and returns the full report.
/// Purely static: no simulation is invoked, so runtime is linear-ish in
/// routers + sessions + policy rules (+ a BFS per deny-affected prefix).
pub fn audit(model: &AsRoutingModel) -> LintReport {
    let started = std::time::Instant::now();
    let mut report = rules::run_all(model);
    report.diagnostics.sort_by_key(|d| (d.rule, d.severity));
    report.elapsed_micros = started.elapsed().as_micros() as u64;
    report
}

/// Adapter with the [`quasar_core::audit::Auditor`] signature, so the
/// binary can register the analyzer as the post-train / post-resume hook.
pub fn core_auditor(model: &AsRoutingModel) -> AuditSummary {
    let report = audit(model);
    AuditSummary {
        errors: report.errors(),
        warnings: report.warnings(),
        infos: report.infos(),
        rendered: report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n"),
    }
}

/// Installs [`core_auditor`] as the process-wide model auditor (first
/// installation wins; safe to call repeatedly).
pub fn install() {
    quasar_core::audit::install_auditor(core_auditor);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_ordered_and_parses() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::parse("warn"), Some(Severity::Warn));
        assert_eq!(Severity::parse("ERROR"), None);
        assert_eq!(Severity::Error.as_str(), "error");
    }

    #[test]
    fn rule_codes_are_stable_and_unique() {
        let codes: Vec<&str> = RuleId::ALL.iter().map(|r| r.code()).collect();
        assert_eq!(codes.len(), 9);
        let mut dedup = codes.clone();
        dedup.dedup();
        assert_eq!(codes, dedup);
        assert_eq!(RuleId::DanglingPrefix.code(), "QL0001");
        assert_eq!(RuleId::CoverageGap.code(), "QL0009");
    }

    #[test]
    fn report_counts_and_deny_threshold() {
        let mut report = LintReport::default();
        assert!(report.is_clean());
        assert!(!report.denies(Severity::Info));
        report.diagnostics.push(Diagnostic {
            rule: RuleId::DeadFilter,
            severity: Severity::Warn,
            message: "x".into(),
            location: Location::default(),
        });
        assert!(report.denies(Severity::Warn));
        assert!(!report.denies(Severity::Error));
        assert_eq!(report.warnings(), 1);
        assert_eq!(report.fired_codes(), vec!["QL0004"]);
    }

    #[test]
    fn renderers_include_codes_and_locations() {
        let mut report = LintReport::default();
        report.diagnostics.push(Diagnostic {
            rule: RuleId::DanglingPrefix,
            severity: Severity::Error,
            message: "ranking names unrouted prefix".into(),
            location: Location {
                session: Some("r1.0 -> r2.0".into()),
                chain: Some("import".into()),
                rule_index: Some(3),
                prefix: Some("10.9.0.0/16".into()),
                ..Location::default()
            },
        });
        let text = report.render_text();
        assert!(text.contains("QL0001"), "text: {text}");
        assert!(text.contains("import[3]"), "text: {text}");
        let json = report.to_json().expect("report serializes");
        assert!(json.contains("\"rule\":\"QL0001\""), "json: {json}");
        assert!(json.contains("\"severity\":\"error\""), "json: {json}");
        assert!(json.contains("\"errors\":1"), "json: {json}");
    }

    #[test]
    fn error_summary_names_codes() {
        let mut report = LintReport::default();
        assert_eq!(report.error_summary(), "");
        report.diagnostics.push(Diagnostic {
            rule: RuleId::MedContradiction,
            severity: Severity::Error,
            message: "duplicate ranking".into(),
            location: Location::default(),
        });
        let s = report.error_summary();
        assert!(s.contains("QL0006"), "summary: {s}");
        assert!(s.contains("1 error-level"), "summary: {s}");
    }
}
