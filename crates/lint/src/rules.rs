//! The audit rules. Every pass walks routers, sessions, and policy
//! chains — never the simulator.

use crate::{Diagnostic, LintReport, Location, RuleId, Severity};
use quasar_bgpsim::network::{Network, SessionDirectionView, SessionKind};
use quasar_bgpsim::policy::{Action, Policy, PolicyRule, RouteMatch};
use quasar_bgpsim::route::DEFAULT_LOCAL_PREF;
use quasar_bgpsim::types::{Asn, Prefix, RouterId};
use quasar_core::model::AsRoutingModel;
use std::collections::{BTreeMap, BTreeSet};

struct Ctx<'a> {
    model: &'a AsRoutingModel,
    net: &'a Network,
    /// ASes that have at least one quasi-router.
    known_ases: BTreeSet<Asn>,
    /// ASes that originate at least one prefix.
    origin_ases: BTreeSet<Asn>,
}

pub(crate) fn run_all(model: &AsRoutingModel) -> LintReport {
    let net = model.network();
    let ctx = Ctx {
        model,
        net,
        known_ases: net.routers().iter().map(|r| r.asn()).collect(),
        origin_ases: model.prefixes().values().copied().collect(),
    };
    let mut out = Vec::new();
    let rules_scanned = chain_rules(&ctx, &mut out);
    unreachable_routers(&ctx, &mut out);
    med_contradictions(&ctx, &mut out);
    dispute_cycles(&ctx, &mut out);
    reflector_cycles(&ctx, &mut out);
    coverage_gaps(&ctx, &mut out);
    LintReport {
        diagnostics: out,
        quasi_routers: net.num_routers(),
        sessions: net.num_sessions(),
        prefixes: model.prefixes().len(),
        rules_scanned,
        elapsed_micros: 0,
    }
}

fn session_label(d: &SessionDirectionView<'_>) -> String {
    format!("{} -> {}", d.from, d.to)
}

fn loc_rule(d: &SessionDirectionView<'_>, chain: &str, index: usize) -> Location {
    Location {
        session: Some(session_label(d)),
        chain: Some(chain.to_string()),
        rule_index: Some(index),
        ..Location::default()
    }
}

/// QL0001 / QL0002 / QL0004 / QL0005 — one walk per policy chain.
///
/// Cascade suppression keeps each defect on exactly one rule id:
/// * a dangling reference (QL0001/QL0002) suppresses the dead-filter and
///   shadow checks on the same policy rule;
/// * a dead rule (QL0004) is skipped both as a shadow victim and as a
///   shadower — a rule that never matches can neither be masked in a
///   meaningful way nor mask anything.
///
/// Returns the number of policy rules scanned.
fn chain_rules(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) -> usize {
    let mut scanned = 0;
    for d in ctx.net.session_directions() {
        for (chain_name, policy, is_import) in [
            ("export", &d.policies.export, false),
            ("import", &d.policies.import, true),
        ] {
            let rules = policy.rules();
            scanned += rules.len();
            let mut inert = vec![false; rules.len()]; // dangling or dead
            for (i, rule) in rules.iter().enumerate() {
                let m = &rule.matcher;
                if let Some(p) = m.prefix {
                    if !ctx.model.prefixes().contains_key(&p) {
                        inert[i] = true;
                        out.push(Diagnostic {
                            rule: RuleId::DanglingPrefix,
                            severity: Severity::Error,
                            message: format!(
                                "rule matches prefix {p}, which the model does not route"
                            ),
                            location: Location {
                                prefix: Some(p.to_string()),
                                ..loc_rule(&d, chain_name, i)
                            },
                        });
                    }
                }
                for (field, asn) in [("from_asn", m.from_asn), ("origin_asn", m.origin_asn)] {
                    if let Some(a) = asn {
                        if !ctx.known_ases.contains(&a) {
                            inert[i] = true;
                            out.push(Diagnostic {
                                rule: RuleId::DanglingAs,
                                severity: Severity::Error,
                                message: format!(
                                    "rule matches {field} {a}, which has no quasi-router"
                                ),
                                location: loc_rule(&d, chain_name, i),
                            });
                        }
                    }
                }
                if inert[i] {
                    continue; // dangling: don't also call it dead/shadowed
                }
                if let Some(reason) = dead_reason(ctx, &d, is_import, m) {
                    inert[i] = true;
                    out.push(Diagnostic {
                        rule: RuleId::DeadFilter,
                        severity: Severity::Warn,
                        message: reason,
                        location: Location {
                            prefix: m.prefix.map(|p| p.to_string()),
                            ..loc_rule(&d, chain_name, i)
                        },
                    });
                }
            }
            for j in 1..rules.len() {
                if inert[j] {
                    continue;
                }
                let shadower = (0..j).find(|&i| {
                    !inert[i] && is_terminal(&rules[i].action) && subsumes(&rules[i], &rules[j])
                });
                if let Some(i) = shadower {
                    out.push(Diagnostic {
                        rule: RuleId::ShadowedRule,
                        severity: Severity::Warn,
                        message: format!(
                            "rule is unreachable: every route it matches is already \
                             terminated by rule {i} ({:?})",
                            rules[i].action
                        ),
                        location: loc_rule(&d, chain_name, j),
                    });
                }
            }
        }
    }
    scanned
}

/// Why a rule can never match any route on its chain, if so.
fn dead_reason(
    ctx: &Ctx<'_>,
    d: &SessionDirectionView<'_>,
    is_import: bool,
    m: &RouteMatch,
) -> Option<String> {
    if m.path_shorter_than == Some(0) {
        return Some("path_shorter_than 0 matches no route (no path has negative length)".into());
    }
    if is_import {
        if let Some(a) = m.from_asn {
            // On an import chain the only announcer is the session peer.
            if d.kind == SessionKind::Ebgp && a != d.from.asn() {
                return Some(format!(
                    "import chain from {} can only carry routes announced by {}, \
                     but the rule requires from_asn {a}",
                    d.from,
                    d.from.asn(),
                ));
            }
        }
    }
    if let (Some(p), Some(o)) = (m.prefix, m.origin_asn) {
        if let Some(&actual) = ctx.model.prefixes().get(&p) {
            if actual != o {
                return Some(format!(
                    "prefix {p} is originated by {actual}, so requiring origin_asn {o} \
                     matches nothing"
                ));
            }
        }
    }
    None
}

fn is_terminal(a: &Action) -> bool {
    matches!(a, Action::Deny | Action::Accept)
}

/// True when every route matched by `later` is also matched by
/// `earlier` — i.e. `earlier` subsumes `later`. Conservative: pattern
/// matchers are compared syntactically.
fn subsumes(earlier: &PolicyRule, later: &PolicyRule) -> bool {
    let e = &earlier.matcher;
    let l = &later.matcher;
    let opt_eq = |a: &Option<Asn>, b: &Option<Asn>| a.is_none() || a == b;
    if !(e.prefix.is_none() || e.prefix == l.prefix) {
        return false;
    }
    if !opt_eq(&e.from_asn, &l.from_asn) || !opt_eq(&e.origin_asn, &l.origin_asn) {
        return false;
    }
    if let Some(en) = e.path_shorter_than {
        match l.path_shorter_than {
            Some(ln) if ln <= en => {}
            _ => return false,
        }
    }
    if let Some(ev) = e.local_pref_below {
        match l.local_pref_below {
            Some(lv) if lv <= ev => {}
            _ => return false,
        }
    }
    if !(e.has_community.is_none() || e.has_community == l.has_community) {
        return false;
    }
    if !(e.path_pattern.is_none() || e.path_pattern == l.path_pattern) {
        return false;
    }
    true
}

/// QL0003 — a quasi-router with no sessions can never select or forward
/// a route; unless its AS originates a prefix (origin routers announce
/// even in isolation), it is dead weight that refinement should not have
/// produced.
fn unreachable_routers(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    for &r in ctx.net.routers() {
        if ctx.net.peers_of(r).is_empty() && !ctx.origin_ases.contains(&r.asn()) {
            out.push(Diagnostic {
                rule: RuleId::UnreachableRouter,
                severity: Severity::Warn,
                message: format!(
                    "quasi-router {r} has no sessions and {} originates no prefix — \
                     no route can ever reach it",
                    r.asn()
                ),
                location: Location {
                    router: Some(r.to_string()),
                    ..Location::default()
                },
            });
        }
    }
}

/// QL0006 — per-prefix MED rankings (§4.6 installs exactly one `SetMed`
/// per (session, prefix), value 0 for the preferred announcer). Checks,
/// per receiving quasi-router and prefix:
/// * duplicated `SetMed` rules for one announcer (**Error** — the later
///   rule silently overrides the earlier, so one of them is a stale
///   leftover);
/// * a ranking that covers some but not all eBGP peers (**Warn** —
///   unranked peers default to "no MED", which the always-compare
///   decision treats as most preferred, inverting the ranking);
/// * a ranking in which no announcer gets the preferred value 0 (**Warn**).
///
/// Catch-all rules (`prefix: None`, e.g. §4.7 generalized defaults) are
/// exempt. Cross-quasi-router consistency inside one AS is deliberately
/// *not* checked: divergent per-router rankings are the paper's route
/// diversity mechanism, not a defect.
fn med_contradictions(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    // (receiver, prefix, announcer) -> (rule count, effective MED).
    let mut rank: BTreeMap<(RouterId, Prefix), BTreeMap<RouterId, (usize, u32)>> = BTreeMap::new();
    let mut ebgp_peers: BTreeMap<RouterId, BTreeSet<RouterId>> = BTreeMap::new();
    for d in ctx.net.session_directions() {
        if d.kind != SessionKind::Ebgp {
            continue;
        }
        ebgp_peers.entry(d.to).or_default().insert(d.from);
        for rule in d.policies.import.rules() {
            let Action::SetMed(v) = rule.action else {
                continue;
            };
            let Some(p) = rule.matcher.prefix else {
                continue; // generalized default, exempt
            };
            if !ctx.model.prefixes().contains_key(&p) {
                continue; // already QL0001
            }
            let entry = rank
                .entry((d.to, p))
                .or_default()
                .entry(d.from)
                .or_insert((0, 0));
            entry.0 += 1;
            entry.1 = v; // chain semantics: the last matching SetMed wins
        }
    }
    for ((to, p), by_peer) in &rank {
        for (from, (count, _)) in by_peer {
            if *count >= 2 {
                out.push(Diagnostic {
                    rule: RuleId::MedContradiction,
                    severity: Severity::Error,
                    message: format!(
                        "{count} SetMed rules rank prefix {p} on the import chain from \
                         {from} — duplicated ranking, the later rule silently overrides"
                    ),
                    location: Location {
                        router: Some(to.to_string()),
                        session: Some(format!("{from} -> {to}")),
                        chain: Some("import".into()),
                        prefix: Some(p.to_string()),
                        ..Location::default()
                    },
                });
            }
        }
        let total = ebgp_peers.get(to).map_or(0, |s| s.len());
        if by_peer.len() < total {
            out.push(Diagnostic {
                rule: RuleId::MedContradiction,
                severity: Severity::Warn,
                message: format!(
                    "MED ranking for prefix {p} at {to} covers {} of {total} eBGP peers; \
                     unranked peers announce without MED and win always-compare",
                    by_peer.len()
                ),
                location: Location {
                    router: Some(to.to_string()),
                    prefix: Some(p.to_string()),
                    ..Location::default()
                },
            });
        } else if by_peer.values().all(|&(_, med)| med > 0) {
            out.push(Diagnostic {
                rule: RuleId::MedContradiction,
                severity: Severity::Warn,
                message: format!(
                    "MED ranking for prefix {p} at {to} prefers no announcer \
                     (no session gets MED 0)"
                ),
                location: Location {
                    router: Some(to.to_string()),
                    prefix: Some(p.to_string()),
                    ..Location::default()
                },
            });
        }
    }
}

/// The effective local-pref `at` assigns to routes for `p` announced by
/// one peer: the last unconditional `SetLocalPref` whose prefix scope
/// covers `p`. Conditional rules (any other matcher field set) are
/// skipped — statically we cannot prove they apply.
fn effective_local_pref(import: &Policy, p: Prefix) -> u32 {
    let mut lp = DEFAULT_LOCAL_PREF;
    for rule in import.rules() {
        let m = &rule.matcher;
        let scoped = m.prefix.is_none() || m.prefix == Some(p);
        let unconditional = m.from_asn.is_none()
            && m.origin_asn.is_none()
            && m.path_shorter_than.is_none()
            && m.local_pref_below.is_none()
            && m.has_community.is_none()
            && m.path_pattern.is_none();
        if let Action::SetLocalPref(v) = rule.action {
            if scoped && unconditional {
                lp = v;
            }
        }
    }
    lp
}

/// QL0007 — the per-prefix dispute digraph: an edge `q -> peer` means
/// "q strictly prefers routes for `p` announced by `peer`" (local-pref
/// above every alternative; local-pref dominates the decision process).
/// A cycle is the structural signature of a dispute wheel (BAD GADGET):
/// every router on it prefers the route through the next one, so the
/// simulation may not converge. Warn, not Error: the cycle is necessary
/// but not sufficient for divergence.
fn dispute_cycles(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    // Prefixes that appear in any SetLocalPref rule — the only ones whose
    // dispute digraph can differ from the trivial (edgeless) default.
    let mut lp_prefixes: BTreeSet<Prefix> = BTreeSet::new();
    for d in ctx.net.session_directions() {
        for rule in d.policies.import.rules() {
            if matches!(rule.action, Action::SetLocalPref(_)) {
                if let Some(p) = rule.matcher.prefix {
                    if ctx.model.prefixes().contains_key(&p) {
                        lp_prefixes.insert(p);
                    }
                }
            }
        }
    }
    for &p in &lp_prefixes {
        // effective LP per (receiver, announcer) over eBGP sessions.
        let mut prefs: BTreeMap<RouterId, Vec<(RouterId, u32)>> = BTreeMap::new();
        for d in ctx.net.session_directions() {
            if d.kind != SessionKind::Ebgp {
                continue;
            }
            let lp = effective_local_pref(&d.policies.import, p);
            prefs.entry(d.to).or_default().push((d.from, lp));
        }
        let mut edges: BTreeMap<RouterId, Vec<RouterId>> = BTreeMap::new();
        for (q, peers) in &prefs {
            let Some(&max) = peers.iter().map(|(_, lp)| lp).max() else {
                continue;
            };
            let Some(&min) = peers.iter().map(|(_, lp)| lp).min() else {
                continue;
            };
            if max == min {
                continue; // no strict preference, no dispute edge
            }
            edges.insert(
                *q,
                peers
                    .iter()
                    .filter(|&&(_, lp)| lp == max)
                    .map(|&(peer, _)| peer)
                    .collect(),
            );
        }
        if let Some(cycle) = find_cycle(&edges) {
            let path: Vec<String> = cycle.iter().map(|r| r.to_string()).collect();
            out.push(Diagnostic {
                rule: RuleId::DisputeCycle,
                severity: Severity::Warn,
                message: format!(
                    "local-pref dispute cycle for prefix {p}: {} — each router prefers \
                     the route announced by the next; convergence is not guaranteed",
                    path.join(" -> ")
                ),
                location: Location {
                    prefix: Some(p.to_string()),
                    ..Location::default()
                },
            });
        }
    }
}

/// QL0008 — route reflection: the engine enforces ORIGINATOR_ID but not
/// CLUSTER_LIST (documented model gap), so a cycle in the reflector ->
/// client digraph can loop announcements between reflectors forever.
/// Error: such a topology must never be served.
fn reflector_cycles(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    let mut edges: BTreeMap<RouterId, Vec<RouterId>> = BTreeMap::new();
    for d in ctx.net.session_directions() {
        if d.kind == SessionKind::Ibgp && d.from_has_client_to {
            edges.entry(d.from).or_default().push(d.to);
        }
    }
    if let Some(cycle) = find_cycle(&edges) {
        let path: Vec<String> = cycle.iter().map(|r| r.to_string()).collect();
        out.push(Diagnostic {
            rule: RuleId::ReflectorCycle,
            severity: Severity::Error,
            message: format!(
                "route-reflection client cycle: {} — CLUSTER_LIST is not modeled, \
                 so reflected announcements can loop",
                path.join(" -> ")
            ),
            location: Location::default(),
        });
    }
}

/// First cycle found in a digraph via iterative DFS coloring, as the
/// node sequence around the cycle (first node repeated at the end).
fn find_cycle(edges: &BTreeMap<RouterId, Vec<RouterId>>) -> Option<Vec<RouterId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: BTreeMap<RouterId, Color> = BTreeMap::new();
    for (&node, targets) in edges {
        color.entry(node).or_insert(Color::White);
        for &t in targets {
            color.entry(t).or_insert(Color::White);
        }
    }
    let nodes: Vec<RouterId> = color.keys().copied().collect();
    for &start in &nodes {
        if color[&start] != Color::White {
            continue;
        }
        // Stack of (node, next-edge-index); `path` mirrors the gray chain.
        let mut stack: Vec<(RouterId, usize)> = vec![(start, 0)];
        let mut path: Vec<RouterId> = vec![start];
        color.insert(start, Color::Gray);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let targets = edges.get(&node).map(Vec::as_slice).unwrap_or(&[]);
            if *next < targets.len() {
                let t = targets[*next];
                *next += 1;
                match color.get(&t).copied().unwrap_or(Color::White) {
                    Color::Gray => {
                        let Some(pos) = path.iter().position(|&n| n == t) else {
                            continue; // unreachable: gray nodes are on the path
                        };
                        let mut cycle: Vec<RouterId> = path[pos..].to_vec();
                        cycle.push(t);
                        return Some(cycle);
                    }
                    Color::White => {
                        color.insert(t, Color::Gray);
                        stack.push((t, 0));
                        path.push(t);
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(node, Color::Black);
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

/// True when every route for `p` is guaranteed to be dropped by this
/// chain: the first rule whose matcher provably covers all routes of `p`
/// is a `Deny`. A conditional `Accept` that *might* match keeps the
/// chain open (we only close an edge when certain).
fn unconditionally_denies(policy: &Policy, p: Prefix) -> bool {
    for rule in policy.rules() {
        let m = &rule.matcher;
        let scoped = m.prefix.is_none() || m.prefix == Some(p);
        if !scoped {
            continue;
        }
        let unconditional = m.from_asn.is_none()
            && m.origin_asn.is_none()
            && m.path_shorter_than.is_none()
            && m.local_pref_below.is_none()
            && m.has_community.is_none()
            && m.path_pattern.is_none();
        match rule.action {
            Action::Deny if unconditional => return true,
            Action::Accept => return false, // might (or must) accept
            _ => {}
        }
    }
    false
}

/// QL0009 — a prefix whose origin AS cannot export it anywhere: every
/// egress is unconditionally denied (or the origin has no sessions at
/// all). Advisory (**Info**): the model is relationship-agnostic, so a
/// deliberate blackhole (e.g. a depeered stub) looks identical.
fn coverage_gaps(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.known_ases.len() < 2 {
        return; // a single-AS model has no egress to audit
    }
    // Fast path: per direction, which prefixes are unconditionally denied
    // (or all of them). Prefixes untouched by any deny are covered iff
    // the origin has any eBGP session.
    struct Dir {
        from: RouterId,
        to: RouterId,
        denies_all: bool,
        denied: BTreeSet<Prefix>,
    }
    let mut dirs: Vec<Dir> = Vec::new();
    let mut affected: BTreeSet<Prefix> = BTreeSet::new();
    let mut any_deny_all = false;
    for d in ctx.net.session_directions() {
        let mut candidates: BTreeSet<Prefix> = BTreeSet::new();
        let mut saw_any_deny = false;
        for chain in [&d.policies.export, &d.policies.import] {
            for rule in chain.rules() {
                if rule.action == Action::Deny {
                    match rule.matcher.prefix {
                        Some(p) => {
                            if ctx.model.prefixes().contains_key(&p) {
                                candidates.insert(p);
                            }
                        }
                        None => saw_any_deny = true,
                    }
                }
            }
        }
        if saw_any_deny {
            // A prefix-less deny can close this edge for every prefix.
            let denies_all = unconditionally_denies_any(&d.policies.export)
                || unconditionally_denies_any(&d.policies.import);
            if denies_all {
                any_deny_all = true;
                dirs.push(Dir {
                    from: d.from,
                    to: d.to,
                    denies_all: true,
                    denied: BTreeSet::new(),
                });
                continue;
            }
        }
        let denied: BTreeSet<Prefix> = candidates
            .into_iter()
            .filter(|&p| {
                unconditionally_denies(&d.policies.export, p)
                    || unconditionally_denies(&d.policies.import, p)
            })
            .collect();
        if !denied.is_empty() {
            affected.extend(denied.iter().copied());
            dirs.push(Dir {
                from: d.from,
                to: d.to,
                denies_all: false,
                denied,
            });
        }
    }
    for (&p, &origin) in ctx.model.prefixes() {
        let origin_routers = ctx.net.routers_of(origin);
        let needs_bfs = any_deny_all || affected.contains(&p);
        if !needs_bfs {
            // No deny anywhere touches p: covered iff some origin router
            // has a session leaving the AS.
            let has_egress = origin_routers
                .iter()
                .any(|&r| ctx.net.peers_of(r).iter().any(|peer| peer.asn() != origin));
            if !has_egress {
                out.push(gap(p, origin));
            }
            continue;
        }
        // BFS over open edges from every origin router.
        let closed: BTreeSet<(RouterId, RouterId)> = dirs
            .iter()
            .filter(|dir| dir.denies_all || dir.denied.contains(&p))
            .map(|dir| (dir.from, dir.to))
            .collect();
        let mut seen: BTreeSet<RouterId> = origin_routers.iter().copied().collect();
        let mut queue: Vec<RouterId> = origin_routers.clone();
        let mut escaped = false;
        'bfs: while let Some(r) = queue.pop() {
            for peer in ctx.net.peers_of(r) {
                if closed.contains(&(r, peer)) || seen.contains(&peer) {
                    continue;
                }
                if peer.asn() != origin {
                    escaped = true;
                    break 'bfs;
                }
                seen.insert(peer);
                queue.push(peer);
            }
        }
        if !escaped {
            out.push(gap(p, origin));
        }
    }
}

fn unconditionally_denies_any(policy: &Policy) -> bool {
    for rule in policy.rules() {
        let m = &rule.matcher;
        let unconditional = m.prefix.is_none()
            && m.from_asn.is_none()
            && m.origin_asn.is_none()
            && m.path_shorter_than.is_none()
            && m.local_pref_below.is_none()
            && m.has_community.is_none()
            && m.path_pattern.is_none();
        match rule.action {
            Action::Deny if unconditional => return true,
            Action::Accept => return false,
            _ => {}
        }
    }
    false
}

fn gap(p: Prefix, origin: Asn) -> Diagnostic {
    Diagnostic {
        rule: RuleId::CoverageGap,
        severity: Severity::Info,
        message: format!(
            "prefix {p} cannot leave its origin {origin}: every egress is denied or absent"
        ),
        location: Location {
            prefix: Some(p.to_string()),
            ..Location::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(m: RouteMatch, a: Action) -> PolicyRule {
        PolicyRule::new(m, a)
    }

    #[test]
    fn subsumption_is_field_wise() {
        let deny_p = rule(RouteMatch::prefix(Prefix::for_origin(Asn(9))), Action::Deny);
        let deny_p_short = rule(
            RouteMatch {
                path_shorter_than: Some(3),
                ..RouteMatch::prefix(Prefix::for_origin(Asn(9)))
            },
            Action::Deny,
        );
        // The broad rule subsumes the narrow one, not vice versa.
        assert!(subsumes(&deny_p, &deny_p_short));
        assert!(!subsumes(&deny_p_short, &deny_p));
        // Identical matchers subsume each other.
        assert!(subsumes(&deny_p, &deny_p.clone()));
        // Different prefixes never subsume.
        let deny_q = rule(RouteMatch::prefix(Prefix::for_origin(Asn(8))), Action::Deny);
        assert!(!subsumes(&deny_p, &deny_q));
        // path_shorter_than: larger bound subsumes smaller.
        let short2 = rule(
            RouteMatch {
                path_shorter_than: Some(2),
                ..RouteMatch::any()
            },
            Action::Deny,
        );
        let short5 = rule(
            RouteMatch {
                path_shorter_than: Some(5),
                ..RouteMatch::any()
            },
            Action::Deny,
        );
        assert!(subsumes(&short5, &short2));
        assert!(!subsumes(&short2, &short5));
    }

    #[test]
    fn cycle_detection_finds_two_cycle_and_ignores_dags() {
        let r = |n: u32| RouterId::new(Asn(n), 0);
        let mut dag: BTreeMap<RouterId, Vec<RouterId>> = BTreeMap::new();
        dag.insert(r(1), vec![r(2), r(3)]);
        dag.insert(r(2), vec![r(3)]);
        assert!(find_cycle(&dag).is_none());
        let mut cyc = dag.clone();
        cyc.insert(r(3), vec![r(1)]);
        let cycle = find_cycle(&cyc).expect("cycle exists");
        assert!(cycle.len() >= 3);
        assert_eq!(cycle.first(), cycle.last());
    }

    #[test]
    fn unconditional_deny_respects_accept_before() {
        let p = Prefix::for_origin(Asn(9));
        let mut policy = Policy::permit_all();
        policy.push(rule(RouteMatch::prefix(p), Action::Deny));
        assert!(unconditionally_denies(&policy, p));
        assert!(!unconditionally_denies(&policy, Prefix::for_origin(Asn(8))));
        // An Accept that might match first keeps the chain open.
        let mut open = Policy::permit_all();
        open.push(rule(RouteMatch::any(), Action::Accept));
        open.push(rule(RouteMatch::prefix(p), Action::Deny));
        assert!(!unconditionally_denies(&open, p));
        // A conditional deny is not a guarantee.
        let mut cond = Policy::permit_all();
        cond.push(rule(
            RouteMatch {
                path_shorter_than: Some(4),
                ..RouteMatch::prefix(p)
            },
            Action::Deny,
        ));
        assert!(!unconditionally_denies(&cond, p));
    }

    #[test]
    fn effective_local_pref_takes_last_unconditional_match() {
        let p = Prefix::for_origin(Asn(9));
        let mut policy = Policy::permit_all();
        assert_eq!(effective_local_pref(&policy, p), DEFAULT_LOCAL_PREF);
        policy.push(rule(RouteMatch::any(), Action::SetLocalPref(80)));
        policy.push(rule(RouteMatch::prefix(p), Action::SetLocalPref(200)));
        assert_eq!(effective_local_pref(&policy, p), 200);
        assert_eq!(
            effective_local_pref(&policy, Prefix::for_origin(Asn(8))),
            80
        );
    }
}
