//! The acceptance suite of the analyzer:
//!
//! * a freshly trained, converged netgen model is audit-clean at
//!   `Error` severity (property-tested across training seeds);
//! * every seeded defect class from the testkit injectors is caught by
//!   exactly its rule id — no cross-rule false positives;
//! * the audit is static: it finishes in well under a second on models
//!   whose simulation takes orders of magnitude longer;
//! * a byte-corrupted persisted model fails loading with a typed
//!   diagnostic instead of reaching the analyzer at all.

use proptest::prelude::*;
use quasar_core::persist::{load_model, save_model};
use quasar_lint::{audit, Severity};
use quasar_testkit::defects::{flip_byte, DefectClass};
use quasar_testkit::workload::tiny_trained;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("quasar-lint-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn trained_model_is_error_clean_and_audit_is_fast() {
    let model = tiny_trained(5).model;
    let report = audit(&model);
    assert_eq!(
        report.errors(),
        0,
        "trained model must be Error-clean:\n{}",
        report.render_text()
    );
    assert!(!report.denies(Severity::Error));
    assert!(
        report.elapsed_micros < 1_000_000,
        "static audit took {}us — is something simulating?",
        report.elapsed_micros
    );
    assert!(
        report.rules_scanned > 0,
        "the trained model has policy rules"
    );
}

#[test]
fn each_defect_class_is_caught_by_exactly_its_rule() {
    let fixture = tiny_trained(9);
    let baseline: BTreeSet<&'static str> =
        audit(&fixture.model).fired_codes().into_iter().collect();
    for class in DefectClass::ALL {
        let mut broken = fixture.model.clone();
        let what = class
            .inject(&mut broken, 1234)
            .unwrap_or_else(|e| panic!("{class:?} failed to inject: {e}"));
        let report = audit(&broken);
        let fired: BTreeSet<&'static str> = report.fired_codes().into_iter().collect();
        let new: BTreeSet<&'static str> = fired.difference(&baseline).copied().collect();
        assert_eq!(
            new,
            BTreeSet::from([class.expected_rule()]),
            "{class:?} ({what}) must fire exactly {} — got new codes {new:?}\n{}",
            class.expected_rule(),
            report.render_text()
        );
    }
}

#[test]
fn defect_detection_is_seed_stable() {
    let fixture = tiny_trained(11);
    for seed in [1u64, 77, 4096] {
        for class in DefectClass::ALL {
            let mut broken = fixture.model.clone();
            class
                .inject(&mut broken, seed)
                .unwrap_or_else(|e| panic!("{class:?}/{seed} failed to inject: {e}"));
            let report = audit(&broken);
            assert!(
                report.fired_codes().contains(&class.expected_rule()),
                "{class:?} with seed {seed} missed {}:\n{}",
                class.expected_rule(),
                report.render_text()
            );
        }
    }
}

#[test]
fn error_level_defects_deny_and_render_everywhere() {
    let fixture = tiny_trained(13);
    let mut broken = fixture.model.clone();
    DefectClass::DuplicateMedRanking
        .inject(&mut broken, 5)
        .expect("inject duplicate ranking");
    let report = audit(&broken);
    assert!(report.denies(Severity::Error));
    let summary = report.error_summary();
    assert!(summary.contains("QL0006"), "summary: {summary}");
    let text = report.render_text();
    assert!(text.contains("QL0006"), "text: {text}");
    let json = report.to_json().expect("report serializes");
    assert!(json.contains("\"rule\":\"QL0006\""), "json: {json}");
    // The adapter the refine/resume hooks see agrees with the report.
    let hook = quasar_lint::core_auditor(&broken);
    assert_eq!(hook.errors, report.errors());
    assert!(hook.rendered.contains("QL0006"));
}

#[test]
fn corrupt_artifact_fails_with_typed_diagnostic_before_audit() {
    let dir = scratch("corrupt");
    let model = tiny_trained(17).model;
    let path = dir.join("model.bin");
    save_model(&path, &model).expect("save model");
    flip_byte(&path, 99).expect("corrupt model file");
    let err = load_model(&path).expect_err("corrupted artifact must not load");
    assert!(
        err.is_corruption(),
        "want a corruption-class error, got: {err}"
    );
    assert!(err.hint().is_some(), "corruption errors carry a hint");
}

#[test]
fn structurally_damaged_json_is_rejected_by_validation() {
    // A checksum-valid frame whose *payload* contains an out-of-bounds
    // session index: caught by validate_structure inside from_json, not
    // by a panic in rebuild_indices.
    let model = tiny_trained(19).model;
    let json = model.to_json().expect("model serializes");
    let sessions = model.network().num_sessions();
    assert!(sessions > 0);
    // Session endpoints serialize as `"a":<idx>` — point one out of range.
    let damaged = json.replacen("\"a\":0", "\"a\":65535", 1);
    assert_ne!(damaged, json, "fixture must contain a session endpoint");
    let err = quasar_core::model::AsRoutingModel::from_json(&damaged)
        .expect_err("out-of-bounds session index must be rejected");
    let msg = err.to_string();
    assert!(
        msg.contains("model structure invalid"),
        "want a structural diagnostic, got: {msg}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// §4.6 refinement, whatever the seed, never produces an
    /// Error-level finding: one SetMed per (session, prefix), only
    /// routed prefixes referenced, no iBGP, no reflector marks.
    #[test]
    fn any_trained_netgen_model_is_error_clean(seed in 0u64..64) {
        let model = tiny_trained(seed).model;
        let report = audit(&model);
        prop_assert!(
            !report.denies(Severity::Error),
            "seed {} produced errors:\n{}",
            seed,
            report.render_text()
        );
    }
}
