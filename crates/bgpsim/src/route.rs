//! BGP routes and their attributes.
//!
//! A [`Route`] bundles the destination prefix with the attribute set the BGP
//! decision process examines (§2 of the paper, Figure 1): local-preference,
//! AS-path, origin, MED, the peer the route was learned from, and the
//! intra-domain (IGP) cost to the exit point used for hot-potato comparison.

use crate::aspath::AsPath;
use crate::types::{Asn, Prefix, RouterId};
use serde::{Deserialize, Serialize};

/// Default local-preference assigned when no policy overrides it.
pub const DEFAULT_LOCAL_PREF: u32 = 100;

/// RFC 1997 well-known community NO_EXPORT: a route carrying it is used
/// locally but never advertised over eBGP. Honored by the engine itself.
pub const NO_EXPORT: u32 = 0xFFFF_FF01;

/// RFC 1997 well-known community NO_ADVERTISE: a route carrying it is not
/// advertised to any peer at all (iBGP included).
pub const NO_ADVERTISE: u32 = 0xFFFF_FF02;

/// BGP `ORIGIN` attribute. Ranked IGP < EGP < Incomplete by the decision
/// process (lower wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Origin {
    /// Route originated via an IGP (value 0).
    Igp,
    /// Route originated via EGP (value 1).
    Egp,
    /// Origin unknown (value 2).
    Incomplete,
}

impl Origin {
    /// Wire value per RFC 4271.
    pub fn wire(self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    /// Parses the wire value; anything above 2 is treated as Incomplete,
    /// matching common router behaviour for malformed origins.
    pub fn from_wire(v: u8) -> Self {
        match v {
            0 => Origin::Igp,
            1 => Origin::Egp,
            _ => Origin::Incomplete,
        }
    }
}

/// How a route entered the local RIB — over eBGP, over iBGP, or originated
/// locally. The decision process prefers eBGP over iBGP (step 6) and locally
/// originated routes over everything learned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LearnedVia {
    /// Injected at this router (it originates the prefix).
    Local,
    /// Learned over an external session from another AS.
    Ebgp,
    /// Learned over an internal session from a router in the same AS.
    Ibgp,
}

/// A fully attributed BGP route as stored in an Adj-RIB-In.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Route {
    /// Destination this route reaches.
    pub prefix: Prefix,
    /// AS-level path, observer-first; empty for locally originated routes.
    pub as_path: AsPath,
    /// Local preference. Non-transitive; set by import policy.
    pub local_pref: u32,
    /// Multi-exit discriminator; `None` means "missing MED", which compares
    /// as the best possible value 0 per the paper's simulator (C-BGP treats
    /// missing MED as 0).
    pub med: Option<u32>,
    /// ORIGIN attribute.
    pub origin: Origin,
    /// The quasi-router this route was learned from (`None` for local).
    pub from_router: Option<RouterId>,
    /// The neighbor AS this route was learned from (`None` for local).
    pub from_asn: Option<Asn>,
    /// How the route entered this router.
    pub learned: LearnedVia,
    /// IGP cost from this router to the route's exit point; 0 for eBGP
    /// and locally originated routes. Used by the hot-potato step.
    pub igp_cost: u32,
    /// RFC 1997 communities, kept sorted and deduplicated. Transitive:
    /// they survive eBGP export (unlike MED).
    pub communities: Vec<u32>,
    /// RFC 4456 ORIGINATOR_ID: the router that injected the route into
    /// this AS, stamped by a route reflector on first reflection. A router
    /// rejects reflected routes carrying its own id.
    pub originator: Option<RouterId>,
}

impl Route {
    /// A locally originated route for `prefix`.
    pub fn originate(prefix: Prefix) -> Self {
        Route {
            prefix,
            as_path: AsPath::empty(),
            local_pref: DEFAULT_LOCAL_PREF,
            med: None,
            origin: Origin::Igp,
            from_router: None,
            from_asn: None,
            learned: LearnedVia::Local,
            igp_cost: 0,
            communities: Vec::new(),
            originator: None,
        }
    }

    /// True if the route carries `community`.
    pub fn has_community(&self, community: u32) -> bool {
        self.communities.binary_search(&community).is_ok()
    }

    /// Adds `community`, keeping the list sorted and deduplicated.
    pub fn add_community(&mut self, community: u32) {
        if let Err(pos) = self.communities.binary_search(&community) {
            self.communities.insert(pos, community);
        }
    }

    /// Removes `community` if present.
    pub fn remove_community(&mut self, community: u32) {
        if let Ok(pos) = self.communities.binary_search(&community) {
            self.communities.remove(pos);
        }
    }

    /// Effective MED for comparison: missing MED ranks best (0).
    pub fn med_value(&self) -> u32 {
        self.med.unwrap_or(0)
    }

    /// The neighbor AS to attribute for MED grouping; locally originated
    /// routes group under the reserved ASN.
    pub fn neighbor_for_med(&self) -> Asn {
        self.from_asn.unwrap_or(Asn::RESERVED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_wire_roundtrip() {
        for o in [Origin::Igp, Origin::Egp, Origin::Incomplete] {
            assert_eq!(Origin::from_wire(o.wire()), o);
        }
        assert_eq!(Origin::from_wire(7), Origin::Incomplete);
    }

    #[test]
    fn origin_ranking_prefers_igp() {
        assert!(Origin::Igp < Origin::Egp);
        assert!(Origin::Egp < Origin::Incomplete);
    }

    #[test]
    fn originated_route_has_empty_path_and_default_pref() {
        let r = Route::originate(Prefix::new(0x0A000000, 8));
        assert!(r.as_path.is_empty());
        assert_eq!(r.local_pref, DEFAULT_LOCAL_PREF);
        assert_eq!(r.learned, LearnedVia::Local);
        assert_eq!(r.med_value(), 0);
    }

    #[test]
    fn communities_sorted_and_deduped() {
        let mut r = Route::originate(Prefix::new(0, 8));
        r.add_community(30);
        r.add_community(10);
        r.add_community(30);
        assert_eq!(r.communities, vec![10, 30]);
        assert!(r.has_community(10));
        assert!(!r.has_community(99));
        r.remove_community(10);
        assert_eq!(r.communities, vec![30]);
        r.remove_community(999); // no-op
    }

    #[test]
    fn missing_med_compares_as_zero() {
        let mut r = Route::originate(Prefix::new(0, 8));
        assert_eq!(r.med_value(), 0);
        r.med = Some(5);
        assert_eq!(r.med_value(), 5);
    }
}
