//! # quasar-bgpsim — a per-prefix steady-state BGP simulator
//!
//! A from-scratch reimplementation of the simulation substrate the paper
//! *"Building an AS-topology model that captures route diversity"*
//! (Mühlbauer et al., SIGCOMM 2006) obtains from C-BGP: given a topology of
//! (quasi-)routers connected by eBGP/iBGP sessions with per-session
//! import/export policies, compute the steady-state BGP routing for one
//! prefix at a time.
//!
//! The crate is deliberately synchronous and allocation-light: simulating a
//! prefix over tens of thousands of routers is a CPU-bound graph
//! computation, so the engine is a deterministic sweep loop rather than an
//! async system.
//!
//! ## Feature inventory
//!
//! Implemented:
//! * full BGP decision process (local-origination, local-pref, AS-path
//!   length, origin, MED in always-compare and per-neighbor modes,
//!   eBGP>iBGP, IGP cost / hot-potato, lowest-router-id tie-break) with
//!   per-candidate elimination-step tracking;
//! * eBGP with loop detection, attribute scrubbing, split horizon;
//! * iBGP full mesh and RFC 4456 route reflection (client marking,
//!   ORIGINATOR_ID loop prevention);
//! * RFC 1997 communities, transitive, with engine-honored NO_EXPORT and
//!   NO_ADVERTISE;
//! * ordered import/export policy chains (prefix / neighbor / origin /
//!   path-length / local-pref / community matchers; deny, accept,
//!   set-local-pref, set-MED, add/remove-community actions);
//! * per-AS IGP (Dijkstra) for hot-potato costing;
//! * deterministic Gauss-Seidel propagation with divergence detection
//!   (BAD GADGET is caught; DISAGREE converges);
//! * serde persistence of networks and policies.
//!
//! Deliberately **not** modeled (out of the paper's scope):
//! * timers, MRAI, route flap damping, graceful restart — the engine
//!   computes the converged steady state only (§1: "we model the
//!   equilibrium behavior of this system");
//! * CLUSTER_LIST (avoid reflector cycles; ORIGINATOR_ID is enforced);
//! * multipath/add-path, confederations, prefix aggregation;
//! * TCP/session liveness — sessions are always up.
//!
//! ## Layers
//! * [`types`] — [`types::Asn`], [`types::RouterId`] (the paper's
//!   `ASN << 16 | index` encoding), [`types::Prefix`].
//! * [`aspath`] — AS-path manipulation: prepending, loops, suffix walks.
//! * [`route`] — attributed routes (local-pref, MED, origin, IGP cost).
//! * [`policy`] — ordered match/action rule chains for import/export.
//! * [`decision`] — the full BGP decision process with per-candidate
//!   elimination-step tracking (needed for the paper's "potential RIB-Out
//!   match" metric).
//! * [`igp`] — Dijkstra shortest paths for hot-potato costing.
//! * [`network`] — routers + sessions + policies.
//! * [`engine`] — the per-prefix propagation loop and converged
//!   [`engine::SimulationResult`].
//!
//! ## Example
//! ```
//! use quasar_bgpsim::prelude::*;
//!
//! // AS1 --- AS2 --- AS3 (origin)
//! let mut net = Network::new(DecisionConfig::default());
//! let (r1, r2, r3) = (
//!     net.add_router(RouterId::new(Asn(1), 0)),
//!     net.add_router(RouterId::new(Asn(2), 0)),
//!     net.add_router(RouterId::new(Asn(3), 0)),
//! );
//! net.add_session(r1, r2, SessionKind::Ebgp).unwrap();
//! net.add_session(r2, r3, SessionKind::Ebgp).unwrap();
//!
//! let prefix = Prefix::for_origin(Asn(3));
//! let result = net.simulate(prefix, &[r3]).unwrap();
//! assert_eq!(result.best_route(r1).unwrap().as_path.to_string(), "2 3");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors (or `expect` with an
// invariant message, annotated at the use site); unit tests are exempt.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod aspath;
pub mod decision;
pub mod engine;
pub mod error;
#[cfg(feature = "testkit")]
pub mod fail;
pub mod igp;
pub mod network;
pub mod policy;
pub mod route;
pub mod types;

/// Convenient glob-import of the commonly used names.
pub mod prelude {
    pub use crate::aspath::{AsPath, AsPathPattern};
    pub use crate::decision::{decide, DecisionConfig, DecisionOutcome, MedMode, Step};
    pub use crate::engine::{RouterRib, SimStats, SimulationResult, TraceEvent};
    pub use crate::error::SimError;
    pub use crate::igp::{IgpCosts, IgpTopology};
    pub use crate::network::{
        DirectionPolicies, Network, Session, SessionDirectionView, SessionKind,
    };
    pub use crate::policy::{Action, Policy, PolicyRule, RouteMatch};
    pub use crate::route::{
        LearnedVia, Origin, Route, DEFAULT_LOCAL_PREF, NO_ADVERTISE, NO_EXPORT,
    };
    pub use crate::types::{Asn, Prefix, RouterId};
}
