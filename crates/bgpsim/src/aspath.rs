//! AS-path representation and manipulation.
//!
//! The paper's refinement heuristic works almost entirely on AS-paths: it
//! compares observed paths against simulated ones suffix-by-suffix (from the
//! origin towards the observation point), strips prepending ("We removed
//! AS-path prepending to prevent distraction from the task of route
//! propagation", §3.1 fn. 1), and rejects paths with loops.

use crate::types::Asn;
use serde::{Content, Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A sequence of ASes a route traversed, ordered from the AS *closest to the
/// observer* down to the *origin* AS (standard BGP wire order: the origin is
/// the last element).
///
/// The hop sequence is interned behind an `Arc`: cloning a path (which the
/// simulation engine does for every exported update and every RIB entry) is
/// a reference-count bump, not a heap copy. Paths are immutable; operations
/// that change the sequence ([`AsPath::prepend`], [`AsPath::strip_prepending`],
/// [`AsPath::suffix`]) build a new path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AsPath(Arc<[Asn]>);

/// All empty paths share one allocation (`Route::originate` makes one per
/// simulated origin).
fn empty_path() -> Arc<[Asn]> {
    static EMPTY: OnceLock<Arc<[Asn]>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from(Vec::new())).clone()
}

impl Default for AsPath {
    fn default() -> Self {
        AsPath(empty_path())
    }
}

impl Serialize for AsPath {
    fn to_content(&self) -> Content {
        Content::Seq(self.0.iter().map(|a| a.to_content()).collect())
    }
}

impl<'de> Deserialize<'de> for AsPath {
    fn from_content(content: &Content) -> Result<Self, serde::content::ContentError> {
        let items = match content {
            Content::Seq(items) => items,
            other => {
                return Err(serde::content::ContentError(format!(
                    "expected sequence for AsPath, got {other:?}"
                )))
            }
        };
        let asns: Result<Vec<Asn>, _> = items.iter().map(Asn::from_content).collect();
        Ok(AsPath::new(asns?))
    }
}

impl AsPath {
    /// Empty path (a route as seen inside its origin AS).
    pub fn empty() -> Self {
        AsPath::default()
    }

    /// Builds a path from observer-first order.
    pub fn new(asns: Vec<Asn>) -> Self {
        if asns.is_empty() {
            return AsPath::default();
        }
        AsPath(asns.into())
    }

    /// Builds a path from a list of raw u32 ASNs (observer-first).
    pub fn from_u32s(asns: &[u32]) -> Self {
        AsPath::new(asns.iter().map(|&a| Asn(a)).collect())
    }

    /// Number of AS hops. Prepending removed, so this equals the number of
    /// distinct consecutive ASes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty (origin-local) path.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The origin AS (last element), if any.
    pub fn origin(&self) -> Option<Asn> {
        self.0.last().copied()
    }

    /// The AS nearest the observer (first element), if any.
    pub fn head(&self) -> Option<Asn> {
        self.0.first().copied()
    }

    /// Iterates from observer towards origin.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = Asn> + '_ {
        self.0.iter().copied()
    }

    /// The underlying slice, observer-first.
    pub fn as_slice(&self) -> &[Asn] {
        &self.0
    }

    /// Returns a new path with `asn` prepended (as done when a route is
    /// exported over an eBGP session).
    #[must_use]
    pub fn prepend(&self, asn: Asn) -> Self {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.push(asn);
        v.extend_from_slice(&self.0);
        AsPath::new(v)
    }

    /// True if the path already contains `asn` (BGP loop detection: such an
    /// announcement must be discarded on import).
    pub fn contains(&self, asn: Asn) -> bool {
        self.0.contains(&asn)
    }

    /// True if any AS appears more than once. Paths with loops are removed
    /// from the dataset (§3.1).
    pub fn has_loop(&self) -> bool {
        for (i, a) in self.0.iter().enumerate() {
            if self.0[i + 1..].contains(a) {
                return true;
            }
        }
        false
    }

    /// Collapses consecutive duplicates, i.e. removes AS-path prepending.
    /// `1 1 2 3 3 3` becomes `1 2 3`.
    #[must_use]
    pub fn strip_prepending(&self) -> Self {
        let mut v: Vec<Asn> = Vec::with_capacity(self.0.len());
        for &a in self.0.iter() {
            if v.last() != Some(&a) {
                v.push(a);
            }
        }
        AsPath::new(v)
    }

    /// The suffix of length `n` ending at the origin. The refinement
    /// heuristic walks observed paths origin-first, asking at each AS `a`
    /// whether the *suffix up to `a`* is present in some quasi-router's RIB
    /// (§4.6). `suffix(1)` is `[origin]`, `suffix(len())` is the whole path.
    ///
    /// # Panics
    /// Panics if `n > len()`.
    pub fn suffix(&self, n: usize) -> AsPath {
        assert!(n <= self.0.len(), "suffix length {n} exceeds path length");
        AsPath::new(self.0[self.0.len() - n..].to_vec())
    }

    /// True if `self` is a suffix of `other` (towards the origin).
    pub fn is_suffix_of(&self, other: &AsPath) -> bool {
        other.0.ends_with(&self.0)
    }

    /// All ordered adjacent pairs `(nearer, farther)` — the AS-level edges
    /// this path witnesses, used to build the AS graph (§3.1).
    pub fn edges(&self) -> impl Iterator<Item = (Asn, Asn)> + '_ {
        self.0.windows(2).map(|w| (w[0], w[1]))
    }
}

/// A minimal AS-path pattern language, modeled on router as-path
/// access-lists:
///
/// * `_701_`  — path contains AS 701 anywhere;
/// * `^701`   — path begins (observer side) with AS 701;
/// * `701$`   — path originates at AS 701;
/// * `^701$`  — the path is exactly `[701]`;
/// * `701 702`— AS 702 immediately follows AS 701 (towards the origin).
///
/// Sequences combine with anchors: `^1 2$` matches exactly `[1, 2]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsPathPattern {
    anchored_head: bool,
    anchored_tail: bool,
    sequence: Vec<Asn>,
}

impl AsPathPattern {
    /// Parses the pattern. Returns `None` for malformed input (empty
    /// sequence, non-numeric tokens).
    pub fn parse(pattern: &str) -> Option<Self> {
        let mut p = pattern.trim();
        let mut anchored_head = false;
        let mut anchored_tail = false;
        if let Some(rest) = p.strip_prefix('^') {
            anchored_head = true;
            p = rest;
        }
        if let Some(rest) = p.strip_suffix('$') {
            anchored_tail = true;
            p = rest;
        }
        // `_N_` is the "contains" form: equivalent to unanchored [N].
        let p = p.trim_matches('_');
        let sequence: Option<Vec<Asn>> = p
            .split_whitespace()
            .map(|tok| tok.parse::<u32>().ok().map(Asn))
            .collect();
        let sequence = sequence?;
        if sequence.is_empty() {
            return None;
        }
        Some(AsPathPattern {
            anchored_head,
            anchored_tail,
            sequence,
        })
    }

    /// True if the path matches the pattern.
    pub fn matches(&self, path: &AsPath) -> bool {
        let s = path.as_slice();
        let n = self.sequence.len();
        if n > s.len() {
            return false;
        }
        match (self.anchored_head, self.anchored_tail) {
            (true, true) => s == self.sequence,
            (true, false) => s.starts_with(&self.sequence),
            (false, true) => s.ends_with(&self.sequence),
            (false, false) => s.windows(n).any(|w| w == self.sequence),
        }
    }
}

impl fmt::Display for AsPathPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.anchored_head {
            write!(f, "^")?;
        }
        let mut first = true;
        for a in &self.sequence {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}", a.0)?;
            first = false;
        }
        if self.anchored_tail {
            write!(f, "$")?;
        }
        Ok(())
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for a in self.0.iter() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}", a.0)?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<Asn> for AsPath {
    fn from_iter<T: IntoIterator<Item = Asn>>(iter: T) -> Self {
        AsPath::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: &[u32]) -> AsPath {
        AsPath::from_u32s(v)
    }

    #[test]
    fn prepend_puts_asn_at_head() {
        let path = p(&[2, 3]).prepend(Asn(1));
        assert_eq!(path, p(&[1, 2, 3]));
        assert_eq!(path.head(), Some(Asn(1)));
        assert_eq!(path.origin(), Some(Asn(3)));
    }

    #[test]
    fn loop_detection() {
        assert!(p(&[1, 2, 1]).has_loop());
        assert!(!p(&[1, 2, 3]).has_loop());
        assert!(!AsPath::empty().has_loop());
    }

    #[test]
    fn strip_prepending_collapses_runs() {
        assert_eq!(p(&[1, 1, 2, 3, 3, 3]).strip_prepending(), p(&[1, 2, 3]));
        assert_eq!(p(&[5]).strip_prepending(), p(&[5]));
        assert_eq!(AsPath::empty().strip_prepending(), AsPath::empty());
    }

    #[test]
    fn suffix_walks_from_origin() {
        let path = p(&[1, 2, 3, 4]);
        assert_eq!(path.suffix(1), p(&[4]));
        assert_eq!(path.suffix(3), p(&[2, 3, 4]));
        assert_eq!(path.suffix(4), path);
        assert!(path.suffix(2).is_suffix_of(&path));
        assert!(!p(&[1, 2]).is_suffix_of(&path));
    }

    #[test]
    #[should_panic(expected = "suffix length")]
    fn suffix_too_long_panics() {
        p(&[1, 2]).suffix(3);
    }

    #[test]
    fn edges_enumerates_adjacent_pairs() {
        let e: Vec<_> = p(&[1, 2, 3]).edges().collect();
        assert_eq!(e, vec![(Asn(1), Asn(2)), (Asn(2), Asn(3))]);
        assert!(p(&[9]).edges().next().is_none());
    }

    #[test]
    fn pattern_contains() {
        let pat = AsPathPattern::parse("_701_").unwrap();
        assert!(pat.matches(&p(&[1, 701, 2])));
        assert!(pat.matches(&p(&[701])));
        assert!(!pat.matches(&p(&[1, 7011, 2])));
    }

    #[test]
    fn pattern_anchors() {
        assert!(AsPathPattern::parse("^701").unwrap().matches(&p(&[701, 2])));
        assert!(!AsPathPattern::parse("^701").unwrap().matches(&p(&[2, 701])));
        assert!(AsPathPattern::parse("701$").unwrap().matches(&p(&[2, 701])));
        assert!(!AsPathPattern::parse("701$").unwrap().matches(&p(&[701, 2])));
        assert!(AsPathPattern::parse("^701$").unwrap().matches(&p(&[701])));
        assert!(!AsPathPattern::parse("^701$")
            .unwrap()
            .matches(&p(&[701, 2])));
    }

    #[test]
    fn pattern_sequences() {
        let pat = AsPathPattern::parse("1 2").unwrap();
        assert!(pat.matches(&p(&[9, 1, 2, 9])));
        assert!(!pat.matches(&p(&[1, 9, 2])));
        let exact = AsPathPattern::parse("^1 2$").unwrap();
        assert!(exact.matches(&p(&[1, 2])));
        assert!(!exact.matches(&p(&[1, 2, 3])));
    }

    #[test]
    fn pattern_rejects_garbage() {
        assert!(AsPathPattern::parse("").is_none());
        assert!(AsPathPattern::parse("abc").is_none());
        assert!(AsPathPattern::parse("1 x 2").is_none());
        assert!(AsPathPattern::parse("^$").is_none());
    }

    #[test]
    fn pattern_display_roundtrip() {
        for s in ["^701", "701$", "^1 2$", "701"] {
            let pat = AsPathPattern::parse(s).unwrap();
            assert_eq!(AsPathPattern::parse(&pat.to_string()), Some(pat));
        }
    }

    #[test]
    fn display_is_space_separated() {
        assert_eq!(p(&[701, 7018, 174]).to_string(), "701 7018 174");
    }
}
