//! Error types for the simulator.

use crate::types::{Prefix, RouterId};
use std::fmt;

/// Errors produced while building a [`crate::network::Network`] or running
/// a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A referenced router was never added to the network.
    UnknownRouter(RouterId),
    /// A session between the two routers was requested twice.
    DuplicateSession(RouterId, RouterId),
    /// A session endpoint pair has no session.
    NoSession(RouterId, RouterId),
    /// A session between two routers of the same AS was declared eBGP, or
    /// between different ASes was declared iBGP.
    SessionKindMismatch(RouterId, RouterId),
    /// The propagation did not reach a steady state within the message
    /// budget — the installed policies diverge (cf. the paper's §4.6
    /// discussion of local-pref-induced divergence).
    Divergence {
        /// The prefix whose simulation diverged.
        prefix: Prefix,
        /// Messages processed before giving up.
        processed: u64,
    },
    /// A fault injected by an armed failpoint (`testkit` feature only —
    /// the variant always exists so error handling is identical in both
    /// builds, but nothing constructs it without the feature).
    Injected {
        /// The failpoint that fired.
        point: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownRouter(r) => write!(f, "unknown router {r}"),
            SimError::DuplicateSession(a, b) => {
                write!(f, "duplicate session between {a} and {b}")
            }
            SimError::NoSession(a, b) => write!(f, "no session between {a} and {b}"),
            SimError::SessionKindMismatch(a, b) => write!(
                f,
                "session kind inconsistent with AS membership of {a} and {b}"
            ),
            SimError::Divergence { prefix, processed } => write!(
                f,
                "BGP propagation for {prefix} diverged after {processed} messages"
            ),
            SimError::Injected { point } => {
                write!(f, "fault injected by failpoint `{point}`")
            }
        }
    }
}

impl std::error::Error for SimError {}
