//! Per-prefix steady-state route propagation.
//!
//! This is the C-BGP-equivalent core (§2, §4.1 of the paper): it "models
//! the propagation of BGP messages and reproduces the selection performed
//! by each router", computing "the steady-state choice of the BGP routers
//! after the exchange of the BGP messages has converged". There is no
//! timer/MRAI machinery — routers are activated sequentially in a fixed
//! (Gauss-Seidel) order, each draining a latest-update-wins inbox, so a
//! given (network, prefix, origins) triple always converges to the same
//! RIBs, and instances with several stable solutions (DISAGREE) settle
//! deterministically instead of oscillating.
//!
//! Semantics implemented:
//! * **Announce/implicit-withdraw per session**: a session carries at most
//!   one current route per direction; a new announcement replaces it, a
//!   withdraw removes it.
//! * **Import**: eBGP loop detection (own ASN in path), then the import
//!   policy chain; denied or looped updates clear the session's RIB-In
//!   entry.
//! * **Export**: sender-side split horizon (never echo the best route back
//!   over the session it was learned from), iBGP full-mesh rule (never
//!   re-advertise an iBGP-learned route over iBGP), then the export policy
//!   chain applied to the Loc-RIB form of the route (i.e. *before* the
//!   sender's ASN is prepended), then eBGP attribute scrubbing (prepend own
//!   ASN, reset local-pref, clear the non-transitive MED).
//! * **Hot-potato input**: routes received over iBGP are costed with the
//!   IGP distance from the receiver to the announcing border router.

use crate::aspath::AsPath;
use crate::decision::{decide, DecisionOutcome};
use crate::error::SimError;
use crate::network::{Network, SessionKind};
use crate::route::{LearnedVia, Route, DEFAULT_LOCAL_PREF, NO_ADVERTISE, NO_EXPORT};
use crate::types::{Prefix, RouterId};
use std::collections::HashMap;
use std::sync::Arc;

/// One propagation event, recorded by [`Network::simulate_traced`].
/// Routes are summarized by their AS-path to keep traces readable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A router drained its inbox and re-ran the decision process.
    Activate {
        /// The activated router.
        router: RouterId,
        /// Updates consumed from the inbox.
        inbox: usize,
    },
    /// A router's best route changed.
    BestChanged {
        /// The router.
        router: RouterId,
        /// Previous best AS-path (`None` = no route).
        old: Option<AsPath>,
        /// New best AS-path.
        new: Option<AsPath>,
    },
    /// An update was placed in a peer's inbox.
    Sent {
        /// Announcing router.
        from: RouterId,
        /// Receiving router.
        to: RouterId,
        /// Announced AS-path (`None` = withdraw).
        path: Option<AsPath>,
    },
}

/// Counters describing one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// BGP messages delivered (announcements + withdraws).
    pub messages: u64,
    /// Messages suppressed because they duplicated the last one sent on
    /// that session direction.
    pub suppressed: u64,
    /// High-water mark of the message queue.
    pub peak_queue: usize,
}

/// Final state of one router after convergence.
#[derive(Debug, Clone)]
pub struct RouterRib {
    /// The router.
    pub router: RouterId,
    /// Post-import candidate routes: the locally originated route (if any)
    /// first, then the per-session Adj-RIB-In entries in deterministic
    /// peer-sorted (adjacency) order.
    pub candidates: Vec<Route>,
    /// Decision-process outcome over `candidates`, including the step at
    /// which each losing candidate was eliminated.
    pub outcome: DecisionOutcome,
}

impl RouterRib {
    /// The selected best route, if any.
    pub fn best(&self) -> Option<&Route> {
        self.outcome.best.map(|i| &self.candidates[i])
    }

    /// Renders a human-readable account of the decision at this router:
    /// every candidate with its attributes and the step that eliminated
    /// it. Useful when debugging why a model disagrees with an observed
    /// route.
    pub fn explain(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} candidate(s)",
            self.router,
            self.candidates.len()
        );
        for (i, c) in self.candidates.iter().enumerate() {
            let verdict = match self.outcome.eliminated_at[i] {
                None => "BEST".to_string(),
                Some(step) => format!("lost at {step:?}"),
            };
            let path = if c.as_path.is_empty() {
                "(local)".to_string()
            } else {
                c.as_path.to_string()
            };
            let from = c
                .from_router
                .map(|r| r.to_string())
                .unwrap_or_else(|| "local".into());
            let _ = writeln!(
                out,
                "  [{i}] path [{path}] from {from} lp={} med={:?} origin={:?} {:?} igp={} -> {verdict}",
                c.local_pref, c.med, c.origin, c.learned, c.igp_cost
            );
        }
        out
    }
}

/// Converged per-prefix routing state for every router of the network.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// The simulated prefix.
    pub prefix: Prefix,
    index: Arc<HashMap<RouterId, usize>>,
    ribs: Vec<RouterRib>,
    /// Directed announcements in flight at convergence: what `from` last
    /// announced to `to` (the Adj-RIB-Out content of that direction).
    sent: HashMap<(RouterId, RouterId), Route>,
    /// Run counters.
    pub stats: SimStats,
}

impl SimulationResult {
    /// RIB state of `router`, if it exists.
    pub fn rib(&self, router: RouterId) -> Option<&RouterRib> {
        self.index.get(&router).map(|&i| &self.ribs[i])
    }

    /// The best route selected by `router`.
    pub fn best_route(&self, router: RouterId) -> Option<&Route> {
        self.rib(router).and_then(|r| r.best())
    }

    /// What `from` announced to `to` at convergence (`None` = nothing).
    pub fn announced(&self, from: RouterId, to: RouterId) -> Option<&Route> {
        self.sent.get(&(from, to))
    }

    /// Iterates over all router RIBs.
    pub fn ribs(&self) -> impl Iterator<Item = &RouterRib> {
        self.ribs.iter()
    }
}

/// Reusable per-worker simulation buffers.
///
/// One steady-state run needs O(routers + adjacency) of vector state; a
/// fresh `SimScratch` allocates it, and every later simulation on a network
/// of the same shape clears the buffers in place instead of reallocating.
/// The session→inbox-slot table (`slot_of`) depends only on the topology,
/// so it too is computed once per shape instead of once per simulation.
/// Refinement workers keep one scratch each across all the prefix
/// simulations they execute — the dominant allocation saving of the
/// sharded refinement scheduler.
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Shape key of the network the buffers were sized for:
    /// `(routers, sessions)`. Both only ever grow during refinement, so a
    /// matching key means a matching adjacency layout.
    shape: Option<(usize, usize)>,
    rib_in: Vec<Vec<Option<Route>>>,
    local: Vec<Option<Route>>,
    best: Vec<Option<Route>>,
    last_sent: Vec<[Option<Route>; 2]>,
    pending: Vec<Vec<Option<Option<Route>>>>,
    slot_of: Vec<[usize; 2]>,
    dirty: Vec<bool>,
}

impl SimScratch {
    /// A fresh, empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes (or, on a matching shape, clears in place) the buffers for
    /// `net`.
    fn prepare(&mut self, net: &Network) {
        let shape = (net.routers.len(), net.sessions.len());
        if self.shape == Some(shape) {
            for v in &mut self.rib_in {
                v.fill(None);
            }
            for v in &mut self.pending {
                v.fill(None);
            }
            self.local.fill(None);
            self.best.fill(None);
            self.last_sent.fill([None, None]);
            self.dirty.fill(false);
            return;
        }
        let n = net.routers.len();
        self.rib_in = net.adj.iter().map(|a| vec![None; a.len()]).collect();
        self.pending = net.adj.iter().map(|a| vec![None; a.len()]).collect();
        self.local = vec![None; n];
        self.best = vec![None; n];
        self.last_sent = vec![[None, None]; net.sessions.len()];
        self.dirty = vec![false; n];
        // Map each session to its slot position inside both endpoints'
        // adjacency lists, so updates land in vec-indexed inbox slots
        // without any per-message map lookups.
        self.slot_of = vec![[usize::MAX; 2]; net.sessions.len()];
        for (r, adj) in net.adj.iter().enumerate() {
            for (pos, &(sid, _)) in adj.iter().enumerate() {
                let end = usize::from(net.sessions[sid].a != r);
                self.slot_of[sid][end] = pos;
            }
        }
        self.shape = Some(shape);
    }
}

struct RunState<'n, 's> {
    net: &'n Network,
    /// Borrowed scratch buffers (see [`SimScratch`] for field semantics):
    /// `rib_in` holds the post-import Adj-RIB-In per adjacency slot,
    /// `local` the locally originated routes, `best` the current
    /// selections, `last_sent` the per-session-direction Adj-RIB-Out,
    /// `pending` the latest-update-wins inboxes, and `dirty` the routers
    /// with pending work. Slot order is the router's `Network::adj` order,
    /// i.e. sorted by peer RouterId.
    sc: &'s mut SimScratch,
    /// Total pending updates across all inboxes (peak tracking).
    queued: usize,
    stats: SimStats,
    /// Event sink when tracing.
    trace: Option<Vec<TraceEvent>>,
}

impl Network {
    /// Simulates the propagation of `prefix`, originated at `origins`, to
    /// steady state. Returns the converged RIBs of every router.
    ///
    /// Routers are activated sequentially in a fixed order (Gauss-Seidel
    /// style), each draining its inbox, re-running the decision process,
    /// and exporting before the next router activates. Sequential
    /// activation converges on instances with multiple stable solutions
    /// (e.g. DISAGREE) where synchronous schedules oscillate, and is
    /// deterministic: a given (network, prefix, origins) always yields the
    /// same RIBs.
    ///
    /// # Errors
    /// [`SimError::UnknownRouter`] if an origin is not in the network;
    /// [`SimError::Divergence`] if the message budget is exhausted — the
    /// installed policies admit no stable solution (cf. §4.6 of the paper
    /// on local-pref-induced divergence).
    pub fn simulate(
        &self,
        prefix: Prefix,
        origins: &[RouterId],
    ) -> Result<SimulationResult, SimError> {
        self.simulate_inner(prefix, origins, false, &mut SimScratch::new())
            .map(|(res, _)| res)
    }

    /// Like [`Network::simulate`], but reusing the caller's [`SimScratch`]
    /// buffers — the bulk-simulation path used by refinement workers, where
    /// per-run allocation would dominate.
    pub fn simulate_with(
        &self,
        prefix: Prefix,
        origins: &[RouterId],
        scratch: &mut SimScratch,
    ) -> Result<SimulationResult, SimError> {
        self.simulate_inner(prefix, origins, false, scratch)
            .map(|(res, _)| res)
    }

    /// Like [`Network::simulate`], additionally recording every router
    /// activation, best-route change, and sent update — a readable account
    /// of how the prefix propagated. Traces grow with convergence work;
    /// intended for debugging and teaching, not bulk runs.
    pub fn simulate_traced(
        &self,
        prefix: Prefix,
        origins: &[RouterId],
    ) -> Result<(SimulationResult, Vec<TraceEvent>), SimError> {
        self.simulate_inner(prefix, origins, true, &mut SimScratch::new())
            .map(|(res, t)| (res, t.unwrap_or_default()))
    }

    fn simulate_inner(
        &self,
        prefix: Prefix,
        origins: &[RouterId],
        traced: bool,
        scratch: &mut SimScratch,
    ) -> Result<(SimulationResult, Option<Vec<TraceEvent>>), SimError> {
        // Failpoint: lets tests fail/delay a simulation at its entry, the
        // spot where real resource exhaustion would surface.
        #[cfg(feature = "testkit")]
        if crate::fail::inject("engine.simulate") {
            return Err(SimError::Injected {
                point: "engine.simulate",
            });
        }
        let n = self.routers.len();
        scratch.prepare(self);
        let mut st = RunState {
            net: self,
            sc: scratch,
            queued: 0,
            stats: SimStats::default(),
            trace: if traced { Some(Vec::new()) } else { None },
        };

        // Deterministic origination order.
        let mut sorted_origins: Vec<RouterId> = origins.to_vec();
        sorted_origins.sort();
        sorted_origins.dedup();
        for o in &sorted_origins {
            let i = *self.index.get(o).ok_or(SimError::UnknownRouter(*o))?;
            st.sc.local[i] = Some(Route::originate(prefix));
            st.sc.dirty[i] = true;
        }

        let budget = self.effective_budget();
        loop {
            let mut any = false;
            for r in 0..n {
                if !st.sc.dirty[r] {
                    continue;
                }
                any = true;
                st.activate(r);
                if st.stats.messages > budget {
                    return Err(SimError::Divergence {
                        prefix,
                        processed: st.stats.messages,
                    });
                }
            }
            if !any {
                break;
            }
        }

        let trace = st.trace.take();
        Ok((st.into_result(prefix), trace))
    }
}

impl RunState<'_, '_> {
    /// Activates dense router `r`: drains its inbox, re-decides, exports.
    fn activate(&mut self, r: usize) {
        self.sc.dirty[r] = false;
        if let Some(t) = &mut self.trace {
            let inbox = self.sc.pending[r].iter().filter(|s| s.is_some()).count();
            t.push(TraceEvent::Activate {
                router: self.net.routers[r],
                inbox,
            });
        }
        // Drain the inbox slots in place (adjacency = peer-sorted order).
        for slot in 0..self.sc.pending[r].len() {
            let Some(update) = self.sc.pending[r][slot].take() else {
                continue;
            };
            self.queued -= 1;
            self.stats.messages += 1;
            let sid = self.net.adj[r][slot].0;
            self.install(sid, r, slot, update);
        }
        self.recompute_and_export(r);
    }

    /// Installs one update received by dense router `to` over session
    /// `sid` (at adjacency slot `slot`) into its Adj-RIB-In (post-import).
    fn install(&mut self, sid: usize, to: usize, slot: usize, update: Option<Route>) {
        let session = &self.net.sessions[sid];
        let from = session.peer_of(to);
        let receiver_id = self.net.routers[to];
        let sender_id = self.net.routers[from];

        let installed: Option<Route> = update.and_then(|mut route| {
            // eBGP loop detection: reject a path already containing the
            // receiver's AS.
            if session.kind == SessionKind::Ebgp && route.as_path.contains(receiver_id.asn()) {
                return None;
            }
            // RFC 4456 ORIGINATOR_ID loop prevention: a reflected route
            // must never be re-installed at the router that injected it.
            if session.kind == SessionKind::Ibgp && route.originator == Some(receiver_id) {
                return None;
            }
            // Fill receiver-side fields *before* the import policy so
            // matchers can see the announcing neighbor.
            route.from_router = Some(sender_id);
            route.from_asn = route.as_path.head();
            match session.kind {
                SessionKind::Ebgp => {
                    route.learned = LearnedVia::Ebgp;
                    route.igp_cost = 0;
                }
                SessionKind::Ibgp => {
                    route.learned = LearnedVia::Ibgp;
                    route.igp_cost = self.net.igp_cost(receiver_id.asn(), receiver_id, sender_id);
                }
            }
            session.direction(from).import.apply(&route)
        });

        self.sc.rib_in[to][slot] = installed;
    }

    /// Re-runs the decision process at dense router `r`; if the best route
    /// changed, delivers (possibly suppressed) updates to every peer's
    /// inbox.
    fn recompute_and_export(&mut self, r: usize) {
        // Copy the network reference out of `self` so iterating adjacency
        // does not hold a borrow of the whole state (this used to clone the
        // adjacency list on every activation).
        let net = self.net;
        // Decide over borrowed candidates; clone only the winner, and only
        // when it actually changed.
        let new_best: Option<Route> = {
            let candidates: Vec<&Route> = self.sc.local[r]
                .iter()
                .chain(self.sc.rib_in[r].iter().flatten())
                .collect();
            let outcome = decide(&candidates, &net.cfg);
            let nb = outcome.best.map(|i| candidates[i]);
            if nb == self.sc.best[r].as_ref() {
                return;
            }
            nb.cloned()
        };
        if let Some(t) = &mut self.trace {
            t.push(TraceEvent::BestChanged {
                router: net.routers[r],
                old: self.sc.best[r].as_ref().map(|b| b.as_path.clone()),
                new: new_best.as_ref().map(|b| b.as_path.clone()),
            });
        }
        self.sc.best[r] = new_best;

        // Fan out over sessions in deterministic (peer-sorted) order.
        for &(sid, peer) in &net.adj[r] {
            let msg = self.export_over(r, sid);
            let dir = usize::from(net.sessions[sid].a != r);
            if self.sc.last_sent[sid][dir] == msg {
                self.stats.suppressed += 1;
                continue;
            }
            if let Some(t) = &mut self.trace {
                t.push(TraceEvent::Sent {
                    from: net.routers[r],
                    to: net.routers[peer],
                    path: msg.as_ref().map(|m| m.as_path.clone()),
                });
            }
            // The message is recorded once per copy that must live on: the
            // Adj-RIB-Out bookkeeping and the peer's inbox slot (the trace
            // above only bumped the AS-path refcount).
            self.sc.last_sent[sid][dir] = msg.clone();
            let peer_slot = self.sc.slot_of[sid][1 - dir];
            if self.sc.pending[peer][peer_slot].replace(msg).is_none() {
                self.queued += 1;
            }
            self.sc.dirty[peer] = true;
            self.stats.peak_queue = self.stats.peak_queue.max(self.queued);
        }
    }

    /// Builds the update dense router `r` sends over session `sid`
    /// (`None` = withdraw).
    fn export_over(&self, r: usize, sid: usize) -> Option<Route> {
        let session = &self.net.sessions[sid];
        let best = self.sc.best[r].as_ref()?;
        // RFC 1997 well-known communities, honored by the protocol itself.
        if best.has_community(NO_ADVERTISE) {
            return None;
        }
        if session.kind == SessionKind::Ebgp && best.has_community(NO_EXPORT) {
            return None;
        }
        // Sender-side split horizon: never echo back over the learning
        // session.
        if let Some(from_router) = best.from_router {
            let peer_id = self.net.routers[session.peer_of(r)];
            if from_router == peer_id {
                return None;
            }
        }
        // iBGP: internal routes are re-advertised internally only under
        // RFC 4456 route reflection — client routes to everyone,
        // non-client routes to clients (plain full mesh reflects nothing).
        let mut reflected = false;
        if session.kind == SessionKind::Ibgp && best.learned == LearnedVia::Ibgp {
            let me = self.net.routers[r];
            let peer_id = self.net.routers[session.peer_of(r)];
            let from_client = best
                .from_router
                .is_some_and(|f| self.net.is_rr_client(me, f));
            let to_client = self.net.is_rr_client(me, peer_id);
            if !(from_client || to_client) {
                return None;
            }
            reflected = true;
        }
        // Export policy on the Loc-RIB form.
        let mut out = session.direction(r).export.apply(best)?;
        if session.kind == SessionKind::Ebgp {
            let own = self.net.routers[r].asn();
            out.as_path = out.as_path.prepend(own);
            out.local_pref = DEFAULT_LOCAL_PREF;
            out.med = None; // non-transitive
        }
        if reflected {
            // Stamp the injector on first reflection (RFC 4456 §8).
            out.originator = out.originator.or(best.from_router);
        }
        if session.kind == SessionKind::Ebgp {
            out.originator = None; // meaningless outside the AS
        }
        out.from_router = None;
        out.from_asn = None;
        out.igp_cost = 0;
        Some(out)
    }

    fn into_result(self, prefix: Prefix) -> SimulationResult {
        let mut sent = HashMap::new();
        for (sid, dirs) in self.sc.last_sent.iter().enumerate() {
            let s = &self.net.sessions[sid];
            let (a, b) = (self.net.routers[s.a], self.net.routers[s.b]);
            if let Some(route) = &dirs[0] {
                sent.insert((a, b), route.clone());
            }
            if let Some(route) = &dirs[1] {
                sent.insert((b, a), route.clone());
            }
        }
        let mut ribs = Vec::with_capacity(self.net.routers.len());
        for r in 0..self.net.routers.len() {
            let candidates: Vec<Route> = self.sc.local[r]
                .iter()
                .cloned()
                .chain(self.sc.rib_in[r].iter().flatten().cloned())
                .collect();
            let outcome = decide(&candidates, &self.net.cfg);
            ribs.push(RouterRib {
                router: self.net.routers[r],
                candidates,
                outcome,
            });
        }
        SimulationResult {
            prefix,
            index: Arc::clone(&self.net.index),
            ribs,
            sent,
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::DecisionConfig;
    use crate::policy::{Action, Policy, PolicyRule, RouteMatch};
    use crate::types::Asn;

    fn rid(asn: u32, idx: u16) -> RouterId {
        RouterId::new(Asn(asn), idx)
    }

    /// Line: AS1 - AS2 - AS3, prefix at AS3.
    fn line() -> Network {
        let mut net = Network::new(DecisionConfig::default());
        for a in 1..=3u32 {
            net.add_router(rid(a, 0));
        }
        net.add_session(rid(1, 0), rid(2, 0), SessionKind::Ebgp)
            .unwrap();
        net.add_session(rid(2, 0), rid(3, 0), SessionKind::Ebgp)
            .unwrap();
        net
    }

    #[test]
    fn propagation_along_line() {
        let net = line();
        let p = Prefix::for_origin(Asn(3));
        let res = net.simulate(p, &[rid(3, 0)]).unwrap();
        assert_eq!(res.best_route(rid(3, 0)).unwrap().as_path.len(), 0);
        assert_eq!(res.best_route(rid(2, 0)).unwrap().as_path.to_string(), "3");
        assert_eq!(
            res.best_route(rid(1, 0)).unwrap().as_path.to_string(),
            "2 3"
        );
    }

    #[test]
    fn rib_out_recorded() {
        let net = line();
        let p = Prefix::for_origin(Asn(3));
        let res = net.simulate(p, &[rid(3, 0)]).unwrap();
        let out = res.announced(rid(2, 0), rid(1, 0)).unwrap();
        assert_eq!(out.as_path.to_string(), "2 3");
        // AS1 announces nothing back to AS2 beyond loop-rejected paths:
        // split horizon keeps the learning session silent.
        assert!(res.announced(rid(1, 0), rid(2, 0)).is_none());
    }

    #[test]
    fn unknown_origin_errors() {
        let net = line();
        let p = Prefix::for_origin(Asn(9));
        assert!(matches!(
            net.simulate(p, &[rid(9, 0)]),
            Err(SimError::UnknownRouter(_))
        ));
    }

    /// Square: 1-2, 1-4, 2-3, 4-3; origin at 3. AS1 hears two equal-length
    /// paths (2 3) and (4 3); tie-break picks the lower neighbor id (AS2).
    #[test]
    fn tie_break_on_square() {
        let mut net = Network::new(DecisionConfig::default());
        for a in 1..=4u32 {
            net.add_router(rid(a, 0));
        }
        net.add_session(rid(1, 0), rid(2, 0), SessionKind::Ebgp)
            .unwrap();
        net.add_session(rid(1, 0), rid(4, 0), SessionKind::Ebgp)
            .unwrap();
        net.add_session(rid(2, 0), rid(3, 0), SessionKind::Ebgp)
            .unwrap();
        net.add_session(rid(4, 0), rid(3, 0), SessionKind::Ebgp)
            .unwrap();
        let p = Prefix::for_origin(Asn(3));
        let res = net.simulate(p, &[rid(3, 0)]).unwrap();
        let rib1 = res.rib(rid(1, 0)).unwrap();
        assert_eq!(rib1.candidates.len(), 2);
        assert_eq!(rib1.best().unwrap().as_path.to_string(), "2 3");
        // The loser survived to the tie-break.
        assert_eq!(rib1.outcome.tie_break_survivors().len(), 2);
    }

    #[test]
    fn med_import_policy_flips_choice() {
        // Same square, but AS1 prefers routes announced by AS4 via MED.
        let mut net = Network::new(DecisionConfig::default());
        for a in 1..=4u32 {
            net.add_router(rid(a, 0));
        }
        net.add_session(rid(1, 0), rid(2, 0), SessionKind::Ebgp)
            .unwrap();
        net.add_session(rid(1, 0), rid(4, 0), SessionKind::Ebgp)
            .unwrap();
        net.add_session(rid(2, 0), rid(3, 0), SessionKind::Ebgp)
            .unwrap();
        net.add_session(rid(4, 0), rid(3, 0), SessionKind::Ebgp)
            .unwrap();
        let p = Prefix::for_origin(Asn(3));
        let mut prefer4 = Policy::permit_all();
        prefer4.push(PolicyRule::new(RouteMatch::prefix(p), Action::SetMed(0)));
        net.set_import_policy(rid(1, 0), rid(4, 0), prefer4)
            .unwrap();
        let mut demote2 = Policy::permit_all();
        demote2.push(PolicyRule::new(RouteMatch::prefix(p), Action::SetMed(10)));
        net.set_import_policy(rid(1, 0), rid(2, 0), demote2)
            .unwrap();
        let res = net.simulate(p, &[rid(3, 0)]).unwrap();
        assert_eq!(
            res.best_route(rid(1, 0)).unwrap().as_path.to_string(),
            "4 3"
        );
    }

    #[test]
    fn export_filter_blocks_propagation() {
        let mut net = line();
        let p = Prefix::for_origin(Asn(3));
        let mut deny = Policy::permit_all();
        deny.push(PolicyRule::new(RouteMatch::prefix(p), Action::Deny));
        net.set_export_policy(rid(2, 0), rid(1, 0), deny).unwrap();
        let res = net.simulate(p, &[rid(3, 0)]).unwrap();
        assert!(res.best_route(rid(1, 0)).is_none());
        assert!(res.best_route(rid(2, 0)).is_some());
    }

    #[test]
    fn ibgp_full_mesh_no_reflection() {
        // AS2 has two routers, full iBGP mesh; only r0 has the eBGP session
        // to the origin AS3. r1 must learn via iBGP; a third router r2 also
        // connected only to r1 over iBGP must NOT learn the route (no
        // reflection).
        let mut net = Network::new(DecisionConfig::default());
        net.add_router(rid(3, 0));
        for i in 0..3u16 {
            net.add_router(rid(2, i));
        }
        net.add_session(rid(2, 0), rid(3, 0), SessionKind::Ebgp)
            .unwrap();
        net.add_session(rid(2, 0), rid(2, 1), SessionKind::Ibgp)
            .unwrap();
        net.add_session(rid(2, 1), rid(2, 2), SessionKind::Ibgp)
            .unwrap();
        let p = Prefix::for_origin(Asn(3));
        let res = net.simulate(p, &[rid(3, 0)]).unwrap();
        assert!(res.best_route(rid(2, 1)).is_some());
        assert_eq!(res.best_route(rid(2, 1)).unwrap().learned, LearnedVia::Ibgp);
        assert!(res.best_route(rid(2, 2)).is_none());
    }

    #[test]
    fn ebgp_loop_rejected() {
        // Triangle 1-2-3 with origin at 1: no router may install a path
        // containing its own AS.
        let mut net = Network::new(DecisionConfig::default());
        for a in 1..=3u32 {
            net.add_router(rid(a, 0));
        }
        net.add_session(rid(1, 0), rid(2, 0), SessionKind::Ebgp)
            .unwrap();
        net.add_session(rid(2, 0), rid(3, 0), SessionKind::Ebgp)
            .unwrap();
        net.add_session(rid(3, 0), rid(1, 0), SessionKind::Ebgp)
            .unwrap();
        let p = Prefix::for_origin(Asn(1));
        let res = net.simulate(p, &[rid(1, 0)]).unwrap();
        for rib in res.ribs() {
            for c in &rib.candidates {
                assert!(!c.as_path.contains(rib.router.asn()));
            }
        }
        assert_eq!(res.best_route(rid(2, 0)).unwrap().as_path.to_string(), "1");
        assert_eq!(res.best_route(rid(3, 0)).unwrap().as_path.to_string(), "1");
    }

    #[test]
    fn multi_origin_anycast() {
        let net = line();
        let p = Prefix::new(0xC0000000, 24);
        let res = net.simulate(p, &[rid(1, 0), rid(3, 0)]).unwrap();
        // AS2 hears both origins with 1-hop paths; lower neighbor id wins.
        let best = res.best_route(rid(2, 0)).unwrap();
        assert_eq!(best.as_path.to_string(), "1");
    }

    #[test]
    fn stats_count_messages() {
        let net = line();
        let p = Prefix::for_origin(Asn(3));
        let res = net.simulate(p, &[rid(3, 0)]).unwrap();
        assert!(res.stats.messages >= 2);
    }

    /// Griffin's BAD GADGET: three ASes around an origin, each preferring
    /// the route through its clockwise neighbor (via local-pref) over its
    /// direct route. No stable solution exists; the engine must detect the
    /// oscillation instead of spinning forever. This is exactly the
    /// divergence the paper cites as the reason to avoid local-pref
    /// ranking (§4.6).
    #[test]
    fn bad_gadget_reports_divergence() {
        let mut net = Network::new(DecisionConfig::default());
        for a in 0..=3u32 {
            net.add_router(rid(a + 1, 0)); // ASes 1 (origin), 2, 3, 4
        }
        let origin = rid(1, 0);
        for a in 2..=4u32 {
            net.add_session(rid(a, 0), origin, SessionKind::Ebgp)
                .unwrap();
        }
        net.add_session(rid(2, 0), rid(3, 0), SessionKind::Ebgp)
            .unwrap();
        net.add_session(rid(3, 0), rid(4, 0), SessionKind::Ebgp)
            .unwrap();
        net.add_session(rid(4, 0), rid(2, 0), SessionKind::Ebgp)
            .unwrap();
        // Each AS prefers the 2-hop route via its clockwise neighbor.
        for (me, pref) in [(2u32, 3u32), (3, 4), (4, 2)] {
            let mut p = Policy::permit_all();
            p.push(PolicyRule::new(
                RouteMatch::any(),
                Action::SetLocalPref(200),
            ));
            net.set_import_policy(rid(me, 0), rid(pref, 0), p).unwrap();
        }
        let prefix = Prefix::for_origin(Asn(1));
        let err = net.simulate(prefix, &[origin]).unwrap_err();
        assert!(matches!(err, SimError::Divergence { .. }), "got {err:?}");
    }

    /// DISAGREE has two stable solutions; the deterministic engine must
    /// settle on one (and always the same one).
    #[test]
    fn disagree_converges_deterministically() {
        let build = || {
            let mut net = Network::new(DecisionConfig::default());
            for a in 1..=3u32 {
                net.add_router(rid(a, 0));
            }
            net.add_session(rid(2, 0), rid(1, 0), SessionKind::Ebgp)
                .unwrap();
            net.add_session(rid(3, 0), rid(1, 0), SessionKind::Ebgp)
                .unwrap();
            net.add_session(rid(2, 0), rid(3, 0), SessionKind::Ebgp)
                .unwrap();
            for (me, pref) in [(2u32, 3u32), (3, 2)] {
                let mut p = Policy::permit_all();
                p.push(PolicyRule::new(
                    RouteMatch::any(),
                    Action::SetLocalPref(200),
                ));
                net.set_import_policy(rid(me, 0), rid(pref, 0), p).unwrap();
            }
            net
        };
        let prefix = Prefix::for_origin(Asn(1));
        let a = build().simulate(prefix, &[rid(1, 0)]).unwrap();
        let b = build().simulate(prefix, &[rid(1, 0)]).unwrap();
        assert_eq!(a.best_route(rid(2, 0)), b.best_route(rid(2, 0)));
        assert_eq!(a.best_route(rid(3, 0)), b.best_route(rid(3, 0)));
        // Exactly one of AS2/AS3 got its preferred indirect route.
        let via_indirect = [a.best_route(rid(2, 0)), a.best_route(rid(3, 0))]
            .iter()
            .filter(|r| r.map(|r| r.as_path.len()) == Some(2))
            .count();
        assert_eq!(via_indirect, 1);
    }

    #[test]
    fn no_export_stops_at_as_boundary() {
        // 1 - 2 - 3 line; AS3's export towards AS2 tags NO_EXPORT: AS2
        // uses the route, AS1 never hears it.
        let mut net = line();
        let p = Prefix::for_origin(Asn(3));
        let mut tag = Policy::permit_all();
        tag.push(PolicyRule::new(
            RouteMatch::prefix(p),
            Action::AddCommunity(crate::route::NO_EXPORT),
        ));
        net.set_export_policy(rid(3, 0), rid(2, 0), tag).unwrap();
        let res = net.simulate(p, &[rid(3, 0)]).unwrap();
        let at2 = res.best_route(rid(2, 0)).unwrap();
        assert!(at2.has_community(crate::route::NO_EXPORT));
        assert!(res.best_route(rid(1, 0)).is_none(), "NO_EXPORT leaked");
    }

    #[test]
    fn no_advertise_stays_on_router() {
        // AS2 has two routers (iBGP); the import at r0 tags NO_ADVERTISE:
        // r0 keeps the route, r1 never learns it.
        let mut net = Network::new(DecisionConfig::default());
        net.add_router(rid(3, 0));
        net.add_router(rid(2, 0));
        net.add_router(rid(2, 1));
        net.add_session(rid(2, 0), rid(3, 0), SessionKind::Ebgp)
            .unwrap();
        net.add_session(rid(2, 0), rid(2, 1), SessionKind::Ibgp)
            .unwrap();
        let p = Prefix::for_origin(Asn(3));
        let mut tag = Policy::permit_all();
        tag.push(PolicyRule::new(
            RouteMatch::prefix(p),
            Action::AddCommunity(crate::route::NO_ADVERTISE),
        ));
        net.set_import_policy(rid(2, 0), rid(3, 0), tag).unwrap();
        let res = net.simulate(p, &[rid(3, 0)]).unwrap();
        assert!(res.best_route(rid(2, 0)).is_some());
        assert!(res.best_route(rid(2, 1)).is_none(), "NO_ADVERTISE leaked");
    }

    #[test]
    fn communities_are_transitive_across_ebgp() {
        let mut net = line();
        let p = Prefix::for_origin(Asn(3));
        let mut tag = Policy::permit_all();
        tag.push(PolicyRule::new(
            RouteMatch::prefix(p),
            Action::AddCommunity(0x00CC_0001),
        ));
        net.set_export_policy(rid(3, 0), rid(2, 0), tag).unwrap();
        let res = net.simulate(p, &[rid(3, 0)]).unwrap();
        // Two AS hops later the community is still attached.
        assert!(res
            .best_route(rid(1, 0))
            .unwrap()
            .has_community(0x00CC_0001));
    }

    #[test]
    fn explanation_lists_candidates_and_verdicts() {
        let mut net = Network::new(DecisionConfig::default());
        for a in 1..=4u32 {
            net.add_router(rid(a, 0));
        }
        net.add_session(rid(1, 0), rid(2, 0), SessionKind::Ebgp)
            .unwrap();
        net.add_session(rid(1, 0), rid(4, 0), SessionKind::Ebgp)
            .unwrap();
        net.add_session(rid(2, 0), rid(3, 0), SessionKind::Ebgp)
            .unwrap();
        net.add_session(rid(4, 0), rid(3, 0), SessionKind::Ebgp)
            .unwrap();
        let p = Prefix::for_origin(Asn(3));
        let res = net.simulate(p, &[rid(3, 0)]).unwrap();
        let text = res.rib(rid(1, 0)).unwrap().explain();
        assert!(text.contains("BEST"), "{text}");
        assert!(text.contains("lost at TieBreak"), "{text}");
        assert!(text.contains("2 3"), "{text}");
        // The origin's own explanation shows the local route winning.
        let origin_text = res.rib(rid(3, 0)).unwrap().explain();
        assert!(origin_text.contains("(local)"), "{origin_text}");
    }

    #[test]
    fn trace_records_propagation_story() {
        let net = line();
        let p = Prefix::for_origin(Asn(3));
        let (res, trace) = net.simulate_traced(p, &[rid(3, 0)]).unwrap();
        // Same converged result as the untraced run.
        let plain = net.simulate(p, &[rid(3, 0)]).unwrap();
        assert_eq!(res.best_route(rid(1, 0)), plain.best_route(rid(1, 0)));
        // The story contains the origin's best change and sends down the
        // line.
        assert!(trace.iter().any(|e| matches!(
            e,
            TraceEvent::BestChanged { router, new: Some(p), .. }
                if *router == rid(3, 0) && p.is_empty()
        )));
        assert!(trace.iter().any(|e| matches!(
            e,
            TraceEvent::Sent { from, to, path: Some(p) }
                if *from == rid(2, 0) && *to == rid(1, 0) && p.to_string() == "2 3"
        )));
        assert!(trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Activate { router, .. } if *router == rid(1, 0))));
    }

    #[test]
    fn empty_network_simulates_nothing() {
        let net = Network::new(DecisionConfig::default());
        let res = net.simulate(Prefix::new(0, 0), &[]).unwrap();
        assert_eq!(res.ribs().count(), 0);
    }
}
