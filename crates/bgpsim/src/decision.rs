//! The BGP decision process (paper §2, Figure 1).
//!
//! Given the candidate routes for one prefix at one router, the process runs
//! a fixed sequence of elimination steps until a single best route remains.
//! Unlike a production implementation we also record, for every candidate,
//! *which step eliminated it*. The paper's "potential RIB-Out match" metric
//! (§4.2) is defined as "the observed route is eliminated in the last
//! tie-breaking step ('Lowest Neighbor IP address')", which is only
//! observable with this bookkeeping.
//!
//! Step order (C-BGP semantics, which the paper relies on):
//! 1. locally originated beats learned
//! 2. highest local-pref
//! 3. shortest AS-path
//! 4. lowest origin (IGP < EGP < Incomplete)
//! 5. lowest MED — the paper *requires* always-compare-MED ("We require that
//!    MED values are always compared during the BGP decision process, even
//!    for routes learned from different neighbor ASes", §4.6); the classic
//!    per-neighbor comparison is also provided for the baseline models
//! 6. eBGP-learned beats iBGP-learned
//! 7. lowest IGP cost to exit (hot-potato)
//! 8. lowest neighbor router id (final tie-break)

use crate::route::{LearnedVia, Route};
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;

/// The elimination steps, in decision order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Step {
    /// Lost to a locally originated route.
    LocalOrigination,
    /// Lower local-pref than some candidate.
    LocalPref,
    /// Longer AS-path than some candidate.
    AsPathLength,
    /// Worse (higher) origin than some candidate.
    Origin,
    /// Higher MED than some candidate (comparison scope per [`MedMode`]).
    Med,
    /// iBGP-learned while an eBGP-learned candidate remained.
    EbgpOverIbgp,
    /// Higher IGP cost to the exit point (hot-potato).
    IgpCost,
    /// Lost the final lowest-neighbor-router-id tie-break.
    TieBreak,
}

/// Scope of the MED comparison in step 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MedMode {
    /// Compare MED across all remaining candidates regardless of neighbor
    /// AS. Required by the paper's refinement heuristic (§4.6).
    #[default]
    AlwaysCompare,
    /// Classic RFC 4271 behaviour: MED only ranks routes from the same
    /// neighbor AS. A route is eliminated if a same-neighbor candidate has
    /// strictly lower MED.
    PerNeighbor,
}

/// Tunables of the decision process.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct DecisionConfig {
    /// MED comparison scope.
    pub med_mode: MedMode,
}

/// The result of running the decision process over a candidate set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionOutcome {
    /// Index (into the candidate slice) of the selected best route, or
    /// `None` if the candidate set was empty.
    pub best: Option<usize>,
    /// For each candidate: `None` if it won, otherwise the step that
    /// eliminated it.
    pub eliminated_at: Vec<Option<Step>>,
}

impl DecisionOutcome {
    /// Indices of routes that survived to the final tie-break (the winner
    /// plus every candidate with `Some(Step::TieBreak)`). These are exactly
    /// the routes the paper counts as "potential RIB-Out" candidates.
    pub fn tie_break_survivors(&self) -> Vec<usize> {
        self.eliminated_at
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_none() || **e == Some(Step::TieBreak))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Runs the BGP decision process over `candidates` (the Adj-RIB-In contents
/// for one prefix) and reports the winner and per-candidate elimination
/// steps. Deterministic: ties that survive every step are broken by the
/// lowest announcing neighbor router id, and — should two candidates share
/// even that (which cannot happen for distinct sessions) — by candidate
/// order.
///
/// Generic over owned (`&[Route]`) and borrowed (`&[&Route]`) candidate
/// slices so the simulation hot path can decide over its RIB entries
/// without cloning them first.
pub fn decide<B: Borrow<Route>>(candidates: &[B], cfg: &DecisionConfig) -> DecisionOutcome {
    let candidates: Vec<&Route> = candidates.iter().map(Borrow::borrow).collect();
    let n = candidates.len();
    let mut eliminated_at: Vec<Option<Step>> = vec![None; n];
    if n == 0 {
        return DecisionOutcome {
            best: None,
            eliminated_at,
        };
    }
    let mut alive: Vec<usize> = (0..n).collect();

    // Generic elimination: keep candidates minimizing `key`.
    fn keep_min<K: Ord + Copy>(
        alive: &mut Vec<usize>,
        eliminated_at: &mut [Option<Step>],
        step: Step,
        key: impl Fn(usize) -> K,
    ) {
        if alive.len() <= 1 {
            return;
        }
        let Some(best) = alive.iter().map(|&i| key(i)).min() else {
            return; // unreachable: alive.len() > 1 here
        };
        alive.retain(|&i| {
            let keep = key(i) == best;
            if !keep {
                eliminated_at[i] = Some(step);
            }
            keep
        });
    }

    // 1. Locally originated routes win outright.
    keep_min(
        &mut alive,
        &mut eliminated_at,
        Step::LocalOrigination,
        |i| u8::from(candidates[i].learned != LearnedVia::Local),
    );
    // 2. Highest local-pref (minimize the negation).
    keep_min(&mut alive, &mut eliminated_at, Step::LocalPref, |i| {
        std::cmp::Reverse(candidates[i].local_pref)
    });
    // 3. Shortest AS-path.
    keep_min(&mut alive, &mut eliminated_at, Step::AsPathLength, |i| {
        candidates[i].as_path.len()
    });
    // 4. Lowest origin.
    keep_min(&mut alive, &mut eliminated_at, Step::Origin, |i| {
        candidates[i].origin
    });
    // 5. MED.
    match cfg.med_mode {
        MedMode::AlwaysCompare => {
            keep_min(&mut alive, &mut eliminated_at, Step::Med, |i| {
                candidates[i].med_value()
            });
        }
        MedMode::PerNeighbor => {
            if alive.len() > 1 {
                // Eliminate a candidate if some *same-neighbor* survivor has a
                // strictly lower MED. Evaluated against the pre-step set so the
                // result is order-independent.
                let before = alive.clone();
                alive.retain(|&i| {
                    let dominated = before.iter().any(|&j| {
                        j != i
                            && candidates[j].neighbor_for_med() == candidates[i].neighbor_for_med()
                            && candidates[j].med_value() < candidates[i].med_value()
                    });
                    if dominated {
                        eliminated_at[i] = Some(Step::Med);
                    }
                    !dominated
                });
            }
        }
    }
    // 6. Prefer eBGP-learned over iBGP-learned.
    keep_min(&mut alive, &mut eliminated_at, Step::EbgpOverIbgp, |i| {
        u8::from(candidates[i].learned == LearnedVia::Ibgp)
    });
    // 7. Lowest IGP cost (hot-potato).
    keep_min(&mut alive, &mut eliminated_at, Step::IgpCost, |i| {
        candidates[i].igp_cost
    });
    // 8. Final tie-break: lowest neighbor router id.
    keep_min(&mut alive, &mut eliminated_at, Step::TieBreak, |i| {
        candidates[i].from_router
    });
    // Candidate order as the absolute last resort (unreachable for routes
    // from distinct sessions, but keeps `decide` total).
    let winner = alive[0];
    for &i in &alive[1..] {
        eliminated_at[i] = Some(Step::TieBreak);
    }

    DecisionOutcome {
        best: Some(winner),
        eliminated_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspath::AsPath;
    use crate::route::Origin;
    use crate::types::{Asn, Prefix, RouterId};

    fn route(path: &[u32], from: (u32, u16)) -> Route {
        Route {
            prefix: Prefix::new(0x0A000000, 8),
            as_path: AsPath::from_u32s(path),
            local_pref: 100,
            med: None,
            origin: Origin::Igp,
            from_router: Some(RouterId::new(Asn(from.0), from.1)),
            from_asn: Some(Asn(from.0)),
            learned: LearnedVia::Ebgp,
            igp_cost: 0,
            communities: Vec::new(),
            originator: None,
        }
    }

    #[test]
    fn empty_candidates_yield_no_best() {
        let out = decide::<Route>(&[], &DecisionConfig::default());
        assert_eq!(out.best, None);
    }

    #[test]
    fn single_candidate_wins() {
        let out = decide(&[route(&[1, 2], (1, 0))], &DecisionConfig::default());
        assert_eq!(out.best, Some(0));
        assert_eq!(out.eliminated_at, vec![None]);
    }

    #[test]
    fn local_pref_dominates_path_length() {
        let mut a = route(&[1], (1, 0));
        a.local_pref = 50;
        let b = route(&[2, 3, 4], (2, 0));
        let out = decide(&[a, b], &DecisionConfig::default());
        assert_eq!(out.best, Some(1));
        assert_eq!(out.eliminated_at[0], Some(Step::LocalPref));
    }

    #[test]
    fn shorter_path_wins() {
        let a = route(&[1, 2], (1, 0));
        let b = route(&[3, 4, 5], (3, 0));
        let out = decide(&[a, b], &DecisionConfig::default());
        assert_eq!(out.best, Some(0));
        assert_eq!(out.eliminated_at[1], Some(Step::AsPathLength));
    }

    #[test]
    fn origin_breaks_equal_paths() {
        let a = route(&[1, 2], (1, 0));
        let mut b = route(&[3, 2], (3, 0));
        b.origin = Origin::Incomplete;
        let out = decide(&[a, b], &DecisionConfig::default());
        assert_eq!(out.best, Some(0));
        assert_eq!(out.eliminated_at[1], Some(Step::Origin));
    }

    #[test]
    fn always_compare_med_crosses_neighbors() {
        let mut a = route(&[1, 2], (1, 0));
        a.med = Some(10);
        let mut b = route(&[3, 2], (3, 0));
        b.med = Some(5);
        let out = decide(&[a, b], &DecisionConfig::default());
        assert_eq!(out.best, Some(1));
        assert_eq!(out.eliminated_at[0], Some(Step::Med));
    }

    #[test]
    fn per_neighbor_med_ignores_cross_neighbor() {
        let mut a = route(&[1, 2], (1, 0));
        a.med = Some(10);
        let mut b = route(&[3, 2], (3, 1));
        b.med = Some(5);
        let cfg = DecisionConfig {
            med_mode: MedMode::PerNeighbor,
        };
        let out = decide(&[a, b], &cfg);
        // Different neighbor ASes: MED must not eliminate; falls through to
        // the router-id tie-break, where AS1's router wins.
        assert_eq!(out.best, Some(0));
        assert_eq!(out.eliminated_at[1], Some(Step::TieBreak));
    }

    #[test]
    fn per_neighbor_med_applies_within_neighbor() {
        let mut a = route(&[1, 2], (1, 0));
        a.med = Some(10);
        let mut b = route(&[1, 2], (1, 1));
        b.med = Some(5);
        let cfg = DecisionConfig {
            med_mode: MedMode::PerNeighbor,
        };
        let out = decide(&[a, b], &cfg);
        assert_eq!(out.best, Some(1));
        assert_eq!(out.eliminated_at[0], Some(Step::Med));
    }

    #[test]
    fn missing_med_beats_present_med() {
        let a = route(&[1, 2], (1, 0)); // med None -> 0
        let mut b = route(&[3, 2], (3, 0));
        b.med = Some(1);
        let out = decide(&[a, b], &DecisionConfig::default());
        assert_eq!(out.best, Some(0));
        assert_eq!(out.eliminated_at[1], Some(Step::Med));
    }

    #[test]
    fn ebgp_beats_ibgp() {
        let a = route(&[1, 2], (1, 0));
        let mut b = route(&[3, 2], (3, 0));
        b.learned = LearnedVia::Ibgp;
        let out = decide(&[b, a], &DecisionConfig::default());
        assert_eq!(out.best, Some(1));
        assert_eq!(out.eliminated_at[0], Some(Step::EbgpOverIbgp));
    }

    #[test]
    fn hot_potato_prefers_low_igp_cost() {
        let mut a = route(&[1, 2], (1, 0));
        a.learned = LearnedVia::Ibgp;
        a.igp_cost = 10;
        let mut b = route(&[3, 2], (3, 0));
        b.learned = LearnedVia::Ibgp;
        b.igp_cost = 3;
        let out = decide(&[a, b], &DecisionConfig::default());
        assert_eq!(out.best, Some(1));
        assert_eq!(out.eliminated_at[0], Some(Step::IgpCost));
    }

    #[test]
    fn tie_break_lowest_router_id() {
        let a = route(&[2, 9], (2, 1));
        let b = route(&[2, 9], (2, 0));
        let out = decide(&[a, b], &DecisionConfig::default());
        assert_eq!(out.best, Some(1));
        assert_eq!(out.eliminated_at[0], Some(Step::TieBreak));
        assert_eq!(out.tie_break_survivors(), vec![0, 1]);
    }

    #[test]
    fn local_origination_beats_everything() {
        let local = Route::originate(Prefix::new(0x0A000000, 8));
        let learned = route(&[1], (1, 0));
        let out = decide(&[learned, local], &DecisionConfig::default());
        assert_eq!(out.best, Some(1));
        assert_eq!(out.eliminated_at[0], Some(Step::LocalOrigination));
    }

    #[test]
    fn survivors_reported_for_potential_rib_out() {
        let a = route(&[2, 9], (2, 1));
        let b = route(&[2, 9], (2, 0));
        let mut c = route(&[2, 9, 9], (5, 0)); // longer, eliminated earlier
        c.as_path = AsPath::from_u32s(&[5, 8, 9]);
        let out = decide(&[a, b, c], &DecisionConfig::default());
        assert_eq!(out.tie_break_survivors(), vec![0, 1]);
    }
}
