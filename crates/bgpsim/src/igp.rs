//! Intra-domain (IGP) shortest-path substrate.
//!
//! The BGP decision process ranks otherwise-equal routes "according to the
//! IGP cost of the intra-domain path towards the next-hop... This rule
//! implements hot-potato routing" (§2). Quasi-routers in the paper's model
//! are deliberately isolated (no iBGP, §4.6) so the *model* never consults
//! the IGP; the *ground-truth* generator does, because intra-domain routing
//! is exactly what creates the route diversity the model must capture.

use crate::types::RouterId;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap};

/// A weighted, undirected intra-AS router graph with Dijkstra queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IgpTopology {
    nodes: Vec<RouterId>,
    #[serde(skip)]
    index: HashMap<RouterId, usize>,
    adj: Vec<Vec<(usize, u32)>>,
}

impl IgpTopology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures `router` exists as a node; returns its dense index.
    pub fn add_router(&mut self, router: RouterId) -> usize {
        if let Some(&i) = self.index.get(&router) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(router);
        self.adj.push(Vec::new());
        self.index.insert(router, i);
        i
    }

    /// Adds an undirected link of weight `w` (parallel links keep the
    /// cheapest one relevant; both are stored, Dijkstra picks the minimum).
    pub fn add_link(&mut self, a: RouterId, b: RouterId, w: u32) {
        let ia = self.add_router(a);
        let ib = self.add_router(b);
        self.adj[ia].push((ib, w));
        self.adj[ib].push((ia, w));
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no routers.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All routers in insertion order.
    pub fn routers(&self) -> &[RouterId] {
        &self.nodes
    }

    /// Rebuilds the index after deserialization (serde skips the map).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, i))
            .collect();
    }

    /// Dijkstra from `src`: cost to every reachable router.
    pub fn costs_from(&self, src: RouterId) -> HashMap<RouterId, u32> {
        let Some(&s) = self.index.get(&src) else {
            return HashMap::new();
        };
        let mut dist = vec![u32::MAX; self.nodes.len()];
        dist[s] = 0;
        // Max-heap on Reverse(cost) for a min-queue.
        let mut heap = BinaryHeap::new();
        heap.push(std::cmp::Reverse((0u32, s)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &(v, w) in &self.adj[u] {
                let nd = d.saturating_add(w);
                if nd < dist[v] {
                    dist[v] = nd;
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        self.nodes
            .iter()
            .zip(dist)
            .filter(|(_, d)| *d != u32::MAX)
            .map(|(&r, d)| (r, d))
            .collect()
    }

    /// Cost of the shortest path `a -> b`, or `None` if disconnected.
    pub fn cost(&self, a: RouterId, b: RouterId) -> Option<u32> {
        self.costs_from(a).get(&b).copied()
    }
}

/// Precomputed all-pairs IGP costs for one AS, for cheap repeated lookup
/// during simulation.
#[derive(Debug, Clone, Default)]
pub struct IgpCosts {
    costs: HashMap<(RouterId, RouterId), u32>,
}

impl IgpCosts {
    /// Runs Dijkstra from every node of `topo`.
    pub fn precompute(topo: &IgpTopology) -> Self {
        let mut costs = HashMap::new();
        for &src in topo.routers() {
            for (dst, c) in topo.costs_from(src) {
                costs.insert((src, dst), c);
            }
        }
        IgpCosts { costs }
    }

    /// Cost `a -> b`; `None` when disconnected or unknown.
    pub fn cost(&self, a: RouterId, b: RouterId) -> Option<u32> {
        if a == b {
            return Some(0);
        }
        self.costs.get(&(a, b)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Asn;

    fn r(i: u16) -> RouterId {
        RouterId::new(Asn(65000), i)
    }

    #[test]
    fn single_node_costs() {
        let mut t = IgpTopology::new();
        t.add_router(r(0));
        assert_eq!(t.cost(r(0), r(0)), Some(0));
        assert_eq!(t.cost(r(0), r(1)), None);
    }

    #[test]
    fn line_topology_accumulates() {
        let mut t = IgpTopology::new();
        t.add_link(r(0), r(1), 2);
        t.add_link(r(1), r(2), 3);
        assert_eq!(t.cost(r(0), r(2)), Some(5));
        assert_eq!(t.cost(r(2), r(0)), Some(5));
    }

    #[test]
    fn dijkstra_prefers_cheaper_detour() {
        let mut t = IgpTopology::new();
        t.add_link(r(0), r(1), 10);
        t.add_link(r(0), r(2), 1);
        t.add_link(r(2), r(1), 1);
        assert_eq!(t.cost(r(0), r(1)), Some(2));
    }

    #[test]
    fn parallel_links_use_minimum() {
        let mut t = IgpTopology::new();
        t.add_link(r(0), r(1), 7);
        t.add_link(r(0), r(1), 3);
        assert_eq!(t.cost(r(0), r(1)), Some(3));
    }

    #[test]
    fn disconnected_component_unreachable() {
        let mut t = IgpTopology::new();
        t.add_link(r(0), r(1), 1);
        t.add_link(r(2), r(3), 1);
        assert_eq!(t.cost(r(0), r(3)), None);
    }

    #[test]
    fn precomputed_costs_match_queries() {
        let mut t = IgpTopology::new();
        t.add_link(r(0), r(1), 2);
        t.add_link(r(1), r(2), 3);
        t.add_link(r(0), r(2), 10);
        let all = IgpCosts::precompute(&t);
        for a in 0..3u16 {
            for b in 0..3u16 {
                assert_eq!(all.cost(r(a), r(b)), t.cost(r(a), r(b)), "{a}->{b}");
            }
        }
    }
}
