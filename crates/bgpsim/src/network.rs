//! The simulated network: quasi-routers, BGP sessions, and per-session
//! directional policies.
//!
//! A [`Network`] is an immutable description once built; simulations
//! (one per prefix, as in the paper §4.2: "Since routing decisions are
//! determined independently for each prefix we run a separate simulation
//! for each prefix") borrow it read-only, so many prefixes can be simulated
//! concurrently from the same network.

use crate::decision::DecisionConfig;
use crate::error::SimError;
use crate::igp::{IgpCosts, IgpTopology};
use crate::policy::Policy;
use crate::types::{Asn, RouterId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// eBGP (inter-AS) or iBGP (intra-AS) session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SessionKind {
    /// External session between routers of different ASes.
    Ebgp,
    /// Internal session between routers of the same AS (full-mesh
    /// semantics: iBGP-learned routes are not re-advertised over iBGP).
    Ibgp,
}

/// Policies of one direction of a session (`src` announces to `dst`):
/// the export chain runs at `src`, the import chain at `dst`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DirectionPolicies {
    /// Applied at the announcing router before the route leaves.
    pub export: Policy,
    /// Applied at the receiving router before RIB-In installation.
    pub import: Policy,
}

/// A BGP session between two routers, with independent policies per
/// direction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Session {
    pub(crate) a: usize,
    pub(crate) b: usize,
    pub(crate) kind: SessionKind,
    /// Policies for the `a -> b` direction.
    pub(crate) a_to_b: DirectionPolicies,
    /// Policies for the `b -> a` direction.
    pub(crate) b_to_a: DirectionPolicies,
    /// RFC 4456: `a` treats `b` as its route-reflection client.
    pub(crate) a_has_client_b: bool,
    /// RFC 4456: `b` treats `a` as its route-reflection client.
    pub(crate) b_has_client_a: bool,
}

impl Session {
    /// Policies for announcements flowing `from -> to` (dense indices).
    pub(crate) fn direction(&self, from: usize) -> &DirectionPolicies {
        if from == self.a {
            &self.a_to_b
        } else {
            &self.b_to_a
        }
    }

    pub(crate) fn direction_mut(&mut self, from: usize) -> &mut DirectionPolicies {
        if from == self.a {
            &mut self.a_to_b
        } else {
            &mut self.b_to_a
        }
    }

    pub(crate) fn peer_of(&self, r: usize) -> usize {
        if r == self.a {
            self.b
        } else {
            self.a
        }
    }

    /// The session kind.
    pub fn kind(&self) -> SessionKind {
        self.kind
    }
}

/// A network of quasi-routers connected by BGP sessions.
///
/// ```
/// use quasar_bgpsim::prelude::*;
///
/// let mut net = Network::new(DecisionConfig::default());
/// let r1 = net.add_router(RouterId::new(Asn(1), 0));
/// let r2 = net.add_router(RouterId::new(Asn(2), 0));
/// net.add_session(r1, r2, SessionKind::Ebgp).unwrap();
/// let prefix = Prefix::for_origin(Asn(2));
/// let result = net.simulate(prefix, &[r2]).unwrap();
/// let best = result.best_route(r1).unwrap();
/// assert_eq!(best.as_path.to_string(), "2");
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Network {
    pub(crate) cfg: DecisionConfig,
    pub(crate) routers: Vec<RouterId>,
    /// Shared with every [`crate::engine::SimulationResult`] instead of
    /// cloned per simulation.
    #[serde(skip)]
    pub(crate) index: std::sync::Arc<HashMap<RouterId, usize>>,
    pub(crate) sessions: Vec<Session>,
    /// Per router: `(session index, peer dense index)`, sorted by peer
    /// RouterId for deterministic fan-out order.
    pub(crate) adj: Vec<Vec<(usize, usize)>>,
    /// Session lookup by unordered router pair.
    #[serde(skip)]
    pub(crate) session_index: HashMap<(RouterId, RouterId), usize>,
    /// Per-AS IGP used for iBGP hot-potato costs.
    #[serde(skip)]
    pub(crate) igp: HashMap<Asn, IgpCosts>,
    /// Upper bound on processed messages per prefix before declaring
    /// divergence. 0 means "auto": `max(10_000, 200 * sessions)`.
    pub message_budget: u64,
}

impl Network {
    /// An empty network with the given decision-process configuration.
    pub fn new(cfg: DecisionConfig) -> Self {
        Network {
            cfg,
            ..Self::default()
        }
    }

    /// The decision configuration in force.
    pub fn decision_config(&self) -> &DecisionConfig {
        &self.cfg
    }

    /// Adds a quasi-router (idempotent) and returns its id back for
    /// chaining convenience.
    pub fn add_router(&mut self, id: RouterId) -> RouterId {
        if !self.index.contains_key(&id) {
            std::sync::Arc::make_mut(&mut self.index).insert(id, self.routers.len());
            self.routers.push(id);
            self.adj.push(Vec::new());
        }
        id
    }

    /// True if `id` is a router of this network.
    pub fn has_router(&self, id: RouterId) -> bool {
        self.index.contains_key(&id)
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.routers.len()
    }

    /// Number of sessions.
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// All router ids in insertion order.
    pub fn routers(&self) -> &[RouterId] {
        &self.routers
    }

    /// All routers belonging to `asn`, sorted by index.
    pub fn routers_of(&self, asn: Asn) -> Vec<RouterId> {
        let mut v: Vec<RouterId> = self
            .routers
            .iter()
            .copied()
            .filter(|r| r.asn() == asn)
            .collect();
        v.sort();
        v
    }

    /// The eBGP/iBGP peers of `id`, sorted by RouterId.
    pub fn peers_of(&self, id: RouterId) -> Vec<RouterId> {
        let Some(&i) = self.index.get(&id) else {
            return Vec::new();
        };
        self.adj[i].iter().map(|&(_, p)| self.routers[p]).collect()
    }

    fn pair_key(a: RouterId, b: RouterId) -> (RouterId, RouterId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Creates a session between `a` and `b`. The kind must be consistent
    /// with AS membership (eBGP across ASes, iBGP within one).
    pub fn add_session(
        &mut self,
        a: RouterId,
        b: RouterId,
        kind: SessionKind,
    ) -> Result<(), SimError> {
        let ia = *self.index.get(&a).ok_or(SimError::UnknownRouter(a))?;
        let ib = *self.index.get(&b).ok_or(SimError::UnknownRouter(b))?;
        let same_as = a.asn() == b.asn();
        if (kind == SessionKind::Ebgp && same_as) || (kind == SessionKind::Ibgp && !same_as) {
            return Err(SimError::SessionKindMismatch(a, b));
        }
        let key = Self::pair_key(a, b);
        if self.session_index.contains_key(&key) {
            return Err(SimError::DuplicateSession(a, b));
        }
        let sid = self.sessions.len();
        self.sessions.push(Session {
            a: ia,
            b: ib,
            kind,
            a_to_b: DirectionPolicies::default(),
            b_to_a: DirectionPolicies::default(),
            a_has_client_b: false,
            b_has_client_a: false,
        });
        self.session_index.insert(key, sid);
        // Keep adjacency sorted by peer RouterId for determinism.
        let insert_sorted =
            |adj: &mut Vec<(usize, usize)>, entry: (usize, usize), ids: &[RouterId]| {
                let pos = adj
                    .binary_search_by_key(&ids[entry.1], |&(_, p)| ids[p])
                    .unwrap_or_else(|e| e);
                adj.insert(pos, entry);
            };
        insert_sorted(&mut self.adj[ia], (sid, ib), &self.routers);
        insert_sorted(&mut self.adj[ib], (sid, ia), &self.routers);
        Ok(())
    }

    /// True if a session (of any kind) exists between the two routers.
    pub fn has_session(&self, a: RouterId, b: RouterId) -> bool {
        self.session_index.contains_key(&Self::pair_key(a, b))
    }

    fn session_id(&self, a: RouterId, b: RouterId) -> Result<usize, SimError> {
        self.session_index
            .get(&Self::pair_key(a, b))
            .copied()
            .ok_or(SimError::NoSession(a, b))
    }

    /// Replaces the export policy applied at `from` for announcements
    /// towards `to`.
    pub fn set_export_policy(
        &mut self,
        from: RouterId,
        to: RouterId,
        policy: Policy,
    ) -> Result<(), SimError> {
        let sid = self.session_id(from, to)?;
        let ifrom = self.index[&from];
        self.sessions[sid].direction_mut(ifrom).export = policy;
        Ok(())
    }

    /// Replaces the import policy applied at `at` for announcements
    /// received from `from`.
    pub fn set_import_policy(
        &mut self,
        at: RouterId,
        from: RouterId,
        policy: Policy,
    ) -> Result<(), SimError> {
        let sid = self.session_id(from, at)?;
        let ifrom = self.index[&from];
        self.sessions[sid].direction_mut(ifrom).import = policy;
        Ok(())
    }

    /// Mutable access to the export policy at `from` towards `to`
    /// (creates nothing; the session must exist).
    pub fn export_policy_mut(
        &mut self,
        from: RouterId,
        to: RouterId,
    ) -> Result<&mut Policy, SimError> {
        let sid = self.session_id(from, to)?;
        let ifrom = self.index[&from];
        Ok(&mut self.sessions[sid].direction_mut(ifrom).export)
    }

    /// Mutable access to the import policy at `at` for routes from `from`.
    pub fn import_policy_mut(
        &mut self,
        at: RouterId,
        from: RouterId,
    ) -> Result<&mut Policy, SimError> {
        let sid = self.session_id(from, at)?;
        let ifrom = self.index[&from];
        Ok(&mut self.sessions[sid].direction_mut(ifrom).import)
    }

    /// Read access to the policies of the `from -> to` direction.
    pub fn direction_policies(
        &self,
        from: RouterId,
        to: RouterId,
    ) -> Result<&DirectionPolicies, SimError> {
        let sid = self.session_id(from, to)?;
        let ifrom = self.index[&from];
        Ok(self.sessions[sid].direction(ifrom))
    }

    /// RFC 4456 route reflection: marks `client` as a reflection client of
    /// `reflector` on their iBGP session. The reflector then re-advertises
    /// iBGP-learned routes: client routes to everyone, non-client routes to
    /// clients. ORIGINATOR_ID loop prevention is applied; CLUSTER_LIST is
    /// not modeled (avoid reflector cycles).
    pub fn set_rr_client(&mut self, reflector: RouterId, client: RouterId) -> Result<(), SimError> {
        let sid = self.session_id(reflector, client)?;
        let session = &mut self.sessions[sid];
        if session.kind != SessionKind::Ibgp {
            return Err(SimError::SessionKindMismatch(reflector, client));
        }
        let ir = self.index[&reflector];
        if session.a == ir {
            session.a_has_client_b = true;
        } else {
            session.b_has_client_a = true;
        }
        Ok(())
    }

    /// True if `reflector` treats `client` as its reflection client.
    pub fn is_rr_client(&self, reflector: RouterId, client: RouterId) -> bool {
        let Ok(sid) = self.session_id(reflector, client) else {
            return false;
        };
        let session = &self.sessions[sid];
        let ir = self.index[&reflector];
        if session.a == ir {
            session.a_has_client_b
        } else {
            session.b_has_client_a
        }
    }

    /// Installs the IGP topology of `asn`, used to cost iBGP-learned routes
    /// for hot-potato comparison.
    pub fn set_igp(&mut self, asn: Asn, topo: &IgpTopology) {
        self.igp.insert(asn, IgpCosts::precompute(topo));
    }

    pub(crate) fn igp_cost(&self, asn: Asn, from: RouterId, to: RouterId) -> u32 {
        self.igp
            .get(&asn)
            .and_then(|c| c.cost(from, to))
            // Without an IGP every internal hop costs 1.
            .unwrap_or(1)
    }

    /// Effective message budget per prefix.
    pub(crate) fn effective_budget(&self) -> u64 {
        if self.message_budget > 0 {
            self.message_budget
        } else {
            (200 * self.sessions.len() as u64).max(10_000)
        }
    }

    /// Rebuilds skipped lookup structures after deserialization.
    pub fn rebuild_indices(&mut self) {
        self.index = std::sync::Arc::new(
            self.routers
                .iter()
                .enumerate()
                .map(|(i, &r)| (r, i))
                .collect(),
        );
        self.session_index = self
            .sessions
            .iter()
            .enumerate()
            .map(|(sid, s)| (Self::pair_key(self.routers[s.a], self.routers[s.b]), sid))
            .collect();
    }

    /// Iterates both directions of every session as read-only views, in
    /// session insertion order (`a -> b` then `b -> a`). Static analyses
    /// walk every policy chain through this without needing mutable or
    /// index-level access.
    pub fn session_directions(&self) -> impl Iterator<Item = SessionDirectionView<'_>> + '_ {
        self.sessions.iter().flat_map(move |s| {
            let a = self.routers[s.a];
            let b = self.routers[s.b];
            [
                SessionDirectionView {
                    from: a,
                    to: b,
                    kind: s.kind,
                    from_has_client_to: s.a_has_client_b,
                    policies: &s.a_to_b,
                },
                SessionDirectionView {
                    from: b,
                    to: a,
                    kind: s.kind,
                    from_has_client_to: s.b_has_client_a,
                    policies: &s.b_to_a,
                },
            ]
        })
    }

    /// Structural validation over the serialized fields only, so it is
    /// safe (and intended) to run on freshly deserialized data *before*
    /// [`Network::rebuild_indices`], which indexes into `routers` and
    /// would panic on out-of-bounds session endpoints.
    pub fn check_structure(&self) -> Result<(), String> {
        let n = self.routers.len();
        let mut seen = HashMap::with_capacity(n);
        for (i, &r) in self.routers.iter().enumerate() {
            if let Some(first) = seen.insert(r, i) {
                return Err(format!(
                    "duplicate quasi-router {r} (indices {first} and {i})"
                ));
            }
        }
        if self.adj.len() != n {
            return Err(format!(
                "adjacency table covers {} routers but {n} exist",
                self.adj.len()
            ));
        }
        let mut pairs = HashMap::with_capacity(self.sessions.len());
        for (sid, s) in self.sessions.iter().enumerate() {
            if s.a >= n || s.b >= n {
                return Err(format!(
                    "session {sid} references router index {} but only {n} routers exist",
                    s.a.max(s.b)
                ));
            }
            let (ra, rb) = (self.routers[s.a], self.routers[s.b]);
            if s.a == s.b {
                return Err(format!("session {sid} connects {ra} to itself"));
            }
            let same_as = ra.asn() == rb.asn();
            if (s.kind == SessionKind::Ebgp && same_as) || (s.kind == SessionKind::Ibgp && !same_as)
            {
                return Err(format!(
                    "session {sid} ({ra} -- {rb}) kind {:?} contradicts AS membership",
                    s.kind
                ));
            }
            if let Some(first) = pairs.insert(Self::pair_key(ra, rb), sid) {
                return Err(format!(
                    "duplicate session between {ra} and {rb} (sessions {first} and {sid})"
                ));
            }
        }
        for (i, edges) in self.adj.iter().enumerate() {
            for &(sid, peer) in edges {
                let valid = self
                    .sessions
                    .get(sid)
                    .is_some_and(|s| (s.a == i && s.b == peer) || (s.b == i && s.a == peer));
                if !valid {
                    return Err(format!(
                        "adjacency of router index {i} names session {sid} / peer {peer} \
                         which does not connect them"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Read-only view of one direction of a session: announcements flow
/// `from -> to` through `policies.export` (applied at `from`) and then
/// `policies.import` (applied at `to`).
#[derive(Debug, Clone, Copy)]
pub struct SessionDirectionView<'a> {
    /// Announcing router.
    pub from: RouterId,
    /// Receiving router.
    pub to: RouterId,
    /// Session kind shared by both directions.
    pub kind: SessionKind,
    /// RFC 4456: `from` treats `to` as its route-reflection client.
    pub from_has_client_to: bool,
    /// The policy chains of this direction.
    pub policies: &'a DirectionPolicies,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Prefix;

    fn rid(asn: u32, idx: u16) -> RouterId {
        RouterId::new(Asn(asn), idx)
    }

    #[test]
    fn add_router_is_idempotent() {
        let mut net = Network::new(DecisionConfig::default());
        net.add_router(rid(1, 0));
        net.add_router(rid(1, 0));
        assert_eq!(net.num_routers(), 1);
    }

    #[test]
    fn session_kind_must_match_as_membership() {
        let mut net = Network::new(DecisionConfig::default());
        net.add_router(rid(1, 0));
        net.add_router(rid(1, 1));
        net.add_router(rid(2, 0));
        assert!(matches!(
            net.add_session(rid(1, 0), rid(1, 1), SessionKind::Ebgp),
            Err(SimError::SessionKindMismatch(..))
        ));
        assert!(matches!(
            net.add_session(rid(1, 0), rid(2, 0), SessionKind::Ibgp),
            Err(SimError::SessionKindMismatch(..))
        ));
        assert!(net
            .add_session(rid(1, 0), rid(1, 1), SessionKind::Ibgp)
            .is_ok());
        assert!(net
            .add_session(rid(1, 0), rid(2, 0), SessionKind::Ebgp)
            .is_ok());
    }

    #[test]
    fn duplicate_session_rejected() {
        let mut net = Network::new(DecisionConfig::default());
        net.add_router(rid(1, 0));
        net.add_router(rid(2, 0));
        net.add_session(rid(1, 0), rid(2, 0), SessionKind::Ebgp)
            .unwrap();
        assert!(matches!(
            net.add_session(rid(2, 0), rid(1, 0), SessionKind::Ebgp),
            Err(SimError::DuplicateSession(..))
        ));
    }

    #[test]
    fn unknown_router_in_session() {
        let mut net = Network::new(DecisionConfig::default());
        net.add_router(rid(1, 0));
        assert!(matches!(
            net.add_session(rid(1, 0), rid(2, 0), SessionKind::Ebgp),
            Err(SimError::UnknownRouter(_))
        ));
    }

    #[test]
    fn peers_sorted_by_router_id() {
        let mut net = Network::new(DecisionConfig::default());
        for a in [5u32, 3, 9, 1] {
            net.add_router(rid(a, 0));
        }
        net.add_router(rid(4, 0));
        for a in [5u32, 3, 9, 1] {
            net.add_session(rid(4, 0), rid(a, 0), SessionKind::Ebgp)
                .unwrap();
        }
        let peers = net.peers_of(rid(4, 0));
        assert_eq!(peers, vec![rid(1, 0), rid(3, 0), rid(5, 0), rid(9, 0)]);
    }

    #[test]
    fn routers_of_filters_by_asn() {
        let mut net = Network::new(DecisionConfig::default());
        net.add_router(rid(1, 1));
        net.add_router(rid(1, 0));
        net.add_router(rid(2, 0));
        assert_eq!(net.routers_of(Asn(1)), vec![rid(1, 0), rid(1, 1)]);
    }

    #[test]
    fn policies_settable_per_direction() {
        use crate::policy::{Action, Policy, PolicyRule, RouteMatch};
        let mut net = Network::new(DecisionConfig::default());
        net.add_router(rid(1, 0));
        net.add_router(rid(2, 0));
        net.add_session(rid(1, 0), rid(2, 0), SessionKind::Ebgp)
            .unwrap();
        let mut p = Policy::permit_all();
        p.push(PolicyRule::new(
            RouteMatch::prefix(Prefix::for_origin(Asn(9))),
            Action::Deny,
        ));
        net.set_export_policy(rid(1, 0), rid(2, 0), p.clone())
            .unwrap();
        let d = net.direction_policies(rid(1, 0), rid(2, 0)).unwrap();
        assert_eq!(d.export.rules().len(), 1);
        // Opposite direction untouched.
        let d2 = net.direction_policies(rid(2, 0), rid(1, 0)).unwrap();
        assert!(d2.export.is_empty());
    }

    #[test]
    fn budget_auto_scales_with_sessions() {
        let net = Network::new(DecisionConfig::default());
        assert_eq!(net.effective_budget(), 10_000);
    }

    #[test]
    fn session_directions_cover_both_ways() {
        let mut net = Network::new(DecisionConfig::default());
        net.add_router(rid(1, 0));
        net.add_router(rid(2, 0));
        net.add_session(rid(1, 0), rid(2, 0), SessionKind::Ebgp)
            .unwrap();
        let dirs: Vec<_> = net.session_directions().collect();
        assert_eq!(dirs.len(), 2);
        assert_eq!((dirs[0].from, dirs[0].to), (rid(1, 0), rid(2, 0)));
        assert_eq!((dirs[1].from, dirs[1].to), (rid(2, 0), rid(1, 0)));
        assert!(dirs.iter().all(|d| d.kind == SessionKind::Ebgp));
    }

    #[test]
    fn check_structure_accepts_well_formed_networks() {
        let mut net = Network::new(DecisionConfig::default());
        net.add_router(rid(1, 0));
        net.add_router(rid(1, 1));
        net.add_router(rid(2, 0));
        net.add_session(rid(1, 0), rid(1, 1), SessionKind::Ibgp)
            .unwrap();
        net.add_session(rid(1, 0), rid(2, 0), SessionKind::Ebgp)
            .unwrap();
        assert!(net.check_structure().is_ok());
    }

    #[test]
    fn check_structure_catches_out_of_bounds_session() {
        let mut net = Network::new(DecisionConfig::default());
        net.add_router(rid(1, 0));
        net.add_router(rid(2, 0));
        net.add_session(rid(1, 0), rid(2, 0), SessionKind::Ebgp)
            .unwrap();
        net.sessions[0].b = 999;
        let err = net.check_structure().unwrap_err();
        assert!(err.contains("999"), "unexpected message: {err}");
    }

    #[test]
    fn check_structure_catches_kind_mismatch_and_duplicates() {
        let mut net = Network::new(DecisionConfig::default());
        net.add_router(rid(1, 0));
        net.add_router(rid(2, 0));
        net.add_session(rid(1, 0), rid(2, 0), SessionKind::Ebgp)
            .unwrap();
        net.sessions[0].kind = SessionKind::Ibgp;
        assert!(net.check_structure().is_err());
        net.sessions[0].kind = SessionKind::Ebgp;
        let dup = net.sessions[0].clone();
        net.sessions.push(dup);
        let err = net.check_structure().unwrap_err();
        assert!(
            err.contains("duplicate session"),
            "unexpected message: {err}"
        );
    }

    #[test]
    fn check_structure_catches_duplicate_router() {
        let mut net = Network::new(DecisionConfig::default());
        net.add_router(rid(1, 0));
        net.routers.push(rid(1, 0));
        net.adj.push(Vec::new());
        assert!(net.check_structure().is_err());
    }
}
