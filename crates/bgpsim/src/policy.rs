//! Import/export routing policies.
//!
//! The paper is deliberately agnostic about policy *semantics*: its
//! refinement heuristic only ever installs two kinds of rule — a per-prefix
//! egress **filter** at an announcing neighbor, and a per-prefix **MED
//! ranking** at the receiving quasi-router (§4.6). The relationship-based
//! baseline of §3.3 additionally needs local-pref classes and valley-free
//! export scoping. This module provides a small rule language covering all
//! of these: an ordered list of [`PolicyRule`]s, each a [`RouteMatch`] plus
//! an [`Action`], evaluated first-match-modifies, with terminal
//! accept/deny.

use crate::aspath::AsPathPattern;
use crate::route::Route;
use crate::types::{Asn, Prefix};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Predicate over a route. All present fields must match (conjunction);
/// absent fields match anything.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteMatch {
    /// Exact destination prefix.
    pub prefix: Option<Prefix>,
    /// AS the route was learned from (import) / the first AS of the path.
    pub from_asn: Option<Asn>,
    /// Origin AS of the route's path (its last element). Lets the Gao
    /// baseline scope rules to routes of a given origin.
    pub origin_asn: Option<Asn>,
    /// Exact AS-path-length requirement — the refinement heuristic filters
    /// "routes with shorter AS-paths than the route we are looking for"
    /// (§4.6), expressed as a max-length deny.
    pub path_shorter_than: Option<usize>,
    /// Matches routes whose local-pref is strictly below this value. Lets
    /// relationship policies express the valley-free export rule ("only
    /// customer routes leave towards peers/providers") as a deny on
    /// lower-preference classes.
    pub local_pref_below: Option<u32>,
    /// Matches routes carrying this RFC 1997 community.
    pub has_community: Option<u32>,
    /// Matches routes whose AS-path matches this pattern (router-style
    /// as-path access list, see [`AsPathPattern`]).
    pub path_pattern: Option<AsPathPattern>,
}

impl RouteMatch {
    /// Match any route.
    pub fn any() -> Self {
        Self::default()
    }

    /// Match routes for an exact prefix.
    pub fn prefix(prefix: Prefix) -> Self {
        RouteMatch {
            prefix: Some(prefix),
            ..Self::default()
        }
    }

    /// True if `route` satisfies every present predicate.
    pub fn matches(&self, route: &Route) -> bool {
        if let Some(p) = self.prefix {
            if route.prefix != p {
                return false;
            }
        }
        if let Some(a) = self.from_asn {
            if route.from_asn != Some(a) {
                return false;
            }
        }
        if let Some(o) = self.origin_asn {
            if route.as_path.origin() != Some(o) {
                return false;
            }
        }
        if let Some(n) = self.path_shorter_than {
            if route.as_path.len() >= n {
                return false;
            }
        }
        if let Some(lp) = self.local_pref_below {
            if route.local_pref >= lp {
                return false;
            }
        }
        if let Some(c) = self.has_community {
            if !route.has_community(c) {
                return false;
            }
        }
        if let Some(pat) = &self.path_pattern {
            if !pat.matches(&route.as_path) {
                return false;
            }
        }
        true
    }
}

/// What to do with a matching route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Drop the route; evaluation stops.
    Deny,
    /// Accept the route as-is; evaluation stops.
    Accept,
    /// Set local-preference and continue evaluating later rules.
    SetLocalPref(u32),
    /// Set MED and continue evaluating later rules.
    SetMed(u32),
    /// Attach an RFC 1997 community and continue.
    AddCommunity(u32),
    /// Strip an RFC 1997 community and continue.
    RemoveCommunity(u32),
}

/// One policy rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyRule {
    /// Which routes the rule applies to.
    pub matcher: RouteMatch,
    /// What happens to them.
    pub action: Action,
}

impl PolicyRule {
    /// Convenience constructor.
    pub fn new(matcher: RouteMatch, action: Action) -> Self {
        PolicyRule { matcher, action }
    }
}

/// An ordered rule chain applied on import or export.
///
/// Evaluation: rules are scanned in order; a matching `Deny` drops the
/// route, a matching `Accept` stops with the route as modified so far, and
/// matching `Set*` actions modify the route and continue. A route reaching
/// the end of the chain is accepted.
///
/// The rule chain is behind an [`Arc`]: cloning a policy (and anything
/// containing one, like a whole network snapshot) is a refcount bump, and
/// the chain is deep-copied only when a clone actually mutates it. The
/// serialized form is unchanged — a plain `rules` list.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Policy {
    #[serde(with = "arc_rules")]
    rules: Arc<Vec<PolicyRule>>,
}

/// Serializes the shared rule chain as the plain `Vec` it wraps, keeping
/// the on-disk shape identical to the pre-Arc representation.
mod arc_rules {
    use super::PolicyRule;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::sync::Arc;

    pub fn serialize<S: Serializer>(rules: &Arc<Vec<PolicyRule>>, s: S) -> Result<S::Ok, S::Error> {
        rules.as_slice().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Arc<Vec<PolicyRule>>, D::Error> {
        Vec::deserialize(d).map(Arc::new)
    }
}

impl Policy {
    /// The empty, accept-everything policy.
    pub fn permit_all() -> Self {
        Self::default()
    }

    /// Builds a policy from rules.
    pub fn new(rules: Vec<PolicyRule>) -> Self {
        Policy {
            rules: Arc::new(rules),
        }
    }

    /// True if the chain has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Read access to the rules (used by the refinement heuristic's
    /// filter-deletion pass, §4.6).
    pub fn rules(&self) -> &[PolicyRule] {
        &self.rules
    }

    /// Appends a rule at the end of the chain.
    pub fn push(&mut self, rule: PolicyRule) {
        Arc::make_mut(&mut self.rules).push(rule);
    }

    /// Inserts a rule at the front of the chain (highest priority).
    pub fn push_front(&mut self, rule: PolicyRule) {
        Arc::make_mut(&mut self.rules).insert(0, rule);
    }

    /// Removes every rule for which `pred` returns true; returns how many
    /// were removed. Used to delete blocking filters (§4.6, Figure 7).
    /// The chain is only deep-copied when something actually matches.
    pub fn remove_rules(&mut self, pred: impl Fn(&PolicyRule) -> bool) -> usize {
        let matching = self.rules.iter().filter(|r| pred(r)).count();
        if matching > 0 {
            Arc::make_mut(&mut self.rules).retain(|r| !pred(r));
        }
        matching
    }

    /// Applies the chain to `route`. Returns the (possibly modified) route,
    /// or `None` if it was denied.
    pub fn apply(&self, route: &Route) -> Option<Route> {
        let mut out = route.clone();
        for rule in self.rules.iter() {
            if !rule.matcher.matches(&out) {
                continue;
            }
            match rule.action {
                Action::Deny => return None,
                Action::Accept => return Some(out),
                Action::SetLocalPref(lp) => out.local_pref = lp,
                Action::SetMed(m) => out.med = Some(m),
                Action::AddCommunity(c) => out.add_community(c),
                Action::RemoveCommunity(c) => out.remove_community(c),
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspath::AsPath;
    use crate::route::{LearnedVia, Origin};
    use crate::types::RouterId;

    fn route(path: &[u32], prefix: Prefix) -> Route {
        Route {
            prefix,
            as_path: AsPath::from_u32s(path),
            local_pref: 100,
            med: None,
            origin: Origin::Igp,
            from_router: Some(RouterId::new(Asn(path[0]), 0)),
            from_asn: Some(Asn(path[0])),
            learned: LearnedVia::Ebgp,
            igp_cost: 0,
            communities: Vec::new(),
            originator: None,
        }
    }

    fn pfx() -> Prefix {
        Prefix::new(0x0A000000, 8)
    }

    #[test]
    fn empty_policy_accepts_unchanged() {
        let r = route(&[1, 2], pfx());
        assert_eq!(Policy::permit_all().apply(&r), Some(r));
    }

    #[test]
    fn deny_by_prefix() {
        let mut p = Policy::permit_all();
        p.push(PolicyRule::new(RouteMatch::prefix(pfx()), Action::Deny));
        assert_eq!(p.apply(&route(&[1, 2], pfx())), None);
        let other = Prefix::new(0x0B000000, 8);
        assert!(p.apply(&route(&[1, 2], other)).is_some());
    }

    #[test]
    fn set_med_continues_then_accepts() {
        let mut p = Policy::permit_all();
        p.push(PolicyRule::new(
            RouteMatch {
                from_asn: Some(Asn(1)),
                ..RouteMatch::any()
            },
            Action::SetMed(5),
        ));
        p.push(PolicyRule::new(RouteMatch::any(), Action::SetLocalPref(90)));
        let out = p.apply(&route(&[1, 2], pfx())).unwrap();
        assert_eq!(out.med, Some(5));
        assert_eq!(out.local_pref, 90);
    }

    #[test]
    fn accept_short_circuits() {
        let mut p = Policy::permit_all();
        p.push(PolicyRule::new(RouteMatch::any(), Action::Accept));
        p.push(PolicyRule::new(RouteMatch::any(), Action::Deny));
        assert!(p.apply(&route(&[1, 2], pfx())).is_some());
    }

    #[test]
    fn shorter_path_filter_matches_only_shorter() {
        // The refinement heuristic installs "deny routes for p with AS-path
        // shorter than n" at the announcing neighbor.
        let mut p = Policy::permit_all();
        p.push(PolicyRule::new(
            RouteMatch {
                prefix: Some(pfx()),
                path_shorter_than: Some(3),
                ..RouteMatch::any()
            },
            Action::Deny,
        ));
        assert_eq!(p.apply(&route(&[1, 2], pfx())), None); // len 2 < 3: denied
        assert!(p.apply(&route(&[1, 2, 3], pfx())).is_some()); // len 3: kept
    }

    #[test]
    fn origin_asn_match() {
        let m = RouteMatch {
            origin_asn: Some(Asn(2)),
            ..RouteMatch::any()
        };
        assert!(m.matches(&route(&[1, 2], pfx())));
        assert!(!m.matches(&route(&[1, 3], pfx())));
    }

    #[test]
    fn community_match_and_actions() {
        let mut p = Policy::permit_all();
        p.push(PolicyRule::new(RouteMatch::any(), Action::AddCommunity(77)));
        p.push(PolicyRule::new(
            RouteMatch {
                has_community: Some(77),
                ..RouteMatch::any()
            },
            Action::SetLocalPref(55),
        ));
        let out = p.apply(&route(&[1, 2], pfx())).unwrap();
        assert!(out.has_community(77));
        assert_eq!(out.local_pref, 55);

        let mut strip = Policy::permit_all();
        strip.push(PolicyRule::new(
            RouteMatch::any(),
            Action::RemoveCommunity(77),
        ));
        let stripped = strip.apply(&out).unwrap();
        assert!(!stripped.has_community(77));
    }

    #[test]
    fn deny_by_community() {
        let mut p = Policy::permit_all();
        p.push(PolicyRule::new(
            RouteMatch {
                has_community: Some(9),
                ..RouteMatch::any()
            },
            Action::Deny,
        ));
        let mut r = route(&[1, 2], pfx());
        assert!(p.apply(&r).is_some());
        r.add_community(9);
        assert!(p.apply(&r).is_none());
    }

    #[test]
    fn path_pattern_matcher() {
        let mut p = Policy::permit_all();
        p.push(PolicyRule::new(
            RouteMatch {
                path_pattern: AsPathPattern::parse("_2_"),
                ..RouteMatch::any()
            },
            Action::Deny,
        ));
        assert!(p.apply(&route(&[1, 2], pfx())).is_none());
        assert!(p.apply(&route(&[1, 3], pfx())).is_some());
    }

    #[test]
    fn remove_rules_deletes_matching() {
        let mut p = Policy::permit_all();
        p.push(PolicyRule::new(RouteMatch::prefix(pfx()), Action::Deny));
        p.push(PolicyRule::new(RouteMatch::any(), Action::SetMed(1)));
        let removed = p.remove_rules(|r| r.action == Action::Deny);
        assert_eq!(removed, 1);
        assert_eq!(p.rules().len(), 1);
    }
}
