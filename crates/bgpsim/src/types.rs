//! Fundamental identifier types shared by every layer of the simulator.
//!
//! The paper models the Internet as a set of autonomous systems ([`Asn`]),
//! each containing one or more quasi-routers ([`RouterId`]), announcing
//! destination prefixes ([`Prefix`]). Router identifiers follow the paper's
//! §4.5 convention: the high-order 16 bits carry the AS number and the
//! low-order 16 bits a per-AS index, so the final BGP tie-break ("lowest
//! router-id") is deterministic and reconstructible from the model alone.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An Autonomous System number.
///
/// The simulator supports the classic 16-bit space used by the paper's 2005
/// dataset; the inner representation is `u32` so 32-bit ASNs from modern MRT
/// dumps can still round-trip through the [`crate::aspath::AsPath`] type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl Asn {
    /// The reserved ASN 0, used as a sentinel for "no AS".
    pub const RESERVED: Asn = Asn(0);

    /// Returns true if this ASN fits the classic 16-bit space.
    pub fn is_16bit(self) -> bool {
        self.0 <= u16::MAX as u32
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl std::str::FromStr for Asn {
    type Err = String;

    /// Parses `"7018"` or `"AS7018"` (case-insensitive prefix).
    fn from_str(s: &str) -> Result<Self, String> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .unwrap_or(s);
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| format!("invalid AS number `{s}`"))
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

impl From<u16> for Asn {
    fn from(v: u16) -> Self {
        Asn(v as u32)
    }
}

/// Identifier of a quasi-router: `(ASN << 16) | index`.
///
/// This mirrors the paper's IP-address assignment (§4.5): "the high order 16
/// bits are set to the AS number and the low order bits are a unique ID for
/// each quasi-router within the AS". Ordering of `RouterId` therefore orders
/// first by AS and then by per-AS index, exactly reproducing the "lowest
/// neighbor IP address" tie-break semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RouterId(pub u32);

impl RouterId {
    /// Builds a router id from an AS number and a per-AS quasi-router index.
    ///
    /// # Panics
    /// Panics if the ASN does not fit in 16 bits (the id encoding reserves
    /// exactly 16 bits for it, as in the paper).
    pub fn new(asn: Asn, index: u16) -> Self {
        assert!(
            asn.is_16bit(),
            "RouterId encoding requires a 16-bit ASN, got {asn}"
        );
        RouterId((asn.0 << 16) | index as u32)
    }

    /// The AS this quasi-router belongs to.
    pub fn asn(self) -> Asn {
        Asn(self.0 >> 16)
    }

    /// The per-AS quasi-router index.
    pub fn index(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}.{}", self.asn().0, self.index())
    }
}

/// A destination prefix.
///
/// The refinement methodology originates one prefix per AS (§4.1), so a
/// prefix is identified by an opaque index plus the AS that originates it;
/// a concrete IPv4 representation (`base/len`) is kept so feeds can be
/// exported to and imported from MRT dumps losslessly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    /// Network address in host byte order.
    pub base: u32,
    /// Prefix length in bits (0..=32).
    pub len: u8,
}

impl Prefix {
    /// Builds a prefix, masking `base` down to `len` bits.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(base: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range");
        Prefix {
            base: base & Self::mask(len),
            len,
        }
    }

    /// The canonical per-AS experiment prefix used by the paper's
    /// methodology ("we only originate one prefix per AS", §4.1): the 0th
    /// slot of [`Prefix::for_origin_nth`].
    pub fn for_origin(asn: Asn) -> Self {
        Self::for_origin_nth(asn, 0)
    }

    /// The `n`-th /24 assigned to an origin AS (n < 8). Real origins
    /// announce many prefixes; the synthetic Internet gives multihomed
    /// origins several so per-prefix policies can differentiate them.
    ///
    /// # Panics
    /// Panics if `n >= 8` or the ASN exceeds 16 bits (the packing allots
    /// 3 bits per AS within the 24-bit network space).
    pub fn for_origin_nth(asn: Asn, n: u8) -> Self {
        assert!(n < 8, "at most 8 prefixes per origin, got slot {n}");
        assert!(asn.is_16bit(), "origin packing requires 16-bit ASN");
        Prefix::new((asn.0 * 8 + n as u32) << 8, 24)
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// True if `self` contains `other` (i.e. `other` is a more-specific of
    /// `self` or equal).
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && (other.base & Self::mask(self.len)) == self.base
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.base;
        write!(
            f,
            "{}.{}.{}.{}/{}",
            (b >> 24) & 0xFF,
            (b >> 16) & 0xFF,
            (b >> 8) & 0xFF,
            b & 0xFF,
            self.len
        )
    }
}

impl std::str::FromStr for Prefix {
    type Err = String;

    /// Parses dotted-quad CIDR notation (`"10.0.4.0/24"`), masking host
    /// bits like [`Prefix::new`]. This is the wire form used by the
    /// `quasar-serve` protocol and the CLI.
    fn from_str(s: &str) -> Result<Self, String> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| format!("prefix `{s}` is missing its /length"))?;
        let len: u8 = len
            .parse()
            .map_err(|_| format!("invalid prefix length in `{s}`"))?;
        if len > 32 {
            return Err(format!("prefix length {len} out of range in `{s}`"));
        }
        let octets: Vec<&str> = addr.split('.').collect();
        if octets.len() != 4 {
            return Err(format!("prefix address `{addr}` is not a dotted quad"));
        }
        let mut base = 0u32;
        for o in octets {
            let v: u8 = o
                .parse()
                .map_err(|_| format!("invalid octet `{o}` in prefix `{s}`"))?;
            base = (base << 8) | v as u32;
        }
        Ok(Prefix::new(base, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_id_packs_asn_and_index() {
        let id = RouterId::new(Asn(3356), 7);
        assert_eq!(id.asn(), Asn(3356));
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn router_id_orders_by_asn_then_index() {
        let a = RouterId::new(Asn(100), 5);
        let b = RouterId::new(Asn(100), 6);
        let c = RouterId::new(Asn(101), 0);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    #[should_panic(expected = "16-bit ASN")]
    fn router_id_rejects_wide_asn() {
        let _ = RouterId::new(Asn(70_000), 0);
    }

    #[test]
    fn prefix_masks_host_bits() {
        let p = Prefix::new(0x0A0B0C0D, 16);
        assert_eq!(p.base, 0x0A0B0000);
        assert_eq!(p.to_string(), "10.11.0.0/16");
    }

    #[test]
    fn prefix_covers_more_specific() {
        let covering = Prefix::new(0x0A000000, 8);
        let specific = Prefix::new(0x0A010200, 24);
        assert!(covering.covers(&specific));
        assert!(!specific.covers(&covering));
        assert!(covering.covers(&covering));
    }

    #[test]
    fn per_origin_prefixes_are_distinct() {
        let p1 = Prefix::for_origin(Asn(1));
        let p2 = Prefix::for_origin(Asn(2));
        assert_ne!(p1, p2);
        assert_eq!(p1.len, 24);
    }

    #[test]
    fn origin_prefix_slots_never_collide() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for asn in [1u32, 2, 100, 65535] {
            for n in 0..8u8 {
                assert!(seen.insert(Prefix::for_origin_nth(Asn(asn), n)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most 8")]
    fn origin_prefix_slot_bounded() {
        let _ = Prefix::for_origin_nth(Asn(1), 8);
    }

    #[test]
    fn zero_length_prefix_covers_everything() {
        let default = Prefix::new(0, 0);
        assert!(default.covers(&Prefix::new(0xFFFFFFFF, 32)));
    }

    #[test]
    fn asn_display() {
        assert_eq!(Asn(7018).to_string(), "AS7018");
        assert_eq!(RouterId::new(Asn(7018), 2).to_string(), "r7018.2");
    }

    #[test]
    fn asn_parses_with_and_without_prefix() {
        assert_eq!("7018".parse::<Asn>().unwrap(), Asn(7018));
        assert_eq!("AS7018".parse::<Asn>().unwrap(), Asn(7018));
        assert_eq!("as7018".parse::<Asn>().unwrap(), Asn(7018));
        assert!("ASx".parse::<Asn>().is_err());
        assert!("".parse::<Asn>().is_err());
    }

    #[test]
    fn prefix_roundtrips_through_display_and_fromstr() {
        for p in [
            Prefix::for_origin(Asn(5)),
            Prefix::new(0x0A0B0C00, 24),
            Prefix::new(0, 0),
            Prefix::new(0xFFFFFFFF, 32),
        ] {
            let parsed: Prefix = p.to_string().parse().unwrap();
            assert_eq!(parsed, p);
        }
    }

    #[test]
    fn prefix_fromstr_masks_host_bits_and_rejects_garbage() {
        let p: Prefix = "10.11.12.13/16".parse().unwrap();
        assert_eq!(p, Prefix::new(0x0A0B0000, 16));
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0/24".parse::<Prefix>().is_err());
        assert!("10.0.0.256/24".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("a.b.c.d/8".parse::<Prefix>().is_err());
    }
}
