//! Seeded, deterministic failpoint registry (compiled only with the
//! `testkit` cargo feature).
//!
//! A *failpoint* is a named hook compiled into production code paths —
//! the engine's simulation entry, refinement's fix application, the
//! server's worker loop — that tests can arm to inject a fault exactly
//! where real failures would surface: an I/O-style error, a delayed
//! wakeup, or a panic (which, inside a lock's critical section, exercises
//! the poisoned-lock recovery paths). Unarmed points cost one mutex-map
//! lookup; in builds without the `testkit` feature the call sites are
//! compiled out entirely, so production binaries carry no trace of the
//! registry.
//!
//! Determinism: every probabilistic trigger (`1inN`) is driven by a
//! SplitMix64 stream derived from the registry seed, the point's name,
//! and the point's evaluation counter — never from wall-clock time or a
//! global RNG — so a test that sets `reset(seed)` sees the exact same
//! fault schedule on every run, on every machine, at any parallelism.
//!
//! ```
//! use quasar_bgpsim::fail;
//!
//! fail::reset(42);
//! fail::set("engine.simulate", "1in3:error");
//! // ... run the workload; exactly the same simulations fail each run.
//! assert!(fail::evaluations("engine.simulate") >= fail::fired("engine.simulate"));
//! fail::clear_all();
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// What an armed failpoint does when it triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Inject an error: the instrumented site maps this to its native
    /// error type (e.g. [`crate::error::SimError::Injected`]).
    Error,
    /// Sleep for the given duration before continuing — a delayed wakeup
    /// that shakes out scheduling-dependent behavior.
    Delay(Duration),
    /// Panic with a recognizable message. Inside a critical section this
    /// poisons the enclosing `std::sync` lock.
    Panic,
}

/// When an armed failpoint triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trigger {
    /// Every evaluation.
    Always,
    /// Only the first evaluation after arming.
    Once,
    /// Deterministically pseudo-randomly, one evaluation in `n` on
    /// average (seeded — the schedule is identical across runs).
    OneIn(u64),
    /// Exactly on the `n`-th evaluation after arming (1-based), never
    /// again — "kill the process at round 3" style tests.
    At(u64),
}

/// One armed point's configuration and counters.
#[derive(Debug, Clone)]
struct Point {
    trigger: Trigger,
    action: FailAction,
    evaluations: u64,
    fired: u64,
}

/// Registry state: the seed and the armed points. Counters for points
/// that were never armed are tracked too, so tests can assert coverage
/// ("this code path was actually reached N times").
struct Registry {
    seed: u64,
    points: HashMap<String, Point>,
    /// Evaluations of *unarmed* points, by name.
    touched: HashMap<String, u64>,
}

static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
/// Generation counter: bumped by [`reset`]/[`clear_all`] so long-lived
/// readers can detect reconfiguration (used by tests only).
static GENERATION: AtomicU64 = AtomicU64::new(0);

fn registry() -> MutexGuard<'static, Registry> {
    REGISTRY
        .get_or_init(|| {
            Mutex::new(Registry {
                seed: 0,
                points: HashMap::new(),
                touched: HashMap::new(),
            })
        })
        .lock()
        // The registry must stay usable after an injected panic poisoned
        // it — poisoning *is* one of the faults this module injects.
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// FNV-1a over a name: stable point-identity hash mixed into the stream.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 output function: one statistically solid 64-bit draw per
/// distinct input, with no retained state to share across threads.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Clears every point and counter and installs a new seed. Call first in
/// every test that arms failpoints.
pub fn reset(seed: u64) {
    let mut reg = registry();
    reg.seed = seed;
    reg.points.clear();
    reg.touched.clear();
    GENERATION.fetch_add(1, Ordering::SeqCst);
}

/// Disarms every point but keeps the seed and touch counters.
pub fn clear_all() {
    registry().points.clear();
    GENERATION.fetch_add(1, Ordering::SeqCst);
}

/// Disarms one point.
pub fn clear(name: &str) {
    registry().points.remove(name);
}

/// The current configuration generation (bumped by [`reset`] /
/// [`clear_all`]).
pub fn generation() -> u64 {
    GENERATION.load(Ordering::SeqCst)
}

/// Arms `name` with a spec string: `"<trigger>:<action>"` where trigger
/// is `always`, `once`, `1inN` or `atN` (fires exactly on the N-th
/// evaluation, 1-based), and action is `error`, `panic` or `delay:<ms>`.
/// `"off"` disarms.
///
/// # Panics
/// On a malformed spec — specs are test inputs, and a silently ignored
/// typo would disable the fault the test believes it is injecting.
pub fn set(name: &str, spec: &str) {
    if spec == "off" {
        clear(name);
        return;
    }
    let (trigger, action) = spec
        .split_once(':')
        .unwrap_or_else(|| panic!("failpoint spec `{spec}` is not `<trigger>:<action>`"));
    let trigger = match trigger {
        "always" => Trigger::Always,
        "once" => Trigger::Once,
        t => {
            if let Some(n) = t
                .strip_prefix("at")
                .and_then(|n| n.parse::<u64>().ok())
                .filter(|&n| n > 0)
            {
                Trigger::At(n)
            } else {
                let n = t
                    .strip_prefix("1in")
                    .and_then(|n| n.parse::<u64>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| panic!("bad failpoint trigger `{t}` in `{spec}`"));
                Trigger::OneIn(n)
            }
        }
    };
    let action = match action {
        "error" => FailAction::Error,
        "panic" => FailAction::Panic,
        a => {
            let ms = a
                .strip_prefix("delay:")
                .and_then(|ms| ms.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("bad failpoint action `{a}` in `{spec}`"));
            FailAction::Delay(Duration::from_millis(ms))
        }
    };
    registry().points.insert(
        name.to_string(),
        Point {
            trigger,
            action,
            evaluations: 0,
            fired: 0,
        },
    );
}

/// Evaluates the point `name`: returns the action to perform now, or
/// `None` when the point is unarmed or its trigger does not fire on this
/// evaluation. Every call increments the point's evaluation counter.
pub fn evaluate(name: &str) -> Option<FailAction> {
    let mut reg = registry();
    let seed = reg.seed;
    let Some(point) = reg.points.get_mut(name) else {
        *reg.touched.entry(name.to_string()).or_insert(0) += 1;
        return None;
    };
    let n = point.evaluations;
    point.evaluations += 1;
    let fires = match point.trigger {
        Trigger::Always => true,
        Trigger::Once => n == 0,
        Trigger::At(k) => n + 1 == k,
        Trigger::OneIn(k) => {
            splitmix64(seed ^ fnv1a(name) ^ n.wrapping_mul(0x2545_f491_4f6c_dd1d)).is_multiple_of(k)
        }
    };
    if fires {
        point.fired += 1;
        Some(point.action)
    } else {
        None
    }
}

/// Evaluates `name` and *performs* delay/panic actions in place. Returns
/// `true` when the caller should inject an error — the only action a
/// generic helper cannot perform on the caller's behalf.
pub fn inject(name: &str) -> bool {
    match evaluate(name) {
        None => false,
        Some(FailAction::Delay(d)) => {
            std::thread::sleep(d);
            false
        }
        Some(FailAction::Panic) => panic!("failpoint `{name}` panicked (injected)"),
        Some(FailAction::Error) => true,
    }
}

/// How many times `name` was evaluated (armed or not) since [`reset`].
pub fn evaluations(name: &str) -> u64 {
    let reg = registry();
    reg.points
        .get(name)
        .map(|p| p.evaluations)
        .or_else(|| reg.touched.get(name).copied())
        .unwrap_or(0)
}

/// How many times `name` actually fired since it was armed.
pub fn fired(name: &str) -> u64 {
    registry().points.get(name).map(|p| p.fired).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests in this module serialize on
    /// one lock so their arm/fire sequences cannot interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn one_in_n_schedule_is_deterministic() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let schedule = |seed: u64| -> Vec<bool> {
            reset(seed);
            set("t.point", "1in3:error");
            (0..64).map(|_| evaluate("t.point").is_some()).collect()
        };
        let a = schedule(7);
        let b = schedule(7);
        let c = schedule(8);
        assert_eq!(a, b, "same seed must give the same fault schedule");
        assert_ne!(a, c, "different seeds must not collide on 64 draws");
        assert!(a.iter().any(|&f| f), "1in3 should fire within 64 draws");
        assert!(!a.iter().all(|&f| f), "1in3 should also not-fire");
        reset(0);
    }

    #[test]
    fn once_fires_exactly_once_and_always_every_time() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset(1);
        set("t.once", "once:error");
        set("t.always", "always:error");
        let once: Vec<bool> = (0..5).map(|_| evaluate("t.once").is_some()).collect();
        let always: Vec<bool> = (0..5).map(|_| evaluate("t.always").is_some()).collect();
        assert_eq!(once, vec![true, false, false, false, false]);
        assert_eq!(always, vec![true; 5]);
        assert_eq!(fired("t.once"), 1);
        assert_eq!(evaluations("t.always"), 5);
        reset(0);
    }

    #[test]
    fn at_n_fires_exactly_on_the_nth_evaluation() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset(4);
        set("t.at", "at3:error");
        let fired: Vec<bool> = (0..6).map(|_| evaluate("t.at").is_some()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
        assert_eq!(super::fired("t.at"), 1);
        reset(0);
    }

    #[test]
    fn unarmed_points_count_touches_and_off_disarms() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset(2);
        assert_eq!(evaluate("t.cold"), None);
        assert_eq!(evaluations("t.cold"), 1);
        set("t.cold", "always:panic");
        set("t.cold", "off");
        assert_eq!(evaluate("t.cold"), None);
        reset(0);
    }

    #[test]
    fn delay_spec_parses_and_inject_sleeps() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset(3);
        set("t.delay", "always:delay:10");
        let t0 = std::time::Instant::now();
        assert!(!inject("t.delay"));
        assert!(t0.elapsed() >= Duration::from_millis(10));
        reset(0);
    }
}
