//! RFC 4456 route-reflection semantics.

use quasar_bgpsim::prelude::*;

fn rid(asn: u32, idx: u16) -> RouterId {
    RouterId::new(Asn(asn), idx)
}

/// AS 2 with a reflector (r0) and two clients (r1, r2), no client-client
/// session. The origin AS 3 peers with client r1.
fn rr_network() -> Network {
    let mut net = Network::new(DecisionConfig::default());
    net.add_router(rid(3, 0));
    for i in 0..3u16 {
        net.add_router(rid(2, i));
    }
    net.add_session(rid(2, 1), rid(3, 0), SessionKind::Ebgp)
        .unwrap();
    net.add_session(rid(2, 0), rid(2, 1), SessionKind::Ibgp)
        .unwrap();
    net.add_session(rid(2, 0), rid(2, 2), SessionKind::Ibgp)
        .unwrap();
    net.set_rr_client(rid(2, 0), rid(2, 1)).unwrap();
    net.set_rr_client(rid(2, 0), rid(2, 2)).unwrap();
    net
}

#[test]
fn client_route_reflected_to_other_client() {
    let net = rr_network();
    let p = Prefix::for_origin(Asn(3));
    let res = net.simulate(p, &[rid(3, 0)]).unwrap();
    // r1 learns over eBGP, advertises to the reflector (plain iBGP), the
    // reflector reflects to r2.
    assert!(res.best_route(rid(2, 1)).is_some());
    assert!(res.best_route(rid(2, 0)).is_some());
    let at_r2 = res
        .best_route(rid(2, 2))
        .expect("reflected route reaches r2");
    assert_eq!(at_r2.as_path.to_string(), "3");
    assert_eq!(at_r2.learned, LearnedVia::Ibgp);
    // The reflected copy is stamped with its injector.
    assert_eq!(at_r2.originator, Some(rid(2, 1)));
}

#[test]
fn without_client_marking_no_reflection() {
    let mut net = Network::new(DecisionConfig::default());
    net.add_router(rid(3, 0));
    for i in 0..3u16 {
        net.add_router(rid(2, i));
    }
    net.add_session(rid(2, 1), rid(3, 0), SessionKind::Ebgp)
        .unwrap();
    net.add_session(rid(2, 0), rid(2, 1), SessionKind::Ibgp)
        .unwrap();
    net.add_session(rid(2, 0), rid(2, 2), SessionKind::Ibgp)
        .unwrap();
    let p = Prefix::for_origin(Asn(3));
    let res = net.simulate(p, &[rid(3, 0)]).unwrap();
    assert!(
        res.best_route(rid(2, 2)).is_none(),
        "full mesh must not reflect"
    );
}

#[test]
fn originator_never_reinstalls_its_own_route() {
    // Two reflectors in a chain could bounce a route back; ORIGINATOR_ID
    // must stop it at the injector. Build: client r1 -> RR r0 -> client r2,
    // and r2 is itself a reflector for r1 (a deliberately bad config).
    let mut net = rr_network();
    net.add_session(rid(2, 1), rid(2, 2), SessionKind::Ibgp)
        .unwrap();
    net.set_rr_client(rid(2, 2), rid(2, 1)).unwrap();
    let p = Prefix::for_origin(Asn(3));
    let res = net.simulate(p, &[rid(3, 0)]).unwrap();
    // r1's RIB-In must not contain a reflected copy of its own injection.
    let rib1 = res.rib(rid(2, 1)).unwrap();
    for c in &rib1.candidates {
        assert_ne!(c.originator, Some(rid(2, 1)), "originator loop");
    }
    // And the whole thing converged (no oscillation).
    assert!(res.best_route(rid(2, 2)).is_some());
}

#[test]
fn non_client_route_reflected_to_clients_only() {
    // Reflector r0 has client r1 and non-client (mesh) peer r2; a route
    // learned from r2 must reach r1 but a route learned from r1... is a
    // client route (goes everywhere). Check the non-client direction.
    let mut net = Network::new(DecisionConfig::default());
    net.add_router(rid(3, 0));
    for i in 0..4u16 {
        net.add_router(rid(2, i));
    }
    // Origin connects to the non-client r2.
    net.add_session(rid(2, 2), rid(3, 0), SessionKind::Ebgp)
        .unwrap();
    net.add_session(rid(2, 0), rid(2, 1), SessionKind::Ibgp)
        .unwrap(); // client
    net.add_session(rid(2, 0), rid(2, 2), SessionKind::Ibgp)
        .unwrap(); // non-client
    net.add_session(rid(2, 0), rid(2, 3), SessionKind::Ibgp)
        .unwrap(); // non-client
    net.set_rr_client(rid(2, 0), rid(2, 1)).unwrap();
    let p = Prefix::for_origin(Asn(3));
    let res = net.simulate(p, &[rid(3, 0)]).unwrap();
    // Non-client route arrives at the reflector, is reflected to the
    // client r1 but NOT to the other non-client r3.
    assert!(res.best_route(rid(2, 0)).is_some());
    assert!(res.best_route(rid(2, 1)).is_some(), "client must hear it");
    assert!(
        res.best_route(rid(2, 3)).is_none(),
        "non-client must not hear a non-client route"
    );
}

#[test]
fn ebgp_export_strips_originator() {
    let mut net = rr_network();
    net.add_router(rid(9, 0));
    net.add_session(rid(2, 2), rid(9, 0), SessionKind::Ebgp)
        .unwrap();
    let p = Prefix::for_origin(Asn(3));
    let res = net.simulate(p, &[rid(3, 0)]).unwrap();
    let at9 = res.best_route(rid(9, 0)).expect("propagates onwards");
    assert_eq!(at9.originator, None, "ORIGINATOR_ID is AS-internal");
    assert_eq!(at9.as_path.to_string(), "2 3");
}
