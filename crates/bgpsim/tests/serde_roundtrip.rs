//! Serialization round-trips: a Network (and its policies) must survive
//! serde so trained models can be persisted and reloaded.

use quasar_bgpsim::prelude::*;

fn sample_network() -> Network {
    let mut net = Network::new(DecisionConfig {
        med_mode: MedMode::AlwaysCompare,
    });
    for a in 1..=4u32 {
        net.add_router(RouterId::new(Asn(a), 0));
    }
    net.add_router(RouterId::new(Asn(1), 1));
    net.add_session(
        RouterId::new(Asn(1), 0),
        RouterId::new(Asn(2), 0),
        SessionKind::Ebgp,
    )
    .unwrap();
    net.add_session(
        RouterId::new(Asn(2), 0),
        RouterId::new(Asn(3), 0),
        SessionKind::Ebgp,
    )
    .unwrap();
    net.add_session(
        RouterId::new(Asn(1), 1),
        RouterId::new(Asn(2), 0),
        SessionKind::Ebgp,
    )
    .unwrap();
    net.add_session(
        RouterId::new(Asn(1), 0),
        RouterId::new(Asn(1), 1),
        SessionKind::Ibgp,
    )
    .unwrap();
    net.add_session(
        RouterId::new(Asn(3), 0),
        RouterId::new(Asn(4), 0),
        SessionKind::Ebgp,
    )
    .unwrap();

    let p = Prefix::for_origin(Asn(3));
    let mut deny = Policy::permit_all();
    deny.push(PolicyRule::new(RouteMatch::prefix(p), Action::Deny));
    net.set_export_policy(RouterId::new(Asn(2), 0), RouterId::new(Asn(1), 0), deny)
        .unwrap();
    let mut med = Policy::permit_all();
    med.push(PolicyRule::new(RouteMatch::prefix(p), Action::SetMed(5)));
    net.set_import_policy(RouterId::new(Asn(1), 1), RouterId::new(Asn(2), 0), med)
        .unwrap();
    net
}

#[test]
fn network_json_roundtrip_preserves_routing() {
    let net = sample_network();
    let json = serde_json::to_string(&net).expect("serializes");
    let mut back: Network = serde_json::from_str(&json).expect("deserializes");
    back.rebuild_indices();

    assert_eq!(back.num_routers(), net.num_routers());
    assert_eq!(back.num_sessions(), net.num_sessions());

    // Routing must be bit-identical after the round trip.
    let prefix = Prefix::for_origin(Asn(3));
    let origins = [RouterId::new(Asn(3), 0)];
    let a = net.simulate(prefix, &origins).unwrap();
    let b = back.simulate(prefix, &origins).unwrap();
    for rib in a.ribs() {
        assert_eq!(
            rib.best(),
            b.rib(rib.router).unwrap().best(),
            "best route differs at {} after round-trip",
            rib.router
        );
    }
    // Policies survived: AS1's router 0 still has a route (via the iBGP
    // path), proving import/export chains round-tripped.
    assert_eq!(
        a.best_route(RouterId::new(Asn(1), 0)),
        b.best_route(RouterId::new(Asn(1), 0))
    );
}

#[test]
fn igp_topology_roundtrip() {
    let mut igp = IgpTopology::new();
    let r = |i: u16| RouterId::new(Asn(9), i);
    igp.add_link(r(0), r(1), 3);
    igp.add_link(r(1), r(2), 4);
    let json = serde_json::to_string(&igp).expect("serializes");
    let mut back: IgpTopology = serde_json::from_str(&json).expect("deserializes");
    back.rebuild_index();
    assert_eq!(back.cost(r(0), r(2)), Some(7));
}
