//! Property-based tests for the simulator's core invariants.

use proptest::prelude::*;
use quasar_bgpsim::prelude::*;

fn arb_route() -> impl Strategy<Value = Route> {
    (
        proptest::collection::vec(1u32..50, 0..6),
        0u32..200,
        proptest::option::of(0u32..20),
        0u8..3,
        (1u32..50, 0u16..4),
        prop::bool::ANY,
        0u32..10,
    )
        .prop_map(|(path, lp, med, origin, from, ibgp, igp)| Route {
            prefix: Prefix::new(0x0A000000, 8),
            as_path: AsPath::from_u32s(&path),
            local_pref: lp,
            med,
            origin: Origin::from_wire(origin),
            from_router: Some(RouterId::new(Asn(from.0), from.1)),
            from_asn: Some(Asn(from.0)),
            learned: if ibgp {
                LearnedVia::Ibgp
            } else {
                LearnedVia::Ebgp
            },
            igp_cost: igp,
            communities: Vec::new(),
            originator: None,
        })
}

/// Total preference order the decision process must respect, expressed as a
/// sortable key (lower = better). Mirrors the step sequence independently of
/// the elimination implementation.
fn rank(r: &Route) -> impl Ord {
    (
        u8::from(r.learned != LearnedVia::Local),
        std::cmp::Reverse(r.local_pref),
        r.as_path.len(),
        r.origin,
        r.med_value(),
        u8::from(r.learned == LearnedVia::Ibgp),
        r.igp_cost,
        r.from_router,
    )
}

proptest! {
    /// The winner must minimize the lexicographic preference key.
    #[test]
    fn decision_winner_is_rank_minimal(routes in proptest::collection::vec(arb_route(), 1..12)) {
        let out = decide(&routes, &DecisionConfig::default());
        let best = out.best.unwrap();
        let min = routes.iter().map(rank).min().unwrap();
        prop_assert!(rank(&routes[best]) == min);
    }

    /// Exactly one candidate survives; all others carry an elimination step.
    #[test]
    fn decision_eliminates_all_but_one(routes in proptest::collection::vec(arb_route(), 1..12)) {
        let out = decide(&routes, &DecisionConfig::default());
        let winners = out.eliminated_at.iter().filter(|e| e.is_none()).count();
        prop_assert_eq!(winners, 1);
        prop_assert_eq!(out.eliminated_at.len(), routes.len());
    }

    /// The chosen best route's *value* is invariant under candidate
    /// permutation (indices may differ).
    #[test]
    fn decision_is_order_invariant(
        routes in proptest::collection::vec(arb_route(), 1..10),
        seed in 0u64..1000,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut shuffled = routes.clone();
        shuffled.shuffle(&mut rng);
        let a = decide(&routes, &DecisionConfig::default());
        let b = decide(&shuffled, &DecisionConfig::default());
        prop_assert_eq!(&routes[a.best.unwrap()], &shuffled[b.best.unwrap()]);
    }

    /// Elimination steps are monotone: no candidate can be eliminated at a
    /// step *later* than the step at which some surviving candidate would
    /// have lost to it (sanity: winner beats every candidate at or before
    /// its elimination step).
    #[test]
    fn eliminated_candidates_never_beat_winner(routes in proptest::collection::vec(arb_route(), 2..10)) {
        let out = decide(&routes, &DecisionConfig::default());
        let w = out.best.unwrap();
        for (i, e) in out.eliminated_at.iter().enumerate() {
            if e.is_some() {
                prop_assert!(rank(&routes[i]) >= rank(&routes[w]));
            }
        }
    }

    /// Per-neighbor MED never eliminates a route that is the unique route
    /// from its neighbor AS.
    #[test]
    fn per_neighbor_med_only_within_groups(routes in proptest::collection::vec(arb_route(), 1..10)) {
        let cfg = DecisionConfig { med_mode: MedMode::PerNeighbor };
        let out = decide(&routes, &cfg);
        for (i, e) in out.eliminated_at.iter().enumerate() {
            if *e == Some(Step::Med) {
                let n = routes[i].neighbor_for_med();
                let better_same_neighbor = routes.iter().enumerate().any(|(j, r)| {
                    j != i && r.neighbor_for_med() == n && r.med_value() < routes[i].med_value()
                });
                prop_assert!(better_same_neighbor);
            }
        }
    }

    /// strip_prepending is idempotent and never lengthens a path.
    #[test]
    fn strip_prepending_idempotent(path in proptest::collection::vec(1u32..20, 0..12)) {
        let p = AsPath::from_u32s(&path);
        let s = p.strip_prepending();
        prop_assert!(s.len() <= p.len());
        prop_assert_eq!(s.strip_prepending(), s);
    }

    /// prepend adds exactly one hop at the head and suffix() inverts it.
    #[test]
    fn prepend_then_suffix_roundtrip(path in proptest::collection::vec(1u32..20, 0..10), head in 100u32..200) {
        let p = AsPath::from_u32s(&path);
        let q = p.prepend(Asn(head));
        prop_assert_eq!(q.len(), p.len() + 1);
        prop_assert_eq!(q.head(), Some(Asn(head)));
        prop_assert_eq!(q.suffix(p.len()), p);
    }

    /// Every suffix of a path is a suffix of it.
    #[test]
    fn all_suffixes_are_suffixes(path in proptest::collection::vec(1u32..20, 1..10)) {
        let p = AsPath::from_u32s(&path);
        for n in 0..=p.len() {
            prop_assert!(p.suffix(n).is_suffix_of(&p));
        }
    }

    /// IGP costs obey the triangle inequality over direct edges and are
    /// symmetric.
    #[test]
    fn igp_triangle_and_symmetry(
        edges in proptest::collection::vec((0u16..8, 0u16..8, 1u32..20), 1..20)
    ) {
        let mut t = IgpTopology::new();
        let rid = |i: u16| RouterId::new(Asn(65000), i);
        for &(a, b, w) in &edges {
            if a != b {
                t.add_link(rid(a), rid(b), w);
            }
        }
        for &ra in t.routers() {
            let costs = t.costs_from(ra);
            for &(a, b, w) in &edges {
                if a == b { continue; }
                if let (Some(&ca), Some(&cb)) = (costs.get(&rid(a)), costs.get(&rid(b))) {
                    prop_assert!(cb <= ca.saturating_add(w), "triangle violated");
                    prop_assert!(ca <= cb.saturating_add(w), "triangle violated");
                }
            }
            for (&rb, &c) in costs.iter() {
                prop_assert_eq!(t.cost(rb, ra), Some(c), "asymmetric cost");
            }
        }
    }

    /// On a random tree every router converges to the unique tree path
    /// towards the origin.
    #[test]
    fn tree_converges_to_tree_paths(
        n in 2usize..30,
        seed in 0u64..500,
    ) {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = Network::new(DecisionConfig::default());
        let rid = |i: usize| RouterId::new(Asn(i as u32 + 1), 0);
        net.add_router(rid(0));
        // parent[i] < i: random recursive tree.
        let mut parent = vec![0usize; n];
        for (i, p) in parent.iter_mut().enumerate().skip(1) {
            *p = rng.gen_range(0..i);
            net.add_router(rid(i));
            net.add_session(rid(i), rid(*p), SessionKind::Ebgp).unwrap();
        }
        let prefix = Prefix::for_origin(Asn(1));
        let res = net.simulate(prefix, &[rid(0)]).unwrap();
        for i in 1..n {
            // Expected AS path: walk parents to the root.
            let mut expect = Vec::new();
            let mut cur = parent[i];
            loop {
                expect.push(cur as u32 + 1);
                if cur == 0 { break; }
                cur = parent[cur];
            }
            let best = res.best_route(rid(i)).unwrap();
            let expect_asns: Vec<Asn> = expect.iter().map(|&a| Asn(a)).collect();
            prop_assert_eq!(best.as_path.as_slice(), expect_asns.as_slice());
        }
    }

    /// Simulation is deterministic: same inputs, same RIBs.
    #[test]
    fn simulation_is_deterministic(
        n in 2usize..15,
        extra in proptest::collection::vec((0u16..15, 0u16..15), 0..10),
        seed in 0u64..100,
    ) {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = Network::new(DecisionConfig::default());
        let rid = |i: usize| RouterId::new(Asn(i as u32 + 1), 0);
        for i in 0..n {
            net.add_router(rid(i));
        }
        for i in 1..n {
            let p = rng.gen_range(0..i);
            let _ = net.add_session(rid(i), rid(p), SessionKind::Ebgp);
        }
        for &(a, b) in &extra {
            let (a, b) = (a as usize % n, b as usize % n);
            if a != b {
                let _ = net.add_session(rid(a), rid(b), SessionKind::Ebgp);
            }
        }
        let prefix = Prefix::for_origin(Asn(1));
        let r1 = net.simulate(prefix, &[rid(0)]).unwrap();
        let r2 = net.simulate(prefix, &[rid(0)]).unwrap();
        for i in 0..n {
            prop_assert_eq!(r1.best_route(rid(i)), r2.best_route(rid(i)));
        }
        // And best paths never contain the router's own AS (loop freedom).
        for rib in r1.ribs() {
            if let Some(b) = rib.best() {
                prop_assert!(!b.as_path.contains(rib.router.asn()));
            }
        }
    }
}
