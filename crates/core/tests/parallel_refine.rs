//! Determinism contract of the batched parallel refinement: the trained
//! model must be byte-identical for every thread count, because fixes are
//! always applied sequentially in prefix order regardless of how the
//! per-round simulations are scheduled.

use quasar_core::prelude::*;
use quasar_netgen::prelude::*;

fn dataset_from(net: &SyntheticInternet) -> Dataset {
    Dataset::new(net.observations.iter().map(|o| ObservedRoute {
        point: o.point,
        observer_as: o.observer_as,
        prefix: o.prefix,
        as_path: o.as_path.clone(),
    }))
}

fn train_with_threads(
    full: &Dataset,
    training: &Dataset,
    threads: usize,
) -> (String, RefineReport) {
    let cfg = RefineConfig {
        threads,
        ..RefineConfig::default()
    };
    let mut model = AsRoutingModel::initial(&full.as_graph(), &full.prefixes());
    let report = refine(&mut model, training, &cfg).expect("refinement runs");
    (model.to_json().expect("model serializes"), report)
}

#[test]
fn model_is_byte_identical_across_thread_counts() {
    let net = SyntheticInternet::generate(NetGenConfig::tiny(101));
    let full = dataset_from(&net);
    let (training, _) = full.split_by_point(0.5, 7);

    let (json1, report1) = train_with_threads(&full, &training, 1);
    let (json2, report2) = train_with_threads(&full, &training, 2);
    let (json8, report8) = train_with_threads(&full, &training, 8);

    assert!(report1.converged(), "sequential training must converge");
    assert_eq!(
        json1, json2,
        "threads=2 produced a different model than threads=1"
    );
    assert_eq!(
        json1, json8,
        "threads=8 produced a different model than threads=1"
    );

    // The refinement statistics must agree too, not just the end state.
    let stats = |r: &RefineReport| {
        r.prefixes
            .iter()
            .map(|p| (p.prefix, p.iterations, p.converged, p.quasi_routers_added))
            .collect::<Vec<_>>()
    };
    assert_eq!(stats(&report1), stats(&report2));
    assert_eq!(stats(&report1), stats(&report8));
}

#[test]
fn zero_threads_means_auto_and_stays_deterministic() {
    let net = SyntheticInternet::generate(NetGenConfig::tiny(101));
    let full = dataset_from(&net);
    let (training, _) = full.split_by_point(0.5, 7);

    let (json_auto, _) = train_with_threads(&full, &training, 0);
    let (json_one, _) = train_with_threads(&full, &training, 1);
    assert_eq!(json_auto, json_one, "auto thread count changed the model");
    assert!(RefineConfig::default().effective_threads() >= 1);
}
