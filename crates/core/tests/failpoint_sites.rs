//! Arming coverage for the persistence-layer failpoints.
//!
//! `quasar sast`'s failpoint-registry rule (QS0003) requires every inject
//! site to be armed by at least one test — a site nothing arms is dead
//! instrumentation whose failure path is unexercised. These tests arm the
//! three write-path sites (`persist.write`, `persist.rename`,
//! `refine.checkpoint`) and assert each injected fault surfaces as the
//! typed error the production caller would see.
//!
//! Run with `cargo test -p quasar-core --features testkit`.

#![cfg(feature = "testkit")]

use quasar_bgpsim::fail;
use quasar_core::prelude::*;
use quasar_core::refine::{refine_checkpointed, CheckpointPolicy, RefineConfig, RefineError};
use quasar_testkit::workload::tiny_trained;
use std::path::PathBuf;
use std::sync::Mutex;

/// The failpoint registry is process-global; armed tests serialize.
static SERIAL: Mutex<()> = Mutex::new(());

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("quasar-failsites-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn persist_write_fault_surfaces_as_io_error_and_leaves_no_file() {
    let _guard = SERIAL.lock().unwrap();
    fail::reset(11);
    let dir = scratch("write");
    let path = dir.join("model.json");
    let model = tiny_trained(3).model;

    fail::set("persist.write", "always:error");
    let err = save_model(&path, &model).expect_err("injected write fault must fail the save");
    assert!(
        err.to_string().contains("persist.write"),
        "error must name the injected failpoint: {err}"
    );
    assert!(
        !path.exists(),
        "a failed write must not leave a partial file behind"
    );

    fail::clear_all();
    save_model(&path, &model).expect("save succeeds once the fault is cleared");
    load_model(&path).expect("round-trip after recovery");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persist_rename_fault_surfaces_and_keeps_the_destination_absent() {
    let _guard = SERIAL.lock().unwrap();
    fail::reset(12);
    let dir = scratch("rename");
    let path = dir.join("model.json");
    let model = tiny_trained(3).model;

    fail::set("persist.rename", "always:error");
    let err = save_model(&path, &model).expect_err("injected rename fault must fail the save");
    assert!(
        err.to_string().contains("persist.rename"),
        "error must name the injected failpoint: {err}"
    );
    assert!(
        !path.exists(),
        "the atomic-rename contract: the destination never holds partial data"
    );

    fail::clear_all();
    save_model(&path, &model).expect("save succeeds once the fault is cleared");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn refine_checkpoint_fault_aborts_the_checkpointed_run() {
    let _guard = SERIAL.lock().unwrap();
    fail::reset(13);
    let dir = scratch("ckpt");
    let fx = tiny_trained(5);
    let cfg = RefineConfig {
        threads: 1,
        ..RefineConfig::default()
    };
    let policy = CheckpointPolicy {
        dir: dir.clone(),
        every: 1,
        keep: 2,
    };

    fail::set("refine.checkpoint", "always:error");
    let mut model = fx.model.clone();
    let err = refine_checkpointed(&mut model, &fx.training, &cfg, Some(&policy))
        .expect_err("an always-failing checkpoint writer must abort the run");
    assert!(
        matches!(err, RefineError::Persist(_)),
        "checkpoint faults surface as the typed persistence error: {err}"
    );

    fail::clear_all();
    let mut model = fx.model.clone();
    refine_checkpointed(&mut model, &fx.training, &cfg, Some(&policy))
        .expect("checkpointed run succeeds once the fault is cleared");
    let _ = std::fs::remove_dir_all(&dir);
}
