//! Kill-and-resume equivalence: a refinement run killed mid-flight by an
//! armed failpoint and continued with [`resume_refine`] must produce a
//! model byte-identical to the uninterrupted run — at every kill round
//! and at every thread count. This is the correctness contract that makes
//! `quasar train --checkpoint-dir D --resume` safe to use after a crash.
//!
//! Run with `cargo test -p quasar-core --features testkit`.

#![cfg(feature = "testkit")]

use quasar_bgpsim::fail;
use quasar_core::prelude::*;
use quasar_testkit::diff::diff_json;
use quasar_testkit::workload::tiny_trained;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// The failpoint registry is process-global; every test that arms it
/// holds this lock so a concurrently running test never sees a stray
/// trigger.
static SERIAL: Mutex<()> = Mutex::new(());

/// A fresh checkpoint directory under the system temp dir.
fn ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("quasar-resume-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The shared fixture: a tiny synthetic internet's datasets plus the
/// uninterrupted single-thread baseline (model JSON and work-unit counts).
struct Fixture {
    full: Dataset,
    training: Dataset,
    baseline_json: String,
    /// Refinement domains of the partition (phase-1 work units).
    domains: u64,
    /// Total checkpointable work units: domain claims + repair rounds —
    /// exactly how often the `refine.round` kill site is evaluated.
    units: u64,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let fx = tiny_trained(42);
        let baseline_json = fx.model.to_json().expect("baseline serializes");
        Fixture {
            full: fx.full,
            training: fx.training,
            baseline_json,
            domains: fx.report.domains as u64,
            units: fx.report.work_units(),
        }
    })
}

fn config(threads: usize) -> RefineConfig {
    RefineConfig {
        threads,
        ..RefineConfig::default()
    }
}

/// Starts a checkpointed run armed to panic at the `kill_round`-th work
/// unit (a domain claim or a repair-round start), proves it died there,
/// then resumes and returns the final model JSON.
fn kill_then_resume(kill_round: u64, threads: usize, tag: &str) -> String {
    let fx = fixture();
    let cfg = config(threads);
    let policy = CheckpointPolicy {
        dir: ckpt_dir(tag),
        every: 1,
        keep: 2,
    };

    fail::reset(7);
    fail::set("refine.round", &format!("at{kill_round}:panic"));
    // Silence the expected panic's backtrace; the serial lock makes the
    // hook swap safe.
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let killed = panic::catch_unwind(AssertUnwindSafe(|| {
        let mut model = AsRoutingModel::initial(&fx.full.as_graph(), &fx.full.prefixes());
        refine_checkpointed(&mut model, &fx.training, &cfg, Some(&policy))
    }));
    panic::set_hook(prev_hook);
    assert!(killed.is_err(), "the armed panic must abort the run");
    assert_eq!(fail::fired("refine.round"), 1, "kill point must fire once");
    fail::clear_all();

    let (model, report) = match resume_refine(&fx.training, &cfg, &policy) {
        Ok(resumed) => resumed,
        // Killed before the first checkpoint landed: the documented
        // recovery is a fresh run (exactly what the CLI's --resume
        // fallback does), which must still reach the same model.
        Err(RefineError::Persist(PersistError::NoCheckpoint { .. })) => {
            assert_eq!(kill_round, 1, "only a unit-1 kill leaves no checkpoint");
            let mut model = AsRoutingModel::initial(&fx.full.as_graph(), &fx.full.prefixes());
            let report = refine_checkpointed(&mut model, &fx.training, &cfg, Some(&policy))
                .expect("fresh fallback run");
            (model, report)
        }
        Err(e) => panic!("resume failed: {e}"),
    };
    assert!(report.converged(), "resumed run must converge");
    model.to_json().expect("resumed model serializes")
}

fn assert_byte_identical(kill_round: u64, threads: usize, got: &str) {
    let fx = fixture();
    if got != fx.baseline_json {
        let div = diff_json("resumed-vs-uninterrupted", got, &fx.baseline_json);
        panic!(
            "model after kill at round {kill_round} (threads {threads}) diverged \
             from the uninterrupted run: {div:?}"
        );
    }
}

#[test]
fn resume_matches_uninterrupted_at_kills_across_both_phases() {
    let _guard = SERIAL.lock().unwrap();
    let fx = fixture();
    assert!(
        fx.domains >= 2 && fx.units > fx.domains,
        "fixture must shard into several domains and run at least one \
         repair round (domains {}, units {}); pick a different seed",
        fx.domains,
        fx.units
    );
    // Early (before any checkpoint), mid-domain-phase, the first repair
    // round (just after the merge), and the final work unit.
    let mut kills = vec![1, fx.domains.div_ceil(2).max(2), fx.domains + 1, fx.units];
    kills.dedup();
    for kill_round in kills {
        let got = kill_then_resume(kill_round, 1, &format!("kill-{kill_round}"));
        assert_byte_identical(kill_round, 1, &got);
    }
}

#[test]
fn resume_matches_uninterrupted_with_parallel_refinement() {
    let _guard = SERIAL.lock().unwrap();
    let fx = fixture();
    // Kill mid-domain-phase: with 4 workers the set of checkpointed
    // domains at death depends on scheduling, and resume must still land
    // on the same bytes. The baseline is single-threaded; byte-identity
    // across both dimensions at once is the combined determinism +
    // durability contract.
    let kill_round = fx.domains.div_ceil(2).max(2).min(fx.units);
    let got = kill_then_resume(kill_round, 4, "kill-par");
    assert_byte_identical(kill_round, 4, &got);
}

#[test]
fn resume_without_checkpoints_is_a_typed_error() {
    let _guard = SERIAL.lock().unwrap();
    let fx = fixture();
    let policy = CheckpointPolicy::new(ckpt_dir("empty"));
    let err = resume_refine(&fx.training, &config(1), &policy)
        .expect_err("an empty checkpoint dir must not resume");
    assert!(
        matches!(err, RefineError::Persist(PersistError::NoCheckpoint { .. })),
        "want NoCheckpoint, got: {err}"
    );
}

#[test]
fn resume_refuses_a_mismatched_training_set() {
    let _guard = SERIAL.lock().unwrap();
    let fx = fixture();
    let cfg = config(1);
    let policy = CheckpointPolicy {
        dir: ckpt_dir("mismatch"),
        every: 1,
        keep: 2,
    };
    // A completed checkpointed run leaves its final-round snapshot behind.
    let mut model = AsRoutingModel::initial(&fx.full.as_graph(), &fx.full.prefixes());
    refine_checkpointed(&mut model, &fx.training, &cfg, Some(&policy)).expect("checkpointed run");
    // Resuming against different training data must be refused loudly —
    // continuing would silently blend two datasets into one model.
    let err = resume_refine(&fx.full, &cfg, &policy)
        .expect_err("a different dataset must not resume this checkpoint");
    assert!(
        matches!(err, RefineError::CheckpointMismatch(_)),
        "want CheckpointMismatch, got: {err}"
    );
}
