//! Integration tests for the persist layer: framed round-trips, legacy
//! bare-JSON compatibility, typed corruption errors with byte offsets,
//! and a fuzz property that no single-byte mutation or truncation of an
//! artifact can ever panic the loader — every damaged file comes back as
//! a typed [`PersistError`].

use proptest::prelude::*;
use quasar_core::persist::{
    self, load_artifact, load_model, save_artifact, save_model, PersistError, KIND_CHECKPOINT,
    KIND_MODEL,
};
use quasar_testkit::workload::toy_model;
use std::path::PathBuf;
use std::sync::OnceLock;

/// A fresh per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("quasar-persist-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The canonical framed model file, built once: the fuzz property mutates
/// copies of these bytes instead of re-serializing the model per case.
fn framed_fixture() -> &'static (Vec<u8>, String) {
    static FIXTURE: OnceLock<(Vec<u8>, String)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = scratch("fixture");
        let path = dir.join("m.model");
        let model = toy_model();
        save_model(&path, &model).expect("save fixture");
        let bytes = std::fs::read(&path).expect("read fixture back");
        let json = model.to_json().expect("model serializes");
        (bytes, json)
    })
}

#[test]
fn framed_model_round_trips() {
    let dir = scratch("roundtrip");
    let path = dir.join("m.model");
    let model = toy_model();
    save_model(&path, &model).expect("save");

    let bytes = std::fs::read(&path).expect("read back");
    assert!(
        bytes.starts_with(b"QUASAR1 model "),
        "framed file must lead with the versioned header"
    );

    let loaded = load_model(&path).expect("load");
    assert_eq!(
        loaded.to_json().expect("loaded serializes"),
        model.to_json().expect("original serializes"),
        "round-trip must be byte-exact"
    );
}

#[test]
fn legacy_bare_json_still_loads() {
    let dir = scratch("legacy");
    let path = dir.join("legacy.json");
    let model = toy_model();
    let json = model.to_json().expect("model serializes");
    std::fs::write(&path, &json).expect("write bare JSON");

    let loaded = load_model(&path).expect("legacy load");
    assert_eq!(
        loaded.to_json().expect("loaded serializes"),
        json,
        "a pre-persist bare-JSON model must load unchanged"
    );
}

#[test]
fn checksum_mismatch_is_typed_and_hinted() {
    let dir = scratch("checksum");
    let path = dir.join("m.model");
    save_model(&path, &toy_model()).expect("save");

    let mut bytes = std::fs::read(&path).expect("read");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes).expect("rewrite corrupted");

    let err = load_model(&path).expect_err("corrupt payload must not load");
    assert!(
        matches!(err, PersistError::ChecksumMismatch { .. }),
        "want ChecksumMismatch, got: {err}"
    );
    assert!(err.is_corruption());
    let hint = err.hint().expect("corruption carries a recovery hint");
    assert!(
        hint.contains("--checkpoint-dir") && hint.contains("--resume"),
        "hint must point at checkpoint recovery: {hint}"
    );
}

#[test]
fn truncated_file_reports_byte_offset() {
    let dir = scratch("truncated");
    let path = dir.join("m.model");
    save_model(&path, &toy_model()).expect("save");

    let bytes = std::fs::read(&path).expect("read");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");

    let err = load_model(&path).expect_err("truncated payload must not load");
    assert!(
        matches!(err, PersistError::Truncated { .. }),
        "want Truncated, got: {err}"
    );
    assert!(
        err.to_string().contains("byte"),
        "the error must name the byte offset: {err}"
    );
}

#[test]
fn kind_mismatch_is_typed() {
    let dir = scratch("kind");
    let path = dir.join("x.qck");
    save_artifact(&path, KIND_CHECKPOINT, b"{}").expect("save checkpoint-kind artifact");

    let err = load_artifact(&path, KIND_MODEL).expect_err("wrong kind must be refused");
    assert!(
        matches!(err, PersistError::KindMismatch { .. }),
        "want KindMismatch, got: {err}"
    );
}

#[test]
fn legacy_garbage_is_a_json_error_not_a_panic() {
    let dir = scratch("garbage");
    let path = dir.join("noise.json");
    std::fs::write(&path, b"not json at all").expect("write");
    let err = load_model(&path).expect_err("garbage must not load");
    assert!(
        matches!(err, PersistError::Json { .. }),
        "want Json, got: {err}"
    );
}

#[test]
fn atomic_write_replaces_and_leaves_no_temp_files() {
    let dir = scratch("atomic");
    let path = dir.join("out.bin");
    persist::atomic_write_bytes(&path, b"first").expect("first write");
    persist::atomic_write_bytes(&path, b"second").expect("overwrite");
    assert_eq!(std::fs::read(&path).expect("read"), b"second");
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("list dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any single-byte substitution anywhere in a framed model file —
    /// header, checksum, or payload — must surface as a typed error (the
    /// FNV-1a state after a changed byte never re-converges under
    /// multiply-by-odd-prime and XOR, so a one-byte change always flips
    /// the checksum), and must never panic or load successfully.
    #[test]
    fn any_byte_mutation_yields_typed_error(
        idx in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let (bytes, _) = framed_fixture();
        let idx = idx % bytes.len();
        let mut mutated = bytes.clone();
        mutated[idx] ^= 1 << bit;

        let dir = scratch("fuzz-mut");
        let path = dir.join("m.model");
        std::fs::write(&path, &mutated).expect("write mutated");
        let err = load_model(&path).expect_err("a mutated artifact must never load");
        // Every failure is one of the typed variants; the message always
        // names the file, so operators can find the damaged artifact.
        prop_assert!(err.to_string().contains("m.model"), "untyped error: {err}");
    }

    /// Any truncation of a framed model file must surface as a typed
    /// error, never a panic.
    #[test]
    fn any_truncation_yields_typed_error(cut in 0usize..10_000) {
        let (bytes, _) = framed_fixture();
        let cut = cut % bytes.len(); // strictly shorter than the original
        let dir = scratch("fuzz-trunc");
        let path = dir.join("m.model");
        std::fs::write(&path, &bytes[..cut]).expect("write truncated");
        let err = load_model(&path).expect_err("a truncated artifact must never load");
        prop_assert!(err.to_string().contains("m.model"), "untyped error: {err}");
    }

    /// Arbitrary bytes presented as a legacy (headerless) model must come
    /// back as a typed JSON error, never a panic.
    #[test]
    fn random_legacy_bytes_never_panic(noise in proptest::collection::vec(any::<u8>(), 0..256)) {
        let dir = scratch("fuzz-legacy");
        let path = dir.join("noise.json");
        std::fs::write(&path, &noise).expect("write noise");
        // Framed-looking noise (starting with the magic) may produce any
        // typed variant; everything else parses as legacy JSON and fails
        // there. Either way: an error, not a panic.
        prop_assert!(load_model(&path).is_err());
    }
}
