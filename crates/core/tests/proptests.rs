//! Property tests for the model layer: dataset invariants under cleaning
//! and splitting, and the paper's central claim — refinement always drives
//! the training set to an exact RIB-Out reproduction — exercised on random
//! path systems.

use proptest::prelude::*;
use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::types::{Asn, Prefix};
use quasar_core::prelude::*;

/// Random observed-route sets over a small AS universe. Paths are random
/// walks without repetition, so they are loop-free by construction —
/// i.e. shaped like real BGP table entries.
fn arb_routes() -> impl Strategy<Value = Vec<ObservedRoute>> {
    proptest::collection::vec(
        (
            0u32..6,                                   // observation point
            proptest::collection::vec(1u32..15, 1..5), // walk
            1u32..15,                                  // origin AS
        ),
        1..25,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(point, mut walk, origin)| {
                walk.dedup();
                walk.retain(|&a| a != origin);
                walk.push(origin);
                // De-duplicate non-adjacent repeats to keep paths loop-free.
                let mut seen = std::collections::BTreeSet::new();
                walk.retain(|&a| seen.insert(a));
                ObservedRoute {
                    point,
                    observer_as: Asn(walk[0]),
                    prefix: Prefix::for_origin(Asn(origin)),
                    as_path: AsPath::from_u32s(&walk),
                }
            })
            .collect()
    })
}

/// Like [`arb_routes`] but over a much wider origin universe, so the
/// prefix count routinely exceeds the single-domain threshold and the
/// sharded schedule's merge + repair phases actually run.
fn arb_wide_routes() -> impl Strategy<Value = Vec<ObservedRoute>> {
    proptest::collection::vec(
        (
            0u32..6,                                   // observation point
            proptest::collection::vec(1u32..20, 1..5), // walk
            20u32..90,                                 // origin AS (one prefix each)
        ),
        20..70,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(point, mut walk, origin)| {
                walk.dedup();
                walk.retain(|&a| a != origin);
                walk.push(origin);
                let mut seen = std::collections::BTreeSet::new();
                walk.retain(|&a| seen.insert(a));
                ObservedRoute {
                    point,
                    observer_as: Asn(walk[0]),
                    prefix: Prefix::for_origin(Asn(origin)),
                    as_path: AsPath::from_u32s(&walk),
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cleaning is idempotent and never yields loops or prepending.
    #[test]
    fn dataset_cleaning_idempotent(routes in arb_routes()) {
        let d = Dataset::new(routes);
        let d2 = Dataset::new(d.routes().to_vec());
        prop_assert_eq!(&d, &d2);
        for r in d.routes() {
            prop_assert!(!r.as_path.has_loop());
            prop_assert_eq!(r.as_path.strip_prepending(), r.as_path.clone());
        }
    }

    /// Splits partition the routes and never share the split dimension.
    #[test]
    fn splits_partition(routes in arb_routes(), seed in 0u64..100) {
        let d = Dataset::new(routes);
        let (tr, va) = d.split_by_point(0.5, seed);
        prop_assert_eq!(tr.len() + va.len(), d.len());
        let tp: std::collections::BTreeSet<u32> =
            tr.observation_points().into_iter().collect();
        for p in va.observation_points() {
            prop_assert!(!tp.contains(&p));
        }
        let (tr2, va2) = d.split_by_origin(0.5, seed);
        prop_assert_eq!(tr2.len() + va2.len(), d.len());
    }

    /// The headline invariant (§4.6): after refinement, every observed
    /// route of the training data is a RIB-Out match. Holds for *any*
    /// loop-free path system whose paths are realizable one-by-one.
    #[test]
    fn refinement_reproduces_any_consistent_dataset(routes in arb_routes()) {
        let d = Dataset::new(routes);
        prop_assume!(!d.is_empty());
        let graph = d.as_graph();
        let mut model = AsRoutingModel::initial(&graph, &d.prefixes());
        let report = refine(&mut model, &d, &RefineConfig::default()).unwrap();
        prop_assert!(report.converged(), "refinement did not converge");
        let ev = evaluate(&model, &d);
        prop_assert_eq!(ev.counts.rib_out, ev.counts.total);
    }

    /// Refinement is deterministic: same inputs, same model statistics and
    /// same evaluation.
    #[test]
    fn refinement_is_deterministic(routes in arb_routes()) {
        let d = Dataset::new(routes);
        prop_assume!(!d.is_empty());
        let graph = d.as_graph();
        let run = || {
            let mut model = AsRoutingModel::initial(&graph, &d.prefixes());
            refine(&mut model, &d, &RefineConfig::default()).unwrap();
            (model.stats(), evaluate(&model, &d))
        };
        let (s1, e1) = run();
        let (s2, e2) = run();
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(e1, e2);
    }

    /// Atom-accelerated refinement is behaviourally identical to
    /// per-prefix refinement on the training set.
    #[test]
    fn atom_refinement_equivalent(routes in arb_routes()) {
        use quasar_core::atoms::refine_with_atoms;
        let d = Dataset::new(routes);
        prop_assume!(!d.is_empty());
        let graph = d.as_graph();

        let mut a = AsRoutingModel::initial(&graph, &d.prefixes());
        refine(&mut a, &d, &RefineConfig::default()).unwrap();
        let ev_a = evaluate(&a, &d);

        let mut b = AsRoutingModel::initial(&graph, &d.prefixes());
        let (report, atoms) = refine_with_atoms(&mut b, &d, &RefineConfig::default()).unwrap();
        let ev_b = evaluate(&b, &d);

        prop_assert!(report.converged());
        prop_assert!(atoms.compression() >= 1.0);
        prop_assert_eq!(ev_a.counts, ev_b.counts);
        prop_assert_eq!(ev_b.counts.rib_out, ev_b.counts.total);
    }

    /// The batched parallel path converges exactly where the sequential
    /// path converges, with identical models, and per-prefix iteration
    /// counts stay within the paper's §4.6 bound (a small multiple of the
    /// longest observed AS-path).
    #[test]
    fn parallel_refinement_matches_sequential(routes in arb_routes()) {
        let d = Dataset::new(routes);
        prop_assume!(!d.is_empty());
        let graph = d.as_graph();
        let run = |threads: usize| {
            let cfg = RefineConfig { threads, ..RefineConfig::default() };
            let mut model = AsRoutingModel::initial(&graph, &d.prefixes());
            let report = refine(&mut model, &d, &cfg).unwrap();
            (model, report)
        };
        let (m1, r1) = run(1);
        let (m4, r4) = run(4);

        prop_assert_eq!(r1.converged(), r4.converged());
        prop_assert_eq!(m1.to_json().unwrap(), m4.to_json().unwrap());
        if r1.converged() {
            let ev = evaluate(&m4, &d);
            prop_assert_eq!(ev.counts.rib_out, ev.counts.total);
        }

        // §4.6: "perfect RIB-Out matches are achieved after a total number
        // of iterations that is a multiple of the maximum AS-path length."
        let max_len = d.routes().iter().map(|r| r.as_path.len()).max().unwrap_or(1);
        for p in &r4.prefixes {
            prop_assert!(
                p.iterations <= 3 * max_len + 2,
                "prefix {:?} took {} iterations (max path len {})",
                p.prefix, p.iterations, max_len
            );
        }
    }

    /// Sharded refinement is byte-identical to sequential across thread
    /// counts even when the prefix space splits into many refinement
    /// domains (wide origin universe, so runs routinely exceed the
    /// single-domain threshold and exercise the merge + repair phases).
    #[test]
    fn sharded_refinement_matches_sequential_across_threads(routes in arb_wide_routes()) {
        let d = Dataset::new(routes);
        prop_assume!(!d.is_empty());
        let graph = d.as_graph();
        let run = |threads: usize| {
            let cfg = RefineConfig { threads, ..RefineConfig::default() };
            let mut model = AsRoutingModel::initial(&graph, &d.prefixes());
            let report = refine(&mut model, &d, &cfg).unwrap();
            (model.to_json().unwrap(), report)
        };
        let (j1, r1) = run(1);
        for threads in [2usize, 4, 8] {
            let (j, r) = run(threads);
            prop_assert_eq!(&j, &j1, "model differs at {} threads", threads);
            prop_assert_eq!(&r, &r1, "report differs at {} threads", threads);
        }
        if r1.converged() {
            let model = AsRoutingModel::from_json(&j1).unwrap();
            let ev = evaluate(&model, &d);
            prop_assert_eq!(ev.counts.rib_out, ev.counts.total);
        }
    }

    /// Match levels are monotone under refinement: no observed training
    /// route gets *worse* than in the initial model.
    #[test]
    fn refinement_never_hurts_training_matches(routes in arb_routes()) {
        let d = Dataset::new(routes);
        prop_assume!(!d.is_empty());
        let graph = d.as_graph();
        let initial = AsRoutingModel::initial(&graph, &d.prefixes());
        let ev0 = evaluate(&initial, &d);
        let mut model = AsRoutingModel::initial(&graph, &d.prefixes());
        refine(&mut model, &d, &RefineConfig::default()).unwrap();
        let ev1 = evaluate(&model, &d);
        prop_assert!(ev1.counts.rib_out >= ev0.counts.rib_out);
    }
}
