//! The refinement determinism contract, checked through the shared
//! differential harness: where `parallel_refine.rs` asserts blob
//! equality, this suite goes through `quasar_testkit::diff`, which
//! pinpoints the first diverging field if the contract ever breaks —
//! the failure message names a JSON path instead of two dumps.

use quasar_testkit::diff::{refine_differential, roundtrip_differential};
use quasar_testkit::workload::tiny_trained;

#[test]
fn refinement_thread_counts_agree_field_by_field() {
    let fx = tiny_trained(202);
    if let Err(d) = refine_differential(&fx.full, &fx.training, &[2, 8]) {
        panic!("{d}");
    }
}

#[test]
fn trained_model_survives_json_roundtrip_per_field() {
    let fx = tiny_trained(202);
    let requests = vec![r#"{"type":"stats"}"#.to_string()];
    if let Err(d) = roundtrip_differential(&fx.model, &requests) {
        panic!("{d}");
    }
}
