//! End-to-end pipeline test: synthetic Internet → feeds → split → initial
//! model → refinement → training reproduction + validation prediction.
//! This is the paper's §4/§5 pipeline in miniature.

use quasar_core::prelude::*;
use quasar_netgen::prelude::*;

fn dataset_from(net: &SyntheticInternet) -> Dataset {
    Dataset::new(net.observations.iter().map(|o| ObservedRoute {
        point: o.point,
        observer_as: o.observer_as,
        prefix: o.prefix,
        as_path: o.as_path.clone(),
    }))
}

#[test]
fn training_set_reproduced_exactly() {
    let net = SyntheticInternet::generate(NetGenConfig::tiny(101));
    let full = dataset_from(&net);
    let (training, _validation) = full.split_by_point(0.5, 7);

    let mut model = AsRoutingModel::initial(&full.as_graph(), &full.prefixes());
    let report = refine(&mut model, &training, &RefineConfig::default()).unwrap();
    assert!(
        report.converged(),
        "refinement did not converge: {} of {} prefixes",
        report.prefixes.iter().filter(|p| !p.converged).count(),
        report.prefixes.len()
    );

    let ev = evaluate(&model, &training);
    assert_eq!(
        ev.counts.rib_out, ev.counts.total,
        "training reproduction imperfect: {:?}",
        ev.counts
    );
}

#[test]
fn validation_prediction_beats_baseline() {
    let net = SyntheticInternet::generate(NetGenConfig::tiny(201));
    let full = dataset_from(&net);
    let (training, validation) = full.split_by_point(0.5, 7);
    assert!(!validation.is_empty());

    let graph = full.as_graph();
    let mut model = AsRoutingModel::initial(&graph, &full.prefixes());
    refine(&mut model, &training, &RefineConfig::default()).unwrap();
    let refined_ev = evaluate(&model, &validation);

    let base = shortest_path_model(&graph, &full.prefixes());
    let base_ev = evaluate(&base, &validation);

    assert!(
        refined_ev.counts.tie_break_rate() >= base_ev.counts.tie_break_rate(),
        "refined {:?} not better than baseline {:?}",
        refined_ev.counts,
        base_ev.counts
    );
    // The abstract's headline: >80% matched down to the final tie break.
    assert!(
        refined_ev.counts.tie_break_rate() > 0.8,
        "validation tie-break rate {:.3} too low ({:?})",
        refined_ev.counts.tie_break_rate(),
        refined_ev.counts
    );
}

#[test]
fn origin_split_prediction() {
    let net = SyntheticInternet::generate(NetGenConfig::tiny(303));
    let full = dataset_from(&net);
    let (training, validation) = full.split_by_origin(0.5, 9);
    assert!(!validation.is_empty());

    let mut model = AsRoutingModel::initial(&full.as_graph(), &full.prefixes());
    refine(&mut model, &training, &RefineConfig::default()).unwrap();
    let ev = evaluate(&model, &validation);
    // Unseen prefixes: the quasi-router topology transfers but per-prefix
    // policies cannot; RIB-In should still be high.
    assert!(
        ev.counts.rib_in_rate() > 0.5,
        "rib-in rate {:.3} too low",
        ev.counts.rib_in_rate()
    );
}

#[test]
fn pruning_keeps_training_convergent() {
    let net = SyntheticInternet::generate(NetGenConfig::tiny(404));
    let full = dataset_from(&net);
    let pruned = prune_stub_ases(&full, &[]);
    assert!(!pruned.dataset.is_empty());

    let (training, _validation) = pruned.dataset.split_by_point(0.5, 5);
    let mut model = AsRoutingModel::initial(&pruned.graph, &pruned.dataset.prefixes());
    let report = refine(&mut model, &training, &RefineConfig::default()).unwrap();
    assert!(report.converged());
}

#[test]
fn quasi_router_growth_is_bounded_by_diversity() {
    let net = SyntheticInternet::generate(NetGenConfig::tiny(505));
    let full = dataset_from(&net);
    let (training, _) = full.split_by_point(0.5, 7);

    let mut model = AsRoutingModel::initial(&full.as_graph(), &full.prefixes());
    let before = model.stats().quasi_routers;
    refine(&mut model, &training, &RefineConfig::default()).unwrap();
    let after = model.stats().quasi_routers;
    assert!(after >= before);
    // A quasi-router is only ever added to capture an extra concurrent
    // path; growth must stay well below the number of observed routes.
    assert!(
        after - before <= training.len(),
        "unreasonable growth: {before} -> {after}"
    );
}
