//! Post-training / post-recovery audit hook.
//!
//! The static analyzer lives in `quasar-lint`, which depends on this crate
//! — so `refine` cannot call it directly. Instead the binary (or any other
//! top-level consumer) installs an auditor function here once at startup,
//! and refinement / checkpoint recovery run it on every model they
//! produce, logging findings without ever invoking the simulator.

use crate::model::AsRoutingModel;
use std::sync::OnceLock;

/// Severity tallies plus a pre-rendered summary, as returned by an
/// installed auditor.
#[derive(Debug, Clone, Default)]
pub struct AuditSummary {
    /// Findings that make the model unsound (dangling references,
    /// duplicated rankings, reflector cycles, ...).
    pub errors: usize,
    /// Findings that are suspicious but not disqualifying.
    pub warnings: usize,
    /// Advisory findings.
    pub infos: usize,
    /// Human-readable rendering of the findings, one per line.
    pub rendered: String,
}

impl AuditSummary {
    /// True when the audit produced no findings at any severity.
    pub fn is_clean(&self) -> bool {
        self.errors == 0 && self.warnings == 0 && self.infos == 0
    }

    /// One-line tally, e.g. `1 error(s), 2 warning(s), 0 info(s)`.
    pub fn tally(&self) -> String {
        format!(
            "{} error(s), {} warning(s), {} info(s)",
            self.errors, self.warnings, self.infos
        )
    }
}

/// An installed model auditor.
pub type Auditor = fn(&AsRoutingModel) -> AuditSummary;

static AUDITOR: OnceLock<Auditor> = OnceLock::new();

/// Installs the process-wide auditor. The first installation wins; later
/// calls are no-ops, so concurrent tests can install it racily.
pub fn install_auditor(f: Auditor) {
    let _ = AUDITOR.set(f);
}

/// True when an auditor has been installed.
pub fn auditor_installed() -> bool {
    AUDITOR.get().is_some()
}

/// Runs the installed auditor, or `None` when none is installed.
pub fn run(model: &AsRoutingModel) -> Option<AuditSummary> {
    AUDITOR.get().map(|f| f(model))
}

/// Audits `model` and logs the outcome to stderr, prefixed with
/// `context` (e.g. `post-train`, `checkpoint-recovery`): one `clean`
/// line when there are no findings, the tally plus one line per finding
/// otherwise. Silent only when no auditor is installed.
pub(crate) fn log_audit(context: &str, model: &AsRoutingModel) {
    let Some(summary) = run(model) else {
        return;
    };
    if summary.is_clean() {
        eprintln!("audit [{context}]: clean");
        return;
    }
    eprintln!("audit [{context}]: {}", summary.tally());
    for line in summary.rendered.lines() {
        eprintln!("audit [{context}]:   {line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_tally_and_cleanliness() {
        let clean = AuditSummary::default();
        assert!(clean.is_clean());
        let dirty = AuditSummary {
            errors: 1,
            warnings: 2,
            infos: 0,
            rendered: String::new(),
        };
        assert!(!dirty.is_clean());
        assert_eq!(dirty.tally(), "1 error(s), 2 warning(s), 0 info(s)");
    }

    #[test]
    fn install_is_first_wins_and_run_uses_it() {
        fn fake(_: &AsRoutingModel) -> AuditSummary {
            AuditSummary {
                errors: 7,
                ..AuditSummary::default()
            }
        }
        install_auditor(fake);
        assert!(auditor_installed());
        install_auditor(|_| AuditSummary::default()); // ignored: first wins
        let graph = quasar_topology::graph::AsGraph::default();
        let model = AsRoutingModel::initial(&graph, &std::collections::BTreeMap::new());
        let summary = run(&model).expect("auditor installed");
        assert_eq!(summary.errors, 7);
    }
}
