//! Prediction-failure diagnostics.
//!
//! The paper's metrics say *how often* prediction fails; operators also
//! need to know *where*. This module attributes each validation mismatch
//! to the AS closest to the origin at which the observed path's suffix
//! stops being selected in the model — "the AS which is closest to the
//! originating AS with a discrepancy" (§4.6), reused as an analysis lens.

use crate::metrics::{match_level, MatchLevel};
use crate::model::AsRoutingModel;
use crate::observed::Dataset;
use quasar_bgpsim::types::{Asn, Prefix};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where and how often the model loses observed paths.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MismatchDiagnostics {
    /// Per AS: number of validation routes whose reproduction first breaks
    /// at that AS.
    pub first_failure_at: BTreeMap<Asn, usize>,
    /// Routes examined.
    pub routes: usize,
    /// Routes fully matched (no failure point).
    pub matched: usize,
}

impl MismatchDiagnostics {
    /// The worst offenders, descending by failure count.
    pub fn top_offenders(&self, n: usize) -> Vec<(Asn, usize)> {
        let mut v: Vec<(Asn, usize)> = self
            .first_failure_at
            .iter()
            .map(|(&a, &c)| (a, c))
            .collect();
        v.sort_by_key(|&(a, c)| (std::cmp::Reverse(c), a));
        v.truncate(n);
        v
    }
}

/// Attributes every non-reproduced route of `dataset` to its first failing
/// AS. One simulation per prefix.
pub fn diagnose(model: &AsRoutingModel, dataset: &Dataset) -> MismatchDiagnostics {
    let mut out = MismatchDiagnostics::default();
    let mut by_prefix: BTreeMap<Prefix, Vec<&crate::observed::ObservedRoute>> = BTreeMap::new();
    for r in dataset.routes() {
        by_prefix.entry(r.prefix).or_default().push(r);
    }
    for (prefix, routes) in by_prefix {
        let res = match model.prefixes().contains_key(&prefix) {
            true => model.simulate(prefix).ok(),
            false => None,
        };
        for r in routes {
            out.routes += 1;
            let Some(res) = &res else {
                // Unknown prefix: attribute to the origin AS.
                if let Some(o) = r.as_path.origin() {
                    *out.first_failure_at.entry(o).or_default() += 1;
                }
                continue;
            };
            // Walk suffixes origin-first; the first AS whose suffix is not
            // RIB-Out matched is the failure point.
            let mut failed_at: Option<Asn> = None;
            for n in 1..=r.as_path.len() {
                let suffix = r.as_path.suffix(n);
                let Some(asn) = suffix.head() else {
                    continue; // unreachable: a length-n suffix with n >= 1
                };
                let routers = model.quasi_routers_of(asn);
                if match_level(res, &routers, &suffix) != MatchLevel::RibOut {
                    failed_at = Some(asn);
                    break;
                }
            }
            match failed_at {
                Some(asn) => *out.first_failure_at.entry(asn).or_default() += 1,
                None => out.matched += 1,
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observed::ObservedRoute;
    use crate::refine::{refine, RefineConfig};
    use quasar_bgpsim::aspath::AsPath;

    fn dataset(routes: &[(&[u32], u32, u32)]) -> Dataset {
        Dataset::new(routes.iter().map(|&(p, origin, point)| ObservedRoute {
            point,
            observer_as: Asn(p[0]),
            prefix: Prefix::for_origin(Asn(origin)),
            as_path: AsPath::from_u32s(p),
        }))
    }

    #[test]
    fn trained_model_has_no_failures_on_training() {
        let d = dataset(&[(&[1, 2, 3], 3, 0), (&[1, 4, 3], 3, 0)]);
        let mut model = AsRoutingModel::initial(&d.as_graph(), &d.prefixes());
        refine(&mut model, &d, &RefineConfig::default()).unwrap();
        let diag = diagnose(&model, &d);
        assert_eq!(diag.matched, diag.routes);
        assert!(diag.first_failure_at.is_empty());
    }

    #[test]
    fn untrained_tie_break_loser_attributed_to_observer() {
        // Diamond: AS1's default pick is 2-3; the observed 1-4-3 fails
        // first at AS1 (AS4 itself reproduces fine).
        let d = dataset(&[(&[1, 2, 3], 3, 0), (&[1, 4, 3], 3, 0)]);
        let model = AsRoutingModel::initial(&d.as_graph(), &d.prefixes());
        let diag = diagnose(&model, &d);
        assert_eq!(diag.routes, 2);
        assert_eq!(diag.matched, 1);
        assert_eq!(diag.first_failure_at.get(&Asn(1)), Some(&1));
    }

    #[test]
    fn unknown_prefix_attributed_to_origin() {
        let d = dataset(&[(&[1, 2], 2, 0)]);
        let model = AsRoutingModel::initial(&d.as_graph(), &d.prefixes());
        let other = dataset(&[(&[1, 999], 999, 0)]);
        let diag = diagnose(&model, &other);
        assert_eq!(diag.first_failure_at.get(&Asn(999)), Some(&1));
    }

    #[test]
    fn diagnostics_serde_round_trip() {
        let mut diag = MismatchDiagnostics {
            routes: 12,
            matched: 9,
            ..Default::default()
        };
        diag.first_failure_at.insert(Asn(7), 2);
        diag.first_failure_at.insert(Asn(701), 1);
        let json = serde_json::to_string(&diag).unwrap();
        let back: MismatchDiagnostics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, diag);
        assert_eq!(back.top_offenders(10), diag.top_offenders(10));
    }

    #[test]
    fn top_offenders_truncates_to_n() {
        let mut diag = MismatchDiagnostics::default();
        for a in 1..=10u32 {
            diag.first_failure_at.insert(Asn(a), a as usize);
        }
        let top = diag.top_offenders(3);
        assert_eq!(top, vec![(Asn(10), 10), (Asn(9), 9), (Asn(8), 8)]);
    }

    #[test]
    fn top_offenders_sorted() {
        let mut diag = MismatchDiagnostics::default();
        diag.first_failure_at.insert(Asn(1), 3);
        diag.first_failure_at.insert(Asn(2), 7);
        diag.first_failure_at.insert(Asn(3), 7);
        assert_eq!(
            diag.top_offenders(2),
            vec![(Asn(2), 7), (Asn(3), 7)],
            "descending count, ascending ASN on ties"
        );
    }
}
