//! Policy atoms: prefix groups with identical observed routing.
//!
//! The paper refines policies per prefix; its §4.7 and the authors'
//! follow-up work ("In Search for an Appropriate Granularity to Model
//! Routing Policies") observe that many prefixes are routed identically
//! and can share policies. An **atom** is a maximal set of prefixes that
//! every observation point sees via exactly the same AS-path. Refining one
//! representative per atom and replicating its learned per-prefix rules to
//! the other members yields the same model behaviour at a fraction of the
//! simulation cost.

use crate::model::AsRoutingModel;
use crate::observed::Dataset;
use crate::refine::{refine_prefix, PrefixOutcome, RefineConfig, RefineReport};
use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::error::SimError;
use quasar_bgpsim::types::Prefix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The atom decomposition of a dataset.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyAtoms {
    /// Each atom: the member prefixes (sorted), first member is the
    /// representative.
    pub atoms: Vec<Vec<Prefix>>,
}

impl PolicyAtoms {
    /// Groups the dataset's prefixes into atoms by their full observation
    /// signature (every `(point, path)` pair must coincide).
    pub fn compute(dataset: &Dataset) -> Self {
        let mut signatures: BTreeMap<Prefix, Vec<(u32, &AsPath)>> = BTreeMap::new();
        for r in dataset.routes() {
            signatures
                .entry(r.prefix)
                .or_default()
                .push((r.point, &r.as_path));
        }
        let mut groups: BTreeMap<Vec<(u32, &AsPath)>, Vec<Prefix>> = BTreeMap::new();
        for (prefix, mut sig) in signatures {
            sig.sort();
            sig.dedup();
            groups.entry(sig).or_default().push(prefix);
        }
        let mut atoms: Vec<Vec<Prefix>> = groups.into_values().collect();
        for a in &mut atoms {
            a.sort();
        }
        atoms.sort();
        PolicyAtoms { atoms }
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if no atoms.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Total prefixes covered.
    pub fn prefixes(&self) -> usize {
        self.atoms.iter().map(|a| a.len()).sum()
    }

    /// Prefixes-per-atom compression factor (1.0 = no sharing).
    pub fn compression(&self) -> f64 {
        if self.atoms.is_empty() {
            return 1.0;
        }
        self.prefixes() as f64 / self.atoms.len() as f64
    }

    /// Size of the largest atom.
    pub fn largest(&self) -> usize {
        self.atoms.iter().map(|a| a.len()).max().unwrap_or(0)
    }
}

/// Atom-accelerated refinement: refines one representative prefix per atom
/// and replicates the learned rules to the remaining members. Produces a
/// model with identical training behaviour to per-prefix [`crate::refine::refine`]
/// at roughly `1/compression` of the simulation cost.
pub fn refine_with_atoms(
    model: &mut AsRoutingModel,
    training: &Dataset,
    cfg: &RefineConfig,
) -> Result<(RefineReport, PolicyAtoms), SimError> {
    let atoms = PolicyAtoms::compute(training);
    let mut by_prefix: BTreeMap<Prefix, Vec<&AsPath>> = BTreeMap::new();
    for r in training.routes() {
        by_prefix.entry(r.prefix).or_default().push(&r.as_path);
    }

    let mut report = RefineReport::default();
    for atom in &atoms.atoms {
        let rep = atom[0];
        if !model.prefixes().contains_key(&rep) {
            continue;
        }
        let paths = by_prefix.get(&rep).cloned().unwrap_or_default();
        let outcome = refine_prefix(model, rep, &paths, cfg)?;
        // Replicate the representative's learned rules to the members.
        for &member in &atom[1..] {
            let replicated = model.replicate_prefix_policies(rep, member);
            report.prefixes.push(PrefixOutcome {
                prefix: member,
                targets: outcome.targets,
                iterations: 0,
                converged: outcome.converged,
                quasi_routers_added: 0,
                filters_deleted: 0,
                diverged: false,
            });
            let _ = replicated;
        }
        report.prefixes.push(outcome);
    }
    report.prefixes.sort_by_key(|p| p.prefix);
    Ok((report, atoms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observed::ObservedRoute;
    use crate::predict::evaluate;
    use quasar_bgpsim::types::Asn;

    fn route(point: u32, path: &[u32], prefix: Prefix) -> ObservedRoute {
        ObservedRoute {
            point,
            observer_as: Asn(path[0]),
            prefix,
            as_path: AsPath::from_u32s(path),
        }
    }

    /// Two prefixes of AS 3 observed identically (one atom) plus one routed
    /// differently (its own atom).
    fn dataset() -> Dataset {
        let p0 = Prefix::for_origin_nth(Asn(3), 0);
        let p1 = Prefix::for_origin_nth(Asn(3), 1);
        let p2 = Prefix::for_origin_nth(Asn(3), 2);
        Dataset::new(vec![
            route(0, &[1, 2, 3], p0),
            route(0, &[1, 4, 3], p0),
            route(0, &[1, 2, 3], p1),
            route(0, &[1, 4, 3], p1),
            // p2 seen via AS4 only: a different signature.
            route(0, &[1, 4, 3], p2),
        ])
    }

    #[test]
    fn atoms_group_identical_signatures() {
        let atoms = PolicyAtoms::compute(&dataset());
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms.prefixes(), 3);
        assert_eq!(atoms.largest(), 2);
        assert!((atoms.compression() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn atom_refinement_matches_per_prefix_refinement() {
        let d = dataset();
        let graph = d.as_graph();

        let mut per_prefix = AsRoutingModel::initial(&graph, &d.prefixes());
        crate::refine::refine(&mut per_prefix, &d, &RefineConfig::default()).unwrap();
        let ev_pp = evaluate(&per_prefix, &d);

        let mut atomized = AsRoutingModel::initial(&graph, &d.prefixes());
        let (report, atoms) =
            refine_with_atoms(&mut atomized, &d, &RefineConfig::default()).unwrap();
        assert!(report.converged());
        assert_eq!(atoms.len(), 2);
        let ev_at = evaluate(&atomized, &d);

        assert_eq!(ev_pp.counts, ev_at.counts);
        assert_eq!(ev_at.counts.rib_out, ev_at.counts.total);
    }

    #[test]
    fn empty_dataset_yields_no_atoms() {
        let atoms = PolicyAtoms::compute(&Dataset::default());
        assert!(atoms.is_empty());
        assert_eq!(atoms.compression(), 1.0);
    }
}
