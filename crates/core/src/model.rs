//! The AS-routing model: quasi-router topology + per-prefix policies
//! (paper §4.1/§4.5).
//!
//! "Initially, all ASes consist of a single quasi-router, and peerings are
//! established according to the edges of the AS graph... We choose to use
//! IP addresses such that the high order 16 bits are set to the AS number
//! and the low order bits are a unique ID for each quasi-router within the
//! AS." Quasi-routers inside an AS stay mutually isolated (no iBGP, §4.6):
//! "we short-circuit the intra-AS route propagation process".

use quasar_bgpsim::decision::{DecisionConfig, MedMode};
use quasar_bgpsim::engine::SimulationResult;
use quasar_bgpsim::error::SimError;
use quasar_bgpsim::network::{Network, SessionKind};
use quasar_bgpsim::policy::{Action, PolicyRule, RouteMatch};
use quasar_bgpsim::types::{Asn, Prefix, RouterId};
use quasar_topology::graph::AsGraph;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Counters describing the size of a model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelStats {
    /// Number of ASes.
    pub ases: usize,
    /// Total quasi-routers.
    pub quasi_routers: usize,
    /// Total eBGP sessions.
    pub sessions: usize,
    /// Policy rules installed by refinement.
    pub policy_rules: usize,
}

/// The AS-routing model under construction/evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsRoutingModel {
    net: Network,
    /// Next free quasi-router index per AS.
    next_index: BTreeMap<Asn, u16>,
    /// Origin AS per prefix. Serialized as an entry list: JSON map keys
    /// must be strings, and `Prefix` is a structured key. Behind an `Arc`
    /// because it is immutable after construction and cloned once per
    /// refinement-domain snapshot — sharing makes those clones free.
    #[serde(with = "prefix_map_entries")]
    origin_of: std::sync::Arc<BTreeMap<Prefix, Asn>>,
    /// Rules added by refinement (bookkeeping for stats).
    rules_added: usize,
}

impl AsRoutingModel {
    /// Builds the initial model: one quasi-router per AS of `graph`, one
    /// eBGP session per AS edge, no policies. `prefix_origins` maps each
    /// prefix the model will route to its originating AS (which must be in
    /// the graph). The decision process always compares MED across
    /// neighbors, as the refinement heuristic requires (§4.6).
    // `expect`s below: graph edges are deduplicated by AsGraph, so
    // add_session cannot fail on them.
    #[allow(clippy::expect_used)]
    pub fn initial(graph: &AsGraph, prefix_origins: &BTreeMap<Prefix, Asn>) -> Self {
        let mut net = Network::new(DecisionConfig {
            med_mode: MedMode::AlwaysCompare,
        });
        let mut next_index = BTreeMap::new();
        for asn in graph.nodes() {
            net.add_router(RouterId::new(asn, 0));
            next_index.insert(asn, 1);
        }
        for (a, b) in graph.edges() {
            net.add_session(RouterId::new(a, 0), RouterId::new(b, 0), SessionKind::Ebgp)
                .expect("graph edges are unique");
        }
        net.message_budget = (net.num_sessions() as u64 * 5_000).max(1_000_000);
        AsRoutingModel {
            net,
            next_index,
            origin_of: std::sync::Arc::new(
                prefix_origins
                    .iter()
                    .filter(|(_, o)| graph.contains(**o))
                    .map(|(&p, &o)| (p, o))
                    .collect(),
            ),
            rules_added: 0,
        }
    }

    /// The underlying simulator network (read-only).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the underlying network — used by the refinement
    /// heuristic and by test tooling (e.g. seeded defect injection for the
    /// static analyzer). Mutations bypass the model's bookkeeping
    /// (`rules_added`, quasi-router allocation), so production code should
    /// prefer the typed mutators above.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    pub(crate) fn note_rules_added(&mut self, n: usize) {
        self.rules_added += n;
    }

    /// The prefixes the model routes, with their origin AS.
    pub fn prefixes(&self) -> &BTreeMap<Prefix, Asn> {
        &self.origin_of
    }

    /// Quasi-routers of `asn`, ascending by index.
    pub fn quasi_routers_of(&self, asn: Asn) -> Vec<RouterId> {
        self.net.routers_of(asn)
    }

    /// Number of quasi-routers per AS (for the quasi-router-growth
    /// experiment).
    pub fn quasi_router_counts(&self) -> BTreeMap<Asn, usize> {
        let mut out: BTreeMap<Asn, usize> = BTreeMap::new();
        for &r in self.net.routers() {
            *out.entry(r.asn()).or_default() += 1;
        }
        out
    }

    /// Model size counters.
    pub fn stats(&self) -> ModelStats {
        ModelStats {
            ases: self.next_index.len(),
            quasi_routers: self.net.num_routers(),
            sessions: self.net.num_sessions(),
            policy_rules: self.rules_added,
        }
    }

    /// Serializes the trained model to JSON so it can be stored and
    /// reloaded (train once, ask many what-if questions later).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Restores a model from [`Self::to_json`] output, rebuilding the
    /// internal lookup indices serde skips.
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        let mut model: AsRoutingModel = serde_json::from_str(s)?;
        // Validate *before* rebuild_indices, which indexes into the router
        // table and would panic on out-of-bounds session endpoints.
        model
            .validate_structure()
            .map_err(|e| serde_json::Error::msg(format!("model structure invalid: {e}")))?;
        model.net.rebuild_indices();
        Ok(model)
    }

    /// Structural sanity over serialized fields only: the network must be
    /// well-formed (session bounds/kinds, no duplicates) and every prefix
    /// must be originated by an AS that has at least one quasi-router.
    /// Deeper semantic checks (dangling policy references, contradictory
    /// rankings, convergence risks) live in the `quasar-lint` analyzer.
    pub fn validate_structure(&self) -> Result<(), String> {
        self.net.check_structure()?;
        let ases: BTreeSet<Asn> = self.net.routers().iter().map(|r| r.asn()).collect();
        for (&prefix, &asn) in self.origin_of.iter() {
            if !ases.contains(&asn) {
                return Err(format!(
                    "prefix {prefix} is originated by {asn} which has no quasi-router"
                ));
            }
        }
        Ok(())
    }

    /// Simulates one prefix on the current model. The prefix is originated
    /// at *every* quasi-router of its origin AS, so duplicated origin
    /// routers keep announcing it.
    pub fn simulate(&self, prefix: Prefix) -> Result<SimulationResult, SimError> {
        let origin = *self.origin_of.get(&prefix).unwrap_or(&Asn::RESERVED);
        let origins = self.net.routers_of(origin);
        self.net.simulate(prefix, &origins)
    }

    /// Like [`Self::simulate`], but reusing the caller's simulation
    /// buffers. Refinement workers run many simulations back to back on a
    /// slowly growing network; reusing one `SimScratch` per worker
    /// removes the per-run O(routers + adjacency) allocations.
    pub fn simulate_with(
        &self,
        prefix: Prefix,
        scratch: &mut quasar_bgpsim::engine::SimScratch,
    ) -> Result<SimulationResult, SimError> {
        let origin = *self.origin_of.get(&prefix).unwrap_or(&Asn::RESERVED);
        let origins = self.net.routers_of(origin);
        self.net.simulate_with(prefix, &origins, scratch)
    }

    /// Duplicates quasi-router `src`: the copy gets a fresh index in the
    /// same AS, sessions to exactly the same peers, and byte-identical
    /// policies in both directions — "an identical copy of the existing
    /// quasi-router with the same neighbors" (§4.4), guaranteeing the same
    /// RIB-In.
    // `expect`s below: every session touched is either iterated from the
    // adjacency (so it exists) or created earlier in the same loop body.
    #[allow(clippy::expect_used)]
    pub fn duplicate_quasi_router(&mut self, src: RouterId) -> RouterId {
        let asn = src.asn();
        let idx = self.next_index.get_mut(&asn).expect("AS exists in model");
        let copy = RouterId::new(asn, *idx);
        *idx += 1;
        self.net.add_router(copy);
        for peer in self.net.peers_of(src) {
            if peer.asn() == asn {
                continue; // quasi-routers stay isolated from each other
            }
            self.net
                .add_session(copy, peer, SessionKind::Ebgp)
                .expect("fresh session for fresh router");
            let d_out = self
                .net
                .direction_policies(src, peer)
                .expect("session exists")
                .clone();
            let d_in = self
                .net
                .direction_policies(peer, src)
                .expect("session exists")
                .clone();
            // copy -> peer mirrors src -> peer; peer -> copy mirrors
            // peer -> src.
            self.net
                .set_export_policy(copy, peer, d_out.export)
                .expect("session just created");
            self.net
                .set_import_policy(peer, copy, d_out.import)
                .expect("session just created");
            self.net
                .set_export_policy(peer, copy, d_in.export)
                .expect("session just created");
            self.net
                .set_import_policy(copy, peer, d_in.import)
                .expect("session just created");
        }
        copy
    }

    /// Like [`Self::duplicate_quasi_router`], but the copy starts with
    /// *default* (empty) policies on every session instead of cloning the
    /// source's.
    ///
    /// The op-log merge uses this variant: a merge-time duplicate is
    /// shared by every refinement domain that recorded an equivalent
    /// `Duplicate`, and each claiming domain re-applies its own recorded
    /// policy ops to the copy. Cloning here would smuggle in whatever
    /// policy state happened to accumulate on the source *before this
    /// copy's creation turn* — making the merged model depend on the
    /// relative order in which domains first claim their duplicates, an
    /// order that reshuffles whenever a dirty domain's op-log changes.
    /// With a clean copy plus per-claimant re-application, the merged
    /// model depends only on *which* duplicates exist and on each
    /// domain's own op-log, which is what lets the incremental trainer
    /// prove an unchanged merge and replay its recorded repair trace.
    #[allow(clippy::expect_used)] // sessions are created in the same loop
    pub fn duplicate_quasi_router_clean(&mut self, src: RouterId) -> RouterId {
        let asn = src.asn();
        let idx = self.next_index.get_mut(&asn).expect("AS exists in model");
        let copy = RouterId::new(asn, *idx);
        *idx += 1;
        self.net.add_router(copy);
        for peer in self.net.peers_of(src) {
            if peer.asn() == asn {
                continue; // quasi-routers stay isolated from each other
            }
            self.net
                .add_session(copy, peer, SessionKind::Ebgp)
                .expect("fresh session for fresh router");
        }
        copy
    }

    /// Installs the per-prefix MED ranking of the refinement heuristic at
    /// quasi-router `q` (§4.6): sessions delivering the wanted route get
    /// MED 0, every other session gets MED 10, so "if two routes have the
    /// same local-pref and the same AS-path length the one with the lower
    /// MED is selected". Pre-existing MED rules for the prefix at `q` are
    /// replaced.
    #[allow(clippy::expect_used)] // sessions come from the adjacency walk
    pub fn set_med_preference(
        &mut self,
        q: RouterId,
        prefix: Prefix,
        preferred_senders: &[RouterId],
    ) {
        let peers = self.net.peers_of(q);
        let mut added = 0usize;
        for peer in peers {
            let policy = self.net.import_policy_mut(q, peer).expect("session exists");
            policy.remove_rules(|r| {
                r.matcher.prefix == Some(prefix) && matches!(r.action, Action::SetMed(_))
            });
            let med = if preferred_senders.contains(&peer) {
                0
            } else {
                10
            };
            policy.push(PolicyRule::new(
                RouteMatch::prefix(prefix),
                Action::SetMed(med),
            ));
            added += 1;
        }
        self.rules_added += added;
    }

    /// Local-pref variant of [`Self::set_med_preference`], used only by the
    /// ablation that reproduces why the paper rejected local-pref ranking
    /// (§4.6): preferring longer paths via local-pref "can lead to
    /// divergence".
    #[allow(clippy::expect_used)] // sessions come from the adjacency walk
    pub fn set_local_pref_preference(
        &mut self,
        q: RouterId,
        prefix: Prefix,
        preferred_senders: &[RouterId],
    ) {
        let peers = self.net.peers_of(q);
        let mut added = 0usize;
        for peer in peers {
            let policy = self.net.import_policy_mut(q, peer).expect("session exists");
            policy.remove_rules(|r| {
                r.matcher.prefix == Some(prefix) && matches!(r.action, Action::SetLocalPref(_))
            });
            let lp = if preferred_senders.contains(&peer) {
                120
            } else {
                90
            };
            policy.push(PolicyRule::new(
                RouteMatch::prefix(prefix),
                Action::SetLocalPref(lp),
            ));
            added += 1;
        }
        self.rules_added += added;
    }

    /// Installs the shorter-path egress filters of the refinement heuristic
    /// (§4.6): every neighbor of `q` denies routes for `prefix` whose
    /// Loc-RIB AS-path is shorter than `min_locrib_len` ("we do not filter
    /// those routes that have the same AS-path length"). Existing
    /// shorter-path filters for the prefix on those sessions are replaced.
    #[allow(clippy::expect_used)] // sessions come from the adjacency walk
    pub fn set_shorter_path_filters(&mut self, q: RouterId, prefix: Prefix, min_locrib_len: usize) {
        let peers = self.net.peers_of(q);
        let mut added = 0usize;
        for peer in peers {
            let policy = self.net.export_policy_mut(peer, q).expect("session exists");
            policy.remove_rules(|r| {
                r.matcher.prefix == Some(prefix) && r.matcher.path_shorter_than.is_some()
            });
            if min_locrib_len > 0 {
                policy.push(PolicyRule::new(
                    RouteMatch {
                        prefix: Some(prefix),
                        path_shorter_than: Some(min_locrib_len),
                        ..RouteMatch::any()
                    },
                    Action::Deny,
                ));
                added += 1;
            }
        }
        self.rules_added += added;
    }

    /// §4.7 extension ("Using the AS-routing model for predictions for
    /// other prefixes... and how to improve it for previously unconsidered
    /// prefixes"): generalizes the learned per-prefix MED rankings into
    /// per-session *defaults*. For every quasi-router session that carries
    /// per-prefix MED rules, the majority MED value becomes a catch-all
    /// rule at the front of the chain — per-prefix rules, evaluated later,
    /// still override it. A quasi-router that was taught to prefer a given
    /// neighbor for most trained prefixes will now prefer that neighbor
    /// for unseen prefixes too (per-neighbor policy granularity, as in the
    /// authors' follow-up work). Returns the number of defaults installed.
    #[allow(clippy::expect_used)] // sessions come from the adjacency walk
    pub fn generalize_med_preferences(&mut self) -> usize {
        let routers: Vec<RouterId> = self.net.routers().to_vec();
        let mut installed = 0usize;
        for q in routers {
            for peer in self.net.peers_of(q) {
                let policy = self.net.import_policy_mut(q, peer).expect("session exists");
                let mut zero = 0usize;
                let mut nonzero_sum = 0u64;
                let mut nonzero = 0usize;
                for r in policy.rules() {
                    if r.matcher.prefix.is_some() {
                        if let Action::SetMed(m) = r.action {
                            if m == 0 {
                                zero += 1;
                            } else {
                                nonzero += 1;
                                nonzero_sum += m as u64;
                            }
                        }
                    }
                }
                // Drop a previously installed default before re-deriving.
                policy.remove_rules(|r| {
                    r.matcher == RouteMatch::any() && matches!(r.action, Action::SetMed(_))
                });
                // Only decisive habits become defaults: enough evidence and
                // a clear (>=80 %) majority. Weak majorities would replace
                // the neutral no-policy behaviour with noise.
                let total = zero + nonzero;
                if total < 3 || (zero.max(nonzero) as f64) < 0.8 * total as f64 {
                    continue;
                }
                let default = if zero >= nonzero {
                    0
                } else {
                    (nonzero_sum / nonzero as u64) as u32
                };
                policy.push_front(PolicyRule::new(RouteMatch::any(), Action::SetMed(default)));
                installed += 1;
            }
        }
        self.rules_added += installed;
        installed
    }

    /// Clones every per-prefix policy rule for `from` into an equivalent
    /// rule for `to` across all sessions of the network (replacing any
    /// prior rules for `to`). Used by atom-accelerated refinement: prefixes
    /// with identical observed routing can share the learned rules.
    /// Returns the number of rules replicated.
    #[allow(clippy::expect_used)] // sessions come from the adjacency walk
    pub fn replicate_prefix_policies(&mut self, from: Prefix, to: Prefix) -> usize {
        let routers: Vec<RouterId> = self.net.routers().to_vec();
        let mut replicated = 0usize;
        let mut seen_sessions: std::collections::BTreeSet<(RouterId, RouterId)> =
            std::collections::BTreeSet::new();
        for r in routers {
            for peer in self.net.peers_of(r) {
                if !seen_sessions.insert((r, peer)) {
                    continue; // each direction once
                }
                // Import at r from peer + export at r towards peer.
                for import in [true, false] {
                    let policy = if import {
                        self.net.import_policy_mut(r, peer)
                    } else {
                        self.net.export_policy_mut(r, peer)
                    }
                    .expect("session exists");
                    policy.remove_rules(|rule| rule.matcher.prefix == Some(to));
                    let clones: Vec<PolicyRule> = policy
                        .rules()
                        .iter()
                        .filter(|rule| rule.matcher.prefix == Some(from))
                        .map(|rule| {
                            let mut m = rule.matcher.clone();
                            m.prefix = Some(to);
                            PolicyRule::new(m, rule.action)
                        })
                        .collect();
                    replicated += clones.len();
                    for c in clones {
                        policy.push(c);
                    }
                }
            }
        }
        self.rules_added += replicated;
        replicated
    }

    /// What-if support (paper §1: "what if a certain peering link was
    /// removed, or what-if we change policies thus?"): silences every
    /// session between the two ASes by denying all exports in both
    /// directions — routing-equivalent to withdrawing the adjacency while
    /// keeping the model's structure intact. Returns the number of
    /// sessions affected.
    #[allow(clippy::expect_used)] // sessions come from the adjacency walk
    pub fn depeer(&mut self, a: Asn, b: Asn) -> usize {
        let ra = self.quasi_routers_of(a);
        let rb = self.quasi_routers_of(b);
        let mut n = 0;
        for &x in &ra {
            for &y in &rb {
                if !self.net.has_session(x, y) {
                    continue;
                }
                let deny_all = {
                    let mut p = quasar_bgpsim::policy::Policy::permit_all();
                    p.push(PolicyRule::new(RouteMatch::any(), Action::Deny));
                    p
                };
                self.net
                    .set_export_policy(x, y, deny_all.clone())
                    .expect("session exists");
                self.net
                    .set_export_policy(y, x, deny_all)
                    .expect("session exists");
                n += 1;
            }
        }
        n
    }

    /// What-if support, the other direction of §1's question ("how the
    /// routing in the Internet would change if a peering is added"): adds
    /// a brand-new AS adjacency by connecting the first quasi-router of
    /// each AS with a policy-free eBGP session. Returns false if the
    /// session already existed.
    pub fn add_peering(&mut self, a: Asn, b: Asn) -> bool {
        let (Some(&ra), Some(&rb)) = (
            self.quasi_routers_of(a).first(),
            self.quasi_routers_of(b).first(),
        ) else {
            return false;
        };
        if self.net.has_session(ra, rb) {
            return false;
        }
        self.net
            .add_session(ra, rb, quasar_bgpsim::network::SessionKind::Ebgp)
            .is_ok()
    }

    /// Deletes egress filters from `from` towards `to` that block routes
    /// for `prefix` with Loc-RIB path length `locrib_len` (the
    /// filter-deletion step, §4.6 / Figure 7). Returns how many rules were
    /// removed.
    #[allow(clippy::expect_used)] // sessions come from the adjacency walk
    pub fn delete_blocking_filters(
        &mut self,
        from: RouterId,
        to: RouterId,
        prefix: Prefix,
        locrib_len: usize,
    ) -> usize {
        let policy = self
            .net
            .export_policy_mut(from, to)
            .expect("session exists");
        policy.remove_rules(|r| {
            r.action == Action::Deny
                && r.matcher.prefix == Some(prefix)
                && r.matcher.path_shorter_than.is_some_and(|n| locrib_len < n)
        })
    }
}

/// Serializes a `BTreeMap<Prefix, Asn>` as a `Vec<(Prefix, Asn)>` so
/// structured keys survive formats (like JSON) that require string map
/// keys.
mod prefix_map_entries {
    use quasar_bgpsim::types::{Asn, Prefix};
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::BTreeMap;

    use std::sync::Arc;

    pub fn serialize<S: Serializer>(
        map: &Arc<BTreeMap<Prefix, Asn>>,
        s: S,
    ) -> Result<S::Ok, S::Error> {
        map.iter().collect::<Vec<_>>().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        d: D,
    ) -> Result<Arc<BTreeMap<Prefix, Asn>>, D::Error> {
        Ok(Arc::new(
            Vec::<(Prefix, Asn)>::deserialize(d)?.into_iter().collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_bgpsim::aspath::AsPath;

    fn diamond() -> (AsGraph, BTreeMap<Prefix, Asn>) {
        // 1-2, 1-4, 2-3, 4-3; prefix at 3.
        let paths = vec![AsPath::from_u32s(&[1, 2, 3]), AsPath::from_u32s(&[1, 4, 3])];
        let graph = AsGraph::from_paths(&paths);
        let mut origins = BTreeMap::new();
        origins.insert(Prefix::for_origin(Asn(3)), Asn(3));
        (graph, origins)
    }

    #[test]
    fn initial_model_one_router_per_as() {
        let (g, o) = diamond();
        let m = AsRoutingModel::initial(&g, &o);
        let s = m.stats();
        assert_eq!(s.ases, 4);
        assert_eq!(s.quasi_routers, 4);
        assert_eq!(s.sessions, 4);
        assert_eq!(s.policy_rules, 0);
    }

    #[test]
    fn initial_model_simulates() {
        let (g, o) = diamond();
        let m = AsRoutingModel::initial(&g, &o);
        let res = m.simulate(Prefix::for_origin(Asn(3))).unwrap();
        let best = res.best_route(RouterId::new(Asn(1), 0)).unwrap();
        // Tie between 2-3 and 4-3 broken by lower neighbor id (AS2).
        assert_eq!(best.as_path.to_string(), "2 3");
    }

    #[test]
    fn duplication_mirrors_sessions_and_ribs() {
        let (g, o) = diamond();
        let mut m = AsRoutingModel::initial(&g, &o);
        let src = RouterId::new(Asn(1), 0);
        let copy = m.duplicate_quasi_router(src);
        assert_eq!(copy, RouterId::new(Asn(1), 1));
        assert_eq!(m.network().peers_of(copy), m.network().peers_of(src));
        let res = m.simulate(Prefix::for_origin(Asn(3))).unwrap();
        // The copy has the same candidates (paths) as the source.
        let paths = |r: RouterId| -> Vec<String> {
            let mut v: Vec<String> = res
                .rib(r)
                .unwrap()
                .candidates
                .iter()
                .map(|c| c.as_path.to_string())
                .collect();
            v.sort();
            v
        };
        assert_eq!(paths(src), paths(copy));
    }

    #[test]
    fn med_preference_flips_best() {
        let (g, o) = diamond();
        let mut m = AsRoutingModel::initial(&g, &o);
        let q = RouterId::new(Asn(1), 0);
        let p = Prefix::for_origin(Asn(3));
        // Prefer routes delivered by AS4's quasi-router.
        m.set_med_preference(q, p, &[RouterId::new(Asn(4), 0)]);
        let res = m.simulate(p).unwrap();
        assert_eq!(res.best_route(q).unwrap().as_path.to_string(), "4 3");
        assert!(m.stats().policy_rules > 0);
    }

    #[test]
    fn shorter_path_filters_block_short_routes() {
        // Line 1-2-3 plus direct 1-3: filter the 1-hop route at AS1 so the
        // 2-hop route via AS2 can win.
        let paths = vec![AsPath::from_u32s(&[1, 2, 3]), AsPath::from_u32s(&[1, 3])];
        let graph = AsGraph::from_paths(&paths);
        let mut origins = BTreeMap::new();
        let p = Prefix::for_origin(Asn(3));
        origins.insert(p, Asn(3));
        let mut m = AsRoutingModel::initial(&graph, &origins);
        let q = RouterId::new(Asn(1), 0);
        // Want the 2-hop path "2 3" (Loc-RIB form at AS1): filter
        // everything with Loc-RIB length < 1 at the announcing neighbors
        // (i.e. the direct announcement from AS3 whose Loc-RIB form is
        // empty).
        m.set_shorter_path_filters(q, p, 1);
        let res = m.simulate(p).unwrap();
        assert_eq!(res.best_route(q).unwrap().as_path.to_string(), "2 3");
    }

    #[test]
    fn delete_blocking_filters_restores_route() {
        let paths = vec![AsPath::from_u32s(&[1, 2, 3]), AsPath::from_u32s(&[1, 3])];
        let graph = AsGraph::from_paths(&paths);
        let mut origins = BTreeMap::new();
        let p = Prefix::for_origin(Asn(3));
        origins.insert(p, Asn(3));
        let mut m = AsRoutingModel::initial(&graph, &origins);
        let q = RouterId::new(Asn(1), 0);
        m.set_shorter_path_filters(q, p, 1);
        // The direct AS3 -> AS1 announcement (Loc-RIB length 0) is blocked;
        // delete it again.
        let removed = m.delete_blocking_filters(RouterId::new(Asn(3), 0), q, p, 0);
        assert_eq!(removed, 1);
        let res = m.simulate(p).unwrap();
        assert_eq!(res.best_route(q).unwrap().as_path.to_string(), "3");
    }

    /// Trains a consistent preference for AS4 at AS1's router on three
    /// prefixes (enough evidence for a decisive majority).
    fn trained_for_generalization() -> (AsRoutingModel, RouterId) {
        let (g, mut o) = diamond();
        let q = RouterId::new(Asn(1), 0);
        for n in 0..3u8 {
            o.insert(Prefix::for_origin_nth(Asn(3), n), Asn(3));
        }
        let mut m = AsRoutingModel::initial(&g, &o);
        for n in 0..3u8 {
            m.set_med_preference(
                q,
                Prefix::for_origin_nth(Asn(3), n),
                &[RouterId::new(Asn(4), 0)],
            );
        }
        (m, q)
    }

    #[test]
    fn generalized_defaults_follow_majority() {
        let (mut m, q) = trained_for_generalization();
        let installed = m.generalize_med_preferences();
        assert!(installed >= 2, "defaults on both sessions of q");
        // A brand-new prefix (origin AS3, different /24) now also prefers
        // AS4 at q.
        let (g, mut o) = diamond();
        let p_new = Prefix::for_origin_nth(Asn(3), 5);
        o.insert(p_new, Asn(3));
        let mut m2 = AsRoutingModel::initial(&g, &o);
        for n in 0..3u8 {
            m2.set_med_preference(
                q,
                Prefix::for_origin_nth(Asn(3), n),
                &[RouterId::new(Asn(4), 0)],
            );
        }
        m2.generalize_med_preferences();
        let res = m2.simulate(p_new).unwrap();
        assert_eq!(res.best_route(q).unwrap().as_path.to_string(), "4 3");
    }

    #[test]
    fn generalization_skips_weak_evidence() {
        let (g, o) = diamond();
        let mut m = AsRoutingModel::initial(&g, &o);
        let q = RouterId::new(Asn(1), 0);
        // One prefix only: below the evidence threshold.
        m.set_med_preference(q, Prefix::for_origin(Asn(3)), &[RouterId::new(Asn(4), 0)]);
        assert_eq!(m.generalize_med_preferences(), 0);
    }

    #[test]
    fn generalization_is_idempotent() {
        let (mut m, q) = trained_for_generalization();
        let a = m.generalize_med_preferences();
        let b = m.generalize_med_preferences();
        assert_eq!(a, b, "re-deriving must replace, not stack, defaults");
        let res = m.simulate(Prefix::for_origin(Asn(3))).unwrap();
        assert_eq!(res.best_route(q).unwrap().as_path.to_string(), "4 3");
    }

    #[test]
    fn depeer_silences_adjacency() {
        let (g, o) = diamond();
        let mut m = AsRoutingModel::initial(&g, &o);
        let p = Prefix::for_origin(Asn(3));
        assert!(m.depeer(Asn(2), Asn(3)) > 0);
        let res = m.simulate(p).unwrap();
        // AS1 can now only reach via AS4.
        assert_eq!(
            res.best_route(RouterId::new(Asn(1), 0))
                .unwrap()
                .as_path
                .to_string(),
            "4 3"
        );
        assert!(
            res.best_route(RouterId::new(Asn(2), 0)).is_some(),
            "via AS1 still works"
        );
    }

    #[test]
    fn prefixes_with_unknown_origin_dropped() {
        let (g, _) = diamond();
        let mut origins = BTreeMap::new();
        origins.insert(Prefix::for_origin(Asn(99)), Asn(99)); // not in graph
        let m = AsRoutingModel::initial(&g, &origins);
        assert!(m.prefixes().is_empty());
    }
}
