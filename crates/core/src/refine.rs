//! The iterative refinement heuristic (paper §4.4–§4.6, Figure 6).
//!
//! For every prefix, every suffix of every observed AS-path is a *target*:
//! the AS at the suffix's head must have some quasi-router that selects the
//! rest of the suffix as its best route and propagates it. Each iteration
//! simulates the prefix, then walks the targets origin-first and fixes the
//! first discrepancy locally:
//!
//! * **RIB-Out match** — reserve the (lowest-id) matching quasi-router for
//!   this path; it is "not available for matching another observed AS-path
//!   for the same prefix".
//! * **RIB-In match, no RIB-Out** — reserve an unreserved quasi-router that
//!   learned the path (or *duplicate* one if all are reserved) and adjust
//!   its per-prefix policy: MED-rank the announcing session best and filter
//!   shorter paths at the announcing neighbors. The paper deliberately uses
//!   MED + filters, not local-pref, to avoid divergence.
//! * **No RIB-In** — either delete a previously installed filter that now
//!   blocks the path at an announcing neighbor with a RIB-Out match
//!   (Figure 7), or skip: "a route with an appropriate AS-path first has to
//!   be propagated to this AS".
//!
//! "Perfect RIB-Out matches are achieved after a total number of
//! iterations that is a multiple of the maximum AS-path length."
//!
//! # Parallel schedule: sharded domains, merge, repair
//!
//! Per-prefix refinement is embarrassingly parallel in principle, but a
//! per-round barrier with whole-model snapshots spends more time waiting
//! and copying than refining. The schedule here has three phases:
//!
//! 1. **Domains.** The (sorted) prefix jobs are partitioned into
//!    contiguous *refinement domains* — a pure function of the job count,
//!    never of the thread count. Workers claim whole domains from an
//!    atomic work queue; each domain refines its prefixes sequentially to
//!    convergence against a copy-on-write `DomainModel` view that clones
//!    the base model only on first mutation and records every fix as a
//!    semantic `RefineOp`.
//! 2. **Merge.** Two passes in ascending domain id. Pass one creates
//!    every duplicated quasi-router, policy-clean: quasi-routers
//!    duplicated in different domains from the same lineage (source
//!    router, per-source ordinal) are deduplicated onto one shared copy.
//!    Pass two replays each domain's op-log against the complete router
//!    set, and at each `Duplicate` re-applies that domain's own earlier
//!    ops on the source to the shared copy — reproducing what the
//!    domain-local clone inherited. Creating first and replaying second
//!    makes the merged model a function of the duplicate *set* plus the
//!    per-domain logs, never of the order in which domains first claim a
//!    shared copy — the invariant the incremental trainer's repair-trace
//!    replay is built on (see `merge_duplication_schedule`).
//! 3. **Repair.** The classic round loop re-verifies every prefix against
//!    the merged model and fixes any residual cross-domain interference —
//!    typically a single verification round.
//!
//! Determinism: phase 1 results are schedule-independent (every domain
//! starts from the pristine base model), and phases 2 and 3 are
//! sequential-deterministic, so the trained model is byte-identical at
//! any thread count. Fix application order is a pure function of prefix
//! id — (domain id, position in domain) — not of worker scheduling.

use crate::model::AsRoutingModel;
use crate::observed::Dataset;
use crate::persist::{self, PersistError};
use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::engine::{SimScratch, SimulationResult};
use quasar_bgpsim::error::SimError;
use quasar_bgpsim::types::{Asn, Prefix, RouterId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Which attribute the heuristic uses to rank the wanted route at a
/// quasi-router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RankingAttr {
    /// MED ranking — the paper's choice: "we take advantage of the next
    /// step in the BGP decision process that relies on the MED attribute"
    /// (§4.6).
    #[default]
    Med,
    /// Local-pref ranking — the choice the paper *rejected* because "the
    /// preference of routes with longer AS-paths over those with shorter
    /// ones can lead to divergence". Provided as an ablation; expect
    /// [`PrefixOutcome::diverged`] prefixes.
    LocalPref,
}

/// Refinement tunables.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RefineConfig {
    /// Hard cap on iterations per prefix per phase. The paper's bound is a
    /// small multiple of the maximum AS-path length; the default leaves
    /// ample slack.
    pub max_iterations: usize,
    /// Allow quasi-router duplication. Disabling it ablates the paper's
    /// central mechanism: the model degenerates to one router per AS plus
    /// policies, and concurrent-path targets become unsatisfiable.
    pub allow_duplication: bool,
    /// Ranking attribute (see [`RankingAttr`]).
    pub ranking: RankingAttr,
    /// Worker threads for the domain phase and the repair-round
    /// simulations inside [`refine`]. `0` means "all available cores".
    /// The trained model is byte-identical regardless of this setting:
    /// domains are refined independently from the same base model and
    /// merged in domain order, so no result ever depends on the thread
    /// schedule.
    #[serde(default)]
    pub threads: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            max_iterations: 64,
            allow_duplication: true,
            ranking: RankingAttr::Med,
            threads: 0,
        }
    }
}

impl RefineConfig {
    /// The effective worker-thread count (resolves `threads == 0` to the
    /// number of available cores).
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Outcome of refining one prefix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixOutcome {
    /// The prefix.
    pub prefix: Prefix,
    /// Distinct (AS, suffix) targets derived from the training paths.
    pub targets: usize,
    /// Iterations used across domain and repair phases (1 = matched
    /// immediately).
    pub iterations: usize,
    /// Whether every target reached a RIB-Out match.
    pub converged: bool,
    /// Quasi-routers created while refining this prefix (after
    /// cross-domain deduplication at merge).
    pub quasi_routers_added: usize,
    /// Blocking filters deleted (Figure 7 situations).
    pub filters_deleted: usize,
    /// True if the installed policies made the BGP propagation oscillate —
    /// only possible with [`RankingAttr::LocalPref`] (§4.6).
    pub diverged: bool,
}

/// Whole-training-set refinement report.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefineReport {
    /// Per-prefix outcomes, in prefix order.
    pub prefixes: Vec<PrefixOutcome>,
    /// Refinement domains the prefix space was partitioned into.
    #[serde(default)]
    pub domains: usize,
    /// Verification/fix rounds of the post-merge repair phase.
    #[serde(default)]
    pub repair_rounds: u64,
}

impl RefineReport {
    /// True if every prefix converged to full RIB-Out matches.
    pub fn converged(&self) -> bool {
        self.prefixes.iter().all(|p| p.converged)
    }

    /// Total quasi-routers created by refinement.
    pub fn quasi_routers_added(&self) -> usize {
        self.prefixes.iter().map(|p| p.quasi_routers_added).sum()
    }

    /// Total iterations over all prefixes.
    pub fn total_iterations(&self) -> usize {
        self.prefixes.iter().map(|p| p.iterations).sum()
    }

    /// Maximum iterations needed by any prefix.
    pub fn max_iterations(&self) -> usize {
        self.prefixes
            .iter()
            .map(|p| p.iterations)
            .max()
            .unwrap_or(0)
    }

    /// Checkpointable work units of this run: one per domain claim plus
    /// one per repair round — exactly the evaluation count of the
    /// `refine.round` failpoint, which kill-and-resume tests use to place
    /// their crash sites.
    pub fn work_units(&self) -> u64 {
        self.domains as u64 + self.repair_rounds
    }
}

/// What can interrupt a checkpointed refinement run.
#[derive(Debug)]
pub enum RefineError {
    /// The simulation engine failed (including injected faults).
    Sim(SimError),
    /// Writing or reading a checkpoint failed.
    Persist(PersistError),
    /// A checkpoint loaded fine but does not belong to this run — wrong
    /// dataset, wrong refinement configuration, or a prefix set that no
    /// longer lines up. Resuming from it would silently train a
    /// different model, so it is refused.
    CheckpointMismatch(String),
}

impl fmt::Display for RefineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefineError::Sim(e) => write!(f, "simulation failed: {e}"),
            RefineError::Persist(e) => write!(f, "checkpoint I/O failed: {e}"),
            RefineError::CheckpointMismatch(detail) => {
                write!(f, "checkpoint does not match this run: {detail}")
            }
        }
    }
}

impl std::error::Error for RefineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RefineError::Sim(e) => Some(e),
            RefineError::Persist(e) => Some(e),
            RefineError::CheckpointMismatch(_) => None,
        }
    }
}

impl From<SimError> for RefineError {
    fn from(e: SimError) -> Self {
        RefineError::Sim(e)
    }
}

impl From<PersistError> for RefineError {
    fn from(e: PersistError) -> Self {
        RefineError::Persist(e)
    }
}

/// Where and how often [`refine_checkpointed`] snapshots its state.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Checkpoint directory (created on first write).
    pub dir: PathBuf,
    /// Write a checkpoint after every `every`-th work unit — a completed
    /// domain in the domain phase, a completed round in the repair phase
    /// (1 = every unit).
    pub every: u64,
    /// How many checkpoints to keep; older ones are pruned after each
    /// write. At least 2, so a damaged newest checkpoint still leaves a
    /// fallback.
    pub keep: usize,
}

impl CheckpointPolicy {
    /// A policy checkpointing into `dir` after every work unit, keeping 2.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointPolicy {
            dir: dir.into(),
            every: 1,
            keep: 2,
        }
    }
}

/// One semantic model mutation recorded while refining a domain, replayed
/// onto the real model at merge. Router ids are domain-local; the merge
/// maps them through the domain's duplication lineage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum RefineOp {
    /// `src` was duplicated into `copy` while refining `prefix`.
    Duplicate {
        prefix: Prefix,
        src: RouterId,
        copy: RouterId,
    },
    /// Rank the routes arriving over `senders` best at `q` for `prefix`
    /// (MED or local-pref per the run's [`RankingAttr`]).
    Rank {
        q: RouterId,
        prefix: Prefix,
        senders: Vec<RouterId>,
    },
    /// Filter paths shorter than `min_locrib_len` at the announcing
    /// neighbors of `q` for `prefix`.
    ShorterFilters {
        q: RouterId,
        prefix: Prefix,
        min_locrib_len: usize,
    },
    /// Figure 7: delete egress filters on the `from -> to` session that
    /// block the `locrib_len`-long announcement of `prefix`.
    DeleteBlockers {
        from: RouterId,
        to: RouterId,
        prefix: Prefix,
        locrib_len: usize,
    },
}

/// The mutation surface [`apply_fixes`] needs, abstracted so the same fix
/// pass runs directly against the real model (repair phase, legacy
/// [`refine_prefix`]) or against a domain's copy-on-write view that also
/// records [`RefineOp`]s for the merge.
trait RefineHost {
    fn model(&self) -> &AsRoutingModel;
    fn duplicate_quasi_router(&mut self, prefix: Prefix, src: RouterId) -> RouterId;
    fn rank_preference(
        &mut self,
        q: RouterId,
        prefix: Prefix,
        senders: &[RouterId],
        ranking: RankingAttr,
    );
    fn set_shorter_path_filters(&mut self, q: RouterId, prefix: Prefix, min_locrib_len: usize);
    fn delete_blocking_filters(
        &mut self,
        from: RouterId,
        to: RouterId,
        prefix: Prefix,
        locrib_len: usize,
    ) -> usize;
}

impl RefineHost for AsRoutingModel {
    fn model(&self) -> &AsRoutingModel {
        self
    }

    fn duplicate_quasi_router(&mut self, _prefix: Prefix, src: RouterId) -> RouterId {
        AsRoutingModel::duplicate_quasi_router(self, src)
    }

    fn rank_preference(
        &mut self,
        q: RouterId,
        prefix: Prefix,
        senders: &[RouterId],
        ranking: RankingAttr,
    ) {
        match ranking {
            RankingAttr::Med => self.set_med_preference(q, prefix, senders),
            RankingAttr::LocalPref => self.set_local_pref_preference(q, prefix, senders),
        }
    }

    fn set_shorter_path_filters(&mut self, q: RouterId, prefix: Prefix, min_locrib_len: usize) {
        AsRoutingModel::set_shorter_path_filters(self, q, prefix, min_locrib_len);
    }

    fn delete_blocking_filters(
        &mut self,
        from: RouterId,
        to: RouterId,
        prefix: Prefix,
        locrib_len: usize,
    ) -> usize {
        AsRoutingModel::delete_blocking_filters(self, from, to, prefix, locrib_len)
    }
}

/// A refinement domain's copy-on-write view of the base model: reads hit
/// the borrowed base until the first mutation clones it, so a domain whose
/// prefixes are already consistent costs zero model copies — snapshots are
/// O(touched state), not O(model) per round.
struct DomainModel<'a> {
    base: &'a AsRoutingModel,
    owned: Option<AsRoutingModel>,
    ops: Vec<RefineOp>,
}

impl<'a> DomainModel<'a> {
    fn new(base: &'a AsRoutingModel) -> Self {
        DomainModel {
            base,
            owned: None,
            ops: Vec::new(),
        }
    }

    fn owned_mut(&mut self) -> &mut AsRoutingModel {
        self.owned.get_or_insert_with(|| self.base.clone())
    }
}

impl RefineHost for DomainModel<'_> {
    fn model(&self) -> &AsRoutingModel {
        self.owned.as_ref().unwrap_or(self.base)
    }

    fn duplicate_quasi_router(&mut self, prefix: Prefix, src: RouterId) -> RouterId {
        let copy = self.owned_mut().duplicate_quasi_router(src);
        self.ops.push(RefineOp::Duplicate { prefix, src, copy });
        copy
    }

    fn rank_preference(
        &mut self,
        q: RouterId,
        prefix: Prefix,
        senders: &[RouterId],
        ranking: RankingAttr,
    ) {
        match ranking {
            RankingAttr::Med => self.owned_mut().set_med_preference(q, prefix, senders),
            RankingAttr::LocalPref => self
                .owned_mut()
                .set_local_pref_preference(q, prefix, senders),
        }
        self.ops.push(RefineOp::Rank {
            q,
            prefix,
            senders: senders.to_vec(),
        });
    }

    fn set_shorter_path_filters(&mut self, q: RouterId, prefix: Prefix, min_locrib_len: usize) {
        if min_locrib_len == 0 {
            return; // no-op on the model; skipping keeps the log minimal
        }
        self.owned_mut()
            .set_shorter_path_filters(q, prefix, min_locrib_len);
        self.ops.push(RefineOp::ShorterFilters {
            q,
            prefix,
            min_locrib_len,
        });
    }

    fn delete_blocking_filters(
        &mut self,
        from: RouterId,
        to: RouterId,
        prefix: Prefix,
        locrib_len: usize,
    ) -> usize {
        let deleted = self
            .owned_mut()
            .delete_blocking_filters(from, to, prefix, locrib_len);
        if deleted > 0 {
            self.ops.push(RefineOp::DeleteBlockers {
                from,
                to,
                prefix,
                locrib_len,
            });
        }
        deleted
    }
}

/// Aim for this many prefixes per domain: enough per-domain work to
/// amortize the copy-on-write clone, few enough domains that the merge
/// stays cheap. Job sets at or below this size form a single domain, so
/// small runs keep the exact sequential schedule.
const DOMAIN_TARGET_PREFIXES: usize = 16;
/// Upper bound on the domain count regardless of prefix count.
const MAX_DOMAINS: usize = 512;

/// Partitions `n` sorted prefix jobs into contiguous, near-equal domains.
/// A pure function of `n` only — never of the thread count — so the
/// decomposition (and with it every byte of the final model) is identical
/// on every machine.
pub(crate) fn domain_ranges(n: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let domains = (n / DOMAIN_TARGET_PREFIXES).clamp(1, MAX_DOMAINS);
    let base = n / domains;
    let rem = n % domains;
    let mut out = Vec::with_capacity(domains);
    let mut start = 0;
    for d in 0..domains {
        let len = base + usize::from(d < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// One claimable unit of the parallel domain queue: the domain id plus
/// exclusive ownership of its contiguous job slice. The `Option` lets the
/// claiming worker take the slice out under the lock.
type DomainWorkItem<'j> = parking_lot::Mutex<Option<(usize, &'j mut [(Prefix, PrefixJob)])>>;

/// A completed domain's result: its op-log plus the per-prefix outcomes,
/// in the domain's (ascending-prefix) job order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct DomainDelta {
    pub(crate) id: usize,
    pub(crate) ops: Vec<RefineOp>,
    pub(crate) outcomes: Vec<PrefixOutcome>,
}

/// The duplication schedule [`merge_domains`]'s pass one would execute
/// for a full set of domain deltas (ascending domain order): the
/// deduplicated `(global source, allocated copy)` pairs in creation
/// order, with per-AS indices allocated densely from 1 exactly as
/// `duplicate_quasi_router_clean` does on the base model (one router per
/// AS).
///
/// Domains overlap heavily in which routers they duplicate — every
/// domain that needs a second quasi-router in a popular transit AS
/// records its own `Duplicate` op, and the merge collapses them onto one
/// shared copy keyed by `(global source, per-domain ordinal)`. A dirty
/// domain can therefore reshuffle, add, or drop `Duplicate` ops without
/// changing the merged model at all, as long as every key it touches is
/// also claimed by some other domain. Comparing this schedule *as a set*
/// — rather than per-domain op subsequences, or even creation order — is
/// what decides whether two runs merge into byte-identical shared
/// structure: the pairs pin the router set and the ids, the session
/// graph closes over the same bipartite adjacency whatever the creation
/// order, and the two-pass merge applies every policy op against the
/// complete router set with claimant-scoped re-application, so no
/// creation-order effect can leak into the merged bytes. Only (router,
/// prefix)-scoped policy ops can then differ between the runs, and those
/// are invisible to other prefixes' simulations.
pub(crate) fn merge_duplication_schedule<'d>(
    deltas: impl Iterator<Item = &'d DomainDelta>,
) -> Vec<(RouterId, RouterId)> {
    let mut next_index: BTreeMap<Asn, u16> = BTreeMap::new();
    let mut global_dups: BTreeMap<(RouterId, usize), RouterId> = BTreeMap::new();
    let mut schedule = Vec::new();
    for delta in deltas {
        let mut l2g: BTreeMap<RouterId, RouterId> = BTreeMap::new();
        let mut ordinals: BTreeMap<RouterId, usize> = BTreeMap::new();
        for op in &delta.ops {
            if let RefineOp::Duplicate { src, copy, .. } = op {
                let gsrc = l2g.get(src).copied().unwrap_or(*src);
                let ord = ordinals.entry(gsrc).or_insert(0);
                let key = (gsrc, *ord);
                *ord += 1;
                match global_dups.get(&key) {
                    Some(&g) => {
                        l2g.insert(*copy, g);
                    }
                    None => {
                        let idx = next_index.entry(gsrc.asn()).or_insert(1);
                        let g = RouterId::new(gsrc.asn(), *idx);
                        *idx += 1;
                        global_dups.insert(key, g);
                        l2g.insert(*copy, g);
                        schedule.push((gsrc, g));
                    }
                }
            }
        }
    }
    schedule
}

/// Serialized refinement state: everything [`resume_refine`] needs to
/// continue mid-run and still produce a byte-identical final model.
/// Targets are *not* stored — they are rebuilt deterministically from the
/// training set, which the fingerprint pins to the original run's.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RefineCheckpoint {
    /// Work units completed when this snapshot was taken: completed
    /// domains in the domain phase, `domains + repair round` afterwards.
    seq: u64,
    /// Fingerprint of the training routes (see [`dataset_fingerprint`]).
    dataset_fingerprint: u64,
    /// The original run's [`RefineConfig::max_iterations`].
    max_iterations: usize,
    /// The original run's [`RefineConfig::allow_duplication`].
    allow_duplication: bool,
    /// The original run's [`RefineConfig::ranking`].
    ranking: RankingAttr,
    /// Total domain count of the partition (a function of the job count;
    /// stored for validation).
    domains: usize,
    /// Phase-specific progress.
    stage: StageCheckpoint,
    /// In the domain phase: the (unmutated) base model. In the repair
    /// phase: the merged model as of the end of the checkpointed round.
    model: AsRoutingModel,
}

/// Which phase a [`RefineCheckpoint`] was taken in.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum StageCheckpoint {
    /// Domain phase: the deltas of every completed domain. Which subset is
    /// done may depend on worker scheduling, but each delta is itself
    /// deterministic, so resuming from any subset converges to the same
    /// final model.
    Domains { done: Vec<DomainDelta> },
    /// Repair phase: the round counter and per-prefix progress.
    Repair {
        round: u64,
        jobs: Vec<JobCheckpoint>,
    },
}

/// One prefix's progress inside a repair-phase [`RefineCheckpoint`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct JobCheckpoint {
    outcome: PrefixOutcome,
    done: bool,
    max_iter: usize,
}

/// Order-sensitive FNV-1a fingerprint of the training routes. Resuming
/// against a different dataset would re-derive different targets and
/// diverge silently; the fingerprint turns that into a typed refusal.
pub fn dataset_fingerprint(training: &Dataset) -> u64 {
    let mut text = String::new();
    for r in training.routes() {
        use std::fmt::Write as _;
        let _ = writeln!(
            text,
            "{} {} {} {}",
            r.point, r.observer_as.0, r.prefix, r.as_path
        );
    }
    persist::fnv1a(text.as_bytes())
}

/// One refinement target: the AS `asn` must select & propagate the observed
/// suffix `o` (which has `asn` at its head).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Target {
    /// Suffix length — processed ascending so fixes flow origin → observer.
    pub(crate) len: usize,
    /// The observed suffix (head = `asn`).
    pub(crate) o: AsPath,
    /// The AS responsible for it.
    pub(crate) asn: Asn,
}

/// Derives the deduplicated target set for one prefix from its training
/// paths.
pub(crate) fn targets_for(paths: &[&AsPath]) -> Vec<Target> {
    let mut set: BTreeSet<Target> = BTreeSet::new();
    for p in paths {
        for n in 1..=p.len() {
            let o = p.suffix(n);
            let Some(asn) = o.head() else {
                continue; // unreachable: a length-n suffix with n >= 1
            };
            set.insert(Target { len: n, o, asn });
        }
    }
    set.into_iter().collect()
}

/// One prefix's refinement state.
#[derive(Clone)]
pub(crate) struct PrefixJob {
    pub(crate) targets: Vec<Target>,
    pub(crate) outcome: PrefixOutcome,
    /// Converged, diverged, stuck, or out of iterations.
    pub(crate) done: bool,
    /// Iteration cap for the repair phase (domain-phase iterations plus a
    /// fresh [`RefineConfig::max_iterations`] budget).
    pub(crate) max_iter: usize,
    /// True once the repair phase applied *any* fix for this prefix — the
    /// domain-phase result did not verify as-is against the merged model.
    /// The incremental trainer treats such prefixes as never "clean"; the
    /// flag is in-memory bookkeeping only and never checkpointed.
    pub(crate) repair_changed: bool,
}

/// Refines `model` until the simulated routing reproduces every AS-path of
/// `training` (or the iteration cap is hit).
///
/// The prefix space is sharded into contiguous refinement domains that
/// worker threads claim from an atomic work queue and refine independently
/// against copy-on-write views of the base model; the recorded fixes are
/// then merged in domain order and a repair pass re-verifies every prefix
/// (see the module docs). Because the fix-application order is a pure
/// function of prefix id, the trained model is byte-identical for every
/// thread count.
pub fn refine(
    model: &mut AsRoutingModel,
    training: &Dataset,
    cfg: &RefineConfig,
) -> Result<RefineReport, SimError> {
    match refine_checkpointed(model, training, cfg, None) {
        Ok(report) => Ok(report),
        Err(RefineError::Sim(e)) => Err(e),
        // Without a checkpoint policy no checkpoint is ever read or
        // written, so no other error variant can arise.
        Err(e) => unreachable!("checkpoint error without a checkpoint policy: {e}"),
    }
}

/// [`refine`] with optional checkpointing: with a [`CheckpointPolicy`],
/// the full refinement state is snapshotted to `policy.dir` after every
/// `policy.every`-th work unit (completed domain, then completed repair
/// round), and an interrupted run can be continued with [`resume_refine`]
/// — producing a final model byte-identical to the uninterrupted run,
/// because domain deltas are deterministic and repair snapshots sit
/// exactly on round boundaries.
pub fn refine_checkpointed(
    model: &mut AsRoutingModel,
    training: &Dataset,
    cfg: &RefineConfig,
    policy: Option<&CheckpointPolicy>,
) -> Result<RefineReport, RefineError> {
    let mut jobs = build_jobs(model, training);
    let ranges = domain_ranges(jobs.len());
    let fingerprint = policy.map(|_| dataset_fingerprint(training)).unwrap_or(0);
    let mut done: BTreeMap<usize, DomainDelta> = BTreeMap::new();
    run_domains(
        model,
        cfg,
        &mut jobs,
        &ranges,
        &mut done,
        fingerprint,
        policy,
    )?;
    merge_domains(model, cfg, &ranges, &done, &mut jobs);
    prepare_repair(&mut jobs, cfg);
    let report = run_rounds(model, cfg, &mut jobs, 0, ranges.len(), fingerprint, policy)?;
    crate::audit::log_audit("post-train", model);
    Ok(report)
}

/// Continues an interrupted [`refine_checkpointed`] run from the newest
/// loadable checkpoint in `policy.dir`. The checkpoint must match the
/// given training set and configuration (`threads` excepted — the model
/// is byte-identical at any thread count); mismatches are refused with
/// [`RefineError::CheckpointMismatch`]. Returns the restored-and-finished
/// model with the full-run report.
pub fn resume_refine(
    training: &Dataset,
    cfg: &RefineConfig,
    policy: &CheckpointPolicy,
) -> Result<(AsRoutingModel, RefineReport), RefineError> {
    let (file_seq, payload) = persist::load_latest_checkpoint_payload(&policy.dir)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| RefineError::CheckpointMismatch("checkpoint payload is not UTF-8".into()))?;
    let ckpt: RefineCheckpoint = serde_json::from_str(text)
        .map_err(|e| RefineError::CheckpointMismatch(format!("checkpoint does not parse: {e}")))?;
    if ckpt.seq != file_seq {
        return Err(RefineError::CheckpointMismatch(format!(
            "file is named for work unit {file_seq} but contains unit {}",
            ckpt.seq
        )));
    }
    let fingerprint = dataset_fingerprint(training);
    if ckpt.dataset_fingerprint != fingerprint {
        return Err(RefineError::CheckpointMismatch(format!(
            "training data fingerprint {fingerprint:016x} differs from the checkpoint's {:016x}",
            ckpt.dataset_fingerprint
        )));
    }
    if ckpt.max_iterations != cfg.max_iterations
        || ckpt.allow_duplication != cfg.allow_duplication
        || ckpt.ranking != cfg.ranking
    {
        return Err(RefineError::CheckpointMismatch(format!(
            "refinement config changed: checkpoint ran with max_iterations={} \
             allow_duplication={} ranking={:?}",
            ckpt.max_iterations, ckpt.allow_duplication, ckpt.ranking
        )));
    }
    let mut model = ckpt.model;
    // Validate before rebuild_indices, which would panic on out-of-bounds
    // session endpoints in a damaged (but checksum-valid) snapshot.
    model
        .validate_structure()
        .map_err(|e| RefineError::CheckpointMismatch(format!("checkpoint model invalid: {e}")))?;
    model.network_mut().rebuild_indices();
    // Audit the restored snapshot before continuing: a defect here means
    // the checkpoint itself (not the remaining work) is suspect.
    crate::audit::log_audit("checkpoint-recovery", &model);
    // Targets are rebuilt from the training set — deterministic, and the
    // fingerprint guarantees they equal the original run's.
    let mut jobs = build_jobs(&model, training);
    let ranges = domain_ranges(jobs.len());
    if ckpt.domains != ranges.len() {
        return Err(RefineError::CheckpointMismatch(format!(
            "checkpoint partitioned {} domains, training set yields {}",
            ckpt.domains,
            ranges.len()
        )));
    }
    let report = match ckpt.stage {
        StageCheckpoint::Domains { done } => {
            let mut done_map: BTreeMap<usize, DomainDelta> = BTreeMap::new();
            for delta in done {
                let Some(range) = ranges.get(delta.id) else {
                    return Err(RefineError::CheckpointMismatch(format!(
                        "checkpoint contains domain {} beyond the partition",
                        delta.id
                    )));
                };
                if delta.outcomes.len() != range.len() {
                    return Err(RefineError::CheckpointMismatch(format!(
                        "domain {} tracks {} prefixes, partition expects {}",
                        delta.id,
                        delta.outcomes.len(),
                        range.len()
                    )));
                }
                for (oc, (prefix, _)) in delta.outcomes.iter().zip(&jobs[range.clone()]) {
                    if oc.prefix != *prefix {
                        return Err(RefineError::CheckpointMismatch(format!(
                            "prefix order diverged at {prefix} vs checkpoint's {}",
                            oc.prefix
                        )));
                    }
                }
                if done_map.insert(delta.id, delta).is_some() {
                    return Err(RefineError::CheckpointMismatch(
                        "checkpoint lists a domain twice".into(),
                    ));
                }
            }
            run_domains(
                &model,
                cfg,
                &mut jobs,
                &ranges,
                &mut done_map,
                fingerprint,
                Some(policy),
            )?;
            merge_domains(&mut model, cfg, &ranges, &done_map, &mut jobs);
            prepare_repair(&mut jobs, cfg);
            run_rounds(
                &mut model,
                cfg,
                &mut jobs,
                0,
                ranges.len(),
                fingerprint,
                Some(policy),
            )?
        }
        StageCheckpoint::Repair { round, jobs: jcs } => {
            if ckpt.seq != ranges.len() as u64 + round {
                return Err(RefineError::CheckpointMismatch(format!(
                    "repair checkpoint at unit {} does not match domains {} + round {round}",
                    ckpt.seq,
                    ranges.len()
                )));
            }
            if jobs.len() != jcs.len() {
                return Err(RefineError::CheckpointMismatch(format!(
                    "checkpoint tracks {} prefixes, training set yields {}",
                    jcs.len(),
                    jobs.len()
                )));
            }
            for ((prefix, job), jc) in jobs.iter_mut().zip(jcs) {
                if *prefix != jc.outcome.prefix {
                    return Err(RefineError::CheckpointMismatch(format!(
                        "prefix order diverged at {prefix} vs checkpoint's {}",
                        jc.outcome.prefix
                    )));
                }
                job.outcome = jc.outcome;
                job.done = jc.done;
                job.max_iter = jc.max_iter;
            }
            run_rounds(
                &mut model,
                cfg,
                &mut jobs,
                round,
                ranges.len(),
                fingerprint,
                Some(policy),
            )?
        }
    };
    crate::audit::log_audit("post-resume", &model);
    Ok((model, report))
}

/// Builds the per-prefix jobs in ascending prefix order — this is also
/// the domain-partition order, hence the fix-application order of the
/// merge. Prefixes whose origin is absent from the model graph cannot be
/// simulated and are skipped, as before.
pub(crate) fn build_jobs(model: &AsRoutingModel, training: &Dataset) -> Vec<(Prefix, PrefixJob)> {
    let mut by_prefix: BTreeMap<Prefix, Vec<&AsPath>> = BTreeMap::new();
    for r in training.routes() {
        by_prefix.entry(r.prefix).or_default().push(&r.as_path);
    }
    by_prefix
        .iter()
        .filter(|(prefix, _)| model.prefixes().contains_key(prefix))
        .map(|(&prefix, paths)| {
            let targets = targets_for(paths);
            let outcome = PrefixOutcome {
                prefix,
                targets: targets.len(),
                iterations: 0,
                converged: false,
                quasi_routers_added: 0,
                filters_deleted: 0,
                diverged: false,
            };
            (
                prefix,
                PrefixJob {
                    targets,
                    outcome,
                    done: false,
                    max_iter: usize::MAX,
                    repair_changed: false,
                },
            )
        })
        .collect()
}

/// Phase 1 — refines every not-yet-done domain. Workers claim whole
/// domains from an atomic queue (no round barrier: a finished worker
/// immediately steals the next pending domain); with one effective thread
/// the claims run inline on the caller's stack. Completed deltas land in
/// `done`, which checkpointing snapshots after every `policy.every`-th
/// completion.
pub(crate) fn run_domains(
    model: &AsRoutingModel,
    cfg: &RefineConfig,
    jobs: &mut [(Prefix, PrefixJob)],
    ranges: &[Range<usize>],
    done: &mut BTreeMap<usize, DomainDelta>,
    fingerprint: u64,
    policy: Option<&CheckpointPolicy>,
) -> Result<(), RefineError> {
    let pending: Vec<usize> = (0..ranges.len())
        .filter(|id| !done.contains_key(id))
        .collect();
    if pending.is_empty() {
        return Ok(());
    }
    let every = policy.map(|p| p.every.max(1)).unwrap_or(u64::MAX);
    let threads = cfg.effective_threads().min(pending.len());

    if threads <= 1 {
        let mut scratch = SimScratch::new();
        for &id in &pending {
            // Failpoint: the crash site for kill-and-resume tests — a
            // panic armed `atN:panic` dies exactly at the N-th work-unit
            // claim, after the previous completion's checkpoint landed.
            #[cfg(feature = "testkit")]
            if quasar_bgpsim::fail::inject("refine.round") {
                return Err(RefineError::Sim(SimError::Injected {
                    point: "refine.round",
                }));
            }
            let delta = refine_domain(model, id, &mut jobs[ranges[id].clone()], cfg, &mut scratch)?;
            done.insert(id, delta);
            if policy.is_some() && (done.len() as u64).is_multiple_of(every) {
                save_domain_checkpoint(model, cfg, ranges.len(), done, fingerprint, policy)?;
            }
        }
        return Ok(());
    }

    // Slice `jobs` into per-domain work items. Domains are contiguous and
    // disjoint, so repeated split_at_mut hands each worker exclusive
    // access to its slice.
    let mut slices: Vec<&mut [(Prefix, PrefixJob)]> = Vec::with_capacity(ranges.len());
    let mut rest = jobs;
    let mut offset = 0;
    for r in ranges {
        let (head, tail) = rest.split_at_mut(r.end - offset);
        slices.push(head);
        rest = tail;
        offset = r.end;
    }
    // Each pending domain becomes one claimable work item; the Option lets
    // the claiming worker take exclusive ownership of the slice.
    let work: Vec<DomainWorkItem<'_>> = slices
        .into_iter()
        .enumerate()
        .filter(|(id, _)| !done.contains_key(id))
        .map(|pair| parking_lot::Mutex::new(Some(pair)))
        .collect();
    let expected = work.len();
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Result<DomainDelta, SimError>)>();
    let mut first_err: Option<RefineError> = None;

    // `expect` below: a crossbeam scope error means a worker panicked
    // (e.g. an armed `atN:panic` failpoint), which must propagate.
    #[allow(clippy::expect_used)]
    crossbeam::thread::scope(|s| {
        let work = &work;
        let next = &next;
        let abort = &abort;
        for _ in 0..threads {
            let tx = tx.clone();
            s.spawn(move |_| {
                let mut scratch = SimScratch::new();
                loop {
                    // sast: relaxed-ok advisory stop flag; a stale read costs one extra work unit, results stay channel-ordered
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    // sast: relaxed-ok work-claim ticket; results are published through the channel/join, only claim uniqueness matters
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= work.len() {
                        break;
                    }
                    let Some((id, slice)) = work[i].lock().take() else {
                        break; // unreachable: each index is claimed once
                    };
                    // Failpoint: same crash site as the inline path; an
                    // armed panic kills this worker and tears the scope
                    // down, an armed error aborts the run.
                    #[cfg(feature = "testkit")]
                    if quasar_bgpsim::fail::inject("refine.round") {
                        // sast: relaxed-ok advisory stop flag; a stale read costs one extra work unit, results stay channel-ordered
                        abort.store(true, Ordering::Relaxed);
                        let _ = tx.send((
                            id,
                            Err(SimError::Injected {
                                point: "refine.round",
                            }),
                        ));
                        continue;
                    }
                    let result = refine_domain(model, id, slice, cfg, &mut scratch);
                    if result.is_err() {
                        // sast: relaxed-ok advisory stop flag; a stale read costs one extra work unit, results stay channel-ordered
                        abort.store(true, Ordering::Relaxed);
                    }
                    if tx.send((id, result)).is_err() {
                        break;
                    }
                }
            });
        }
        // The coordinator (this thread) owns checkpointing. Dropping the
        // original sender first means `recv` errors out — instead of
        // hanging — once every worker has exited, even if some domains
        // were never claimed because of an abort.
        drop(tx);
        for _ in 0..expected {
            match rx.recv() {
                Ok((id, Ok(delta))) => {
                    done.insert(id, delta);
                    if policy.is_some() && (done.len() as u64).is_multiple_of(every) {
                        if let Err(e) = save_domain_checkpoint(
                            model,
                            cfg,
                            ranges.len(),
                            done,
                            fingerprint,
                            policy,
                        ) {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                            // sast: relaxed-ok advisory stop flag; a stale read costs one extra work unit, results stay channel-ordered
                            abort.store(true, Ordering::Relaxed);
                        }
                    }
                }
                Ok((_, Err(e))) => {
                    // Which worker errors first can depend on scheduling;
                    // the error itself is still a true fault of the run.
                    if first_err.is_none() {
                        first_err = Some(RefineError::Sim(e));
                    }
                    // sast: relaxed-ok advisory stop flag; a stale read costs one extra work unit, results stay channel-ordered
                    abort.store(true, Ordering::Relaxed);
                }
                Err(_) => break,
            }
        }
    })
    .expect("refinement worker threads join");

    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Refines the prefixes of one domain sequentially to convergence against
/// a copy-on-write view of `base`, reusing the caller's simulation
/// scratch across prefixes. Returns the domain's op-log and outcomes.
fn refine_domain(
    base: &AsRoutingModel,
    id: usize,
    jobs: &mut [(Prefix, PrefixJob)],
    cfg: &RefineConfig,
    scratch: &mut SimScratch,
) -> Result<DomainDelta, SimError> {
    let mut dm = DomainModel::new(base);
    for (prefix, job) in jobs.iter_mut() {
        while job.outcome.iterations < cfg.max_iterations {
            job.outcome.iterations += 1;
            // Failpoint: per-simulation jitter that perturbs worker timing
            // (error injection belongs to `engine.simulate`, where it
            // propagates naturally).
            #[cfg(feature = "testkit")]
            let _ = quasar_bgpsim::fail::inject("refine.simulate_batch");
            let res = match dm.model().simulate_with(*prefix, scratch) {
                Ok(res) => res,
                Err(SimError::Divergence { .. }) => {
                    job.outcome.diverged = true;
                    break;
                }
                Err(e) => return Err(e),
            };
            // Each iteration re-simulates the domain view, so the model is
            // never stale here: a fresh (empty) mirror map per iteration
            // is the exact sequential semantics.
            let (all_matched, changed) = apply_fixes(&mut dm, &res, job, cfg, &mut BTreeMap::new());
            if all_matched {
                job.outcome.converged = true;
                break;
            }
            if !changed {
                break; // no local fix applies anywhere — progress is impossible
            }
        }
    }
    Ok(DomainDelta {
        id,
        ops: dm.ops,
        outcomes: jobs.iter().map(|(_, j)| j.outcome.clone()).collect(),
    })
}

/// Phase 2 — replays every completed domain's op-log onto the real model
/// in ascending domain id (BTreeMap iteration order), mapping domain-local
/// router ids through the duplication lineage. Duplications of the same
/// (global source, per-source ordinal) lineage in different domains are
/// deduplicated: the first domain to replay creates the router, later
/// domains reuse it — exactly how the sequential schedule's mirror map
/// reuses freshly created routers across prefixes.
pub(crate) fn merge_domains(
    model: &mut AsRoutingModel,
    cfg: &RefineConfig,
    ranges: &[Range<usize>],
    done: &BTreeMap<usize, DomainDelta>,
    jobs: &mut [(Prefix, PrefixJob)],
) {
    let job_of: BTreeMap<Prefix, usize> =
        jobs.iter().enumerate().map(|(i, (p, _))| (*p, i)).collect();

    // Pass 1 — create every merge-time duplicate, policy-clean, before a
    // single policy op runs. Policy ops materialize rules on the session
    // graph they see (`peers_of` at op time), so interleaving creation
    // with replay would make the merged model depend on which domain
    // happens to claim a shared duplicate first — an order that
    // reshuffles whenever a dirty domain's op-log changes. With all
    // duplicates in place first, the session graph every op sees — and
    // with it the whole merged model — is a function of the allocated
    // duplicate *set* plus the per-domain logs alone. The value carries
    // the claiming domain that created the copy, so pass 2 can charge the
    // duplication to exactly one prefix.
    let mut global_dups: BTreeMap<(RouterId, usize), (RouterId, usize)> = BTreeMap::new();
    for (id, delta) in done {
        let mut l2g: BTreeMap<RouterId, RouterId> = BTreeMap::new();
        let mut ordinals: BTreeMap<RouterId, usize> = BTreeMap::new();
        for op in &delta.ops {
            if let RefineOp::Duplicate { src, copy, .. } = op {
                let gsrc = l2g.get(src).copied().unwrap_or(*src);
                let ord = ordinals.entry(gsrc).or_insert(0);
                let key = (gsrc, *ord);
                *ord += 1;
                match global_dups.get(&key) {
                    Some(&(g, _)) => {
                        l2g.insert(*copy, g);
                    }
                    None => {
                        let g = model.duplicate_quasi_router_clean(gsrc);
                        global_dups.insert(key, (g, *id));
                        l2g.insert(*copy, g);
                    }
                }
            }
        }
    }

    // Pass 2 — replay every domain's op-log against the complete router
    // set.
    for (id, delta) in done {
        // The delta's outcomes are authoritative for its prefixes (on
        // resume, the local jobs were never run).
        if let Some(range) = ranges.get(*id) {
            for (slot, oc) in jobs[range.clone()].iter_mut().zip(&delta.outcomes) {
                slot.1.outcome = oc.clone();
            }
        }
        // Domain-local ids below the base router count are global ids;
        // locally created duplicates map through `l2g`.
        let mut l2g: BTreeMap<RouterId, RouterId> = BTreeMap::new();
        let mut ordinals: BTreeMap<RouterId, usize> = BTreeMap::new();
        let map =
            |l2g: &BTreeMap<RouterId, RouterId>, r: RouterId| l2g.get(&r).copied().unwrap_or(r);
        for (pos, op) in delta.ops.iter().enumerate() {
            match op {
                RefineOp::Duplicate { prefix, src, copy } => {
                    let gsrc = map(&l2g, *src);
                    let ord = ordinals.entry(gsrc).or_insert(0);
                    let key = (gsrc, *ord);
                    *ord += 1;
                    // Pass 1 visited the same ops in the same order.
                    #[allow(clippy::expect_used)]
                    let &(g, creator) = global_dups.get(&key).expect("duplicate seeded in pass 1");
                    l2g.insert(*copy, g);
                    if creator != *id {
                        // The merged model reuses another domain's
                        // duplicate; this prefix no longer pays for one.
                        if let Some(&ji) = job_of.get(prefix) {
                            let oc = &mut jobs[ji].1.outcome;
                            oc.quasi_routers_added = oc.quasi_routers_added.saturating_sub(1);
                        }
                    }
                    // In the domain's local run the copy cloned the
                    // source's state, which at that point held exactly
                    // this domain's earlier policy ops. Re-apply that
                    // projection to the shared copy — *every* claiming
                    // domain does this, creator and reusers alike, so the
                    // copy's policy state is the union of its claimants'
                    // own projections and does not depend on which domain
                    // happened to claim it first.
                    replay_prior_src_ops(model, cfg, &delta.ops[..pos], &l2g, gsrc, g);
                }
                RefineOp::Rank { q, prefix, senders } => {
                    let gq = map(&l2g, *q);
                    let gsenders: Vec<RouterId> = senders.iter().map(|&r| map(&l2g, r)).collect();
                    match cfg.ranking {
                        RankingAttr::Med => model.set_med_preference(gq, *prefix, &gsenders),
                        RankingAttr::LocalPref => {
                            model.set_local_pref_preference(gq, *prefix, &gsenders)
                        }
                    }
                }
                RefineOp::ShorterFilters {
                    q,
                    prefix,
                    min_locrib_len,
                } => {
                    model.set_shorter_path_filters(map(&l2g, *q), *prefix, *min_locrib_len);
                }
                RefineOp::DeleteBlockers {
                    from,
                    to,
                    prefix,
                    locrib_len,
                } => {
                    let gf = map(&l2g, *from);
                    let gt = map(&l2g, *to);
                    // A duplicate's session set is rebuilt from its merge-
                    // time source, which can differ from the domain-local
                    // peer set; a missing session is skipped, and the
                    // repair phase re-deletes whatever still blocks.
                    if model.network().has_session(gf, gt) {
                        model.delete_blocking_filters(gf, gt, *prefix, *locrib_len);
                    }
                }
            }
        }
    }
}

/// Re-applies, onto a freshly claimed merge-time duplicate `copy`, every
/// policy op among `prior` (one domain's op-log up to the claiming
/// `Duplicate`) whose target resolves to the duplicate's source `gsrc`.
///
/// This reproduces what the domain's local run gave its own copy by
/// cloning: the source's state as accumulated by *this domain's* earlier
/// ops. Ops are prefix-scoped, and each domain re-applies only its own
/// projection, so the shared copy's resulting policy state is a union
/// over its claimants that no claim order can perturb.
fn replay_prior_src_ops(
    model: &mut AsRoutingModel,
    cfg: &RefineConfig,
    prior: &[RefineOp],
    l2g: &BTreeMap<RouterId, RouterId>,
    gsrc: RouterId,
    copy: RouterId,
) {
    let map = |r: RouterId| l2g.get(&r).copied().unwrap_or(r);
    for op in prior {
        match op {
            RefineOp::Duplicate { .. } => {}
            RefineOp::Rank { q, prefix, senders } => {
                if map(*q) == gsrc {
                    let gsenders: Vec<RouterId> = senders.iter().map(|&r| map(r)).collect();
                    match cfg.ranking {
                        RankingAttr::Med => model.set_med_preference(copy, *prefix, &gsenders),
                        RankingAttr::LocalPref => {
                            model.set_local_pref_preference(copy, *prefix, &gsenders)
                        }
                    }
                }
            }
            RefineOp::ShorterFilters {
                q,
                prefix,
                min_locrib_len,
            } => {
                if map(*q) == gsrc {
                    model.set_shorter_path_filters(copy, *prefix, *min_locrib_len);
                }
            }
            RefineOp::DeleteBlockers {
                from,
                to,
                prefix,
                locrib_len,
            } => {
                let (gf, gt) = (map(*from), map(*to));
                if gf == gsrc && model.network().has_session(copy, gt) {
                    model.delete_blocking_filters(copy, gt, *prefix, *locrib_len);
                }
                if gt == gsrc && model.network().has_session(gf, copy) {
                    model.delete_blocking_filters(gf, copy, *prefix, *locrib_len);
                }
            }
        }
    }
}

/// Arms the job list for phase 3: every non-diverged prefix is re-verified
/// against the merged model with a fresh iteration budget on top of what
/// its domain already spent.
pub(crate) fn prepare_repair(jobs: &mut [(Prefix, PrefixJob)], cfg: &RefineConfig) {
    for (_, job) in jobs.iter_mut() {
        job.done = job.outcome.diverged;
        job.max_iter = job.outcome.iterations + cfg.max_iterations;
        job.repair_changed = false;
    }
}

/// Phase 3 — the classic round loop over the merged model: every
/// still-active prefix is simulated (fanned out across workers) and the
/// fixes are applied sequentially in ascending prefix order. For an
/// uninterrupted run this serves as the *repair* pass that re-verifies
/// every prefix after the merge; on a repair-stage resume it continues at
/// `round`. Checkpoints are written after a round's fixes are applied, so
/// every snapshot sits on a round boundary.
pub(crate) fn run_rounds(
    model: &mut AsRoutingModel,
    cfg: &RefineConfig,
    jobs: &mut [(Prefix, PrefixJob)],
    mut round: u64,
    domains_total: usize,
    fingerprint: u64,
    policy: Option<&CheckpointPolicy>,
) -> Result<RefineReport, RefineError> {
    let threads = cfg.effective_threads();
    loop {
        let active: Vec<usize> = jobs
            .iter()
            .enumerate()
            .filter(|(_, (_, j))| !j.done)
            .map(|(i, _)| i)
            .collect();
        if active.is_empty() {
            break;
        }
        round += 1;
        // Failpoint: the repair-phase crash site for kill-and-resume
        // tests — work units continue the domain phase's numbering, so an
        // `atN:panic` with N > domain count dies at the start of repair
        // round N - domains.
        #[cfg(feature = "testkit")]
        if quasar_bgpsim::fail::inject("refine.round") {
            return Err(RefineError::Sim(SimError::Injected {
                point: "refine.round",
            }));
        }
        // Phase 1: simulate every active prefix against the *same* model
        // snapshot, in parallel (`simulate` takes `&self`).
        let prefixes: Vec<Prefix> = active.iter().map(|&i| jobs[i].0).collect();
        let sims = simulate_batch(model, &prefixes, threads);
        // Phase 2: apply fixes sequentially, in prefix order. The mirror
        // map is shared across the round so a prefix whose simulation
        // predates another prefix's duplication still reuses the new
        // router instead of duplicating again (see `apply_fixes`).
        let mut mirrors: BTreeMap<RouterId, RouterId> = BTreeMap::new();
        for (&i, sim) in active.iter().zip(sims) {
            let job = &mut jobs[i].1;
            job.outcome.iterations += 1;
            let res = match sim {
                Ok(res) => res,
                Err(SimError::Divergence { .. }) => {
                    job.outcome.diverged = true;
                    job.done = true;
                    continue;
                }
                Err(e) => return Err(RefineError::Sim(e)),
            };
            let (all_matched, changed) = apply_fixes(model, &res, job, cfg, &mut mirrors);
            if changed {
                job.repair_changed = true;
            }
            if all_matched {
                job.outcome.converged = true;
                job.done = true;
            } else if !changed || job.outcome.iterations >= job.max_iter {
                // No local fix applies anywhere — progress is impossible —
                // or the iteration budget is spent. A domain-phase
                // convergence claim that no longer verifies is withdrawn.
                job.outcome.converged = false;
                job.done = true;
            } else {
                job.outcome.converged = false;
            }
        }
        if let Some(p) = policy {
            if round.is_multiple_of(p.every.max(1)) {
                save_repair_checkpoint(model, cfg, domains_total, jobs, round, fingerprint, p)?;
            }
        }
    }

    Ok(RefineReport {
        prefixes: jobs.iter().map(|(_, j)| j.outcome.clone()).collect(),
        domains: domains_total,
        repair_rounds: round,
    })
}

/// One prefix's applied fix-set in one repair round — the unit of the
/// [`RepairTrace`]. `ops` replays against a live model by re-invoking the
/// same mutations (a duplication re-allocates and is checked against the
/// recorded router id); the flags restore the job bookkeeping the classic
/// round loop would have produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct RepairStep {
    /// Index into the job list (ascending-prefix order).
    pub(crate) job: usize,
    /// The fixes this round applied for the prefix, in application order.
    pub(crate) ops: Vec<RefineOp>,
    /// [`PrefixJob::done`] after the round.
    pub(crate) done: bool,
    /// [`PrefixOutcome`] convergence flag after the round.
    pub(crate) converged: bool,
    /// [`PrefixOutcome`] divergence flag after the round.
    pub(crate) diverged: bool,
}

/// The whole repair phase as rounds of [`RepairStep`]s in ascending job
/// order — exactly the classic round loop's application schedule.
pub(crate) type RepairTrace = Vec<Vec<RepairStep>>;

/// A [`RefineHost`] over the real model that additionally records every
/// fix as a [`RefineOp`] — the repair-phase counterpart of
/// [`DomainModel`]'s op-log, with the same log-minimising conventions:
/// model-level no-ops (a zero-length shorter-path floor, a filter
/// deletion that deleted nothing) are applied but not recorded.
struct RecordingModel<'a> {
    model: &'a mut AsRoutingModel,
    ops: Vec<RefineOp>,
}

impl RefineHost for RecordingModel<'_> {
    fn model(&self) -> &AsRoutingModel {
        self.model
    }

    fn duplicate_quasi_router(&mut self, prefix: Prefix, src: RouterId) -> RouterId {
        let copy = self.model.duplicate_quasi_router(src);
        self.ops.push(RefineOp::Duplicate { prefix, src, copy });
        copy
    }

    fn rank_preference(
        &mut self,
        q: RouterId,
        prefix: Prefix,
        senders: &[RouterId],
        ranking: RankingAttr,
    ) {
        match ranking {
            RankingAttr::Med => self.model.set_med_preference(q, prefix, senders),
            RankingAttr::LocalPref => self.model.set_local_pref_preference(q, prefix, senders),
        }
        self.ops.push(RefineOp::Rank {
            q,
            prefix,
            senders: senders.to_vec(),
        });
    }

    fn set_shorter_path_filters(&mut self, q: RouterId, prefix: Prefix, min_locrib_len: usize) {
        self.model
            .set_shorter_path_filters(q, prefix, min_locrib_len);
        if min_locrib_len > 0 {
            self.ops.push(RefineOp::ShorterFilters {
                q,
                prefix,
                min_locrib_len,
            });
        }
    }

    fn delete_blocking_filters(
        &mut self,
        from: RouterId,
        to: RouterId,
        prefix: Prefix,
        locrib_len: usize,
    ) -> usize {
        let deleted = self
            .model
            .delete_blocking_filters(from, to, prefix, locrib_len);
        if deleted > 0 {
            self.ops.push(RefineOp::DeleteBlockers {
                from,
                to,
                prefix,
                locrib_len,
            });
        }
        deleted
    }
}

/// The `(source, copy)` duplication subsequence of a fix-set — the part
/// that mutates shared structure. A replayed epoch stays exact only while
/// every live fix-set's subsequence matches its recorded counterpart.
fn duplicate_pairs(ops: &[RefineOp]) -> Vec<(RouterId, RouterId)> {
    ops.iter()
        .filter_map(|op| match op {
            RefineOp::Duplicate { src, copy, .. } => Some((*src, *copy)),
            _ => None,
        })
        .collect()
}

/// Processes one freshly simulated job exactly like one [`run_rounds`]
/// iteration, recording the applied fixes as a [`RepairStep`].
fn live_step(
    model: &mut AsRoutingModel,
    cfg: &RefineConfig,
    jobs: &mut [(Prefix, PrefixJob)],
    i: usize,
    sim: Result<SimulationResult, SimError>,
    mirrors: &mut BTreeMap<RouterId, RouterId>,
) -> Result<RepairStep, RefineError> {
    let job = &mut jobs[i].1;
    job.outcome.iterations += 1;
    let res = match sim {
        Ok(res) => res,
        Err(SimError::Divergence { .. }) => {
            job.outcome.diverged = true;
            job.done = true;
            return Ok(RepairStep {
                job: i,
                ops: Vec::new(),
                done: true,
                converged: job.outcome.converged,
                diverged: true,
            });
        }
        Err(e) => return Err(RefineError::Sim(e)),
    };
    let mut host = RecordingModel {
        model,
        ops: Vec::new(),
    };
    let (all_matched, changed) = apply_fixes(&mut host, &res, job, cfg, mirrors);
    let ops = host.ops;
    if changed {
        job.repair_changed = true;
    }
    if all_matched {
        job.outcome.converged = true;
        job.done = true;
    } else if !changed || job.outcome.iterations >= job.max_iter {
        // No local fix applies anywhere — progress is impossible — or the
        // iteration budget is spent. A domain-phase convergence claim that
        // no longer verifies is withdrawn.
        job.outcome.converged = false;
        job.done = true;
    } else {
        job.outcome.converged = false;
    }
    Ok(RepairStep {
        job: i,
        ops,
        done: job.done,
        converged: job.outcome.converged,
        diverged: job.outcome.diverged,
    })
}

/// Replays one recorded step against the live model, without simulating.
/// Duplications re-allocate and must land on the recorded router id — any
/// drift means the model grew differently than the recorded epoch and the
/// caller must abort the replay. Policy ops are scoped to the step's own
/// prefix and apply verbatim.
fn apply_recorded_step(
    model: &mut AsRoutingModel,
    cfg: &RefineConfig,
    jobs: &mut [(Prefix, PrefixJob)],
    step: &RepairStep,
    mirrors: &mut BTreeMap<RouterId, RouterId>,
) -> Result<(), &'static str> {
    let job = &mut jobs[step.job].1;
    job.outcome.iterations += 1;
    for op in &step.ops {
        match op {
            RefineOp::Duplicate { src, copy, .. } => {
                let ancestor = probe(mirrors, *src);
                let got = model.duplicate_quasi_router(*src);
                if got != *copy {
                    return Err("a replayed duplication allocated a different router id");
                }
                mirrors.insert(got, ancestor);
                job.outcome.quasi_routers_added += 1;
            }
            RefineOp::Rank { q, prefix, senders } => match cfg.ranking {
                RankingAttr::Med => model.set_med_preference(*q, *prefix, senders),
                RankingAttr::LocalPref => model.set_local_pref_preference(*q, *prefix, senders),
            },
            RefineOp::ShorterFilters {
                q,
                prefix,
                min_locrib_len,
            } => {
                model.set_shorter_path_filters(*q, *prefix, *min_locrib_len);
            }
            RefineOp::DeleteBlockers {
                from,
                to,
                prefix,
                locrib_len,
            } => {
                if !model.network().has_session(*from, *to) {
                    return Err("a replayed filter deletion names a missing session");
                }
                job.outcome.filters_deleted +=
                    model.delete_blocking_filters(*from, *to, *prefix, *locrib_len);
            }
        }
    }
    if !step.ops.is_empty() {
        job.repair_changed = true;
    }
    job.done = step.done;
    job.outcome.converged = step.converged;
    job.outcome.diverged = step.diverged;
    Ok(())
}

/// Why a hybrid replay gave up: `Stale` sends the caller back to the
/// recorded classic loop, `Refine` is a true fault of the run.
enum HybridError {
    Stale(&'static str),
    Refine(RefineError),
}

/// Phase 3 with trace replay (see the `incremental` module docs): jobs
/// marked `live` are re-simulated round by round exactly like the classic
/// loop, while every other job's recorded steps replay without simulation
/// in the same ascending-job application schedule.
///
/// Soundness rests on the caller's guarantee that the merged model equals
/// the recorded epoch's (no re-refined domain changed its duplication
/// subsequence), plus the per-round check that every live fix-set's
/// duplication subsequence matches its recorded counterpart: policy ops
/// are scoped to their own (live) prefix and cannot perturb a replayed
/// prefix's implied simulation, so the first structural drift — and only
/// such drift — invalidates the remaining trace and aborts with
/// [`HybridError::Stale`]. Rounds past the end of the recorded trace have
/// nothing left to replay (every recorded job's final step is `done`) and
/// need no checks.
// `expect` below: `simulate_batch` returns exactly one result per live
// active job, consumed in the same ascending-job order.
#[allow(clippy::expect_used)]
fn run_repair_hybrid(
    model: &mut AsRoutingModel,
    cfg: &RefineConfig,
    jobs: &mut [(Prefix, PrefixJob)],
    domains_total: usize,
    live: &[bool],
    cached: &RepairTrace,
) -> Result<(RefineReport, RepairTrace), HybridError> {
    let threads = cfg.effective_threads();
    let mut trace: RepairTrace = Vec::new();
    let mut round = 0u64;
    loop {
        let round_idx = round as usize;
        let live_active: Vec<usize> = jobs
            .iter()
            .enumerate()
            .filter(|(i, (_, j))| live[*i] && !j.done)
            .map(|(i, _)| i)
            .collect();
        let cached_round: &[RepairStep] = cached.get(round_idx).map(Vec::as_slice).unwrap_or(&[]);
        if live_active.is_empty() && cached_round.is_empty() {
            break;
        }
        round += 1;
        // Failpoint: the same repair-round crash site as `run_rounds`.
        #[cfg(feature = "testkit")]
        if quasar_bgpsim::fail::inject("refine.round") {
            return Err(HybridError::Refine(RefineError::Sim(SimError::Injected {
                point: "refine.round",
            })));
        }
        let in_replay = round_idx < cached.len();
        let prefixes: Vec<Prefix> = live_active.iter().map(|&i| jobs[i].0).collect();
        let mut sims = simulate_batch(model, &prefixes, threads).into_iter();
        let mut steps: Vec<RepairStep> = Vec::new();
        let mut mirrors: BTreeMap<RouterId, RouterId> = BTreeMap::new();
        let mut ci = 0usize;
        let mut li = 0usize;
        while ci < cached_round.len() || li < live_active.len() {
            let cj = cached_round.get(ci).map(|s| s.job);
            let lj = live_active.get(li).copied();
            let take_cached = match (cj, lj) {
                (Some(c), Some(l)) => c < l,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_cached {
                let step = &cached_round[ci];
                ci += 1;
                if live[step.job] {
                    // The live run finished this job in an earlier round.
                    // Its recorded policy ops are scoped to a live prefix
                    // (irrelevant to everyone else), but a recorded
                    // duplication means the recorded epoch grew structure
                    // the live run does not — the rest of the trace is
                    // recorded against a different model.
                    if duplicate_pairs(&step.ops).is_empty() {
                        continue;
                    }
                    return Err(HybridError::Stale(
                        "a finished live prefix's recorded round still duplicates",
                    ));
                }
                apply_recorded_step(model, cfg, jobs, step, &mut mirrors)
                    .map_err(HybridError::Stale)?;
                steps.push(step.clone());
            } else {
                let i = live_active[li];
                li += 1;
                let expected = if cj == Some(i) {
                    let pairs = duplicate_pairs(&cached_round[ci].ops);
                    ci += 1;
                    pairs
                } else {
                    Vec::new()
                };
                let sim = sims.next().expect("one simulation per live active job");
                let step = live_step(model, cfg, jobs, i, sim, &mut mirrors)
                    .map_err(HybridError::Refine)?;
                if in_replay && duplicate_pairs(&step.ops) != expected {
                    return Err(HybridError::Stale(
                        "a live prefix's duplications drifted from the recorded round",
                    ));
                }
                steps.push(step);
            }
        }
        trace.push(steps);
    }
    Ok((
        RefineReport {
            prefixes: jobs.iter().map(|(_, j)| j.outcome.clone()).collect(),
            domains: domains_total,
            repair_rounds: round,
        },
        trace,
    ))
}

/// Runs the repair phase for the incremental trainer: with `hybrid` set,
/// tries the trace replay first and falls back to the recorded classic
/// loop (restoring the model and jobs from a snapshot) if the trace goes
/// stale mid-flight. Returns the report, the freshly recorded trace for
/// the next epoch, and whether the replay carried through.
pub(crate) fn run_repair_traced(
    model: &mut AsRoutingModel,
    cfg: &RefineConfig,
    jobs: &mut Vec<(Prefix, PrefixJob)>,
    domains_total: usize,
    hybrid: Option<(&[bool], &RepairTrace)>,
) -> Result<(RefineReport, RepairTrace, bool), RefineError> {
    if let Some((live, cached)) = hybrid {
        let model_snapshot = model.clone();
        let jobs_snapshot = jobs.clone();
        match run_repair_hybrid(model, cfg, jobs, domains_total, live, cached) {
            Ok((report, trace)) => return Ok((report, trace, true)),
            Err(HybridError::Refine(e)) => return Err(e),
            Err(HybridError::Stale(reason)) => {
                // Falling back is correctness-preserving but expensive
                // enough that operators will want to know why.
                eprintln!("refine: repair-trace replay aborted ({reason}); running full repair");
                *model = model_snapshot;
                *jobs = jobs_snapshot;
            }
        }
    }
    let (report, trace) = run_repair_recorded(model, cfg, jobs, domains_total)?;
    Ok((report, trace, false))
}

/// The classic round loop of [`run_rounds`] (without checkpointing),
/// additionally recording every applied fix-set as a [`RepairTrace`] for
/// the next epoch to replay. The final model is byte-identical to
/// `run_rounds` on the same inputs.
pub(crate) fn run_repair_recorded(
    model: &mut AsRoutingModel,
    cfg: &RefineConfig,
    jobs: &mut [(Prefix, PrefixJob)],
    domains_total: usize,
) -> Result<(RefineReport, RepairTrace), RefineError> {
    let threads = cfg.effective_threads();
    let mut trace: RepairTrace = Vec::new();
    let mut round = 0u64;
    loop {
        let active: Vec<usize> = jobs
            .iter()
            .enumerate()
            .filter(|(_, (_, j))| !j.done)
            .map(|(i, _)| i)
            .collect();
        if active.is_empty() {
            break;
        }
        round += 1;
        // Failpoint: the same repair-round crash site as `run_rounds`.
        #[cfg(feature = "testkit")]
        if quasar_bgpsim::fail::inject("refine.round") {
            return Err(RefineError::Sim(SimError::Injected {
                point: "refine.round",
            }));
        }
        let prefixes: Vec<Prefix> = active.iter().map(|&i| jobs[i].0).collect();
        let sims = simulate_batch(model, &prefixes, threads);
        let mut steps: Vec<RepairStep> = Vec::with_capacity(active.len());
        let mut mirrors: BTreeMap<RouterId, RouterId> = BTreeMap::new();
        for (&i, sim) in active.iter().zip(sims) {
            steps.push(live_step(model, cfg, jobs, i, sim, &mut mirrors)?);
        }
        trace.push(steps);
    }
    Ok((
        RefineReport {
            prefixes: jobs.iter().map(|(_, j)| j.outcome.clone()).collect(),
            domains: domains_total,
            repair_rounds: round,
        },
        trace,
    ))
}

/// Serializes a domain-phase snapshot and writes it atomically into the
/// checkpoint directory, pruning snapshots beyond `policy.keep`.
fn save_domain_checkpoint(
    model: &AsRoutingModel,
    cfg: &RefineConfig,
    domains_total: usize,
    done: &BTreeMap<usize, DomainDelta>,
    fingerprint: u64,
    policy: Option<&CheckpointPolicy>,
) -> Result<(), RefineError> {
    let Some(policy) = policy else {
        return Ok(());
    };
    let ckpt = RefineCheckpoint {
        seq: done.len() as u64,
        dataset_fingerprint: fingerprint,
        max_iterations: cfg.max_iterations,
        allow_duplication: cfg.allow_duplication,
        ranking: cfg.ranking,
        domains: domains_total,
        stage: StageCheckpoint::Domains {
            done: done.values().cloned().collect(),
        },
        model: model.clone(),
    };
    write_checkpoint(&ckpt, policy)
}

/// Serializes a repair-phase snapshot; the sequence number continues the
/// domain phase's numbering (`domains + round`).
fn save_repair_checkpoint(
    model: &AsRoutingModel,
    cfg: &RefineConfig,
    domains_total: usize,
    jobs: &[(Prefix, PrefixJob)],
    round: u64,
    fingerprint: u64,
    policy: &CheckpointPolicy,
) -> Result<(), RefineError> {
    let ckpt = RefineCheckpoint {
        seq: domains_total as u64 + round,
        dataset_fingerprint: fingerprint,
        max_iterations: cfg.max_iterations,
        allow_duplication: cfg.allow_duplication,
        ranking: cfg.ranking,
        domains: domains_total,
        stage: StageCheckpoint::Repair {
            round,
            jobs: jobs
                .iter()
                .map(|(_, j)| JobCheckpoint {
                    outcome: j.outcome.clone(),
                    done: j.done,
                    max_iter: j.max_iter,
                })
                .collect(),
        },
        model: model.clone(),
    };
    write_checkpoint(&ckpt, policy)
}

/// Shared checkpoint writer (and the `refine.checkpoint` failpoint site).
fn write_checkpoint(ckpt: &RefineCheckpoint, policy: &CheckpointPolicy) -> Result<(), RefineError> {
    #[cfg(feature = "testkit")]
    if quasar_bgpsim::fail::inject("refine.checkpoint") {
        return Err(RefineError::Persist(PersistError::Io {
            path: policy.dir.clone(),
            op: "write",
            source: std::io::Error::other("fault injected by failpoint `refine.checkpoint`"),
        }));
    }
    let json = serde_json::to_string(ckpt)
        .map_err(|e| RefineError::CheckpointMismatch(format!("checkpoint serialization: {e}")))?;
    persist::save_checkpoint_payload(&policy.dir, ckpt.seq, json.as_bytes(), policy.keep)?;
    Ok(())
}

/// Simulates `prefixes` against `model` on `threads` workers. Results come
/// back in input order; with one thread (or one prefix) no threads are
/// spawned at all. Simulation scratch buffers are reused per worker.
// `expect`s below: a crossbeam scope error means a worker panicked (which
// should propagate), and every slot is written by exactly one worker before
// the scope joins.
#[allow(clippy::expect_used)]
fn simulate_batch(
    model: &AsRoutingModel,
    prefixes: &[Prefix],
    threads: usize,
) -> Vec<Result<SimulationResult, SimError>> {
    let threads = threads.min(prefixes.len());
    if threads <= 1 {
        let mut scratch = SimScratch::new();
        return prefixes
            .iter()
            .map(|&p| model.simulate_with(p, &mut scratch))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<Result<SimulationResult, SimError>>> =
        (0..prefixes.len()).map(|_| None).collect();
    let slots: Vec<parking_lot::Mutex<&mut Option<Result<SimulationResult, SimError>>>> =
        out.iter_mut().map(parking_lot::Mutex::new).collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| {
                let mut scratch = SimScratch::new();
                loop {
                    // sast: relaxed-ok work-claim ticket; results are published through the channel/join, only claim uniqueness matters
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= prefixes.len() {
                        break;
                    }
                    // Failpoint: per-simulation jitter that reorders worker
                    // completion (error injection belongs to `engine.simulate`
                    // inside `model.simulate`, where it propagates naturally).
                    #[cfg(feature = "testkit")]
                    let _ = quasar_bgpsim::fail::inject("refine.simulate_batch");
                    **slots[i].lock() = Some(model.simulate_with(prefixes[i], &mut scratch));
                }
            });
        }
    })
    .expect("refinement worker threads join");
    drop(slots);
    out.into_iter()
        .map(|o| o.expect("every slot simulated"))
        .collect()
}

/// Refines a single prefix to convergence (the sequential per-prefix path;
/// [`refine`] shards the same per-iteration logic across domains).
pub fn refine_prefix(
    model: &mut AsRoutingModel,
    prefix: Prefix,
    paths: &[&AsPath],
    cfg: &RefineConfig,
) -> Result<PrefixOutcome, SimError> {
    let targets = targets_for(paths);
    let mut job = PrefixJob {
        targets,
        outcome: PrefixOutcome {
            prefix,
            targets: 0,
            iterations: 0,
            converged: false,
            quasi_routers_added: 0,
            filters_deleted: 0,
            diverged: false,
        },
        done: false,
        max_iter: usize::MAX,
        repair_changed: false,
    };
    job.outcome.targets = job.targets.len();

    let mut scratch = SimScratch::new();
    while job.outcome.iterations < cfg.max_iterations {
        job.outcome.iterations += 1;
        let res = match model.simulate_with(prefix, &mut scratch) {
            Ok(res) => res,
            Err(SimError::Divergence { .. }) => {
                job.outcome.diverged = true;
                break;
            }
            Err(e) => return Err(e),
        };
        // Each iteration re-simulates, so the model is never stale here:
        // a fresh (empty) mirror map per iteration is the exact sequential
        // semantics.
        let (all_matched, changed) = apply_fixes(model, &res, &mut job, cfg, &mut BTreeMap::new());
        if all_matched {
            job.outcome.converged = true;
            break;
        }
        if !changed {
            // No local fix applies anywhere — progress is impossible.
            break;
        }
    }
    Ok(job.outcome)
}

/// Resolves `r` through the round's mirror map: quasi-routers created
/// since the round's simulations read their mirror ancestor's Adj-RIB-In.
/// Entries are resolved at insertion time, so one hop suffices.
fn probe(mirrors: &BTreeMap<RouterId, RouterId>, r: RouterId) -> RouterId {
    mirrors.get(&r).copied().unwrap_or(r)
}

/// One refinement iteration's fix pass for one prefix: walks the targets
/// origin-first against the simulation `res` and mutates `host` to repair
/// the first discrepancy of each unmatched target. Returns
/// `(all_matched, changed)`.
///
/// `mirrors` maps quasi-routers created since `res` was simulated to the
/// res-visible router whose Adj-RIB-In they mirror (a fresh duplicate
/// copies its source's sessions and policies). Batched repair rounds share
/// one map across all prefixes of the round: without it, a prefix whose
/// simulation predates another prefix's duplication would see the new
/// router as "never learned the path" and duplicate again, blowing the
/// model up with redundant quasi-routers that the sequential schedule
/// would have reused.
fn apply_fixes<H: RefineHost>(
    host: &mut H,
    res: &SimulationResult,
    job: &mut PrefixJob,
    cfg: &RefineConfig,
    mirrors: &mut BTreeMap<RouterId, RouterId>,
) -> (bool, bool) {
    // Failpoint: a delay here stalls a fix pass between two prefixes;
    // determinism tests assert the trained model stays byte-identical no
    // matter how the stall interleaves with concurrently refined domains.
    #[cfg(feature = "testkit")]
    let _ = quasar_bgpsim::fail::inject("refine.apply_fix");
    let prefix = job.outcome.prefix;
    let mut reserved: BTreeSet<RouterId> = BTreeSet::new();
    let mut all_matched = true;
    let mut changed = false;

    for t in &job.targets {
        let target = t.o.suffix(t.o.len() - 1); // Loc-RIB form
        let routers = host.model().quasi_routers_of(t.asn);

        // RIB-Out match at an unreserved quasi-router? (Post-`res` routers
        // have no best route here — they were re-policied towards their own
        // target, so their ancestor's best is deliberately NOT attributed.)
        let rib_out = routers.iter().copied().find(|&r| {
            !reserved.contains(&r) && res.best_route(r).is_some_and(|b| b.as_path == target)
        });
        if let Some(q) = rib_out {
            reserved.insert(q);
            continue;
        }
        all_matched = false;

        // RIB-In match? (any quasi-router that learned the path)
        let has_target = |r: RouterId| {
            res.rib(probe(mirrors, r))
                .map(|rib| rib.candidates.iter().any(|c| c.as_path == target))
                .unwrap_or(false)
        };
        let rib_in_unreserved = routers
            .iter()
            .copied()
            .find(|&r| !reserved.contains(&r) && has_target(r));
        let rib_in_any = routers.iter().copied().find(|&r| has_target(r));

        match (rib_in_unreserved, rib_in_any) {
            (Some(q), _) => {
                reserved.insert(q);
                adjust_policies(
                    host,
                    res,
                    q,
                    probe(mirrors, q),
                    prefix,
                    &target,
                    cfg.ranking,
                );
                changed = true;
            }
            (None, Some(_)) if !cfg.allow_duplication => {
                // Ablation: the path is learned but no router may be
                // added — this target is permanently unsatisfiable.
            }
            (None, Some(src)) => {
                // Everyone who learned it is spoken for: duplicate.
                let q = host.duplicate_quasi_router(prefix, src);
                job.outcome.quasi_routers_added += 1;
                reserved.insert(q);
                // The copy's RIB-In mirrors the source's.
                let ancestor = probe(mirrors, src);
                mirrors.insert(q, ancestor);
                adjust_policies(host, res, q, ancestor, prefix, &target, cfg.ranking);
                changed = true;
            }
            (None, None) => {
                // No RIB-In: the path has not propagated this far yet.
                // Figure 7: if the announcing neighbor AS already has a
                // RIB-Out match, delete whatever egress filter blocks
                // the announcement towards us.
                let deleted = delete_blockers(host, res, t.asn, prefix, &target);
                if deleted > 0 {
                    job.outcome.filters_deleted += deleted;
                    changed = true;
                }
            }
        }
    }
    (all_matched, changed)
}

/// Installs the §4.6 policy pair at quasi-router `q` for `target`:
/// MED-prefer the sessions that deliver it (read from `rib_src`'s RIB-In,
/// which equals `q`'s after duplication) and filter shorter paths at the
/// announcing neighbors.
fn adjust_policies<H: RefineHost>(
    host: &mut H,
    res: &SimulationResult,
    q: RouterId,
    rib_src: RouterId,
    prefix: Prefix,
    target: &AsPath,
    ranking: RankingAttr,
) {
    let senders: Vec<RouterId> = res
        .rib(rib_src)
        .map(|rib| {
            rib.candidates
                .iter()
                .filter(|c| c.as_path == *target)
                .filter_map(|c| c.from_router)
                .collect()
        })
        .unwrap_or_default();
    host.rank_preference(q, prefix, &senders, ranking);
    host.set_shorter_path_filters(q, prefix, target.len().saturating_sub(1));
}

/// Figure 7 filter deletion: for target suffix `target` expected at AS
/// `asn`, if the announcing neighbor AS has a quasi-router already
/// RIB-Out-matching the next-shorter suffix, remove egress filters on its
/// sessions towards `asn` that block the announcement.
fn delete_blockers<H: RefineHost>(
    host: &mut H,
    res: &SimulationResult,
    asn: Asn,
    prefix: Prefix,
    target: &AsPath,
) -> usize {
    let Some(nstar) = target.head() else {
        return 0; // `asn` originates the prefix; nothing upstream
    };
    let n_locrib = target.suffix(target.len() - 1);
    let mut deleted = 0;
    let neighbors: Vec<RouterId> = host
        .model()
        .quasi_routers_of(nstar)
        .into_iter()
        .filter(|&rn| res.best_route(rn).is_some_and(|b| b.as_path == n_locrib))
        .collect();
    for rn in neighbors {
        let peers: Vec<RouterId> = host.model().network().peers_of(rn);
        for peer in peers {
            if peer.asn() != asn {
                continue;
            }
            deleted += host.delete_blocking_filters(rn, peer, prefix, n_locrib.len());
        }
    }
    deleted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{match_level, MatchLevel};
    use crate::observed::ObservedRoute;
    use quasar_topology::graph::AsGraph;

    fn model_from(paths: &[&[u32]], origin: u32) -> (AsRoutingModel, Prefix, Vec<AsPath>) {
        let aspaths: Vec<AsPath> = paths.iter().map(|p| AsPath::from_u32s(p)).collect();
        let graph = AsGraph::from_paths(&aspaths);
        let prefix = Prefix::for_origin(Asn(origin));
        let mut origins = BTreeMap::new();
        origins.insert(prefix, Asn(origin));
        (AsRoutingModel::initial(&graph, &origins), prefix, aspaths)
    }

    fn assert_all_rib_out(model: &AsRoutingModel, prefix: Prefix, paths: &[AsPath]) {
        let res = model.simulate(prefix).unwrap();
        for p in paths {
            let routers = model.quasi_routers_of(p.head().unwrap());
            assert_eq!(
                match_level(&res, &routers, p),
                MatchLevel::RibOut,
                "path {p} not RIB-Out matched"
            );
        }
    }

    /// §4.4 Figure 5 scenario (a)→(b): the observed path 1-4-3... here
    /// simplified: diamond where observation disagrees with the default
    /// tie-break, fixed by MED ranking alone.
    #[test]
    fn fixes_wrong_tie_break() {
        let (mut model, prefix, _) = model_from(&[&[1, 2, 3], &[1, 4, 3]], 3);
        // Observed: AS1 uses 1-4-3 (the tie-break loser).
        let observed = vec![AsPath::from_u32s(&[1, 4, 3])];
        let refs: Vec<&AsPath> = observed.iter().collect();
        let out = refine_prefix(&mut model, prefix, &refs, &RefineConfig::default()).unwrap();
        assert!(out.converged, "did not converge: {out:?}");
        assert_all_rib_out(&model, prefix, &observed);
    }

    /// §4.4 Figure 5 (c): two observed paths of different length at the
    /// same AS require a second quasi-router plus filters.
    #[test]
    fn creates_quasi_router_for_second_path() {
        // AS1 connects to 4 directly and via 5; p2 at AS4; observed both
        // 1-4 and 1-5-4.
        let (mut model, prefix, _) = model_from(&[&[1, 4], &[1, 5, 4]], 4);
        let observed = vec![AsPath::from_u32s(&[1, 4]), AsPath::from_u32s(&[1, 5, 4])];
        let refs: Vec<&AsPath> = observed.iter().collect();
        let out = refine_prefix(&mut model, prefix, &refs, &RefineConfig::default()).unwrap();
        assert!(out.converged, "did not converge: {out:?}");
        assert!(out.quasi_routers_added >= 1, "no quasi-router added");
        assert_eq!(model.quasi_routers_of(Asn(1)).len(), 2);
        assert_all_rib_out(&model, prefix, &observed);
    }

    /// §4.6 Figure 7: a filter set for a shorter path blocks a longer path
    /// later; the heuristic must delete it.
    #[test]
    fn filter_deletion_unblocks_longer_path() {
        // Topology: 1-7, 7-4 (direct), 7-6, 6-5, 5-4. Prefix p at AS4.
        // Observed at AS1: 1-7-4 and 1-7-6-5-4.
        let (mut model, prefix, _) = model_from(&[&[1, 7, 4], &[1, 7, 6, 5, 4]], 4);
        let observed = vec![
            AsPath::from_u32s(&[1, 7, 4]),
            AsPath::from_u32s(&[1, 7, 6, 5, 4]),
        ];
        let refs: Vec<&AsPath> = observed.iter().collect();
        let out = refine_prefix(&mut model, prefix, &refs, &RefineConfig::default()).unwrap();
        assert!(out.converged, "did not converge: {out:?}");
        assert_all_rib_out(&model, prefix, &observed);
    }

    /// Whole-dataset refinement across several prefixes converges and the
    /// training set then matches exactly.
    #[test]
    fn refine_training_set_to_exact_match() {
        let routes = vec![
            (&[1u32, 2, 3][..], 3u32, 0u32),
            (&[1, 4, 3], 3, 0),
            (&[5, 4, 3], 3, 1),
            (&[5, 2, 3], 3, 1),
            (&[1, 2], 2, 0),
            (&[5, 4, 2_000], 2_000, 1),
        ];
        let dataset = Dataset::new(routes.into_iter().map(|(p, origin, point)| ObservedRoute {
            point,
            observer_as: Asn(p[0]),
            prefix: Prefix::for_origin(Asn(origin)),
            as_path: AsPath::from_u32s(p),
        }));
        let graph = dataset.as_graph();
        let mut model = AsRoutingModel::initial(&graph, &dataset.prefixes());
        let report = refine(&mut model, &dataset, &RefineConfig::default()).unwrap();
        assert!(report.converged(), "not converged: {report:?}");
        for (prefix, _) in dataset.prefixes() {
            let res = model.simulate(prefix).unwrap();
            for r in dataset.routes_for(prefix) {
                let routers = model.quasi_routers_of(r.observer_as);
                assert_eq!(
                    match_level(&res, &routers, &r.as_path),
                    MatchLevel::RibOut,
                    "route {} not matched",
                    r.as_path
                );
            }
        }
    }

    #[test]
    fn targets_deduplicate_shared_suffixes() {
        let p1 = AsPath::from_u32s(&[1, 2, 3]);
        let p2 = AsPath::from_u32s(&[4, 2, 3]);
        let t = targets_for(&[&p1, &p2]);
        // suffixes: [3], [2,3], [1,2,3], [4,2,3] -> 4 targets.
        assert_eq!(t.len(), 4);
        assert!(t[0].len <= t[t.len() - 1].len, "targets sorted by length");
    }

    #[test]
    fn already_consistent_training_converges_in_one_iteration() {
        let (mut model, prefix, _) = model_from(&[&[1, 2, 3]], 3);
        let observed = [AsPath::from_u32s(&[1, 2, 3])];
        let refs: Vec<&AsPath> = observed.iter().collect();
        let out = refine_prefix(&mut model, prefix, &refs, &RefineConfig::default()).unwrap();
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.quasi_routers_added, 0);
    }

    #[test]
    fn domain_partition_is_contiguous_and_even() {
        for n in [0usize, 1, 15, 16, 17, 31, 32, 100, 1000, 20_000] {
            let ranges = domain_ranges(n);
            if n == 0 {
                assert!(ranges.is_empty());
                continue;
            }
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges[ranges.len() - 1].end, n);
            let mut prev_end = 0;
            let (mut min_len, mut max_len) = (usize::MAX, 0);
            for r in &ranges {
                assert_eq!(r.start, prev_end, "domains must be contiguous");
                prev_end = r.end;
                min_len = min_len.min(r.len());
                max_len = max_len.max(r.len());
            }
            assert!(max_len - min_len <= 1, "domains must be near-equal");
            assert!(ranges.len() <= MAX_DOMAINS);
        }
    }

    #[test]
    fn small_job_sets_form_a_single_domain() {
        for n in 1..=DOMAIN_TARGET_PREFIXES {
            assert_eq!(domain_ranges(n).len(), 1, "n={n}");
        }
        assert!(domain_ranges(2 * DOMAIN_TARGET_PREFIXES).len() > 1);
    }

    /// A dataset wide enough to shard into several domains must still be
    /// trained byte-identically at every thread count.
    #[test]
    fn multi_domain_refinement_is_thread_count_invariant() {
        // 40 diamond prefixes (>2 domains at the 16-prefix target), each
        // needing a MED fix against the tie-break.
        let routes: Vec<ObservedRoute> = (0..40u32)
            .flat_map(|i| {
                let origin = 100 + i;
                [[1u32, 2, origin], [1, 3, origin]]
                    .into_iter()
                    .map(move |p| ObservedRoute {
                        point: 0,
                        observer_as: Asn(p[0]),
                        prefix: Prefix::for_origin(Asn(origin)),
                        as_path: AsPath::from_u32s(&p),
                    })
            })
            .collect();
        let dataset = Dataset::new(routes);
        let graph = dataset.as_graph();
        let mut baseline: Option<(String, RefineReport)> = None;
        for threads in [1usize, 2, 4, 8] {
            let cfg = RefineConfig {
                threads,
                ..RefineConfig::default()
            };
            let mut model = AsRoutingModel::initial(&graph, &dataset.prefixes());
            let report = refine(&mut model, &dataset, &cfg).unwrap();
            assert!(report.converged(), "threads={threads}: {report:?}");
            assert!(report.domains > 1, "expected multiple domains");
            let json = model.to_json().unwrap();
            match &baseline {
                None => baseline = Some((json, report)),
                Some((bjson, breport)) => {
                    assert_eq!(&json, bjson, "model differs at threads={threads}");
                    assert_eq!(&report, breport, "report differs at threads={threads}");
                }
            }
        }
    }
}
