//! The iterative refinement heuristic (paper §4.4–§4.6, Figure 6).
//!
//! For every prefix, every suffix of every observed AS-path is a *target*:
//! the AS at the suffix's head must have some quasi-router that selects the
//! rest of the suffix as its best route and propagates it. Each iteration
//! simulates the prefix, then walks the targets origin-first and fixes the
//! first discrepancy locally:
//!
//! * **RIB-Out match** — reserve the (lowest-id) matching quasi-router for
//!   this path; it is "not available for matching another observed AS-path
//!   for the same prefix".
//! * **RIB-In match, no RIB-Out** — reserve an unreserved quasi-router that
//!   learned the path (or *duplicate* one if all are reserved) and adjust
//!   its per-prefix policy: MED-rank the announcing session best and filter
//!   shorter paths at the announcing neighbors. The paper deliberately uses
//!   MED + filters, not local-pref, to avoid divergence.
//! * **No RIB-In** — either delete a previously installed filter that now
//!   blocks the path at an announcing neighbor with a RIB-Out match
//!   (Figure 7), or skip: "a route with an appropriate AS-path first has to
//!   be propagated to this AS".
//!
//! "Perfect RIB-Out matches are achieved after a total number of
//! iterations that is a multiple of the maximum AS-path length."

use crate::model::AsRoutingModel;
use crate::observed::Dataset;
use crate::persist::{self, PersistError};
use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::engine::SimulationResult;
use quasar_bgpsim::error::SimError;
use quasar_bgpsim::types::{Asn, Prefix, RouterId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Which attribute the heuristic uses to rank the wanted route at a
/// quasi-router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RankingAttr {
    /// MED ranking — the paper's choice: "we take advantage of the next
    /// step in the BGP decision process that relies on the MED attribute"
    /// (§4.6).
    #[default]
    Med,
    /// Local-pref ranking — the choice the paper *rejected* because "the
    /// preference of routes with longer AS-paths over those with shorter
    /// ones can lead to divergence". Provided as an ablation; expect
    /// [`PrefixOutcome::diverged`] prefixes.
    LocalPref,
}

/// Refinement tunables.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RefineConfig {
    /// Hard cap on iterations per prefix. The paper's bound is a small
    /// multiple of the maximum AS-path length; the default leaves ample
    /// slack.
    pub max_iterations: usize,
    /// Allow quasi-router duplication. Disabling it ablates the paper's
    /// central mechanism: the model degenerates to one router per AS plus
    /// policies, and concurrent-path targets become unsatisfiable.
    pub allow_duplication: bool,
    /// Ranking attribute (see [`RankingAttr`]).
    pub ranking: RankingAttr,
    /// Worker threads for the batched per-prefix simulations inside
    /// [`refine`]. `0` means "all available cores". The trained model is
    /// byte-identical regardless of this setting: simulations read the
    /// model concurrently, but fixes are always applied sequentially in
    /// prefix order.
    #[serde(default)]
    pub threads: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            max_iterations: 64,
            allow_duplication: true,
            ranking: RankingAttr::Med,
            threads: 0,
        }
    }
}

impl RefineConfig {
    /// The effective worker-thread count (resolves `threads == 0` to the
    /// number of available cores).
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Outcome of refining one prefix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixOutcome {
    /// The prefix.
    pub prefix: Prefix,
    /// Distinct (AS, suffix) targets derived from the training paths.
    pub targets: usize,
    /// Iterations used (1 = matched immediately).
    pub iterations: usize,
    /// Whether every target reached a RIB-Out match.
    pub converged: bool,
    /// Quasi-routers created while refining this prefix.
    pub quasi_routers_added: usize,
    /// Blocking filters deleted (Figure 7 situations).
    pub filters_deleted: usize,
    /// True if the installed policies made the BGP propagation oscillate —
    /// only possible with [`RankingAttr::LocalPref`] (§4.6).
    pub diverged: bool,
}

/// Whole-training-set refinement report.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefineReport {
    /// Per-prefix outcomes, in prefix order.
    pub prefixes: Vec<PrefixOutcome>,
}

impl RefineReport {
    /// True if every prefix converged to full RIB-Out matches.
    pub fn converged(&self) -> bool {
        self.prefixes.iter().all(|p| p.converged)
    }

    /// Total quasi-routers created by refinement.
    pub fn quasi_routers_added(&self) -> usize {
        self.prefixes.iter().map(|p| p.quasi_routers_added).sum()
    }

    /// Total iterations over all prefixes.
    pub fn total_iterations(&self) -> usize {
        self.prefixes.iter().map(|p| p.iterations).sum()
    }

    /// Maximum iterations needed by any prefix.
    pub fn max_iterations(&self) -> usize {
        self.prefixes
            .iter()
            .map(|p| p.iterations)
            .max()
            .unwrap_or(0)
    }
}

/// What can interrupt a checkpointed refinement run.
#[derive(Debug)]
pub enum RefineError {
    /// The simulation engine failed (including injected faults).
    Sim(SimError),
    /// Writing or reading a checkpoint failed.
    Persist(PersistError),
    /// A checkpoint loaded fine but does not belong to this run — wrong
    /// dataset, wrong refinement configuration, or a prefix set that no
    /// longer lines up. Resuming from it would silently train a
    /// different model, so it is refused.
    CheckpointMismatch(String),
}

impl fmt::Display for RefineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefineError::Sim(e) => write!(f, "simulation failed: {e}"),
            RefineError::Persist(e) => write!(f, "checkpoint I/O failed: {e}"),
            RefineError::CheckpointMismatch(detail) => {
                write!(f, "checkpoint does not match this run: {detail}")
            }
        }
    }
}

impl std::error::Error for RefineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RefineError::Sim(e) => Some(e),
            RefineError::Persist(e) => Some(e),
            RefineError::CheckpointMismatch(_) => None,
        }
    }
}

impl From<SimError> for RefineError {
    fn from(e: SimError) -> Self {
        RefineError::Sim(e)
    }
}

impl From<PersistError> for RefineError {
    fn from(e: PersistError) -> Self {
        RefineError::Persist(e)
    }
}

/// Where and how often [`refine_checkpointed`] snapshots its state.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Checkpoint directory (created on first write).
    pub dir: PathBuf,
    /// Write a checkpoint after every `every`-th round (1 = every round).
    pub every: u64,
    /// How many checkpoints to keep; older ones are pruned after each
    /// write. At least 2, so a damaged newest checkpoint still leaves a
    /// fallback.
    pub keep: usize,
}

impl CheckpointPolicy {
    /// A policy checkpointing into `dir` after every round, keeping 2.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointPolicy {
            dir: dir.into(),
            every: 1,
            keep: 2,
        }
    }
}

/// Serialized refinement state: everything [`resume_refine`] needs to
/// continue mid-run and still produce a byte-identical final model.
/// Targets are *not* stored — they are rebuilt deterministically from the
/// training set, which the fingerprint pins to the original run's.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RefineCheckpoint {
    /// Rounds completed when this snapshot was taken.
    round: u64,
    /// Fingerprint of the training routes (see [`dataset_fingerprint`]).
    dataset_fingerprint: u64,
    /// The original run's [`RefineConfig::max_iterations`].
    max_iterations: usize,
    /// The original run's [`RefineConfig::allow_duplication`].
    allow_duplication: bool,
    /// The original run's [`RefineConfig::ranking`].
    ranking: RankingAttr,
    /// Per-prefix progress, in the job order (ascending prefix).
    jobs: Vec<JobCheckpoint>,
    /// The model as of the end of round `round`.
    model: AsRoutingModel,
}

/// One prefix's progress inside a [`RefineCheckpoint`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct JobCheckpoint {
    outcome: PrefixOutcome,
    done: bool,
}

/// Order-sensitive FNV-1a fingerprint of the training routes. Resuming
/// against a different dataset would re-derive different targets and
/// diverge silently; the fingerprint turns that into a typed refusal.
pub fn dataset_fingerprint(training: &Dataset) -> u64 {
    let mut text = String::new();
    for r in training.routes() {
        use std::fmt::Write as _;
        let _ = writeln!(
            text,
            "{} {} {} {}",
            r.point, r.observer_as.0, r.prefix, r.as_path
        );
    }
    persist::fnv1a(text.as_bytes())
}

/// One refinement target: the AS `asn` must select & propagate the observed
/// suffix `o` (which has `asn` at its head).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Target {
    /// Suffix length — processed ascending so fixes flow origin → observer.
    len: usize,
    /// The observed suffix (head = `asn`).
    o: AsPath,
    /// The AS responsible for it.
    asn: Asn,
}

/// Derives the deduplicated target set for one prefix from its training
/// paths.
fn targets_for(paths: &[&AsPath]) -> Vec<Target> {
    let mut set: BTreeSet<Target> = BTreeSet::new();
    for p in paths {
        for n in 1..=p.len() {
            let o = p.suffix(n);
            let Some(asn) = o.head() else {
                continue; // unreachable: a length-n suffix with n >= 1
            };
            set.insert(Target { len: n, o, asn });
        }
    }
    set.into_iter().collect()
}

/// One prefix's refinement state across batched rounds.
struct PrefixJob {
    targets: Vec<Target>,
    outcome: PrefixOutcome,
    /// Converged, diverged, stuck, or out of iterations.
    done: bool,
}

/// Refines `model` until the simulated routing reproduces every AS-path of
/// `training` (or the iteration cap is hit).
///
/// Refinement proceeds in *rounds*: every still-unconverged prefix is
/// simulated against the current model — these read-only simulations fan
/// out across [`RefineConfig::threads`] workers — and the resulting fixes
/// are then applied sequentially in ascending prefix order. Because the
/// mutation order never depends on the thread schedule, the trained model
/// is byte-identical for every thread count.
pub fn refine(
    model: &mut AsRoutingModel,
    training: &Dataset,
    cfg: &RefineConfig,
) -> Result<RefineReport, SimError> {
    match refine_checkpointed(model, training, cfg, None) {
        Ok(report) => Ok(report),
        Err(RefineError::Sim(e)) => Err(e),
        // Without a checkpoint policy no checkpoint is ever read or
        // written, so no other error variant can arise.
        Err(e) => unreachable!("checkpoint error without a checkpoint policy: {e}"),
    }
}

/// [`refine`] with optional round-granular checkpointing: with a
/// [`CheckpointPolicy`], the full refinement state is snapshotted to
/// `policy.dir` after every `policy.every`-th round, and an interrupted
/// run can be continued with [`resume_refine`] — producing a final model
/// byte-identical to the uninterrupted run, because rounds are
/// deterministic and each snapshot sits exactly on a round boundary.
pub fn refine_checkpointed(
    model: &mut AsRoutingModel,
    training: &Dataset,
    cfg: &RefineConfig,
    policy: Option<&CheckpointPolicy>,
) -> Result<RefineReport, RefineError> {
    let jobs = build_jobs(model, training);
    let fingerprint = policy.map(|_| dataset_fingerprint(training)).unwrap_or(0);
    let report = run_rounds(model, cfg, jobs, 0, fingerprint, policy)?;
    crate::audit::log_audit("post-train", model);
    Ok(report)
}

/// Continues an interrupted [`refine_checkpointed`] run from the newest
/// loadable checkpoint in `policy.dir`. The checkpoint must match the
/// given training set and configuration (`threads` excepted — the model
/// is byte-identical at any thread count); mismatches are refused with
/// [`RefineError::CheckpointMismatch`]. Returns the restored-and-finished
/// model with the full-run report.
pub fn resume_refine(
    training: &Dataset,
    cfg: &RefineConfig,
    policy: &CheckpointPolicy,
) -> Result<(AsRoutingModel, RefineReport), RefineError> {
    let (file_round, payload) = persist::load_latest_checkpoint_payload(&policy.dir)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| RefineError::CheckpointMismatch("checkpoint payload is not UTF-8".into()))?;
    let ckpt: RefineCheckpoint = serde_json::from_str(text)
        .map_err(|e| RefineError::CheckpointMismatch(format!("checkpoint does not parse: {e}")))?;
    if ckpt.round != file_round {
        return Err(RefineError::CheckpointMismatch(format!(
            "file is named for round {file_round} but contains round {}",
            ckpt.round
        )));
    }
    let fingerprint = dataset_fingerprint(training);
    if ckpt.dataset_fingerprint != fingerprint {
        return Err(RefineError::CheckpointMismatch(format!(
            "training data fingerprint {fingerprint:016x} differs from the checkpoint's {:016x}",
            ckpt.dataset_fingerprint
        )));
    }
    if ckpt.max_iterations != cfg.max_iterations
        || ckpt.allow_duplication != cfg.allow_duplication
        || ckpt.ranking != cfg.ranking
    {
        return Err(RefineError::CheckpointMismatch(format!(
            "refinement config changed: checkpoint ran with max_iterations={} \
             allow_duplication={} ranking={:?}",
            ckpt.max_iterations, ckpt.allow_duplication, ckpt.ranking
        )));
    }
    let mut model = ckpt.model;
    // Validate before rebuild_indices, which would panic on out-of-bounds
    // session endpoints in a damaged (but checksum-valid) snapshot.
    model
        .validate_structure()
        .map_err(|e| RefineError::CheckpointMismatch(format!("checkpoint model invalid: {e}")))?;
    model.network_mut().rebuild_indices();
    // Audit the restored snapshot before continuing: a defect here means
    // the checkpoint itself (not the remaining rounds) is suspect.
    crate::audit::log_audit("checkpoint-recovery", &model);
    // Targets are rebuilt from the training set — deterministic, and the
    // fingerprint guarantees they equal the original run's.
    let mut jobs = build_jobs(&model, training);
    if jobs.len() != ckpt.jobs.len() {
        return Err(RefineError::CheckpointMismatch(format!(
            "checkpoint tracks {} prefixes, training set yields {}",
            ckpt.jobs.len(),
            jobs.len()
        )));
    }
    for ((prefix, job), jc) in jobs.iter_mut().zip(ckpt.jobs) {
        if *prefix != jc.outcome.prefix {
            return Err(RefineError::CheckpointMismatch(format!(
                "prefix order diverged at {prefix} vs checkpoint's {}",
                jc.outcome.prefix
            )));
        }
        job.outcome = jc.outcome;
        job.done = jc.done;
    }
    let report = run_rounds(&mut model, cfg, jobs, ckpt.round, fingerprint, Some(policy))?;
    crate::audit::log_audit("post-resume", &model);
    Ok((model, report))
}

/// Builds the per-prefix jobs in ascending prefix order — this is also
/// the fix-application order of every round. Prefixes whose origin is
/// absent from the model graph cannot be simulated and are skipped, as
/// before.
fn build_jobs(model: &AsRoutingModel, training: &Dataset) -> Vec<(Prefix, PrefixJob)> {
    let mut by_prefix: BTreeMap<Prefix, Vec<&AsPath>> = BTreeMap::new();
    for r in training.routes() {
        by_prefix.entry(r.prefix).or_default().push(&r.as_path);
    }
    by_prefix
        .iter()
        .filter(|(prefix, _)| model.prefixes().contains_key(prefix))
        .map(|(&prefix, paths)| {
            let targets = targets_for(paths);
            let outcome = PrefixOutcome {
                prefix,
                targets: targets.len(),
                iterations: 0,
                converged: false,
                quasi_routers_added: 0,
                filters_deleted: 0,
                diverged: false,
            };
            (
                prefix,
                PrefixJob {
                    targets,
                    outcome,
                    done: false,
                },
            )
        })
        .collect()
}

/// The round loop shared by fresh and resumed runs. `round` counts
/// completed rounds (0 for a fresh run); checkpoints are written after a
/// round's fixes are applied, so every snapshot sits on a round boundary.
fn run_rounds(
    model: &mut AsRoutingModel,
    cfg: &RefineConfig,
    mut jobs: Vec<(Prefix, PrefixJob)>,
    mut round: u64,
    fingerprint: u64,
    policy: Option<&CheckpointPolicy>,
) -> Result<RefineReport, RefineError> {
    let threads = cfg.effective_threads();
    loop {
        let active: Vec<usize> = jobs
            .iter()
            .enumerate()
            .filter(|(_, (_, j))| !j.done)
            .map(|(i, _)| i)
            .collect();
        if active.is_empty() {
            break;
        }
        round += 1;
        // Failpoint: the crash site for kill-and-resume tests — a panic
        // armed `atN:panic` dies exactly at the start of round N, after
        // the round-(N-1) checkpoint landed on disk.
        #[cfg(feature = "testkit")]
        if quasar_bgpsim::fail::inject("refine.round") {
            return Err(RefineError::Sim(SimError::Injected {
                point: "refine.round",
            }));
        }
        // Phase 1: simulate every active prefix against the *same* model
        // snapshot, in parallel (`simulate` takes `&self`).
        let prefixes: Vec<Prefix> = active.iter().map(|&i| jobs[i].0).collect();
        let sims = simulate_batch(model, &prefixes, threads);
        // Phase 2: apply fixes sequentially, in prefix order. The mirror
        // map is shared across the round so a prefix whose simulation
        // predates another prefix's duplication still reuses the new
        // router instead of duplicating again (see `apply_fixes`).
        let mut mirrors: BTreeMap<RouterId, RouterId> = BTreeMap::new();
        for (&i, sim) in active.iter().zip(sims) {
            let job = &mut jobs[i].1;
            job.outcome.iterations += 1;
            let res = match sim {
                Ok(res) => res,
                Err(SimError::Divergence { .. }) => {
                    job.outcome.diverged = true;
                    job.done = true;
                    continue;
                }
                Err(e) => return Err(RefineError::Sim(e)),
            };
            let (all_matched, changed) = apply_fixes(model, &res, job, cfg, &mut mirrors);
            if all_matched {
                job.outcome.converged = true;
                job.done = true;
            } else if !changed || job.outcome.iterations >= cfg.max_iterations {
                // No local fix applies anywhere — progress is impossible —
                // or the iteration budget is spent.
                job.done = true;
            }
        }
        if let Some(p) = policy {
            if round.is_multiple_of(p.every.max(1)) {
                save_checkpoint(model, cfg, &jobs, round, fingerprint, p)?;
            }
        }
    }

    Ok(RefineReport {
        prefixes: jobs.into_iter().map(|(_, j)| j.outcome).collect(),
    })
}

/// Serializes the full refinement state and writes it atomically into the
/// checkpoint directory, pruning snapshots beyond `policy.keep`.
fn save_checkpoint(
    model: &AsRoutingModel,
    cfg: &RefineConfig,
    jobs: &[(Prefix, PrefixJob)],
    round: u64,
    fingerprint: u64,
    policy: &CheckpointPolicy,
) -> Result<(), RefineError> {
    #[cfg(feature = "testkit")]
    if quasar_bgpsim::fail::inject("refine.checkpoint") {
        return Err(RefineError::Persist(PersistError::Io {
            path: policy.dir.clone(),
            op: "write",
            source: std::io::Error::other("fault injected by failpoint `refine.checkpoint`"),
        }));
    }
    let ckpt = RefineCheckpoint {
        round,
        dataset_fingerprint: fingerprint,
        max_iterations: cfg.max_iterations,
        allow_duplication: cfg.allow_duplication,
        ranking: cfg.ranking,
        jobs: jobs
            .iter()
            .map(|(_, j)| JobCheckpoint {
                outcome: j.outcome.clone(),
                done: j.done,
            })
            .collect(),
        model: model.clone(),
    };
    let json = serde_json::to_string(&ckpt)
        .map_err(|e| RefineError::CheckpointMismatch(format!("checkpoint serialization: {e}")))?;
    persist::save_checkpoint_payload(&policy.dir, round, json.as_bytes(), policy.keep)?;
    Ok(())
}

/// Simulates `prefixes` against `model` on `threads` workers. Results come
/// back in input order; with one thread (or one prefix) no threads are
/// spawned at all.
// `expect`s below: a crossbeam scope error means a worker panicked (which
// should propagate), and every slot is written by exactly one worker before
// the scope joins.
#[allow(clippy::expect_used)]
fn simulate_batch(
    model: &AsRoutingModel,
    prefixes: &[Prefix],
    threads: usize,
) -> Vec<Result<SimulationResult, SimError>> {
    let threads = threads.min(prefixes.len());
    if threads <= 1 {
        return prefixes.iter().map(|&p| model.simulate(p)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<Result<SimulationResult, SimError>>> =
        (0..prefixes.len()).map(|_| None).collect();
    let slots: Vec<parking_lot::Mutex<&mut Option<Result<SimulationResult, SimError>>>> =
        out.iter_mut().map(parking_lot::Mutex::new).collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= prefixes.len() {
                    break;
                }
                // Failpoint: per-simulation jitter that reorders worker
                // completion (error injection belongs to `engine.simulate`
                // inside `model.simulate`, where it propagates naturally).
                #[cfg(feature = "testkit")]
                let _ = quasar_bgpsim::fail::inject("refine.simulate_batch");
                **slots[i].lock() = Some(model.simulate(prefixes[i]));
            });
        }
    })
    .expect("refinement worker threads join");
    drop(slots);
    out.into_iter()
        .map(|o| o.expect("every slot simulated"))
        .collect()
}

/// Refines a single prefix to convergence (the sequential per-prefix path;
/// [`refine`] batches the same per-iteration logic across prefixes).
pub fn refine_prefix(
    model: &mut AsRoutingModel,
    prefix: Prefix,
    paths: &[&AsPath],
    cfg: &RefineConfig,
) -> Result<PrefixOutcome, SimError> {
    let targets = targets_for(paths);
    let mut job = PrefixJob {
        targets,
        outcome: PrefixOutcome {
            prefix,
            targets: 0,
            iterations: 0,
            converged: false,
            quasi_routers_added: 0,
            filters_deleted: 0,
            diverged: false,
        },
        done: false,
    };
    job.outcome.targets = job.targets.len();

    while job.outcome.iterations < cfg.max_iterations {
        job.outcome.iterations += 1;
        let res = match model.simulate(prefix) {
            Ok(res) => res,
            Err(SimError::Divergence { .. }) => {
                job.outcome.diverged = true;
                break;
            }
            Err(e) => return Err(e),
        };
        // Each iteration re-simulates, so the model is never stale here:
        // a fresh (empty) mirror map per iteration is the exact sequential
        // semantics.
        let (all_matched, changed) = apply_fixes(model, &res, &mut job, cfg, &mut BTreeMap::new());
        if all_matched {
            job.outcome.converged = true;
            break;
        }
        if !changed {
            // No local fix applies anywhere — progress is impossible.
            break;
        }
    }
    Ok(job.outcome)
}

/// Resolves `r` through the round's mirror map: quasi-routers created
/// since the round's simulations read their mirror ancestor's Adj-RIB-In.
/// Entries are resolved at insertion time, so one hop suffices.
fn probe(mirrors: &BTreeMap<RouterId, RouterId>, r: RouterId) -> RouterId {
    mirrors.get(&r).copied().unwrap_or(r)
}

/// One refinement iteration's fix pass for one prefix: walks the targets
/// origin-first against the simulation `res` and mutates `model` to repair
/// the first discrepancy of each unmatched target. Returns
/// `(all_matched, changed)`.
///
/// `mirrors` maps quasi-routers created since `res` was simulated to the
/// res-visible router whose Adj-RIB-In they mirror (a fresh duplicate
/// copies its source's sessions and policies). Batched rounds share one
/// map across all prefixes of the round: without it, a prefix whose
/// simulation predates another prefix's duplication would see the new
/// router as "never learned the path" and duplicate again, blowing the
/// model up with redundant quasi-routers that the sequential schedule
/// would have reused.
fn apply_fixes(
    model: &mut AsRoutingModel,
    res: &SimulationResult,
    job: &mut PrefixJob,
    cfg: &RefineConfig,
    mirrors: &mut BTreeMap<RouterId, RouterId>,
) -> (bool, bool) {
    // Failpoint: a delay here stalls the sequential fix phase between
    // two prefixes of a round; determinism tests assert the trained model
    // stays byte-identical no matter how the stall interleaves with the
    // (already completed) parallel simulations.
    #[cfg(feature = "testkit")]
    let _ = quasar_bgpsim::fail::inject("refine.apply_fix");
    let prefix = job.outcome.prefix;
    let mut reserved: BTreeSet<RouterId> = BTreeSet::new();
    let mut all_matched = true;
    let mut changed = false;

    for t in &job.targets {
        let target = t.o.suffix(t.o.len() - 1); // Loc-RIB form
        let routers = model.quasi_routers_of(t.asn);

        // RIB-Out match at an unreserved quasi-router? (Post-`res` routers
        // have no best route here — they were re-policied towards their own
        // target, so their ancestor's best is deliberately NOT attributed.)
        let rib_out = routers.iter().copied().find(|&r| {
            !reserved.contains(&r) && res.best_route(r).is_some_and(|b| b.as_path == target)
        });
        if let Some(q) = rib_out {
            reserved.insert(q);
            continue;
        }
        all_matched = false;

        // RIB-In match? (any quasi-router that learned the path)
        let has_target = |r: RouterId| {
            res.rib(probe(mirrors, r))
                .map(|rib| rib.candidates.iter().any(|c| c.as_path == target))
                .unwrap_or(false)
        };
        let rib_in_unreserved = routers
            .iter()
            .copied()
            .find(|&r| !reserved.contains(&r) && has_target(r));
        let rib_in_any = routers.iter().copied().find(|&r| has_target(r));

        match (rib_in_unreserved, rib_in_any) {
            (Some(q), _) => {
                reserved.insert(q);
                adjust_policies(
                    model,
                    res,
                    q,
                    probe(mirrors, q),
                    prefix,
                    &target,
                    cfg.ranking,
                );
                changed = true;
            }
            (None, Some(_)) if !cfg.allow_duplication => {
                // Ablation: the path is learned but no router may be
                // added — this target is permanently unsatisfiable.
            }
            (None, Some(src)) => {
                // Everyone who learned it is spoken for: duplicate.
                let q = model.duplicate_quasi_router(src);
                job.outcome.quasi_routers_added += 1;
                reserved.insert(q);
                // The copy's RIB-In mirrors the source's.
                let ancestor = probe(mirrors, src);
                mirrors.insert(q, ancestor);
                adjust_policies(model, res, q, ancestor, prefix, &target, cfg.ranking);
                changed = true;
            }
            (None, None) => {
                // No RIB-In: the path has not propagated this far yet.
                // Figure 7: if the announcing neighbor AS already has a
                // RIB-Out match, delete whatever egress filter blocks
                // the announcement towards us.
                let deleted = delete_blockers(model, res, t.asn, prefix, &target);
                if deleted > 0 {
                    job.outcome.filters_deleted += deleted;
                    changed = true;
                }
            }
        }
    }
    (all_matched, changed)
}

/// Installs the §4.6 policy pair at quasi-router `q` for `target`:
/// MED-prefer the sessions that deliver it (read from `rib_src`'s RIB-In,
/// which equals `q`'s after duplication) and filter shorter paths at the
/// announcing neighbors.
fn adjust_policies(
    model: &mut AsRoutingModel,
    res: &SimulationResult,
    q: RouterId,
    rib_src: RouterId,
    prefix: Prefix,
    target: &AsPath,
    ranking: RankingAttr,
) {
    let senders: Vec<RouterId> = res
        .rib(rib_src)
        .map(|rib| {
            rib.candidates
                .iter()
                .filter(|c| c.as_path == *target)
                .filter_map(|c| c.from_router)
                .collect()
        })
        .unwrap_or_default();
    match ranking {
        RankingAttr::Med => model.set_med_preference(q, prefix, &senders),
        RankingAttr::LocalPref => model.set_local_pref_preference(q, prefix, &senders),
    }
    model.set_shorter_path_filters(q, prefix, target.len().saturating_sub(1));
}

/// Figure 7 filter deletion: for target suffix `target` expected at AS
/// `asn`, if the announcing neighbor AS has a quasi-router already
/// RIB-Out-matching the next-shorter suffix, remove egress filters on its
/// sessions towards `asn` that block the announcement.
fn delete_blockers(
    model: &mut AsRoutingModel,
    res: &SimulationResult,
    asn: Asn,
    prefix: Prefix,
    target: &AsPath,
) -> usize {
    let Some(nstar) = target.head() else {
        return 0; // `asn` originates the prefix; nothing upstream
    };
    let n_locrib = target.suffix(target.len() - 1);
    let mut deleted = 0;
    let neighbors: Vec<RouterId> = model
        .quasi_routers_of(nstar)
        .into_iter()
        .filter(|&rn| res.best_route(rn).is_some_and(|b| b.as_path == n_locrib))
        .collect();
    for rn in neighbors {
        for peer in model.network().peers_of(rn) {
            if peer.asn() != asn {
                continue;
            }
            deleted += model.delete_blocking_filters(rn, peer, prefix, n_locrib.len());
        }
    }
    deleted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{match_level, MatchLevel};
    use quasar_topology::graph::AsGraph;

    fn model_from(paths: &[&[u32]], origin: u32) -> (AsRoutingModel, Prefix, Vec<AsPath>) {
        let aspaths: Vec<AsPath> = paths.iter().map(|p| AsPath::from_u32s(p)).collect();
        let graph = AsGraph::from_paths(&aspaths);
        let prefix = Prefix::for_origin(Asn(origin));
        let mut origins = BTreeMap::new();
        origins.insert(prefix, Asn(origin));
        (AsRoutingModel::initial(&graph, &origins), prefix, aspaths)
    }

    fn assert_all_rib_out(model: &AsRoutingModel, prefix: Prefix, paths: &[AsPath]) {
        let res = model.simulate(prefix).unwrap();
        for p in paths {
            let routers = model.quasi_routers_of(p.head().unwrap());
            assert_eq!(
                match_level(&res, &routers, p),
                MatchLevel::RibOut,
                "path {p} not RIB-Out matched"
            );
        }
    }

    /// §4.4 Figure 5 scenario (a)→(b): the observed path 1-4-3... here
    /// simplified: diamond where observation disagrees with the default
    /// tie-break, fixed by MED ranking alone.
    #[test]
    fn fixes_wrong_tie_break() {
        let (mut model, prefix, _) = model_from(&[&[1, 2, 3], &[1, 4, 3]], 3);
        // Observed: AS1 uses 1-4-3 (the tie-break loser).
        let observed = vec![AsPath::from_u32s(&[1, 4, 3])];
        let refs: Vec<&AsPath> = observed.iter().collect();
        let out = refine_prefix(&mut model, prefix, &refs, &RefineConfig::default()).unwrap();
        assert!(out.converged, "did not converge: {out:?}");
        assert_all_rib_out(&model, prefix, &observed);
    }

    /// §4.4 Figure 5 (c): two observed paths of different length at the
    /// same AS require a second quasi-router plus filters.
    #[test]
    fn creates_quasi_router_for_second_path() {
        // AS1 connects to 4 directly and via 5; p2 at AS4; observed both
        // 1-4 and 1-5-4.
        let (mut model, prefix, _) = model_from(&[&[1, 4], &[1, 5, 4]], 4);
        let observed = vec![AsPath::from_u32s(&[1, 4]), AsPath::from_u32s(&[1, 5, 4])];
        let refs: Vec<&AsPath> = observed.iter().collect();
        let out = refine_prefix(&mut model, prefix, &refs, &RefineConfig::default()).unwrap();
        assert!(out.converged, "did not converge: {out:?}");
        assert!(out.quasi_routers_added >= 1, "no quasi-router added");
        assert_eq!(model.quasi_routers_of(Asn(1)).len(), 2);
        assert_all_rib_out(&model, prefix, &observed);
    }

    /// §4.6 Figure 7: a filter set for a shorter path blocks a longer path
    /// later; the heuristic must delete it.
    #[test]
    fn filter_deletion_unblocks_longer_path() {
        // Topology: 1-7, 7-4 (direct), 7-6, 6-5, 5-4. Prefix p at AS4.
        // Observed at AS1: 1-7-4 and 1-7-6-5-4.
        let (mut model, prefix, _) = model_from(&[&[1, 7, 4], &[1, 7, 6, 5, 4]], 4);
        let observed = vec![
            AsPath::from_u32s(&[1, 7, 4]),
            AsPath::from_u32s(&[1, 7, 6, 5, 4]),
        ];
        let refs: Vec<&AsPath> = observed.iter().collect();
        let out = refine_prefix(&mut model, prefix, &refs, &RefineConfig::default()).unwrap();
        assert!(out.converged, "did not converge: {out:?}");
        assert_all_rib_out(&model, prefix, &observed);
    }

    /// Whole-dataset refinement across several prefixes converges and the
    /// training set then matches exactly.
    #[test]
    fn refine_training_set_to_exact_match() {
        use crate::observed::ObservedRoute;
        let routes = vec![
            (&[1u32, 2, 3][..], 3u32, 0u32),
            (&[1, 4, 3], 3, 0),
            (&[5, 4, 3], 3, 1),
            (&[5, 2, 3], 3, 1),
            (&[1, 2], 2, 0),
            (&[5, 4, 2_000], 2_000, 1),
        ];
        let dataset = Dataset::new(routes.into_iter().map(|(p, origin, point)| ObservedRoute {
            point,
            observer_as: Asn(p[0]),
            prefix: Prefix::for_origin(Asn(origin)),
            as_path: AsPath::from_u32s(p),
        }));
        let graph = dataset.as_graph();
        let mut model = AsRoutingModel::initial(&graph, &dataset.prefixes());
        let report = refine(&mut model, &dataset, &RefineConfig::default()).unwrap();
        assert!(report.converged(), "not converged: {report:?}");
        for (prefix, _) in dataset.prefixes() {
            let res = model.simulate(prefix).unwrap();
            for r in dataset.routes_for(prefix) {
                let routers = model.quasi_routers_of(r.observer_as);
                assert_eq!(
                    match_level(&res, &routers, &r.as_path),
                    MatchLevel::RibOut,
                    "route {} not matched",
                    r.as_path
                );
            }
        }
    }

    #[test]
    fn targets_deduplicate_shared_suffixes() {
        let p1 = AsPath::from_u32s(&[1, 2, 3]);
        let p2 = AsPath::from_u32s(&[4, 2, 3]);
        let t = targets_for(&[&p1, &p2]);
        // suffixes: [3], [2,3], [1,2,3], [4,2,3] -> 4 targets.
        assert_eq!(t.len(), 4);
        assert!(t[0].len <= t[t.len() - 1].len, "targets sorted by length");
    }

    #[test]
    fn already_consistent_training_converges_in_one_iteration() {
        let (mut model, prefix, _) = model_from(&[&[1, 2, 3]], 3);
        let observed = [AsPath::from_u32s(&[1, 2, 3])];
        let refs: Vec<&AsPath> = observed.iter().collect();
        let out = refine_prefix(&mut model, prefix, &refs, &RefineConfig::default()).unwrap();
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.quasi_routers_added, 0);
    }
}
