//! Seeded, capped, jittered exponential backoff.
//!
//! Every retry loop in the workspace — the `quasar query` CLI retrying
//! overloaded replies, the streaming [`ServeClient`] riding out a serve
//! outage, the ingest tail retrying transient reads — wants the same
//! policy: delays that double from a base, are capped, and carry up to
//! +50% deterministic jitter so a fleet of clients does not retry in
//! lockstep. This module is the one implementation they all share.
//!
//! Determinism is deliberate: the jitter stream is a [SplitMix64]
//! sequence derived from a caller-supplied seed, so tests can assert
//! exact delay schedules and two runs with the same seed behave
//! identically. Callers that want per-process spread seed with e.g.
//! `process::id()`.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//!
//! [`ServeClient`]: ../../quasar_stream/client/struct.ServeClient.html

use std::time::Duration;

/// Advances `state` one SplitMix64 step and returns the next value.
///
/// The standard mixer: a Weyl sequence increment followed by two
/// xor-shift-multiply rounds. Good enough to decorrelate retry jitter;
/// not a cryptographic generator.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A capped jittered exponential backoff schedule.
///
/// Delay for attempt `n` (1-based) is `min(base << (n-1), cap)` plus a
/// jitter of up to half that, drawn from the seeded generator. The
/// attempt counter saturates, so a long-lived loop can keep calling
/// [`Backoff::next_delay`] without overflow; [`Backoff::reset`] rewinds
/// the schedule after a success.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A schedule starting at `base_ms`, doubling per attempt, capped at
    /// `cap_ms` (before jitter), with jitter drawn from `seed`.
    ///
    /// A `base_ms` of 0 is clamped to 1 so the schedule still advances.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        let base_ms = base_ms.max(1);
        Backoff {
            base_ms,
            cap_ms: cap_ms.max(base_ms),
            attempt: 0,
            rng: seed,
        }
    }

    /// How many delays have been handed out since the last reset.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Rewinds the schedule to its first step (the jitter stream keeps
    /// advancing — rewinding it would re-correlate retry storms).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// The next delay in the schedule: doubled, capped, jittered.
    pub fn next_delay(&mut self) -> Duration {
        self.attempt = self.attempt.saturating_add(1);
        Duration::from_millis(self.delay_ms())
    }

    /// Like [`Backoff::next_delay`], but honouring a server-provided
    /// floor (e.g. an overloaded reply's `retry_after_ms`): the returned
    /// delay is never shorter than the floor.
    pub fn next_delay_at_least(&mut self, floor_ms: u64) -> Duration {
        let scheduled = self.next_delay();
        scheduled.max(Duration::from_millis(floor_ms))
    }

    /// The current attempt's delay in milliseconds.
    fn delay_ms(&mut self) -> u64 {
        let shift = u32::min(self.attempt.saturating_sub(1), 63);
        let exp = self
            .base_ms
            .checked_shl(shift)
            .unwrap_or(self.cap_ms)
            .min(self.cap_ms);
        let jitter = splitmix64(&mut self.rng) % (exp / 2 + 1);
        exp + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_from_base_and_jitter_stays_under_half() {
        let mut b = Backoff::new(10, 10_000, 7);
        for attempt in 1..=6u32 {
            let exp = 10u64 << (attempt - 1);
            let got = b.next_delay().as_millis() as u64;
            assert!(
                (exp..=exp + exp / 2).contains(&got),
                "attempt {attempt}: delay {got} outside [{exp}, {}]",
                exp + exp / 2
            );
        }
    }

    #[test]
    fn cap_bounds_the_exponential_term() {
        let mut b = Backoff::new(100, 400, 1);
        for _ in 0..20 {
            let got = b.next_delay().as_millis() as u64;
            assert!(got <= 400 + 200, "delay {got} exceeds cap plus jitter");
        }
        assert_eq!(b.attempt(), 20);
    }

    #[test]
    fn same_seed_gives_the_same_schedule() {
        let mut a = Backoff::new(10, 1_000, 42);
        let mut b = Backoff::new(10, 1_000, 42);
        let left: Vec<_> = (0..8).map(|_| a.next_delay()).collect();
        let right: Vec<_> = (0..8).map(|_| b.next_delay()).collect();
        assert_eq!(left, right);
    }

    #[test]
    fn different_seeds_decorrelate_the_jitter() {
        let mut a = Backoff::new(10, 1_000_000, 1);
        let mut b = Backoff::new(10, 1_000_000, 2);
        let left: Vec<_> = (0..10).map(|_| a.next_delay()).collect();
        let right: Vec<_> = (0..10).map(|_| b.next_delay()).collect();
        assert_ne!(left, right, "two seeds should not share a jitter stream");
    }

    #[test]
    fn reset_rewinds_the_exponent_but_not_the_jitter_stream() {
        let mut b = Backoff::new(10, 10_000, 3);
        let _ = b.next_delay();
        let _ = b.next_delay();
        b.reset();
        assert_eq!(b.attempt(), 0);
        let after = b.next_delay().as_millis() as u64;
        assert!((10..=15).contains(&after), "post-reset delay {after}");
    }

    #[test]
    fn floor_lifts_short_delays_and_leaves_long_ones() {
        let mut b = Backoff::new(10, 10_000, 9);
        let lifted = b.next_delay_at_least(500);
        assert!(lifted >= Duration::from_millis(500));
        // Deep into the schedule the exponential term dominates any floor.
        for _ in 0..8 {
            let _ = b.next_delay();
        }
        let deep = b.next_delay_at_least(1);
        assert!(deep >= Duration::from_millis(2_560));
    }

    #[test]
    fn zero_base_still_advances() {
        let mut b = Backoff::new(0, 100, 5);
        let d = b.next_delay();
        assert!(d >= Duration::from_millis(1));
    }

    #[test]
    fn overflowing_shift_saturates_at_the_cap() {
        let mut b = Backoff::new(u64::MAX / 2, u64::MAX / 2, 1);
        for _ in 0..70 {
            let _ = b.next_delay();
        }
        // 70 doublings of a huge base must not panic or wrap.
        assert!(b.next_delay() >= Duration::from_millis(1));
    }
}
